//! Cross-crate invariant tests: discovery postconditions from Problem 1,
//! checked on every dataset generator and model family.

// Test harness: panicking on malformed fixtures is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use crr::discovery::compact_on_data;
use crr::discovery::ShardedDiscovery;
use crr::prelude::*;

/// Single-shard discovery through the `DiscoverySession` front door,
/// pinned byte-identical to a one-shard sharded run in
/// `crr-discovery/tests/sharded_equivalence.rs`.
fn discover_via_session(
    table: &Table,
    rows: &RowSet,
    cfg: &DiscoveryConfig,
    space: &PredicateSpace,
) -> ShardedDiscovery {
    DiscoverySession::on(table)
        .rows(rows.clone())
        .predicates(space.clone())
        .config(cfg.clone())
        .run()
        .unwrap()
}

fn scenario(ds: &Dataset, rho_scale: f64) -> (DiscoveryConfig, PredicateSpace) {
    let table = &ds.table;
    let target = table.attr(ds.default_target).unwrap();
    let inputs: Vec<AttrId> = ds
        .default_inputs
        .iter()
        .map(|n| table.attr(n).unwrap())
        .collect();
    // Conditions over the inputs plus every categorical attribute.
    let mut cond: Vec<AttrId> = inputs.clone();
    for (id, a) in table.schema().iter() {
        if a.ty() == AttrType::Str {
            cond.push(id);
        }
    }
    let space = PredicateGen::binary(32).generate(table, &cond, target, 5);
    (DiscoveryConfig::new(inputs, target, rho_scale), space)
}

fn all_datasets() -> Vec<Dataset> {
    let cfg = GenConfig {
        rows: 900,
        seed: 77,
    };
    vec![
        crr::datasets::birdmap(&cfg),
        crr::datasets::airquality(&cfg),
        crr::datasets::electricity(&cfg),
        crr::datasets::tax(&cfg),
        crr::datasets::abalone(&cfg),
    ]
}

/// Problem 1 coverage: every tuple is covered by some discovered rule,
/// on every dataset.
#[test]
fn discovery_covers_every_tuple_on_all_datasets() {
    for ds in all_datasets() {
        let (cfg, space) = scenario(&ds, 1.0);
        let found = discover_via_session(&ds.table, &ds.table.all_rows(), &cfg, &space);
        let uncovered = found.rules.uncovered(&ds.table, &ds.table.all_rows());
        assert!(
            uncovered.is_empty(),
            "{}: {} uncovered",
            ds.name,
            uncovered.len()
        );
    }
}

/// Every emitted rule is honest: no covered tuple violates the rule's own
/// bias ρ.
#[test]
fn every_rule_respects_its_own_rho() {
    for ds in all_datasets() {
        let (cfg, space) = scenario(&ds, 1.0);
        let found = discover_via_session(&ds.table, &ds.table.all_rows(), &cfg, &space);
        for (i, rule) in found.rules.rules().iter().enumerate() {
            assert!(
                rule.find_violation(&ds.table, &ds.table.all_rows())
                    .is_none(),
                "{}: rule {i} violates its rho",
                ds.name
            );
        }
    }
}

/// Compaction is semantics-preserving: identical coverage, and predictions
/// within ρ_M of the originals on every dataset.
#[test]
fn compaction_preserves_coverage_and_predictions() {
    for ds in all_datasets() {
        let (cfg, space) = scenario(&ds, 1.0);
        let rows = ds.table.all_rows();
        let found = discover_via_session(&ds.table, &rows, &cfg, &space);
        let (compacted, _) =
            compact_on_data(&found.rules, 1e-4, cfg.rho_max, &ds.table, &rows).unwrap();
        assert!(compacted.len() <= found.rules.len(), "{}", ds.name);
        assert!(
            compacted.uncovered(&ds.table, &rows).is_empty(),
            "{}: compaction lost coverage",
            ds.name
        );
        for row in (0..ds.table.num_rows()).step_by(37) {
            let a = found.rules.predict(&ds.table, row, LocateStrategy::First);
            let b = compacted.predict(&ds.table, row, LocateStrategy::First);
            match (a, b) {
                (Some(a), Some(b)) => assert!(
                    (a - b).abs() <= 2.0 * cfg.rho_max + 1e-9,
                    "{}: row {row} drifted {a} -> {b}",
                    ds.name
                ),
                (a, b) => assert_eq!(a.is_some(), b.is_some(), "{}: row {row}", ds.name),
            }
        }
    }
}

/// Sharing never hurts accuracy: with and without the lines 7–10 fast
/// path, discovery reaches comparable RMSE, and sharing trains fewer
/// models.
#[test]
fn sharing_reduces_models_without_hurting_rmse() {
    let ds = crr::datasets::birdmap(&GenConfig {
        rows: 2_200,
        seed: 31,
    });
    let (cfg, space) = scenario(&ds, 0.5);
    let rows = ds.table.all_rows();
    let with = discover_via_session(&ds.table, &rows, &cfg.clone().with_sharing(true), &space);
    let without = discover_via_session(&ds.table, &rows, &cfg.with_sharing(false), &space);
    assert!(with.stats.models_trained <= without.stats.models_trained);
    let rw = with.rules.evaluate(&ds.table, &rows, LocateStrategy::First);
    let rwo = without
        .rules
        .evaluate(&ds.table, &rows, LocateStrategy::First);
    assert!(
        rw.rmse <= rwo.rmse * 2.0 + 0.1,
        "with {} vs without {}",
        rw.rmse,
        rwo.rmse
    );
}

/// Discovery is deterministic: identical inputs give identical rule sets,
/// for every model family.
#[test]
fn discovery_is_deterministic_per_family() {
    let ds = crr::datasets::abalone(&GenConfig {
        rows: 700,
        seed: 32,
    });
    for kind in ModelKind::ALL {
        let (base, space) = scenario(&ds, 1.0);
        let cfg = base.with_kind(kind);
        let rows = ds.table.all_rows();
        let a = discover_via_session(&ds.table, &rows, &cfg, &space);
        let b = discover_via_session(&ds.table, &rows, &cfg, &space);
        assert_eq!(a.rules.len(), b.rules.len(), "{kind:?}");
        for (ra, rb) in a.rules.rules().iter().zip(b.rules.rules()) {
            assert_eq!(ra.condition(), rb.condition(), "{kind:?}");
            assert_eq!(ra.rho(), rb.rho(), "{kind:?}");
        }
    }
}

/// Tightening ρ_M never increases the rule set's measured RMSE
/// (in-sample): more refinement means equal or better fit.
#[test]
fn smaller_rho_never_fits_worse_in_sample() {
    let ds = crr::datasets::airquality(&GenConfig {
        rows: 1_200,
        seed: 33,
    });
    let rows = ds.table.all_rows();
    let mut last_rmse = f64::INFINITY;
    for rho in [5.0, 1.0, 0.5] {
        let (cfg, space) = scenario(&ds, rho);
        let found = discover_via_session(&ds.table, &rows, &cfg, &space);
        let report = found
            .rules
            .evaluate(&ds.table, &rows, LocateStrategy::First);
        assert!(
            report.rmse <= last_rmse + 1e-9,
            "rho {rho}: rmse {} after {}",
            report.rmse,
            last_rmse
        );
        last_rmse = report.rmse;
    }
}
