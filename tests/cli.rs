//! Integration tests for the `crr` CLI binary: the full
//! generate → discover → show → evaluate → check → impute loop through
//! real process invocations and CSV/rule files on disk.

// Test harness: panicking on malformed fixtures is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::process::{Command, Output};

fn crr_bin() -> &'static str {
    env!("CARGO_BIN_EXE_crr")
}

fn run(args: &[&str]) -> Output {
    Command::new(crr_bin())
        .args(args)
        .output()
        .expect("spawn crr binary")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crr-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mk tmp dir");
    dir.join(name)
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn full_cli_workflow() {
    let data = tmp("tax.csv");
    let rules = tmp("tax_rules.txt");
    let repaired = tmp("tax_repaired.csv");

    // generate
    let out = run(&[
        "generate",
        "--dataset",
        "tax",
        "--rows",
        "2000",
        "--seed",
        "5",
        "--output",
        data.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("2000 rows"));

    // discover
    let out = run(&[
        "discover",
        "--input",
        data.to_str().unwrap(),
        "--target",
        "tax",
        "--features",
        "salary",
        "--conditions",
        "state,salary",
        "--rho",
        "3.0",
        "--predicates",
        "8",
        "--output",
        rules.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("discovered"), "{text}");
    assert!(text.contains("compacted"), "{text}");
    assert!(rules.exists());

    // show
    let out = run(&[
        "show",
        "--rules",
        rules.to_str().unwrap(),
        "--input",
        data.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("distinct models"));

    // evaluate: full coverage, small error
    let out = run(&[
        "evaluate",
        "--input",
        data.to_str().unwrap(),
        "--rules",
        rules.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let eval = stdout(&out);
    assert!(eval.contains("rows 2000 covered 2000"), "{eval}");

    // check: generated data satisfies its own rules
    let out = run(&[
        "check",
        "--input",
        data.to_str().unwrap(),
        "--rules",
        rules.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("0 violations"), "{}", stdout(&out));

    // impute: blank some tax cells by rewriting the CSV, then repair.
    let csv_text = std::fs::read_to_string(&data).unwrap();
    let mut lines: Vec<String> = csv_text.lines().map(String::from).collect();
    let header: Vec<&str> = lines[0].split(',').collect();
    let tax_col = header.iter().position(|&h| h == "tax").unwrap();
    for line in lines.iter_mut().skip(1).step_by(10) {
        let mut cells: Vec<&str> = line.split(',').collect();
        cells[tax_col] = "";
        *line = cells.join(",");
    }
    let gappy = tmp("tax_gaps.csv");
    std::fs::write(&gappy, lines.join("\n") + "\n").unwrap();

    let out = run(&[
        "impute",
        "--input",
        gappy.to_str().unwrap(),
        "--rules",
        rules.to_str().unwrap(),
        "--target",
        "tax",
        "--output",
        repaired.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("filled 200 of 200"),
        "{}",
        stdout(&out)
    );

    // The repaired file has no empty tax cells left.
    let repaired_text = std::fs::read_to_string(&repaired).unwrap();
    for line in repaired_text.lines().skip(1) {
        let cells: Vec<&str> = line.split(',').collect();
        assert!(!cells[tax_col].is_empty());
    }
}

#[test]
fn helpful_errors() {
    // No command.
    let out = run(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("commands:"));

    // Unknown command.
    let out = run(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));

    // Missing required flag.
    let out = run(&["generate", "--dataset", "tax"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--rows") || stderr(&out).contains("missing"));

    // Unknown dataset.
    let out = run(&[
        "generate",
        "--dataset",
        "nope",
        "--rows",
        "10",
        "--output",
        tmp("x.csv").to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown dataset"));

    // Bad flag syntax.
    let out = run(&["discover", "input"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("expected --flag"));
}

#[test]
fn help_prints_usage() {
    let out = run(&["help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("discover"));
    assert!(stdout(&out).contains("impute"));
}
