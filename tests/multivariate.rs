//! Multivariate-`X` coverage: everything upstream is written for
//! `f : X → Y` with arbitrary |X|, but the paper's headline scenarios are
//! univariate — these tests exercise the |X| ≥ 2 paths end to end.

// Test harness: panicking on malformed fixtures is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use crr::discovery::compact_on_data;
use crr::discovery::ShardedDiscovery;
use crr::prelude::*;

/// Single-shard discovery through the `DiscoverySession` front door,
/// pinned byte-identical to a one-shard sharded run in
/// `crr-discovery/tests/sharded_equivalence.rs`.
fn discover_via_session(
    table: &Table,
    rows: &RowSet,
    cfg: &DiscoveryConfig,
    space: &PredicateSpace,
) -> ShardedDiscovery {
    DiscoverySession::on(table)
        .rows(rows.clone())
        .predicates(space.clone())
        .config(cfg.clone())
        .run()
        .unwrap()
}

/// A plane per regime: y = a·x1 + b·x2 + c, with the two regimes sharing
/// (a, b) — translatable in the multivariate sense.
fn plane_table(n: usize) -> Table {
    let schema = Schema::new(vec![
        ("x1", AttrType::Float),
        ("x2", AttrType::Float),
        ("y", AttrType::Float),
    ]);
    let mut t = Table::new(schema);
    for i in 0..n {
        let x1 = (i % 20) as f64;
        let x2 = (i / 20) as f64;
        let base = 2.0 * x1 - 0.5 * x2;
        // Regime switch on x1: same gradient, intercept differs by 30.
        let y = if x1 < 10.0 { base + 1.0 } else { base + 31.0 };
        t.push_row(vec![Value::Float(x1), Value::Float(x2), Value::Float(y)])
            .unwrap();
    }
    t
}

#[test]
fn discovers_multivariate_planes_and_shares_them() {
    let t = plane_table(400);
    let x1 = t.attr("x1").unwrap();
    let x2 = t.attr("x2").unwrap();
    let y = t.attr("y").unwrap();

    let space = PredicateGen::binary(15).generate(&t, &[x1, x2], y, 0);
    let cfg = DiscoveryConfig::new(vec![x1, x2], y, 0.1);
    let d = discover_via_session(&t, &t.all_rows(), &cfg, &space);
    assert!(d.rules.uncovered(&t, &t.all_rows()).is_empty());
    let rep = d.rules.evaluate(&t, &t.all_rows(), LocateStrategy::First);
    assert!(rep.rmse < 1e-9, "rmse {}", rep.rmse);
    // The second regime shares the first regime's plane.
    assert!(d.stats.models_shared >= 1, "stats {:?}", d.stats);

    // Compaction merges the two regimes onto one model.
    let (rules, _) = compact_on_data(&d.rules, 1e-6, 0.1, &t, &t.all_rows()).unwrap();
    assert_eq!(
        rules.num_distinct_models(),
        1,
        "{} models",
        rules.num_distinct_models()
    );
    let rep2 = rules.evaluate(&t, &t.all_rows(), LocateStrategy::First);
    assert!(rep2.rmse < 1e-9);
}

#[test]
fn multivariate_translation_composes_delta_vectors() {
    use crr::core::inference::translation;
    use crr::models::LinearModel;
    use std::sync::Arc;

    let t = plane_table(100);
    let x1 = t.attr("x1").unwrap();
    let x2 = t.attr("x2").unwrap();
    let y = t.attr("y").unwrap();
    // Two planes with equal gradients, intercepts 1 and 31.
    let f1 = Arc::new(Model::Linear(LinearModel::new(vec![2.0, -0.5], 1.0)));
    let f2 = Arc::new(Model::Linear(LinearModel::new(vec![2.0, -0.5], 31.0)));
    let r1 = crr::core::Crr::new(
        vec![x1, x2],
        y,
        f1,
        0.1,
        Dnf::single(Conjunction::of(vec![Predicate::lt(x1, Value::Float(10.0))])),
    )
    .unwrap();
    let r2 = crr::core::Crr::new(
        vec![x1, x2],
        y,
        f2,
        0.1,
        Dnf::single(Conjunction::of(vec![Predicate::ge(x1, Value::Float(10.0))])),
    )
    .unwrap();
    let shared = translation(&r1, &r2, 1e-9).unwrap();
    let b = shared.condition().conjuncts()[1].builtin().unwrap();
    // Canonical witness: two-dimensional zero Δ, δ = 30.
    assert_eq!(b.delta_x, vec![0.0, 0.0]);
    assert!((b.delta_y - 30.0).abs() < 1e-12);
    // Pointwise agreement with f2 on the second regime.
    for row in 0..t.num_rows() {
        if r2.covers(&t, row) {
            assert_eq!(shared.predict(&t, row), r2.predict(&t, row));
        }
    }
}

#[test]
fn abalone_rings_from_two_features() {
    // rings ~ f(length, diameter) per sex — diameter is collinear-ish with
    // length in the generator, so this also exercises the ridge family's
    // robustness and the QR fallback.
    let ds = crr::datasets::abalone(&GenConfig {
        rows: 1_500,
        seed: 51,
    });
    let t = &ds.table;
    let length = t.attr("length").unwrap();
    let diameter = t.attr("diameter").unwrap();
    let sex = t.attr("sex").unwrap();
    let rings = t.attr("rings").unwrap();
    let rho = 3.0 * crr::datasets::abalone::NOISE + 0.3; // diameter noise widens the envelope

    for kind in [ModelKind::Linear, ModelKind::Ridge] {
        let space = PredicateGen::binary(16).generate(t, &[sex, length, diameter], rings, 0);
        let cfg = DiscoveryConfig::new(vec![length, diameter], rings, rho).with_kind(kind);
        let d = discover_via_session(t, &t.all_rows(), &cfg, &space);
        assert!(d.rules.uncovered(t, &t.all_rows()).is_empty(), "{kind:?}");
        let rep = d.rules.evaluate(t, &t.all_rows(), LocateStrategy::First);
        assert!(rep.rmse <= rho, "{kind:?}: rmse {}", rep.rmse);
    }
}

#[test]
fn serialization_roundtrips_multivariate_builtins() {
    let t = plane_table(200);
    let x1 = t.attr("x1").unwrap();
    let x2 = t.attr("x2").unwrap();
    let y = t.attr("y").unwrap();
    let space = PredicateGen::binary(15).generate(&t, &[x1, x2], y, 0);
    let cfg = DiscoveryConfig::new(vec![x1, x2], y, 0.1);
    let d = discover_via_session(&t, &t.all_rows(), &cfg, &space);
    let (rules, _) = compact_on_data(&d.rules, 1e-6, 0.1, &t, &t.all_rows()).unwrap();
    let back = crr::core::serialize::from_text(&crr::core::serialize::to_text(&rules)).unwrap();
    for row in (0..t.num_rows()).step_by(13) {
        assert_eq!(
            rules.predict(&t, row, LocateStrategy::First),
            back.predict(&t, row, LocateStrategy::First),
        );
    }
}
