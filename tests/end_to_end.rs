//! End-to-end integration tests spanning the whole workspace:
//! generator → predicate space → discovery → compaction → evaluation →
//! serialization → imputation.

// Test harness: panicking on malformed fixtures is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use crr::baselines::{evaluate_predictor, BaselinePredictor, RegTree, RegTreeConfig};
use crr::discovery::compact_on_data;
use crr::discovery::ShardedDiscovery;
use crr::impute::{impute_with_rules, mask_random};
use crr::prelude::*;

/// Single-shard discovery through the `DiscoverySession` front door,
/// pinned byte-identical to a one-shard sharded run in
/// `crr-discovery/tests/sharded_equivalence.rs`.
fn discover_via_session(
    table: &Table,
    rows: &RowSet,
    cfg: &DiscoveryConfig,
    space: &PredicateSpace,
) -> ShardedDiscovery {
    DiscoverySession::on(table)
        .rows(rows.clone())
        .predicates(space.clone())
        .config(cfg.clone())
        .run()
        .unwrap()
}

/// The full pipeline on the Tax dataset: per-state laws are discovered,
/// compacted into one rule per rate group, and the result imputes.
#[test]
fn tax_pipeline_discovers_rate_groups() {
    let ds = crr::datasets::tax(&GenConfig {
        rows: 4_000,
        seed: 21,
    });
    let table = &ds.table;
    let salary = table.attr("salary").unwrap();
    let state = table.attr("state").unwrap();
    let tax = table.attr("tax").unwrap();

    let space = PredicateGen::binary(8).generate(table, &[state, salary], tax, 0);
    let cfg = DiscoveryConfig::new(vec![salary], tax, 3.0 * crr::datasets::tax::NOISE);
    let found = discover_via_session(table, &table.all_rows(), &cfg, &space);
    assert!(found.rules.uncovered(table, &table.all_rows()).is_empty());

    let (rules, _) =
        compact_on_data(&found.rules, 1e-4, cfg.rho_max, table, &table.all_rows()).unwrap();
    // 20 states fall into 4 rate groups; compaction should get close to
    // one rule per group (allowing a little fragmentation).
    assert!(rules.len() <= 8, "{} rules after compaction", rules.len());
    let report = rules.evaluate(table, &table.all_rows(), LocateStrategy::First);
    assert!(report.rmse <= cfg.rho_max, "rmse {}", report.rmse);
    assert_eq!(report.covered, table.num_rows());

    // The IA rule family predicts the paper's φ₅ law: 0.04·salary − 230.
    let mut probe = Table::new(table.schema().clone());
    let mut row = vec![Value::Null; table.schema().len()];
    row[state.0] = Value::str("IA");
    row[salary.0] = Value::Float(100_000.0);
    probe.push_row(row).unwrap();
    let pred = rules.predict(&probe, 0, LocateStrategy::First).unwrap();
    assert!(
        (pred - (0.04 * 100_000.0 - 230.0)).abs() < 5.0,
        "IA prediction {pred}"
    );
}

/// Bird migration: models shared across years via built-in predicates,
/// and rules survive serialization round-trips.
#[test]
fn birdmap_pipeline_shares_models_across_years() {
    let ds = crr::datasets::birdmap(&GenConfig {
        rows: 6 * 2 * 365,
        seed: 22,
    });
    let table = &ds.table;
    let date = table.attr("date").unwrap();
    let bird = table.attr("bird").unwrap();
    let lat = table.attr("latitude").unwrap();

    let boundaries: Vec<(String, Vec<f64>)> = ds
        .expert_boundaries
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect();
    let space = PredicateGen::expert(boundaries).generate(table, &[bird, date], lat, 0);
    let rho = 2.5 * crr::datasets::birdmap::NOISE;
    let cfg = DiscoveryConfig::new(vec![date], lat, rho);
    let found = discover_via_session(table, &table.all_rows(), &cfg, &space);

    // Model sharing kicked in: strictly fewer distinct models than rules.
    assert!(found.stats.models_shared > 0);
    assert!(found.rules.num_distinct_models() < found.rules.len());

    let (rules, stats) =
        compact_on_data(&found.rules, 0.05, rho, table, &table.all_rows()).unwrap();
    assert!(stats.rules_out < stats.rules_in);
    // Some rule carries a non-identity builtin — a translated model.
    assert!(rules.rules().iter().any(Crr::uses_translation));

    // Serialization round-trip preserves predictions.
    let text = crr::core::serialize::to_text(&rules);
    let back = crr::core::serialize::from_text(&text).unwrap();
    for row in (0..table.num_rows()).step_by(101) {
        assert_eq!(
            rules.predict(table, row, LocateStrategy::First),
            back.predict(table, row, LocateStrategy::First),
            "row {row}"
        );
    }
}

/// Compacting an exported regression tree preserves RMSE while reducing
/// rules (the Figure 9/10 pipeline).
#[test]
fn tree_export_compaction_preserves_semantics() {
    let ds = crr::datasets::electricity(&GenConfig {
        rows: 3 * 1_440,
        seed: 23,
    });
    let table = &ds.table;
    let minute = table.attr("minute").unwrap();
    let power = table.attr("global_active_power").unwrap();
    let rows = table.all_rows();

    let tree = RegTree::fit(
        table,
        &rows,
        &[minute],
        &[minute],
        power,
        &RegTreeConfig::default(),
    )
    .unwrap();
    let exported = tree.to_ruleset().unwrap();
    assert_eq!(exported.len(), tree.num_rules());

    let rho = 3.0 * crr::datasets::electricity::NOISE;
    let (compacted, stats) = compact_on_data(&exported, 0.2, rho, table, &rows).unwrap();
    assert!(
        compacted.len() < exported.len(),
        "{} -> {}",
        stats.rules_in,
        stats.rules_out
    );

    let before = exported.evaluate(table, &rows, LocateStrategy::First);
    let after = compacted.evaluate(table, &rows, LocateStrategy::First);
    assert_eq!(before.covered, after.covered);
    assert!(
        (before.rmse - after.rmse).abs() <= rho,
        "rmse drifted: {} -> {}",
        before.rmse,
        after.rmse
    );
}

/// Imputation across the pipeline: discovery rules fill masked values to
/// within the noise bound, and compaction does not change the answers.
#[test]
fn imputation_recovers_masked_values() {
    let ds = crr::datasets::abalone(&GenConfig {
        rows: 2_000,
        seed: 24,
    });
    let mut table = ds.table.clone();
    let length = table.attr("length").unwrap();
    let sex = table.attr("sex").unwrap();
    let rings = table.attr("rings").unwrap();

    let rho = 3.0 * crr::datasets::abalone::NOISE;
    let space = PredicateGen::binary(16).generate(&table, &[sex, length], rings, 0);
    let cfg = DiscoveryConfig::new(vec![length], rings, rho);
    let found = discover_via_session(&table, &table.all_rows(), &cfg, &space);
    let (rules, _) = compact_on_data(&found.rules, 1e-4, rho, &table, &table.all_rows()).unwrap();

    let plan = mask_random(&mut table, rings, 0.15, 9);
    assert!(plan.len() > 100);
    let with_search = impute_with_rules(&table, &found.rules, &plan);
    let with_compacted = impute_with_rules(&table, &rules, &plan);
    assert_eq!(with_search.unanswered, 0);
    assert_eq!(with_compacted.unanswered, 0);
    // Both impute within the generator's noise envelope.
    assert!(with_search.rmse <= rho, "search rmse {}", with_search.rmse);
    assert!(
        with_compacted.rmse <= rho + 0.1,
        "compacted rmse {}",
        with_compacted.rmse
    );
}

/// CRR beats the unconditional model and matches the model tree on mixed
/// distributions — the headline comparison.
#[test]
fn crr_beats_rr_on_mixed_distribution() {
    let ds = crr::datasets::airquality(&GenConfig {
        rows: 2_000,
        seed: 25,
    });
    let table = &ds.table;
    let hour = table.attr("hour").unwrap();
    let no2 = table.attr("no2").unwrap();
    let rows = table.all_rows();
    let rho = 3.0 * crr::datasets::airquality::NOISE;

    // Resolution matters: regime segments are 4-6 hours long over a
    // 2000-hour domain, so the binary space needs ~1-2 hour spacing.
    let space = PredicateGen::binary(1023).generate(table, &[hour], no2, 0);
    let cfg = DiscoveryConfig::new(vec![hour], no2, rho);
    let found = discover_via_session(table, &rows, &cfg, &space);
    let crr_report = found.rules.evaluate(table, &rows, LocateStrategy::First);

    let rr = crr::baselines::Rr::fit(
        table,
        &rows,
        &[hour],
        no2,
        &FitConfig::new(ModelKind::Linear),
    )
    .unwrap();
    let rr_report = evaluate_predictor(&rr, table, &rows, no2);

    assert!(
        crr_report.rmse < rr_report.rmse / 3.0,
        "CRR {} vs RR {}",
        crr_report.rmse,
        rr_report.rmse
    );
    assert!(crr_report.rmse <= rho);
}

/// Facade prelude exposes a working API surface (compile-and-run check).
#[test]
fn prelude_supports_the_readme_workflow() {
    let schema = Schema::new(vec![("x", AttrType::Float), ("y", AttrType::Float)]);
    let mut t = Table::new(schema);
    for i in 0..50 {
        t.push_row(vec![Value::Float(i as f64), Value::Float(2.0 * i as f64)])
            .unwrap();
    }
    let x = t.attr("x").unwrap();
    let y = t.attr("y").unwrap();
    let space = PredicateGen::binary(7).generate(&t, &[x], y, 0);
    let cfg = DiscoveryConfig::new(vec![x], y, 0.5);
    let found = discover_via_session(&t, &t.all_rows(), &cfg, &space);
    let (rules, _) = compact(&found.rules, 1e-9).unwrap();
    assert_eq!(rules.len(), 1);
    let pred = rules.predict(&t, 10, LocateStrategy::First).unwrap();
    assert!((pred - 20.0).abs() < 1e-9, "pred {pred}");
}
