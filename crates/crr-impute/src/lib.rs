//! Missing-data imputation with CRRs — the paper's downstream case study
//! (§VI-E, Figure 10, and the motivation of imputing `t₆` in Table I).
//!
//! The workflow: mask a fraction of target cells ([`mask_random`]), impute
//! each masked cell by locating the CRR whose condition covers the tuple
//! and applying its (translated) model ([`impute_with_rules`]), then score
//! against the held-out originals. A compacted rule set answers the same
//! queries with fewer rules to scan — the time saving Figure 10 reports.
//!
//! # Example
//!
//! ```
//! use crr_datasets::{tax, GenConfig};
//! use crr_discovery::{DiscoveryConfig, DiscoverySession, PredicateGen};
//! use crr_impute::{mask_random, impute_with_rules};
//!
//! let ds = tax(&GenConfig { rows: 300, seed: 2 });
//! let mut table = ds.table.clone();
//! let salary = table.attr("salary").unwrap();
//! let state = table.attr("state").unwrap();
//! let target = table.attr("tax").unwrap();
//! let space = PredicateGen::binary(4).generate(&table, &[salary, state], target, 3);
//! let cfg = DiscoveryConfig::new(vec![salary], target, 5.0);
//! let rules = DiscoverySession::on(&table)
//!     .predicates(space)
//!     .config(cfg)
//!     .run()
//!     .unwrap()
//!     .rules;
//!
//! let plan = mask_random(&mut table, target, 0.1, 99);
//! let report = impute_with_rules(&table, &rules, &plan);
//! assert_eq!(report.imputed + report.unanswered, plan.len());
//! ```

#![deny(unsafe_code)]

use crr_baselines::BaselinePredictor;
use crr_core::{LocateStrategy, RuleSet};
use crr_data::{AttrId, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// The record of which cells were masked, with their original values.
#[derive(Debug, Clone)]
pub struct MaskPlan {
    /// The masked attribute.
    pub attr: AttrId,
    /// `(row, original value)` pairs.
    masked: Vec<(usize, f64)>,
}

impl MaskPlan {
    /// Number of masked cells.
    pub fn len(&self) -> usize {
        self.masked.len()
    }

    /// True when nothing was masked.
    pub fn is_empty(&self) -> bool {
        self.masked.is_empty()
    }

    /// The masked `(row, original)` pairs.
    pub fn masked(&self) -> &[(usize, f64)] {
        &self.masked
    }
}

/// Masks a random `frac` of `attr`'s present numeric cells in place,
/// remembering the originals for scoring. Deterministic per seed.
pub fn mask_random(table: &mut Table, attr: AttrId, frac: f64, seed: u64) -> MaskPlan {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut masked = Vec::new();
    for row in 0..table.num_rows() {
        if let Some(v) = table.value_f64(row, attr) {
            if rng.gen_bool(frac.clamp(0.0, 1.0)) {
                masked.push((row, v));
                table.set_null(row, attr);
            }
        }
    }
    MaskPlan { attr, masked }
}

/// Result of one imputation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ImputeReport {
    /// RMSE of imputed vs. held-out original values.
    pub rmse: f64,
    /// Mean absolute error.
    pub mae: f64,
    /// Cells the method imputed.
    pub imputed: usize,
    /// Cells no rule/model could answer.
    pub unanswered: usize,
    /// Wall-clock imputation time (rule locating + prediction).
    pub time: Duration,
}

fn finish(sse: f64, sae: f64, imputed: usize, unanswered: usize, start: Instant) -> ImputeReport {
    ImputeReport {
        rmse: if imputed > 0 {
            (sse / imputed as f64).sqrt()
        } else {
            0.0
        },
        mae: if imputed > 0 {
            sae / imputed as f64
        } else {
            0.0
        },
        imputed,
        unanswered,
        time: start.elapsed(),
    }
}

/// Imputes every masked cell with a CRR rule set (rule locating per tuple,
/// then the located rule's translated prediction).
pub fn impute_with_rules(table: &Table, rules: &RuleSet, plan: &MaskPlan) -> ImputeReport {
    let start = Instant::now();
    let mut sse = 0.0;
    let mut sae = 0.0;
    let mut imputed = 0usize;
    let mut unanswered = 0usize;
    for &(row, original) in &plan.masked {
        match rules.predict(table, row, LocateStrategy::First) {
            Some(pred) => {
                imputed += 1;
                let e = pred - original;
                sse += e * e;
                sae += e.abs();
            }
            None => unanswered += 1,
        }
    }
    finish(sse, sae, imputed, unanswered, start)
}

/// Imputes every masked cell with a fitted baseline predictor.
pub fn impute_with_baseline(
    table: &Table,
    predictor: &dyn BaselinePredictor,
    plan: &MaskPlan,
) -> ImputeReport {
    let start = Instant::now();
    let mut sse = 0.0;
    let mut sae = 0.0;
    let mut imputed = 0usize;
    let mut unanswered = 0usize;
    for &(row, original) in &plan.masked {
        match predictor.predict_row(table, row) {
            Some(pred) => {
                imputed += 1;
                let e = pred - original;
                sse += e * e;
                sae += e.abs();
            }
            None => unanswered += 1,
        }
    }
    finish(sse, sae, imputed, unanswered, start)
}

/// An imputed value with its rule-backed guarantee: if the tuple satisfies
/// the located rule (which discovery certified on the training data), the
/// true value lies in `[value − rho, value + rho]`.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalImputation {
    /// Point estimate `f(t.X + x) + y`.
    pub value: f64,
    /// The located rule's maximum bias ρ — half-width of the guarantee.
    pub rho: f64,
    /// Index of the located rule in the rule set.
    pub rule: usize,
}

impl IntervalImputation {
    /// The guaranteed interval `[value − rho, value + rho]`.
    pub fn interval(&self) -> (f64, f64) {
        (self.value - self.rho, self.value + self.rho)
    }

    /// Whether a later-observed true value is consistent with the rule.
    pub fn contains(&self, actual: f64) -> bool {
        let (lo, hi) = self.interval();
        (lo..=hi).contains(&actual)
    }
}

/// Interval imputation: unlike point imputation, carries each answer's
/// rule-backed error bound — CRRs are constraints, so the bound is a
/// certificate, not a confidence heuristic.
#[allow(clippy::expect_used)] // locate returned a reference into this very set
pub fn impute_interval(table: &Table, rules: &RuleSet, row: usize) -> Option<IntervalImputation> {
    let rule = rules.locate(table, row, LocateStrategy::First)?;
    let value = rule.predict(table, row)?;
    let idx = rules
        .rules()
        .iter()
        .position(|r| std::ptr::eq(r, rule))
        .expect("located rule is in the set");
    Some(IntervalImputation {
        value,
        rho: rule.rho(),
        rule: idx,
    })
}

/// Writes the rule-set imputations back into the table (the actual repair,
/// as for `t₆` in the paper's Table I). Returns how many cells were filled.
pub fn fill_missing(table: &mut Table, rules: &RuleSet, attr: AttrId) -> usize {
    let mut filled = 0usize;
    for row in 0..table.num_rows() {
        if table.value(row, attr).is_null() {
            if let Some(pred) = rules.predict(table, row, LocateStrategy::First) {
                table.set_value(row, attr, Value::Float(pred));
                filled += 1;
            }
        }
    }
    filled
}

#[cfg(test)]
mod tests {
    use super::*;
    use crr_core::{Conjunction, Crr, Dnf, Predicate};
    use crr_data::{AttrType, Schema};
    use crr_models::{LinearModel, Model};
    use std::sync::Arc;

    fn table() -> Table {
        let schema = Schema::new(vec![("x", AttrType::Float), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for i in 0..100 {
            let x = i as f64;
            let y = if x < 50.0 { 2.0 * x } else { 2.0 * x + 10.0 };
            t.push_row(vec![Value::Float(x), Value::Float(y)]).unwrap();
        }
        t
    }

    fn rules(t: &Table) -> RuleSet {
        let x = t.attr("x").unwrap();
        let y = t.attr("y").unwrap();
        let m = Arc::new(Model::Linear(LinearModel::new(vec![2.0], 0.0)));
        let lo = Crr::new(
            vec![x],
            y,
            Arc::clone(&m),
            0.0,
            Dnf::single(Conjunction::of(vec![Predicate::lt(x, Value::Float(50.0))])),
        )
        .unwrap();
        let hi = Crr::new(
            vec![x],
            y,
            m,
            0.0,
            Dnf::single(Conjunction::with_builtin(
                vec![Predicate::ge(x, Value::Float(50.0))],
                crr_models::Translation {
                    delta_x: vec![0.0],
                    delta_y: 10.0,
                },
            )),
        )
        .unwrap();
        RuleSet::from_rules(vec![lo, hi])
    }

    #[test]
    fn mask_is_deterministic_and_reversible_by_plan() {
        let mut t1 = table();
        let mut t2 = table();
        let y = t1.attr("y").unwrap();
        let p1 = mask_random(&mut t1, y, 0.2, 7);
        let p2 = mask_random(&mut t2, y, 0.2, 7);
        assert_eq!(p1.masked(), p2.masked());
        assert!(p1.len() > 5 && p1.len() < 40);
        assert_eq!(t1.null_count(), p1.len());
    }

    #[test]
    fn rule_imputation_recovers_exact_values() {
        let mut t = table();
        let y = t.attr("y").unwrap();
        let plan = mask_random(&mut t, y, 0.3, 13);
        let rules = rules(&t);
        let report = impute_with_rules(&t, &rules, &plan);
        assert_eq!(report.imputed, plan.len());
        assert_eq!(report.unanswered, 0);
        assert!(report.rmse < 1e-12, "rmse {}", report.rmse);
    }

    #[test]
    fn translated_rule_imputes_shifted_segment() {
        let mut t = table();
        let y = t.attr("y").unwrap();
        // Mask only high-segment rows: served by the translated rule.
        t.set_null(80, y);
        let plan = MaskPlan {
            attr: y,
            masked: vec![(80, 170.0)],
        };
        let report = impute_with_rules(&t, &rules(&t), &plan);
        assert_eq!(report.imputed, 1);
        assert!(report.rmse < 1e-12);
    }

    #[test]
    fn fill_missing_writes_back() {
        let mut t = table();
        let y = t.attr("y").unwrap();
        mask_random(&mut t, y, 0.2, 5);
        let nulls = t.null_count();
        assert!(nulls > 0);
        let rules = rules(&t);
        let filled = fill_missing(&mut t, &rules, y);
        assert_eq!(filled, nulls);
        assert_eq!(t.null_count(), 0);
        assert_eq!(t.value_f64(10, y), Some(20.0));
    }

    #[test]
    fn uncovered_cells_are_unanswered() {
        let mut t = table();
        let x = t.attr("x").unwrap();
        let y = t.attr("y").unwrap();
        let m = Arc::new(Model::Linear(LinearModel::new(vec![2.0], 0.0)));
        let only_low = RuleSet::from_rules(vec![Crr::new(
            vec![x],
            y,
            m,
            0.0,
            Dnf::single(Conjunction::of(vec![Predicate::lt(x, Value::Float(50.0))])),
        )
        .unwrap()]);
        t.set_null(80, y);
        let plan = MaskPlan {
            attr: y,
            masked: vec![(80, 170.0)],
        };
        let report = impute_with_rules(&t, &only_low, &plan);
        assert_eq!(report.unanswered, 1);
        assert_eq!(report.imputed, 0);
    }

    #[test]
    fn interval_imputation_certifies_the_truth() {
        let mut t = table();
        let y = t.attr("y").unwrap();
        let rules = rules(&t);
        // Mask a low-segment and a high-segment (translated-rule) cell.
        for (row, original) in [(10usize, 20.0f64), (80, 170.0)] {
            t.set_null(row, y);
            let imp = impute_interval(&t, &rules, row).unwrap();
            // Exact rules here: rho = 0 and the point estimate is the truth.
            assert_eq!(imp.rho, 0.0);
            assert!(imp.contains(original), "row {row}: {imp:?}");
            assert_eq!(imp.value, original);
        }
    }

    #[test]
    fn interval_widths_follow_rule_rho() {
        let t = table();
        let x = t.attr("x").unwrap();
        let y = t.attr("y").unwrap();
        let m = Arc::new(Model::Linear(LinearModel::new(vec![2.0], 0.0)));
        let loose =
            RuleSet::from_rules(vec![Crr::new(vec![x], y, m, 3.5, Dnf::tautology()).unwrap()]);
        let imp = impute_interval(&t, &loose, 5).unwrap();
        assert_eq!(imp.rho, 3.5);
        assert_eq!(imp.interval(), (10.0 - 3.5, 10.0 + 3.5));
        assert_eq!(imp.rule, 0);
        assert!(imp.contains(10.0) && !imp.contains(14.0));
    }

    #[test]
    fn interval_imputation_none_when_uncovered() {
        let t = table();
        let x = t.attr("x").unwrap();
        let y = t.attr("y").unwrap();
        let m = Arc::new(Model::Linear(LinearModel::new(vec![2.0], 0.0)));
        let partial = RuleSet::from_rules(vec![Crr::new(
            vec![x],
            y,
            m,
            0.0,
            Dnf::single(Conjunction::of(vec![Predicate::lt(x, Value::Float(10.0))])),
        )
        .unwrap()]);
        assert!(impute_interval(&t, &partial, 50).is_none());
    }

    #[test]
    fn zero_frac_masks_nothing() {
        let mut t = table();
        let y = t.attr("y").unwrap();
        let plan = mask_random(&mut t, y, 0.0, 1);
        assert!(plan.is_empty());
        assert_eq!(t.null_count(), 0);
    }
}
