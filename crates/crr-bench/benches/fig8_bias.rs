//! Criterion bench for Figure 8: discovery cost vs. the maximum bias
//! rho_M — smaller bias refines more conditions and costs more (full
//! sweep: `experiments -- fig8`).

// Bench harness: panicking on setup failure is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crr_bench::*;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_bias");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1500));
    let sc = birdmap_scenario(1_500, 8);
    let rows = sc.rows();
    for rho in [0.2f64, 0.5, 1.0, 5.0] {
        let opts = CrrOptions {
            rho_max: Some(rho),
            predicates_per_attr: 63,
            ..Default::default()
        };
        g.bench_with_input(
            BenchmarkId::new("CRR", format!("rho{rho}")),
            &rho,
            |b, _| b.iter(|| measure_crr(&sc, &rows, &opts)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
