//! Criterion bench for Figure 2: CRR discovery vs. the time-series
//! baselines on AirQuality instances (reduced sizes; the full sweep is
//! `experiments -- fig2`).

// Bench harness: panicking on setup failure is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crr_bench::*;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_airquality");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1500));
    for n in [500usize, 1_000, 2_000] {
        let sc = airquality_scenario(n, 2);
        let rows = sc.rows();
        let opts = CrrOptions {
            predicates_per_attr: 127,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::new("CRR", n), &n, |b, _| {
            b.iter(|| measure_crr(&sc, &rows, &opts))
        });
        for kind in [BaselineKind::RegTree, BaselineKind::Ar, BaselineKind::Dhr] {
            g.bench_with_input(BenchmarkId::new(format!("{kind:?}"), n), &n, |b, _| {
                b.iter(|| measure_baseline(&sc, &rows, kind))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
