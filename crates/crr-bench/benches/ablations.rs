//! Criterion ablation benches for the design choices DESIGN.md calls out:
//! model sharing, split criterion, and the interval rule index (full
//! comparison: `experiments -- ablation`).

// Bench harness: panicking on setup failure is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use crr_bench::*;
use crr_core::{LocateStrategy, RuleIndex};
use crr_discovery::SplitStrategy;

/// Single-shard discovery through the session front door.
fn discover(
    t: &crr_data::Table,
    rows: &crr_data::RowSet,
    cfg: &crr_discovery::DiscoveryConfig,
    space: &crr_discovery::PredicateSpace,
) -> crr_discovery::Result<crr_discovery::ShardedDiscovery> {
    crr_discovery::DiscoverySession::on(t)
        .rows(rows.clone())
        .predicates(space.clone())
        .config(cfg.clone())
        .run()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1500));
    let sc = birdmap_scenario(2_000, 40);
    let rows = sc.rows();

    for share in [true, false] {
        let opts = CrrOptions {
            share,
            predicates_per_attr: 63,
            ..Default::default()
        };
        g.bench_function(format!("discover_sharing_{share}"), |b| {
            b.iter(|| measure_crr(&sc, &rows, &opts))
        });
    }

    for (label, split) in [
        ("residual", SplitStrategy::BestResidual),
        ("variance", SplitStrategy::BestVariance),
        ("first", SplitStrategy::FirstApplicable),
    ] {
        let opts = CrrOptions {
            predicates_per_attr: 63,
            ..Default::default()
        };
        let (mut cfg, space) = crr_inputs(&sc, &opts);
        cfg.split = split;
        g.bench_function(format!("discover_split_{label}"), |b| {
            b.iter(|| discover(sc.table(), &rows, &cfg, &space).expect("discover"))
        });
    }

    let opts = CrrOptions {
        predicates_per_attr: 63,
        ..Default::default()
    };
    let (_, rules) = measure_crr(&sc, &rows, &opts);
    g.bench_function("locate_scan", |b| {
        b.iter(|| rules.evaluate(sc.table(), &rows, LocateStrategy::First))
    });
    let index = RuleIndex::build(&rules, sc.table());
    g.bench_function("locate_index", |b| {
        b.iter(|| index.evaluate(sc.table(), &rows))
    });
    g.bench_function("index_build", |b| {
        b.iter(|| RuleIndex::build(&rules, sc.table()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
