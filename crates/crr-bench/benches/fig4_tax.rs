//! Criterion bench for Figure 4: the relational comparison on Tax —
//! CRR vs. SampLR vs. MCLR vs. RegTree (reduced sizes; full sweep:
//! `experiments -- fig4`).

// Bench harness: panicking on setup failure is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crr_bench::*;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_tax");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1500));
    for n in [1_000usize, 3_000] {
        let sc = tax_scenario(n, 4);
        let rows = sc.rows();
        let opts = CrrOptions {
            predicates_per_attr: 15,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::new("CRR", n), &n, |b, _| {
            b.iter(|| measure_crr(&sc, &rows, &opts))
        });
        for kind in BaselineKind::RELATIONAL {
            g.bench_with_input(BenchmarkId::new(format!("{kind:?}"), n), &n, |b, _| {
                b.iter(|| measure_baseline(&sc, &rows, kind))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
