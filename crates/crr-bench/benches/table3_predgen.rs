//! Criterion bench for Table III: discovery cost under the three
//! predicate-generation strategies (full comparison:
//! `experiments -- table3`).

// Bench harness: panicking on setup failure is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use crr_bench::*;
use crr_discovery::PredicateGen;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_predgen");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1500));
    let sc = birdmap_scenario(1_500, 1);
    let rows = sc.rows();
    let generators = [
        ("expert", PredicateGen::expert(sc.expert_boundaries())),
        ("binary", PredicateGen::binary(64)),
        ("random", PredicateGen::random(64)),
    ];
    for (name, generator) in generators {
        let opts = CrrOptions {
            generator: Some(generator),
            predicates_per_attr: 64,
            ..Default::default()
        };
        g.bench_function(name, |b| b.iter(|| measure_crr(&sc, &rows, &opts)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
