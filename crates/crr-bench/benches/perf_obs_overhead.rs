//! Observability overhead bench: full discovery on electricity@11520 with
//! the no-op default [`MetricsSink`], with an enabled sink, and (as a
//! floor) a completely uninstrumented baseline does not exist anymore —
//! the disabled sink *is* the baseline, so the acceptance criterion is
//! `disabled ≈ enabled` within noise and, specifically, disabled-sink
//! discovery regressing < 2% against the tracked `BENCH_discovery.json`
//! numbers (same cell, same config).
//!
//! `cargo bench -p crr-bench --bench perf_obs_overhead`

// Bench harness: panicking on setup failure is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use crr_bench::{crr_inputs, electricity_scenario, CrrOptions};
use crr_discovery::MetricsSink;

/// Single-shard discovery through the session front door.
fn discover(
    t: &crr_data::Table,
    rows: &crr_data::RowSet,
    cfg: &crr_discovery::DiscoveryConfig,
    space: &crr_discovery::PredicateSpace,
) -> crr_discovery::Result<crr_discovery::ShardedDiscovery> {
    crr_discovery::DiscoverySession::on(t)
        .rows(rows.clone())
        .predicates(space.clone())
        .config(cfg.clone())
        .run()
}
use std::time::Duration;

fn bench_obs_overhead(c: &mut Criterion) {
    let sc = electricity_scenario(11_520, 42);
    let rows = sc.rows();
    let opts = CrrOptions {
        compact: false,
        predicates_per_attr: 255,
        ..Default::default()
    };
    let (cfg, space) = crr_inputs(&sc, &opts);

    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g.throughput(Throughput::Elements(rows.len() as u64));
    for (label, sink) in [
        ("disabled", MetricsSink::disabled()),
        ("enabled", MetricsSink::enabled()),
    ] {
        let cfg = cfg.clone().with_metrics(sink);
        g.bench_with_input(
            BenchmarkId::new("discovery/electricity", label),
            &label,
            |b, _| b.iter(|| discover(sc.table(), &rows, &cfg, &space).expect("discovery")),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
