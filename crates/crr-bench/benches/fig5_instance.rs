//! Criterion bench for Figure 5: CRR vs. unconditional RR per model
//! family on BirdMap (reduced sizes; full sweep: `experiments -- fig5`).

// Bench harness: panicking on setup failure is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crr_bench::*;
use crr_models::ModelKind;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_instance");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1500));
    let sc = birdmap_scenario(2_000, 5);
    for n in [500usize, 1_000, 2_000] {
        let rows = sc.instance(n);
        for kind in [ModelKind::Linear, ModelKind::Ridge] {
            let opts = CrrOptions {
                kind,
                predicates_per_attr: 63,
                ..Default::default()
            };
            g.bench_with_input(
                BenchmarkId::new(format!("CRR-{}", kind.label()), n),
                &n,
                |b, _| b.iter(|| measure_crr(&sc, &rows, &opts)),
            );
            g.bench_with_input(
                BenchmarkId::new(format!("RR-{}", kind.label()), n),
                &n,
                |b, _| b.iter(|| measure_rr(&sc, &rows, kind)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
