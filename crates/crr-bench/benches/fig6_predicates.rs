//! Criterion bench for Figure 6: discovery cost vs. predicate-space size
//! |P| (full sweep: `experiments -- fig6`).

// Bench harness: panicking on setup failure is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crr_bench::*;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_predicates");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1500));
    let sc = birdmap_scenario(1_500, 6);
    let rows = sc.rows();
    for per_attr in [8usize, 32, 128, 512] {
        let opts = CrrOptions {
            predicates_per_attr: per_attr,
            ..Default::default()
        };
        g.bench_with_input(
            BenchmarkId::new("CRR-F1", 2 * per_attr),
            &per_attr,
            |b, _| b.iter(|| measure_crr(&sc, &rows, &opts)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
