//! Criterion bench for Table IV: discovery cost under the three queue
//! orderings — Decrease should win by sharing models sooner (full
//! comparison: `experiments -- table4`).

// Bench harness: panicking on setup failure is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use crr_bench::*;
use crr_discovery::QueueOrder;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_ordering");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1500));
    let sc = birdmap_scenario(1_500, 1);
    let rows = sc.rows();
    for (name, order) in [
        ("decrease", QueueOrder::Decrease),
        ("increase", QueueOrder::Increase),
        ("random", QueueOrder::Random(7)),
    ] {
        let opts = CrrOptions {
            order,
            predicates_per_attr: 64,
            ..Default::default()
        };
        g.bench_function(name, |b| b.iter(|| measure_crr(&sc, &rows, &opts)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
