//! Tracked microbenchmarks for the sufficient-statistics fit engine:
//!
//! * end-to-end discovery, moments vs. row-rescan, on Electricity and Tax;
//! * the shared-pool probe (Proposition 6), row-major vs. columnar
//!   snapshot;
//! * a single partition fit, Gram-cache solve vs. materialize-and-rescan.
//!
//! `cargo bench -p crr-bench --bench perf_fit_engine`

// Bench harness: panicking on setup failure is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::type_complexity)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use crr_bench::{crr_inputs, electricity_scenario, tax_scenario, CrrOptions, Scenario};
use crr_data::NumericSnapshot;
use crr_discovery::{share_fit_rows, share_fit_snapshot, FitEngine};

/// Single-shard discovery through the session front door.
fn discover(
    t: &crr_data::Table,
    rows: &crr_data::RowSet,
    cfg: &crr_discovery::DiscoveryConfig,
    space: &crr_discovery::PredicateSpace,
) -> crr_discovery::Result<crr_discovery::ShardedDiscovery> {
    crr_discovery::DiscoverySession::on(t)
        .rows(rows.clone())
        .predicates(space.clone())
        .config(cfg.clone())
        .run()
}
use crr_models::{fit_model, try_fit_from_moments, FitConfig, ModelKind, Moments};
use std::time::Duration;

fn engine_label(engine: FitEngine) -> &'static str {
    match engine {
        FitEngine::Moments => "moments",
        FitEngine::Rescan => "rescan",
    }
}

fn bench_discovery(c: &mut Criterion) {
    let cells: [(&str, fn(usize, u64) -> Scenario, [usize; 3], usize); 2] = [
        (
            "electricity",
            electricity_scenario,
            [1_440, 2_880, 5_760],
            255,
        ),
        ("tax", tax_scenario, [1_250, 2_500, 5_000], 15),
    ];
    let mut g = c.benchmark_group("discovery");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(1500));
    for (name, make, sizes, per_attr) in cells {
        for n in sizes {
            let sc = make(n, 42);
            let rows = sc.rows();
            g.throughput(Throughput::Elements(rows.len() as u64));
            for engine in [FitEngine::Moments, FitEngine::Rescan] {
                let opts = CrrOptions {
                    engine,
                    compact: false,
                    predicates_per_attr: per_attr,
                    ..Default::default()
                };
                let (cfg, space) = crr_inputs(&sc, &opts);
                g.bench_with_input(
                    BenchmarkId::new(format!("{name}/{}", engine_label(engine)), n),
                    &n,
                    |b, _| b.iter(|| discover(sc.table(), &rows, &cfg, &space).expect("discovery")),
                );
            }
        }
    }
    g.finish();
}

/// One partition's worth of columnar data plus its row-major mirror.
struct Partition {
    snap: NumericSnapshot,
    fit: Vec<u32>,
    xs: Vec<Vec<f64>>,
    y: Vec<f64>,
    rho: f64,
}

fn partition(n: usize) -> Partition {
    let sc = electricity_scenario(n, 42);
    let snap =
        NumericSnapshot::build(sc.table(), &sc.inputs, sc.target, &sc.rows()).expect("snapshot");
    let fit = snap.ready_rows(&sc.rows());
    let mut xs = Vec::with_capacity(fit.len());
    let mut y = Vec::with_capacity(fit.len());
    for &r in &fit {
        let mut x = vec![0.0; sc.inputs.len()];
        snap.gather_x(r as usize, &mut x);
        xs.push(x);
        y.push(snap.target()[r as usize]);
    }
    Partition {
        snap,
        fit,
        xs,
        y,
        rho: sc.rho_max,
    }
}

fn bench_share_probe(c: &mut Criterion) {
    let p = partition(10_000);
    let model = fit_model(&p.xs, &p.y, &FitConfig::new(ModelKind::Linear)).expect("fit");
    let mut g = c.benchmark_group("share_probe");
    g.sample_size(30);
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_millis(1000));
    g.throughput(Throughput::Elements(p.fit.len() as u64));
    g.bench_function("rows", |b| {
        b.iter(|| share_fit_rows(&model, &p.xs, &p.y, p.rho))
    });
    g.bench_function("snapshot", |b| {
        b.iter(|| share_fit_snapshot(&model, &p.snap, &p.fit, p.rho))
    });
    g.finish();
}

fn bench_single_fit(c: &mut Criterion) {
    let p = partition(10_000);
    let cfg = FitConfig::new(ModelKind::Linear);
    let moments = Moments::from_rows(&p.xs, &p.y);
    let mut g = c.benchmark_group("single_fit");
    g.sample_size(30);
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_millis(1000));
    g.throughput(Throughput::Elements(p.fit.len() as u64));
    // The cached-statistics path: what a queue pop costs once the parent's
    // moments were split by sibling subtraction.
    g.bench_function("moments_solve", |b| {
        b.iter(|| try_fit_from_moments(&moments, &cfg).expect("solvable"))
    });
    // The rescan path: gather rows out of the snapshot, then solve the
    // normal equations from scratch.
    g.bench_function("materialize_and_fit", |b| {
        b.iter(|| {
            let mut xs = Vec::with_capacity(p.fit.len());
            let mut y = Vec::with_capacity(p.fit.len());
            for &r in &p.fit {
                let mut x = vec![0.0; p.snap.num_inputs()];
                p.snap.gather_x(r as usize, &mut x);
                xs.push(x);
                y.push(p.snap.target()[r as usize]);
            }
            fit_model(&xs, &y, &cfg).expect("fit")
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_discovery,
    bench_share_probe,
    bench_single_fit
);
criterion_main!(benches);
