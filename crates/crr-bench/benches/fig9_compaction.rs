//! Criterion bench for Figure 9: Algorithm 2's cost compacting an
//! exported regression tree vs. the tree fit itself (full comparison:
//! `experiments -- fig9`).

// Bench harness: panicking on setup failure is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use crr_baselines::{RegTree, RegTreeConfig};
use crr_bench::*;
use crr_discovery::compact_on_data;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_compaction");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1500));
    let sc = birdmap_scenario(2_000, 9);
    let rows = sc.rows();
    let tree = RegTree::fit(
        sc.table(),
        &rows,
        &sc.inputs,
        &sc.condition_attrs,
        sc.target,
        &RegTreeConfig::default(),
    )
    .expect("regtree");
    let tree_rules = tree.to_ruleset().expect("export");

    g.bench_function("regtree_fit", |b| {
        b.iter(|| {
            RegTree::fit(
                sc.table(),
                &rows,
                &sc.inputs,
                &sc.condition_attrs,
                sc.target,
                &RegTreeConfig::default(),
            )
            .expect("regtree")
        })
    });
    g.bench_function("tree_export", |b| {
        b.iter(|| tree.to_ruleset().expect("export"))
    });
    g.bench_function("algorithm2_compact", |b| {
        b.iter(|| {
            compact_on_data(&tree_rules, 0.2, sc.rho_max, sc.table(), &rows).expect("compaction")
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
