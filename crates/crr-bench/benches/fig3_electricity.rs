//! Criterion bench for Figure 3: instance scalability on Electricity —
//! discovery cost as the minute-level series grows (reduced sizes; full
//! sweep: `experiments -- fig3`).

// Bench harness: panicking on setup failure is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use crr_bench::*;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_electricity");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1500));
    for n in [1_440usize, 2_880, 5_760] {
        let sc = electricity_scenario(n, 3);
        let rows = sc.rows();
        g.throughput(Throughput::Elements(n as u64));
        let opts = CrrOptions {
            predicates_per_attr: 255,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::new("CRR", n), &n, |b, _| {
            b.iter(|| measure_crr(&sc, &rows, &opts))
        });
        g.bench_with_input(BenchmarkId::new("Forest", n), &n, |b, _| {
            b.iter(|| measure_baseline(&sc, &rows, BaselineKind::Forest))
        });
        g.bench_with_input(BenchmarkId::new("Recur", n), &n, |b, _| {
            b.iter(|| measure_baseline(&sc, &rows, BaselineKind::Recur))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
