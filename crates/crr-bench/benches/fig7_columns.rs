//! Criterion bench for Figure 7: multi-target discovery cost vs. number
//! of target columns (full sweep: `experiments -- fig7`).

// Bench harness: panicking on setup failure is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crr_bench::*;
use crr_discovery::{DiscoveryConfig, DiscoverySession, PredicateGen, Task};

fn discover_all(
    table: &crr_data::Table,
    rows: &crr_data::RowSet,
    tasks: &[Task],
    threads: usize,
) -> Vec<crr_discovery::Result<crr_discovery::Discovery>> {
    DiscoverySession::on(table)
        .rows(rows.clone())
        .run_all(tasks, threads)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_columns");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1500));
    let sc = airquality_scenario(1_000, 7);
    let table = sc.table();
    let hour = sc.time_attr;
    let sensors = ["no2", "co", "o3", "pm25"];
    for k in [1usize, 2, 4] {
        let tasks: Vec<Task> = sensors[..k]
            .iter()
            .map(|name| {
                let target = table.attr(name).unwrap();
                Task {
                    config: DiscoveryConfig::new(vec![hour], target, sc.rho_max),
                    space: PredicateGen::binary(127).generate(table, &[hour], target, 11),
                }
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("sequential", k), &k, |b, _| {
            b.iter(|| discover_all(table, &sc.rows(), &tasks, 1))
        });
        g.bench_with_input(BenchmarkId::new("parallel4", k), &k, |b, _| {
            b.iter(|| discover_all(table, &sc.rows(), &tasks, 4))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
