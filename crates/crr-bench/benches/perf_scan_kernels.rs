//! Tracked microbenchmarks for the columnar scan kernels:
//!
//! * predicate selection over Electricity, interpreted row-at-a-time
//!   `Predicate::eval` vs. the compiled `CompiledConjunction` kernel;
//! * Gram/moments accumulation over the fit-ready rows, per-row
//!   `gather_x` + `add_row` vs. the batched column-major `add_rows`.
//!
//! `cargo bench -p crr-bench --bench perf_scan_kernels`

// Bench harness: panicking on setup failure is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::type_complexity)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use crr_bench::{crr_inputs, electricity_scenario, CrrOptions, Scenario};
use crr_core::CompiledConjunction;
use crr_data::NumericSnapshot;
use crr_models::Moments;
use std::time::Duration;

fn scenario(n: usize) -> (Scenario, crr_discovery::PredicateSpace) {
    let sc = electricity_scenario(n, 42);
    let opts = CrrOptions {
        predicates_per_attr: 255,
        ..Default::default()
    };
    let (_, space) = crr_inputs(&sc, &opts);
    (sc, space)
}

fn bench_predicate_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("predicate_scan");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(1500));
    for n in [2_880, 11_520] {
        let (sc, space) = scenario(n);
        let table = sc.table();
        let rows = sc.rows();
        let preds = space.predicates();
        g.throughput(Throughput::Elements((rows.len() * preds.len()) as u64));
        g.bench_with_input(BenchmarkId::new("interpreted", n), &n, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for p in preds {
                    hits += rows.iter().filter(|&r| p.eval(table, r)).count();
                }
                hits
            })
        });
        g.bench_with_input(BenchmarkId::new("compiled", n), &n, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for p in preds {
                    hits += CompiledConjunction::from_preds(std::slice::from_ref(p), table)
                        .count(rows.as_slice());
                }
                hits
            })
        });
    }
    g.finish();
}

fn bench_gram_accumulate(c: &mut Criterion) {
    let mut g = c.benchmark_group("gram_accumulate");
    g.sample_size(20);
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_millis(1000));
    for n in [2_880, 11_520] {
        let (sc, _) = scenario(n);
        let snap = NumericSnapshot::build(sc.table(), &sc.inputs, sc.target, &sc.rows())
            .expect("snapshot");
        let fit = snap.ready_rows(&sc.rows());
        let d = snap.num_inputs();
        let cols: Vec<&[f64]> = (0..d).map(|j| snap.input(j)).collect();
        g.throughput(Throughput::Elements(fit.len() as u64));
        g.bench_with_input(BenchmarkId::new("per_row", n), &n, |b, _| {
            b.iter(|| {
                let mut m = Moments::zeros(d);
                let mut x = vec![0.0; d];
                for &r in &fit {
                    snap.gather_x(r as usize, &mut x);
                    m.add_row(&x, snap.target()[r as usize]);
                }
                m
            })
        });
        g.bench_with_input(BenchmarkId::new("batched", n), &n, |b, _| {
            b.iter(|| {
                let mut m = Moments::zeros(d);
                m.add_rows(&cols, snap.target(), &fit);
                m
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_predicate_scan, bench_gram_accumulate);
criterion_main!(benches);
