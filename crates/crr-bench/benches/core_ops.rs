//! Micro-benchmarks of the operations that dominate discovery: predicate
//! evaluation/selection, model fitting, rule locating, and the inference
//! rules themselves. Not tied to a paper figure — these guard the hot
//! paths the figure benches sit on.

// Bench harness: panicking on setup failure is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use crr_bench::*;
use crr_core::inference::{fusion, translation};
use crr_core::{Conjunction, Crr, Dnf, LocateStrategy, Predicate};
use crr_data::Value;
use crr_models::{fit_model, FitConfig, LinearModel, Model, ModelKind};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let mut c = c.benchmark_group("core_ops");
    c.sample_size(10);
    c.warm_up_time(std::time::Duration::from_millis(300));
    c.measurement_time(std::time::Duration::from_millis(1500));
    let sc = birdmap_scenario(10_000, 3);
    let table = sc.table();
    let rows = sc.rows();
    let date = sc.time_attr;

    // Predicate selection over 10k rows.
    let pred = Predicate::le(date, Value::Int(800));
    c.bench_function("predicate_select_10k", |b| {
        b.iter(|| Conjunction::of(vec![pred.clone()]).select(table, &rows))
    });

    // Linear fit on 1k points.
    let xs: Vec<Vec<f64>> = (0..1_000).map(|i| vec![i as f64]).collect();
    let y: Vec<f64> = xs.iter().map(|x| 1.5 * x[0] + 2.0).collect();
    let cfg = FitConfig::new(ModelKind::Linear);
    c.bench_function("linear_fit_1k", |b| {
        b.iter(|| fit_model(&xs, &y, &cfg).unwrap())
    });

    // Ridge fit on the same data.
    let ridge_cfg = FitConfig::new(ModelKind::Ridge);
    c.bench_function("ridge_fit_1k", |b| {
        b.iter(|| fit_model(&xs, &y, &ridge_cfg).unwrap())
    });

    // Rule locating: a compacted rule set answering 10k predictions.
    let opts = CrrOptions {
        predicates_per_attr: 63,
        ..Default::default()
    };
    let (_, rules) = measure_crr(&sc, &rows, &opts);
    c.bench_function("ruleset_evaluate_10k", |b| {
        b.iter(|| rules.evaluate(table, &rows, LocateStrategy::First))
    });

    // Inference rules on synthetic rule pairs.
    let lat = sc.target;
    let mk = |w: f64, b: f64, lo: i64| {
        let m = Arc::new(Model::Linear(LinearModel::new(vec![w], b)));
        Crr::new(
            vec![date],
            lat,
            m,
            0.5,
            Dnf::single(Conjunction::of(vec![Predicate::ge(date, Value::Int(lo))])),
        )
        .unwrap()
    };
    let r1 = mk(1.0, 0.0, 0);
    let r2 = mk(1.0, -50.0, 365);
    c.bench_function("inference_translation", |b| {
        b.iter_batched(
            || (r1.clone(), r2.clone()),
            |(a, bb)| translation(&a, &bb, 1e-9).unwrap(),
            BatchSize::SmallInput,
        )
    });
    let r3 = r1.with_model(Arc::clone(r1.model()), 0.5);
    c.bench_function("inference_fusion", |b| {
        b.iter_batched(
            || (r1.clone(), r3.clone()),
            |(a, bb)| fusion(&a, &bb).unwrap(),
            BatchSize::SmallInput,
        )
    });
    c.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
