//! Criterion bench for Figure 10: imputation throughput with compacted
//! vs. uncompacted rule sets — the downstream win of fewer rules (full
//! comparison: `experiments -- fig10`).

// Bench harness: panicking on setup failure is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use crr_baselines::{RegTree, RegTreeConfig};
use crr_bench::*;
use crr_discovery::compact_on_data;
use crr_impute::{impute_with_rules, mask_random};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_imputation");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1500));
    let sc = birdmap_scenario(3_000, 10);
    let rows = sc.rows();
    let tree = RegTree::fit(
        sc.table(),
        &rows,
        &sc.inputs,
        &sc.condition_attrs,
        sc.target,
        &RegTreeConfig::default(),
    )
    .expect("regtree");
    let uncompacted = tree.to_ruleset().expect("export");
    let (compacted, _) =
        compact_on_data(&uncompacted, 0.2, sc.rho_max, sc.table(), &rows).expect("compact");

    let mut masked = sc.table().clone();
    let plan = mask_random(&mut masked, sc.target, 0.1, 10);
    g.bench_function(
        format!("impute_uncompacted_{}rules", uncompacted.len()),
        |b| b.iter(|| impute_with_rules(&masked, &uncompacted, &plan)),
    );
    g.bench_function(format!("impute_compacted_{}rules", compacted.len()), |b| {
        b.iter(|| impute_with_rules(&masked, &compacted, &plan))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
