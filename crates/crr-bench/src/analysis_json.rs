//! The `analysis.json` artifact: static verification reports from
//! `crr-analyze`, written by `experiments -- analyze` and re-validated by
//! `--check-analysis` so a drifted emitter — or an artifact with an
//! `unsound` finding — fails CI, not a reader.
//!
//! Like [`crate::metrics_json`], rendering and parsing ride on the
//! hand-rolled JSON layer in [`crr_obs::json`] — no serde. The layout is
//! documented in `EXPERIMENTS.md`, section "Benchmark artifact schemas".

use crr_analyze::AnalysisReport;
use crr_obs::json::{esc, parse, Json};
use std::fmt::Write as _;

/// Schema tag stamped into the file; bump when the layout changes.
/// `v2` added the A6/A7 check labels and the `absdom_transfers` /
/// `compile_equiv_checks` / `repair_regions` counters, plus the `repair`
/// source for artifacts coming out of a stream repair.
pub const SCHEMA: &str = "crr-analysis-v2";

/// Severity labels the validator accepts, worst first.
pub const SEVERITIES: [&str; 3] = ["unsound", "redundant", "hygiene"];

/// Check labels the validator accepts.
pub const CHECKS: [&str; 7] = [
    "satisfiability",
    "subsumption",
    "guard-soundness",
    "inference-audit",
    "rho-monotonicity",
    "compile-equivalence",
    "repair-obligations",
];

/// One analyzed artifact and its verification report.
#[derive(Debug, Clone)]
pub struct AnalysisRun {
    /// Dataset label (`electricity`, `tax`).
    pub dataset: String,
    /// Instance size |I| the rules were discovered on.
    pub rows: usize,
    /// `single` for an unsharded run (no guard obligations), `sharded`
    /// for a multi-shard run verified against its
    /// [`crr_discovery::ProofObligations`], `repair` for a stream-repaired
    /// artifact audited against its [`crr_discovery::RepairObligations`].
    pub source: String,
    /// The analyzer's report.
    pub report: AnalysisReport,
}

/// Renders the runs as pretty-printed JSON with a stable key order.
pub fn render(runs: &[AnalysisRun]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"dataset\": \"{}\",", esc(&r.dataset));
        let _ = writeln!(out, "      \"rows\": {},", r.rows);
        let _ = writeln!(out, "      \"source\": \"{}\",", esc(&r.source));
        let _ = writeln!(out, "      \"rules\": {},", r.report.rules);
        let _ = writeln!(out, "      \"conjuncts\": {},", r.report.conjuncts);
        let _ = writeln!(out, "      \"shards\": {},", r.report.shards);
        let _ = writeln!(out, "      \"counters\": {},", r.report.counters.to_json(6));
        let _ = writeln!(out, "      \"findings\": [");
        for (k, f) in r.report.findings.iter().enumerate() {
            let _ = write!(
                out,
                "        {{\"check\": \"{}\", \"severity\": \"{}\"",
                f.check.label(),
                f.severity.label()
            );
            if let Some(rule) = f.rule {
                let _ = write!(out, ", \"rule\": {rule}");
            }
            if let Some(shard) = f.shard {
                let _ = write!(out, ", \"shard\": {shard}");
            }
            let comma = if k + 1 < r.report.findings.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(out, ", \"message\": \"{}\"}}{comma}", esc(&f.message));
        }
        let _ = writeln!(out, "      ],");
        let s = r.report.summary();
        let _ = writeln!(
            out,
            "      \"summary\": {{\"unsound\": {}, \"redundant\": {}, \"hygiene\": {}}}",
            s.unsound, s.redundant, s.hygiene
        );
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn uint(obj: &Json, key: &str, ctx: &str) -> Result<u64, String> {
    let v = obj
        .get(key)
        .ok_or_else(|| format!("{ctx}: missing '{key}'"))?
        .as_num()
        .ok_or_else(|| format!("{ctx}: '{key}' is not a number"))?;
    if !v.is_finite() || v < 0.0 || v.fract() != 0.0 {
        return Err(format!(
            "{ctx}: '{key}' is not a non-negative integer ({v})"
        ));
    }
    Ok(v as u64)
}

/// Validates an `analysis.json` document. On success, returns a one-line
/// summary; on failure, a message naming the first violation.
///
/// Beyond shape (schema tag, non-empty `runs`, known `source` / check /
/// severity labels), this enforces:
///
/// * **the soundness gate** — no finding anywhere carries severity
///   `unsound`; an artifact that fails its own static verification never
///   passes CI;
/// * the per-severity `summary` tallies equal the findings actually
///   listed, and the analyzer's `counters.findings_*` agree with both;
/// * `counters.rules` / `counters.conjuncts` equal the run's `rules` /
///   `conjuncts`, every rule's conjuncts were satisfiability-checked
///   (`counters.unsat_checks ≥ conjuncts`), and every conjunct went
///   through the A6 compile-equivalence comparison
///   (`counters.compile_equiv_checks == conjuncts`);
/// * a `sharded` run verified at least two shard guards, a `single` run
///   none; a `repair` run audited at least one repair region
///   (`counters.repair_regions ≥ 1`) while `single` / `sharded` runs
///   audited none.
pub fn validate(text: &str) -> Result<String, String> {
    let doc = parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("document: missing 'schema'")?;
    if schema != SCHEMA {
        return Err(format!("unexpected schema '{schema}' (want '{SCHEMA}')"));
    }
    let runs = doc
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or("document: 'runs' missing or not an array")?;
    if runs.is_empty() {
        return Err("'runs' is empty".to_string());
    }
    let mut total_findings = 0u64;
    for (i, r) in runs.iter().enumerate() {
        let ctx = format!("runs[{i}]");
        r.get("dataset")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{ctx}: missing 'dataset'"))?;
        let source = r
            .get("source")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{ctx}: missing 'source'"))?;
        if source != "single" && source != "sharded" && source != "repair" {
            return Err(format!("{ctx}: unknown source '{source}'"));
        }
        let rules = uint(r, "rules", &ctx)?;
        let conjuncts = uint(r, "conjuncts", &ctx)?;
        let shards = uint(r, "shards", &ctx)?;
        if rules == 0 {
            return Err(format!("{ctx}: analyzed an empty rule set"));
        }
        match source {
            "sharded" if shards < 2 => {
                return Err(format!(
                    "{ctx}: sharded run verified only {shards} shard guard(s)"
                ));
            }
            "single" | "repair" if shards != 0 => {
                return Err(format!(
                    "{ctx}: {source} run claims {shards} shard guard(s)"
                ));
            }
            _ => {}
        }
        let counters = r
            .get("counters")
            .ok_or_else(|| format!("{ctx}: missing 'counters'"))?;
        if uint(counters, "rules", &ctx)? != rules {
            return Err(format!("{ctx}: counters.rules disagrees with rules"));
        }
        if uint(counters, "conjuncts", &ctx)? != conjuncts {
            return Err(format!(
                "{ctx}: counters.conjuncts disagrees with conjuncts"
            ));
        }
        if uint(counters, "unsat_checks", &ctx)? < conjuncts {
            return Err(format!(
                "{ctx}: not every conjunct was satisfiability-checked"
            ));
        }
        if uint(counters, "compile_equiv_checks", &ctx)? != conjuncts {
            return Err(format!(
                "{ctx}: not every conjunct went through the compile-equivalence check"
            ));
        }
        let repair_regions = uint(counters, "repair_regions", &ctx)?;
        match source {
            "repair" if repair_regions == 0 => {
                return Err(format!("{ctx}: repair run audited no repair regions"));
            }
            "single" | "sharded" if repair_regions != 0 => {
                return Err(format!(
                    "{ctx}: {source} run claims {repair_regions} repair region(s)"
                ));
            }
            _ => {}
        }
        let findings = r
            .get("findings")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{ctx}: 'findings' missing or not an array"))?;
        let mut tally = [0u64; 3]; // unsound, redundant, hygiene
        for (k, f) in findings.iter().enumerate() {
            let fctx = format!("{ctx}.findings[{k}]");
            let check = f
                .get("check")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{fctx}: missing 'check'"))?;
            if !CHECKS.contains(&check) {
                return Err(format!("{fctx}: unknown check '{check}'"));
            }
            let severity = f
                .get("severity")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{fctx}: missing 'severity'"))?;
            let Some(si) = SEVERITIES.iter().position(|&s| s == severity) else {
                return Err(format!("{fctx}: unknown severity '{severity}'"));
            };
            tally[si] += 1;
            let msg = f
                .get("message")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{fctx}: missing 'message'"))?;
            if severity == "unsound" {
                return Err(format!(
                    "{fctx}: UNSOUND ({check}): {msg} — the artifact fails its own \
                     static verification"
                ));
            }
        }
        let summary = r
            .get("summary")
            .ok_or_else(|| format!("{ctx}: missing 'summary'"))?;
        for (si, name) in SEVERITIES.iter().enumerate() {
            if uint(summary, name, &ctx)? != tally[si] {
                return Err(format!(
                    "{ctx}: summary.{name} disagrees with the findings listed"
                ));
            }
            let counter_key = format!("findings_{name}");
            if uint(counters, &counter_key, &ctx)? != tally[si] {
                return Err(format!(
                    "{ctx}: counters.{counter_key} disagrees with the findings listed"
                ));
            }
        }
        total_findings += tally.iter().sum::<u64>();
    }
    Ok(format!(
        "ok: {} run(s), 0 unsound, {total_findings} non-blocking finding(s)",
        runs.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crr_analyze::analyze_artifact;
    use crr_core::{Conjunction, Crr, Dnf, Predicate, RuleSet};
    use crr_data::{AttrId, AttrType, Schema, Value};
    use crr_discovery::{RegionOrigin, RepairObligations, RepairRegion, RuleSetArtifact};
    use crr_models::{ConstantModel, Model};
    use std::sync::Arc;

    fn interval_rule(lo: f64, hi: f64, rho: f64) -> Crr {
        let x = AttrId(0);
        let c = Conjunction::of(vec![
            Predicate::ge(x, Value::Float(lo)),
            Predicate::lt(x, Value::Float(hi)),
        ]);
        Crr::new(
            vec![x],
            AttrId(1),
            Arc::new(Model::Constant(ConstantModel::new(1.0, 1))),
            rho,
            Dnf::single(c),
        )
        .expect("rule")
    }

    fn artifact_of(rules: RuleSet) -> RuleSetArtifact {
        let schema = Schema::new(vec![("x", AttrType::Float), ("y", AttrType::Float)]);
        RuleSetArtifact::new(schema, rules, None).expect("artifact")
    }

    fn sample() -> Vec<AnalysisRun> {
        let mut clean = RuleSet::new();
        clean.push(interval_rule(0.0, 10.0, 0.5));
        clean.push(interval_rule(10.0, 20.0, 0.5));
        let mut redundant = RuleSet::new();
        redundant.push(interval_rule(2.0, 4.0, 0.5));
        redundant.push(interval_rule(0.0, 10.0, 0.5));
        // A confined repair: one kept rule, one repaired rule whose
        // conjunct matches the claimed region's guard.
        let mut repaired = RuleSet::new();
        repaired.push(interval_rule(0.0, 10.0, 0.5));
        repaired.push(interval_rule(10.0, 20.0, 0.4));
        let x = AttrId(0);
        let repaired_artifact = artifact_of(repaired)
            .with_repair(RepairObligations {
                kept: 1,
                regions: vec![RepairRegion {
                    region_id: 0,
                    origin: RegionOrigin::Drifted {
                        rule: 1,
                        conjunct: 0,
                    },
                    guards: vec![
                        Predicate::ge(x, Value::Float(10.0)),
                        Predicate::lt(x, Value::Float(20.0)),
                    ],
                }],
            })
            .expect("repair obligations");
        vec![
            AnalysisRun {
                dataset: "electricity".into(),
                rows: 2880,
                source: "single".into(),
                report: analyze_artifact(&artifact_of(clean)),
            },
            AnalysisRun {
                dataset: "tax".into(),
                rows: 2500,
                source: "single".into(),
                report: analyze_artifact(&artifact_of(redundant)),
            },
            AnalysisRun {
                dataset: "electricity".into(),
                rows: 3168,
                source: "repair".into(),
                report: analyze_artifact(&repaired_artifact),
            },
        ]
    }

    #[test]
    fn render_round_trips_through_validate() {
        let summary = validate(&render(&sample())).expect("valid");
        assert!(summary.contains("3 run(s)"), "{summary}");
        assert!(summary.contains("0 unsound"), "{summary}");
        assert!(summary.contains("1 non-blocking"), "{summary}");
    }

    #[test]
    fn repair_runs_must_audit_regions() {
        let mut runs = sample();
        runs[0].source = "repair".into(); // but counters.repair_regions == 0
        let err = validate(&render(&runs)).expect_err("must fail");
        assert!(err.contains("repair region"), "{err}");
        // And the converse: a repair report mislabeled as single.
        let mut runs = sample();
        runs[2].source = "single".into();
        let err = validate(&render(&runs)).expect_err("must fail");
        assert!(err.contains("repair region"), "{err}");
    }

    #[test]
    fn unsound_findings_fail_the_gate() {
        let mut runs = sample();
        // Tamper a rule into a non-finite ρ after construction, the way a
        // drifted serializer would.
        let mut bad = RuleSet::new();
        bad.push(interval_rule(0.0, 10.0, 0.5));
        let report = {
            let mut tampered = bad.clone();
            tampered.rules_mut()[0] = tampered.rules_mut()[0].with_model(
                Arc::new(Model::Constant(ConstantModel::new(1.0, 1))),
                f64::NAN,
            );
            analyze_artifact(&artifact_of(tampered))
        };
        assert!(!report.is_sound());
        runs[0].report = report;
        let err = validate(&render(&runs)).expect_err("must fail");
        assert!(err.contains("UNSOUND"), "{err}");
    }

    #[test]
    fn tally_drift_is_rejected() {
        let mut runs = sample();
        // Drop a finding but keep the counters: summary and counters now
        // both disagree with the list.
        runs[1].report.findings.clear();
        let err = validate(&render(&runs)).expect_err("must fail");
        assert!(err.contains("disagrees"), "{err}");
    }

    #[test]
    fn sharded_runs_must_carry_shard_guards() {
        let mut runs = sample();
        runs[0].source = "sharded".into(); // but report.shards == 0
        let err = validate(&render(&runs)).expect_err("must fail");
        assert!(err.contains("shard guard"), "{err}");
    }

    #[test]
    fn empty_or_mislabeled_documents_are_rejected() {
        assert!(validate("{}").is_err());
        assert!(validate("{\"schema\": \"crr-analysis-v2\", \"runs\": []}").is_err());
        // The previous schema generation is refused, not silently accepted.
        assert!(validate("{\"schema\": \"crr-analysis-v1\", \"runs\": [1]}").is_err());
        assert!(validate("{\"schema\": \"other\", \"runs\": [1]}").is_err());
    }
}
