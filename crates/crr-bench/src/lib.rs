//! Shared experiment plumbing for the paper-reproduction harness.
//!
//! Each figure/table runner (see `src/bin/experiments.rs`) combines three
//! ingredients defined here:
//!
//! * [`Scenario`] — a dataset instance with its attribute roles resolved
//!   (time axis, features `X`, target `Y`, stratification/condition
//!   attributes, expert boundaries, noise-derived `ρ_M`);
//! * `measure_*` functions — run one method (CRR or a baseline) and report
//!   the four quantities every panel of Figures 2–4 plots: **learning
//!   time**, **evaluation time**, **#rules** and **RMSE**;
//! * table formatting for paper-style console output.
//!
//! Four submodules emit the machine-readable artifacts the tracked
//! benchmark writes and CI re-validates: [`bench_json`]
//! (`BENCH_discovery.json` — engine timings), [`metrics_json`]
//! (`metrics.json` — observability snapshots from `crr_obs`-instrumented
//! runs, including a fault-injection harness cell), [`analysis_json`]
//! (`analysis.json` — `crr-analyze` static-verifier reports over the
//! discovered artifacts, gated on zero `unsound` findings), [`serving_json`]
//! (`BENCH_serving.json` — live `crr-serve` latency/throughput cells plus
//! the hot-swap admission-gate cell) and [`stream_json`]
//! (`BENCH_stream.json` — incremental maintenance via `crr-stream` against
//! full rediscovery on appended slices, gated on the speedup floor). All
//! schemas are documented in `EXPERIMENTS.md`, section "Benchmark
//! artifact schemas".

#![deny(unsafe_code)]
// Bench/experiment harness: panicking on setup failure is the failure mode
// we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use crr_baselines::{
    evaluate_predictor, Ar, ArConfig, BaselinePredictor, Dhr, DhrConfig, Forest, ForestConfig,
    Mclr, MclrConfig, Recur, RecurConfig, RegTree, RegTreeConfig, Rr, SampLr, SampLrConfig,
};
use crr_core::{RuleIndex, RuleSet};
use crr_data::{AttrId, RowSet, Table};
use crr_datasets::{abalone, airquality, birdmap, electricity, tax, Dataset, GenConfig};
use crr_discovery::{
    compact_on_data, Budget, DiscoveryConfig, DiscoverySession, FitEngine, PredicateGen,
    PredicateSpace, QueueOrder,
};
use crr_models::{FitConfig, ModelKind};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

pub mod analysis_json;
pub mod bench_json;
pub mod metrics_json;
pub mod serving_json;
pub mod stream_json;

/// Process-wide discovery budget, set once from the CLI
/// (`--time-budget`/`--max-fits`) and applied to every scenario a runner
/// builds through [`crr_inputs`]. `None` (the default) means unlimited.
static GLOBAL_BUDGET: OnceLock<Budget> = OnceLock::new();

/// Installs the process-wide discovery budget. Later calls lose the race
/// and return `false` (the budget is deliberately write-once so runners
/// cannot disagree mid-process).
pub fn set_global_budget(budget: Budget) -> bool {
    GLOBAL_BUDGET.set(budget).is_ok()
}

/// The process-wide discovery budget, if one was installed.
pub fn global_budget() -> Option<Budget> {
    GLOBAL_BUDGET.get().cloned()
}

/// One method's measurements — a row of a Figures 2–4 panel.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method label (paper legend name).
    pub name: String,
    /// Model learning / rule discovery time.
    pub learn: Duration,
    /// Time to predict every row once.
    pub eval: Duration,
    /// RMSE over all answerable rows.
    pub rmse: f64,
    /// Number of rules/models the method holds.
    pub rules: usize,
    /// Models actually trained (CRR only; equals `rules` for baselines).
    pub trained: usize,
}

/// A dataset instance with its experiment roles resolved.
pub struct Scenario {
    /// The generated dataset.
    pub dataset: Dataset,
    /// Time attribute (for AR/DHR/Recur and time conditions).
    pub time_attr: AttrId,
    /// Feature attributes `X`.
    pub inputs: Vec<AttrId>,
    /// Target `Y`.
    pub target: AttrId,
    /// Attributes conditions may mention (superset of inputs, minus `Y`).
    pub condition_attrs: Vec<AttrId>,
    /// Categorical stratification attribute for SampLR/MCLR, if any.
    pub stratify: Option<AttrId>,
    /// Seasonal period for DHR, in time units.
    pub period: f64,
    /// Maximum bias `ρ_M`, derived from the generator's noise bound.
    pub rho_max: f64,
}

impl Scenario {
    /// The table.
    pub fn table(&self) -> &Table {
        &self.dataset.table
    }

    /// Every row.
    pub fn rows(&self) -> RowSet {
        self.dataset.table.all_rows()
    }

    /// The first `n` rows — the size-`|I|` instance of the scalability
    /// sweeps.
    pub fn instance(&self, n: usize) -> RowSet {
        RowSet::from_indices((0..n.min(self.dataset.table.num_rows()) as u32).collect())
    }

    /// Expert boundaries as owned pairs for [`PredicateGen::expert`].
    pub fn expert_boundaries(&self) -> Vec<(String, Vec<f64>)> {
        self.dataset
            .expert_boundaries
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }
}

/// AirQuality scenario: `no2 ~ f(hour)`, daily regimes (Figure 2).
pub fn airquality_scenario(rows: usize, seed: u64) -> Scenario {
    let ds = airquality(&GenConfig { rows, seed });
    let t = &ds.table;
    let hour = t.attr("hour").unwrap();
    let no2 = t.attr("no2").unwrap();
    Scenario {
        time_attr: hour,
        inputs: vec![hour],
        target: no2,
        condition_attrs: vec![hour],
        stratify: None,
        period: crr_datasets::airquality::DAY as f64,
        rho_max: 3.0 * crr_datasets::airquality::NOISE,
        dataset: ds,
    }
}

/// Electricity scenario: `global_active_power ~ f(minute)` (Figure 3).
pub fn electricity_scenario(rows: usize, seed: u64) -> Scenario {
    let ds = electricity(&GenConfig { rows, seed });
    let t = &ds.table;
    let minute = t.attr("minute").unwrap();
    let power = t.attr("global_active_power").unwrap();
    Scenario {
        time_attr: minute,
        inputs: vec![minute],
        target: power,
        condition_attrs: vec![minute],
        stratify: None,
        period: crr_datasets::electricity::DAY as f64,
        rho_max: 3.0 * crr_datasets::electricity::NOISE,
        dataset: ds,
    }
}

/// Tax scenario: `tax ~ f(salary)` conditioned on state (Figure 4).
pub fn tax_scenario(rows: usize, seed: u64) -> Scenario {
    let ds = tax(&GenConfig { rows, seed });
    let t = &ds.table;
    let salary = t.attr("salary").unwrap();
    let state = t.attr("state").unwrap();
    let target = t.attr("tax").unwrap();
    Scenario {
        time_attr: salary, // no time axis; unused by the relational methods
        inputs: vec![salary],
        target,
        condition_attrs: vec![state, salary],
        stratify: Some(state),
        period: 1.0,
        rho_max: 3.0 * crr_datasets::tax::NOISE,
        dataset: ds,
    }
}

/// BirdMap scenario: `latitude ~ f(date)` conditioned on bird + date
/// (Figures 5–10, Tables III–IV).
pub fn birdmap_scenario(rows: usize, seed: u64) -> Scenario {
    let ds = birdmap(&GenConfig { rows, seed });
    let t = &ds.table;
    let date = t.attr("date").unwrap();
    let bird = t.attr("bird").unwrap();
    let lat = t.attr("latitude").unwrap();
    Scenario {
        time_attr: date,
        inputs: vec![date],
        target: lat,
        condition_attrs: vec![bird, date],
        stratify: Some(bird),
        period: crr_datasets::birdmap::YEAR as f64,
        rho_max: 3.0 * crr_datasets::birdmap::NOISE,
        dataset: ds,
    }
}

/// Abalone scenario: `rings ~ f(length)` conditioned on sex + length.
pub fn abalone_scenario(rows: usize, seed: u64) -> Scenario {
    let ds = abalone(&GenConfig { rows, seed });
    let t = &ds.table;
    let length = t.attr("length").unwrap();
    let sex = t.attr("sex").unwrap();
    let rings = t.attr("rings").unwrap();
    Scenario {
        time_attr: length,
        inputs: vec![length],
        target: rings,
        condition_attrs: vec![sex, length],
        stratify: Some(sex),
        period: 1.0,
        rho_max: 3.0 * crr_datasets::abalone::NOISE,
        dataset: ds,
    }
}

/// CRR experiment knobs.
#[derive(Debug, Clone)]
pub struct CrrOptions {
    /// Model family (F1/F2/F3).
    pub kind: ModelKind,
    /// Binary-split constants per numeric attribute.
    pub predicates_per_attr: usize,
    /// Queue order.
    pub order: QueueOrder,
    /// Apply Algorithm 2 after searching.
    pub compact: bool,
    /// Enable model sharing (lines 7–10) during search.
    pub share: bool,
    /// Override `ρ_M` (defaults to the scenario's noise bound).
    pub rho_max: Option<f64>,
    /// Predicate generator override (defaults to binary).
    pub generator: Option<PredicateGen>,
    /// Per-run resource budget; falls back to the process-wide
    /// [`global_budget`] when `None`.
    pub budget: Option<Budget>,
    /// Fit engine: incremental sufficient statistics (the default) or the
    /// row-rescan baseline it is benchmarked against.
    pub engine: FitEngine,
    /// Worker threads for the shared-pool probe scan (1 = sequential).
    pub pool_scan_threads: usize,
}

impl Default for CrrOptions {
    fn default() -> Self {
        CrrOptions {
            kind: ModelKind::Linear,
            predicates_per_attr: 63,
            order: QueueOrder::Decrease,
            compact: true,
            share: true,
            rho_max: None,
            generator: None,
            budget: None,
            engine: FitEngine::Moments,
            pool_scan_threads: 1,
        }
    }
}

/// Builds the discovery inputs for a scenario.
pub fn crr_inputs(sc: &Scenario, opts: &CrrOptions) -> (DiscoveryConfig, PredicateSpace) {
    let rho = opts.rho_max.unwrap_or(sc.rho_max);
    let generator = opts.generator.clone().unwrap_or(PredicateGen::Binary {
        per_attr: opts.predicates_per_attr,
    });
    let space = generator.generate(sc.table(), &sc.condition_attrs, sc.target, 11);
    let mut cfg = DiscoveryConfig::new(sc.inputs.clone(), sc.target, rho)
        .with_kind(opts.kind)
        .with_order(opts.order)
        .with_sharing(opts.share)
        .with_engine(opts.engine)
        .with_pool_scan_threads(opts.pool_scan_threads);
    if opts.kind == ModelKind::Mlp {
        // Keep per-partition MLP fits affordable in sweeps.
        cfg.fit.mlp.epochs = 60;
        cfg.fit.mlp.hidden = 6;
    }
    if let Some(budget) = opts.budget.clone().or_else(global_budget) {
        cfg = cfg.with_budget(budget);
    }
    (cfg, space)
}

/// Runs the full CRR pipeline (Algorithm 1 + optional Algorithm 2) and
/// measures it.
pub fn measure_crr(sc: &Scenario, rows: &RowSet, opts: &CrrOptions) -> (MethodResult, RuleSet) {
    let (cfg, space) = crr_inputs(sc, opts);
    let session = DiscoverySession::on(sc.table())
        .rows(rows.clone())
        .predicates(space.clone())
        .config(cfg.clone());
    let start = Instant::now();
    let found = session.run().expect("discovery");
    if !found.outcome.is_complete() {
        eprintln!(
            "  [budget] {} run degraded ({}): {} partitions drained, {} rows on fallbacks",
            sc.dataset.name,
            found.outcome,
            found.stats.drained_partitions,
            found.stats.drained_rows
        );
    }
    let rules = if opts.compact {
        compact_on_data(&found.rules, 1e-6, cfg.rho_max, sc.table(), rows)
            .expect("compaction")
            .0
    } else {
        found.rules
    };
    let learn = start.elapsed();
    // Evaluate through the interval rule index — compaction concentrates
    // many conjunctions into few rules, and the index makes locating
    // logarithmic instead of a scan.
    let eval_start = Instant::now();
    let index = RuleIndex::build(&rules, sc.table());
    let report = index.evaluate(sc.table(), rows);
    let eval = eval_start.elapsed();
    (
        MethodResult {
            name: if opts.compact {
                "CRR".into()
            } else {
                "CRR-search".into()
            },
            learn,
            eval,
            rmse: report.rmse,
            rules: rules.len(),
            trained: found.stats.models_trained,
        },
        rules,
    )
}

/// Runs one unconditional RR model and measures it.
pub fn measure_rr(sc: &Scenario, rows: &RowSet, kind: ModelKind) -> MethodResult {
    let mut fit_cfg = FitConfig::new(kind);
    if kind == ModelKind::Mlp {
        fit_cfg.mlp.epochs = 60;
        fit_cfg.mlp.hidden = 6;
    }
    let start = Instant::now();
    let fitted = Rr::fit(sc.table(), rows, &sc.inputs, sc.target, &fit_cfg).expect("rr fit");
    let learn = start.elapsed();
    measure_fitted("RR", learn, &fitted, sc, rows)
}

fn measure_fitted(
    name: &str,
    learn: Duration,
    fitted: &dyn BaselinePredictor,
    sc: &Scenario,
    rows: &RowSet,
) -> MethodResult {
    let summary = evaluate_predictor(fitted, sc.table(), rows, sc.target);
    MethodResult {
        name: name.into(),
        learn,
        eval: summary.eval_time,
        rmse: summary.rmse,
        rules: fitted.num_rules(),
        trained: fitted.num_rules(),
    }
}

/// The baseline selector used by the figure runners.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// Model tree.
    RegTree,
    /// Autoregression.
    Ar,
    /// Sampling conditional regression.
    SampLr,
    /// Monte-Carlo conditional regression.
    Mclr,
    /// Bagged regression forest.
    Forest,
    /// Dynamic harmonic regression.
    Dhr,
    /// Recurrence-time models.
    Recur,
}

impl BaselineKind {
    /// The time-series comparator set of Figures 2–3.
    pub const TIME_SERIES: [BaselineKind; 7] = [
        BaselineKind::RegTree,
        BaselineKind::Ar,
        BaselineKind::SampLr,
        BaselineKind::Mclr,
        BaselineKind::Forest,
        BaselineKind::Dhr,
        BaselineKind::Recur,
    ];

    /// The relational comparator set of Figure 4.
    pub const RELATIONAL: [BaselineKind; 3] = [
        BaselineKind::SampLr,
        BaselineKind::Mclr,
        BaselineKind::RegTree,
    ];
}

/// Fits and measures one baseline on the scenario.
pub fn measure_baseline(sc: &Scenario, rows: &RowSet, kind: BaselineKind) -> MethodResult {
    let table = sc.table();
    match kind {
        BaselineKind::RegTree => {
            let cfg = RegTreeConfig::default();
            let start = Instant::now();
            let fitted = RegTree::fit(
                table,
                rows,
                &sc.inputs,
                &sc.condition_attrs,
                sc.target,
                &cfg,
            )
            .expect("regtree");
            measure_fitted("RegTree", start.elapsed(), &fitted, sc, rows)
        }
        BaselineKind::Ar => {
            let start = Instant::now();
            let fitted =
                Ar::fit(table, rows, sc.time_attr, sc.target, &ArConfig::default()).expect("ar");
            measure_fitted("AR", start.elapsed(), &fitted, sc, rows)
        }
        BaselineKind::SampLr => {
            let start = Instant::now();
            let fitted = SampLr::fit(
                table,
                rows,
                &sc.inputs,
                sc.stratify,
                sc.target,
                &SampLrConfig::default(),
            )
            .expect("samplr");
            measure_fitted("SampLR", start.elapsed(), &fitted, sc, rows)
        }
        BaselineKind::Mclr => {
            let start = Instant::now();
            let fitted = Mclr::fit(
                table,
                rows,
                &sc.inputs,
                sc.stratify,
                sc.target,
                &MclrConfig::default(),
            )
            .expect("mclr");
            measure_fitted("MCLR", start.elapsed(), &fitted, sc, rows)
        }
        BaselineKind::Forest => {
            let start = Instant::now();
            let fitted = Forest::fit(
                table,
                rows,
                &sc.inputs,
                &sc.condition_attrs,
                sc.target,
                &ForestConfig::default(),
            )
            .expect("forest");
            measure_fitted("Forest", start.elapsed(), &fitted, sc, rows)
        }
        BaselineKind::Dhr => {
            let start = Instant::now();
            let fitted = Dhr::fit(
                table,
                rows,
                sc.time_attr,
                sc.target,
                &DhrConfig {
                    period: sc.period,
                    harmonics: 6,
                },
            )
            .expect("dhr");
            measure_fitted("DHR", start.elapsed(), &fitted, sc, rows)
        }
        BaselineKind::Recur => {
            let start = Instant::now();
            let fitted = Recur::fit(
                table,
                rows,
                sc.time_attr,
                sc.target,
                &RecurConfig::default(),
            )
            .expect("recur");
            measure_fitted("Recur", start.elapsed(), &fitted, sc, rows)
        }
    }
}

/// Deterministic train/test split of a row set (hash-based, seeded).
/// Returns `(train, test)` with roughly `test_frac` of rows held out.
pub fn holdout_split(rows: &RowSet, test_frac: f64, seed: u64) -> (RowSet, RowSet) {
    rows.partition(|r| {
        let h = (r as u64)
            .wrapping_add(seed)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(31)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        (h >> 11) as f64 / (1u64 << 53) as f64 >= test_frac
    })
}

/// Formats a duration in seconds with 4 decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Formats a duration in milliseconds with 3 decimals.
pub fn millis(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Prints an aligned console table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// A [`MethodResult`] as a standard table row
/// `[method, |I|, learn(s), eval(ms), #rules, rmse]`.
pub fn result_row(r: &MethodResult, instance: usize) -> Vec<String> {
    vec![
        r.name.clone(),
        instance.to_string(),
        secs(r.learn),
        millis(r.eval),
        r.rules.to_string(),
        format!("{:.4}", r.rmse),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_build_and_roles_resolve() {
        for sc in [
            airquality_scenario(200, 1),
            electricity_scenario(200, 1),
            tax_scenario(200, 1),
            birdmap_scenario(200, 1),
            abalone_scenario(200, 1),
        ] {
            assert!(sc.table().num_rows() == 200);
            assert!(!sc.condition_attrs.contains(&sc.target));
            assert!(sc.rho_max > 0.0);
        }
    }

    #[test]
    fn measure_crr_reports_consistent_counts() {
        let sc = airquality_scenario(400, 2);
        let (res, rules) = measure_crr(&sc, &sc.rows(), &CrrOptions::default());
        assert_eq!(res.rules, rules.len());
        assert!(res.rmse.is_finite());
        assert!(rules.uncovered(sc.table(), &sc.rows()).is_empty());
    }

    #[test]
    fn all_time_series_baselines_run() {
        let sc = airquality_scenario(300, 3);
        for kind in BaselineKind::TIME_SERIES {
            let r = measure_baseline(&sc, &sc.rows(), kind);
            assert!(r.rmse.is_finite(), "{}", r.name);
            assert!(r.rules >= 1, "{}", r.name);
        }
    }

    #[test]
    fn relational_baselines_run_on_tax() {
        let sc = tax_scenario(300, 4);
        for kind in BaselineKind::RELATIONAL {
            let r = measure_baseline(&sc, &sc.rows(), kind);
            assert!(r.rmse.is_finite(), "{}", r.name);
        }
    }

    #[test]
    fn rr_runs_for_every_family() {
        let sc = abalone_scenario(300, 5);
        for kind in ModelKind::ALL {
            let r = measure_rr(&sc, &sc.rows(), kind);
            assert!(r.rmse.is_finite(), "{kind:?}");
            assert_eq!(r.rules, 1);
        }
    }

    #[test]
    fn holdout_split_is_deterministic_and_disjoint() {
        let rows = RowSet::all(1_000);
        let (tr1, te1) = holdout_split(&rows, 0.2, 9);
        let (tr2, te2) = holdout_split(&rows, 0.2, 9);
        assert_eq!(tr1, tr2);
        assert_eq!(te1, te2);
        assert!(tr1.intersect(&te1).is_empty());
        assert_eq!(tr1.union(&te1), rows);
        // Roughly 20% held out.
        assert!((150..250).contains(&te1.len()), "{}", te1.len());
        // Different seed, different split.
        let (_, te3) = holdout_split(&rows, 0.2, 10);
        assert_ne!(te1, te3);
    }

    #[test]
    fn instance_subsets_are_prefixes() {
        let sc = tax_scenario(100, 6);
        let inst = sc.instance(10);
        assert_eq!(inst.len(), 10);
        assert_eq!(inst.as_slice()[9], 9);
        assert_eq!(sc.instance(1_000).len(), 100);
    }
}
