//! Tracked benchmark output: the `bench` experiment writes
//! `BENCH_discovery.json`, and CI (`scripts/ci.sh --check-bench`) re-parses
//! and validates it so a regressed or malformed emitter fails the build.
//!
//! The workspace deliberately carries no serde; the writer below renders a
//! fixed schema by hand and the reader is a minimal recursive-descent JSON
//! parser — just enough to validate what the writer can produce (and reject
//! what it must never produce: missing keys, non-finite numbers).

use std::fmt::Write as _;

/// Schema tag stamped into the file; bump when the layout changes.
pub const SCHEMA: &str = "crr-bench-discovery-v1";

/// One timed discovery run: a (dataset, size, engine) cell.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Dataset label (`electricity`, `tax`).
    pub dataset: String,
    /// Instance size |I| actually used.
    pub rows: usize,
    /// Fit engine label (`moments`, `rescan`).
    pub engine: String,
    /// Best-of-reps wall-clock discovery time, seconds.
    pub learn_secs: f64,
    /// Rules discovered.
    pub rules: usize,
    /// Models actually trained (rest were shared from the pool).
    pub trained: usize,
    /// RMSE of the discovered rule set over the instance.
    pub rmse: f64,
}

/// Moments-vs-rescan comparison at one (dataset, size) point.
#[derive(Debug, Clone)]
pub struct SpeedupEntry {
    /// Dataset label.
    pub dataset: String,
    /// Instance size.
    pub rows: usize,
    /// Sufficient-statistics engine time, seconds.
    pub moments_secs: f64,
    /// Row-rescan baseline time, seconds.
    pub rescan_secs: f64,
    /// `rescan_secs / moments_secs` — above 1.0 means moments is faster.
    pub ratio: f64,
}

/// The full report the `bench` experiment emits.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    /// Every timed cell.
    pub records: Vec<BenchRecord>,
    /// Engine comparisons, one per (dataset, size).
    pub speedup: Vec<SpeedupEntry>,
}

/// Renders a finite number; non-finite values become `null`, which the
/// validator rejects — a NaN timing can never pass CI silently.
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Renders the report as pretty-printed JSON with a stable key order.
pub fn render(report: &BenchReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"records\": [");
    for (i, r) in report.records.iter().enumerate() {
        let comma = if i + 1 < report.records.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"dataset\": \"{}\", \"rows\": {}, \"engine\": \"{}\", \
             \"learn_secs\": {}, \"rules\": {}, \"trained\": {}, \"rmse\": {}}}{comma}",
            esc(&r.dataset),
            r.rows,
            esc(&r.engine),
            num(r.learn_secs),
            r.rules,
            r.trained,
            num(r.rmse),
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"speedup\": [");
    for (i, s) in report.speedup.iter().enumerate() {
        let comma = if i + 1 < report.speedup.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"dataset\": \"{}\", \"rows\": {}, \"moments_secs\": {}, \
             \"rescan_secs\": {}, \"ratio\": {}}}{comma}",
            esc(&s.dataset),
            s.rows,
            num(s.moments_secs),
            num(s.rescan_secs),
            num(s.ratio),
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Any number (JSON numbers are finite by construction).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("json parse error at byte {}: {what}", self.i)
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let s =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(s, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.i += 4;
                        }
                        _ => return Err(self.err("unsupported escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar, not a lone byte.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a JSON document.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

fn finite_num(obj: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    let v = obj
        .get(key)
        .ok_or_else(|| format!("{ctx}: missing key '{key}'"))?;
    let x = v
        .as_num()
        .ok_or_else(|| format!("{ctx}: key '{key}' is not a number (got {v:?})"))?;
    if !x.is_finite() {
        return Err(format!("{ctx}: key '{key}' is non-finite"));
    }
    Ok(x)
}

fn str_key<'a>(obj: &'a Json, key: &str, ctx: &str) -> Result<&'a str, String> {
    obj.get(key)
        .ok_or_else(|| format!("{ctx}: missing key '{key}'"))?
        .as_str()
        .ok_or_else(|| format!("{ctx}: key '{key}' is not a string"))
}

/// Validates a `BENCH_discovery.json` document. On success, returns a
/// one-line summary; on failure, a message naming the first violation.
///
/// Checks: the schema tag; a non-empty `records` array whose entries carry
/// every required key with finite numbers and known engine labels; each
/// dataset measured at ≥ 2 sizes with *both* engines at each size; and a
/// non-empty `speedup` array with finite, positive ratios.
pub fn validate(text: &str) -> Result<String, String> {
    let doc = parse(text)?;
    let schema = str_key(&doc, "schema", "document")?;
    if schema != SCHEMA {
        return Err(format!("unexpected schema '{schema}' (want '{SCHEMA}')"));
    }

    let records = doc
        .get("records")
        .and_then(Json::as_arr)
        .ok_or("document: 'records' missing or not an array")?;
    if records.is_empty() {
        return Err("'records' is empty".to_string());
    }
    // (dataset, rows) -> set of engines seen there.
    let mut cells: Vec<(String, u64, Vec<String>)> = Vec::new();
    for (i, r) in records.iter().enumerate() {
        let ctx = format!("records[{i}]");
        let dataset = str_key(r, "dataset", &ctx)?.to_string();
        let engine = str_key(r, "engine", &ctx)?.to_string();
        if engine != "moments" && engine != "rescan" {
            return Err(format!("{ctx}: unknown engine '{engine}'"));
        }
        let rows = finite_num(r, "rows", &ctx)?;
        if rows < 1.0 || rows.fract() != 0.0 {
            return Err(format!("{ctx}: 'rows' must be a positive integer"));
        }
        if finite_num(r, "learn_secs", &ctx)? < 0.0 {
            return Err(format!("{ctx}: negative learn_secs"));
        }
        finite_num(r, "rules", &ctx)?;
        finite_num(r, "trained", &ctx)?;
        finite_num(r, "rmse", &ctx)?;
        let key = (dataset, rows as u64);
        match cells
            .iter_mut()
            .find(|(d, n, _)| *d == key.0 && *n == key.1)
        {
            Some((_, _, engines)) => engines.push(engine),
            None => cells.push((key.0, key.1, vec![engine])),
        }
    }
    let mut datasets: Vec<&str> = Vec::new();
    for (dataset, rows, engines) in &cells {
        for want in ["moments", "rescan"] {
            if !engines.iter().any(|e| e == want) {
                return Err(format!("{dataset}@{rows}: engine '{want}' never measured"));
            }
        }
        if !datasets.contains(&dataset.as_str()) {
            datasets.push(dataset);
        }
    }
    for d in &datasets {
        let sizes = cells.iter().filter(|(name, _, _)| name == d).count();
        if sizes < 2 {
            return Err(format!("dataset '{d}' measured at only {sizes} size(s)"));
        }
    }

    let speedup = doc
        .get("speedup")
        .and_then(Json::as_arr)
        .ok_or("document: 'speedup' missing or not an array")?;
    if speedup.is_empty() {
        return Err("'speedup' is empty".to_string());
    }
    for (i, s) in speedup.iter().enumerate() {
        let ctx = format!("speedup[{i}]");
        str_key(s, "dataset", &ctx)?;
        finite_num(s, "rows", &ctx)?;
        finite_num(s, "moments_secs", &ctx)?;
        finite_num(s, "rescan_secs", &ctx)?;
        let ratio = finite_num(s, "ratio", &ctx)?;
        if ratio <= 0.0 {
            return Err(format!("{ctx}: non-positive ratio {ratio}"));
        }
    }
    Ok(format!(
        "ok: {} records over {} dataset(s), {} speedup point(s)",
        records.len(),
        datasets.len(),
        speedup.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut report = BenchReport::default();
        for dataset in ["electricity", "tax"] {
            for rows in [1000usize, 2000] {
                for engine in ["moments", "rescan"] {
                    report.records.push(BenchRecord {
                        dataset: dataset.into(),
                        rows,
                        engine: engine.into(),
                        learn_secs: 0.25,
                        rules: 12,
                        trained: 4,
                        rmse: 0.05,
                    });
                }
                report.speedup.push(SpeedupEntry {
                    dataset: dataset.into(),
                    rows,
                    moments_secs: 0.2,
                    rescan_secs: 0.3,
                    ratio: 1.5,
                });
            }
        }
        report
    }

    #[test]
    fn render_round_trips_through_validate() {
        let text = render(&sample());
        let summary = validate(&text).expect("valid");
        assert!(summary.contains("8 records"), "{summary}");
        assert!(summary.contains("2 dataset"), "{summary}");
    }

    #[test]
    fn non_finite_numbers_are_rejected() {
        let mut report = sample();
        report.records[0].learn_secs = f64::NAN;
        let text = render(&report);
        let err = validate(&text).expect_err("NaN must fail");
        assert!(err.contains("learn_secs"), "{err}");
    }

    #[test]
    fn missing_keys_are_rejected() {
        let text = render(&sample()).replace("\"rmse\": 0.05", "\"rmsx\": 0.05");
        let err = validate(&text).expect_err("missing key must fail");
        assert!(err.contains("rmse"), "{err}");
    }

    #[test]
    fn single_engine_runs_are_rejected() {
        let mut report = sample();
        report.records.retain(|r| r.engine == "moments");
        let err = validate(&render(&report)).expect_err("one engine must fail");
        assert!(err.contains("rescan"), "{err}");
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let doc = parse(r#"{"a": [1, -2.5e3, "x\"\\A"], "b": {"c": null}}"#).unwrap();
        assert_eq!(
            doc.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[2],
            Json::Str("x\"\\A".to_string())
        );
        assert_eq!(doc.get("b").unwrap().get("c"), Some(&Json::Null));
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse("{").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(validate("[]").is_err());
    }
}
