//! Tracked benchmark output: the `bench` experiment writes
//! `BENCH_discovery.json`, and CI (`scripts/ci.sh --check-bench`) re-parses
//! and validates it so a regressed or malformed emitter fails the build.
//!
//! The workspace deliberately carries no serde; rendering and re-parsing
//! ride on the hand-rolled JSON layer in [`crr_obs::json`] (shared with
//! the `metrics.json` emitter in [`crate::metrics_json`]). The schema is
//! documented field by field in `EXPERIMENTS.md`, section "Benchmark
//! artifact schemas".

use crr_obs::json::{esc, num};
use std::fmt::Write as _;

// Re-exported so existing callers keep one import path for parsing.
pub use crr_obs::json::{parse, Json};

/// Schema tag stamped into the file; bump when the layout changes.
/// v2 added the `sharded` section and the `sharded` engine label; v3 added
/// the `interpreted` engine label (moments engine under the interpreted
/// scan kernel, required at every (dataset, size) cell with results
/// byte-equal to the `moments` cell) and the per-kernel `kernels` array;
/// v4 added the `boundary` and `balance_permille` fields on sharded cells
/// (equal-width vs quantile shard planning, both required per dataset,
/// each with its plan's min/max shard-size balance).
pub const SCHEMA: &str = "crr-bench-discovery-v4";

/// Boundary labels a sharded cell may carry; every dataset must measure
/// both, so the adaptive (quantile) planner is always benchmarked against
/// the equal-width geometry it replaced as the default.
pub const BOUNDARY_CELLS: [&str; 2] = ["equal_width", "quantile"];

/// Kernel labels the `kernels` array may carry; all three must appear.
pub const KERNEL_CELLS: [&str; 3] = ["predicate_scan", "gram_accumulate", "end_to_end"];

/// One timed discovery run: a (dataset, size, engine) cell.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Dataset label (`electricity`, `tax`).
    pub dataset: String,
    /// Instance size |I| actually used.
    pub rows: usize,
    /// Fit engine label (`moments`, `rescan`), or `sharded` for the
    /// multi-shard cell (moments engine under a key-range shard plan).
    pub engine: String,
    /// Best-of-reps wall-clock discovery time, seconds.
    pub learn_secs: f64,
    /// Rules discovered.
    pub rules: usize,
    /// Models actually trained (rest were shared from the pool).
    pub trained: usize,
    /// RMSE of the discovered rule set over the instance.
    pub rmse: f64,
}

/// Moments-vs-rescan comparison at one (dataset, size) point.
#[derive(Debug, Clone)]
pub struct SpeedupEntry {
    /// Dataset label.
    pub dataset: String,
    /// Instance size.
    pub rows: usize,
    /// Sufficient-statistics engine time, seconds.
    pub moments_secs: f64,
    /// Row-rescan baseline time, seconds.
    pub rescan_secs: f64,
    /// `rescan_secs / moments_secs` — above 1.0 means moments is faster.
    pub ratio: f64,
}

/// Sharded-vs-single comparison at one (dataset, size) point: the same
/// instance discovered whole and under an N-way key-range shard plan.
#[derive(Debug, Clone)]
pub struct ShardedEntry {
    /// Dataset label.
    pub dataset: String,
    /// Instance size.
    pub rows: usize,
    /// Shard count of the sharded run (≥ 2).
    pub shards: usize,
    /// Boundary placement of the shard plan: `equal_width` or `quantile`.
    pub boundary: String,
    /// Shard balance of the plan's interval shards, min/max row count in
    /// permille (1000 = perfectly even). This is the geometry the
    /// boundary choice controls: on a single-core host the wall-clock
    /// ratio measures total work, so balance is where a quantile plan's
    /// advantage on a skewed key is visible and gated.
    pub balance_permille: u64,
    /// Single-shard (whole-instance) time, seconds.
    pub single_secs: f64,
    /// N-shard time including the Algorithm 2 merge, seconds.
    pub sharded_secs: f64,
    /// `single_secs / sharded_secs` — above 1.0 means sharding is faster.
    pub ratio: f64,
}

/// Interpreted-vs-compiled scan-kernel throughput at one dataset point.
#[derive(Debug, Clone)]
pub struct KernelEntry {
    /// Dataset label.
    pub dataset: String,
    /// Instance size the kernel was measured over.
    pub rows: usize,
    /// Which kernel: `predicate_scan` (rows filtered per second),
    /// `gram_accumulate` (rows accumulated per second) or `end_to_end`
    /// (whole discovery runs measured as rows per second).
    pub kernel: String,
    /// Interpreted (row-at-a-time) throughput, rows/second.
    pub interpreted_per_sec: f64,
    /// Compiled (columnar, cache-blocked) throughput, rows/second.
    pub compiled_per_sec: f64,
    /// `compiled_per_sec / interpreted_per_sec` — above 1.0 means the
    /// compiled kernel is faster.
    pub ratio: f64,
}

/// The full report the `bench` experiment emits.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    /// Every timed cell.
    pub records: Vec<BenchRecord>,
    /// Engine comparisons, one per (dataset, size).
    pub speedup: Vec<SpeedupEntry>,
    /// Sharded-vs-single comparisons, one per dataset at its largest size.
    pub sharded: Vec<ShardedEntry>,
    /// Per-kernel interpreted-vs-compiled throughput cells.
    pub kernels: Vec<KernelEntry>,
}

/// Renders the report as pretty-printed JSON with a stable key order.
pub fn render(report: &BenchReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"records\": [");
    for (i, r) in report.records.iter().enumerate() {
        let comma = if i + 1 < report.records.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"dataset\": \"{}\", \"rows\": {}, \"engine\": \"{}\", \
             \"learn_secs\": {}, \"rules\": {}, \"trained\": {}, \"rmse\": {}}}{comma}",
            esc(&r.dataset),
            r.rows,
            esc(&r.engine),
            num(r.learn_secs),
            r.rules,
            r.trained,
            num(r.rmse),
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"speedup\": [");
    for (i, s) in report.speedup.iter().enumerate() {
        let comma = if i + 1 < report.speedup.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"dataset\": \"{}\", \"rows\": {}, \"moments_secs\": {}, \
             \"rescan_secs\": {}, \"ratio\": {}}}{comma}",
            esc(&s.dataset),
            s.rows,
            num(s.moments_secs),
            num(s.rescan_secs),
            num(s.ratio),
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"sharded\": [");
    for (i, s) in report.sharded.iter().enumerate() {
        let comma = if i + 1 < report.sharded.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"dataset\": \"{}\", \"rows\": {}, \"shards\": {}, \"boundary\": \"{}\", \
             \"balance_permille\": {}, \"single_secs\": {}, \"sharded_secs\": {}, \
             \"ratio\": {}}}{comma}",
            esc(&s.dataset),
            s.rows,
            s.shards,
            esc(&s.boundary),
            s.balance_permille,
            num(s.single_secs),
            num(s.sharded_secs),
            num(s.ratio),
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"kernels\": [");
    for (i, k) in report.kernels.iter().enumerate() {
        let comma = if i + 1 < report.kernels.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"dataset\": \"{}\", \"rows\": {}, \"kernel\": \"{}\", \
             \"interpreted_per_sec\": {}, \"compiled_per_sec\": {}, \"ratio\": {}}}{comma}",
            esc(&k.dataset),
            k.rows,
            esc(&k.kernel),
            num(k.interpreted_per_sec),
            num(k.compiled_per_sec),
            num(k.ratio),
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn finite_num(obj: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    let v = obj
        .get(key)
        .ok_or_else(|| format!("{ctx}: missing key '{key}'"))?;
    let x = v
        .as_num()
        .ok_or_else(|| format!("{ctx}: key '{key}' is not a number (got {v:?})"))?;
    if !x.is_finite() {
        return Err(format!("{ctx}: key '{key}' is non-finite"));
    }
    Ok(x)
}

fn str_key<'a>(obj: &'a Json, key: &str, ctx: &str) -> Result<&'a str, String> {
    obj.get(key)
        .ok_or_else(|| format!("{ctx}: missing key '{key}'"))?
        .as_str()
        .ok_or_else(|| format!("{ctx}: key '{key}' is not a string"))
}

/// Validates a `BENCH_discovery.json` document. On success, returns a
/// one-line summary; on failure, a message naming the first violation.
///
/// Checks: the schema tag; a non-empty `records` array whose entries carry
/// every required key with finite numbers and known engine labels; each
/// dataset measured at ≥ 2 sizes with the `moments`, `rescan` *and*
/// `interpreted` engines at each size; the `interpreted` cell (moments
/// engine, interpreted scan kernel) reporting *exactly* the same rules,
/// trained-model count and RMSE as the `moments` cell — the compiled
/// kernels must be a pure accelerator, never a semantic change; a
/// non-empty `speedup` array with finite, positive ratios; a non-empty
/// `sharded` array whose cells have ≥ 2 shards, positive timings and a
/// boundary label from [`BOUNDARY_CELLS`], with both boundaries measured
/// for every sharded dataset; and a non-empty `kernels` array covering
/// all of [`KERNEL_CELLS`] with positive throughputs.
pub fn validate(text: &str) -> Result<String, String> {
    let doc = parse(text)?;
    let schema = str_key(&doc, "schema", "document")?;
    if schema != SCHEMA {
        return Err(format!("unexpected schema '{schema}' (want '{SCHEMA}')"));
    }

    let records = doc
        .get("records")
        .and_then(Json::as_arr)
        .ok_or("document: 'records' missing or not an array")?;
    if records.is_empty() {
        return Err("'records' is empty".to_string());
    }
    // (dataset, rows) -> engines seen there, with the (rules, trained,
    // rmse) triple each one reported.
    type Outcome = (String, f64, f64, f64);
    let mut cells: Vec<(String, u64, Vec<Outcome>)> = Vec::new();
    for (i, r) in records.iter().enumerate() {
        let ctx = format!("records[{i}]");
        let dataset = str_key(r, "dataset", &ctx)?.to_string();
        let engine = str_key(r, "engine", &ctx)?.to_string();
        if engine != "moments"
            && engine != "rescan"
            && engine != "sharded"
            && engine != "interpreted"
        {
            return Err(format!("{ctx}: unknown engine '{engine}'"));
        }
        let rows = finite_num(r, "rows", &ctx)?;
        if rows < 1.0 || rows.fract() != 0.0 {
            return Err(format!("{ctx}: 'rows' must be a positive integer"));
        }
        if finite_num(r, "learn_secs", &ctx)? < 0.0 {
            return Err(format!("{ctx}: negative learn_secs"));
        }
        let rules = finite_num(r, "rules", &ctx)?;
        let trained = finite_num(r, "trained", &ctx)?;
        let rmse = finite_num(r, "rmse", &ctx)?;
        let key = (dataset, rows as u64);
        let outcome = (engine, rules, trained, rmse);
        match cells
            .iter_mut()
            .find(|(d, n, _)| *d == key.0 && *n == key.1)
        {
            Some((_, _, engines)) => engines.push(outcome),
            None => cells.push((key.0, key.1, vec![outcome])),
        }
    }
    let mut datasets: Vec<&str> = Vec::new();
    for (dataset, rows, engines) in &cells {
        for want in ["moments", "rescan", "interpreted"] {
            if !engines.iter().any(|(e, ..)| e == want) {
                return Err(format!("{dataset}@{rows}: engine '{want}' never measured"));
            }
        }
        // The interpreted cell is the oracle run of the same moments
        // configuration: any divergence means the compiled kernels changed
        // a search decision.
        let find = |name: &str| engines.iter().find(|(e, ..)| e == name);
        if let (Some(m), Some(i)) = (find("moments"), find("interpreted")) {
            if m.1 != i.1 || m.2 != i.2 || m.3 != i.3 {
                return Err(format!(
                    "{dataset}@{rows}: interpreted-kernel cell diverges from the moments cell \
                     (rules {} vs {}, trained {} vs {}, rmse {} vs {})",
                    m.1, i.1, m.2, i.2, m.3, i.3
                ));
            }
        }
        if !datasets.contains(&dataset.as_str()) {
            datasets.push(dataset);
        }
    }
    for d in &datasets {
        let sizes = cells.iter().filter(|(name, _, _)| name == d).count();
        if sizes < 2 {
            return Err(format!("dataset '{d}' measured at only {sizes} size(s)"));
        }
    }

    let speedup = doc
        .get("speedup")
        .and_then(Json::as_arr)
        .ok_or("document: 'speedup' missing or not an array")?;
    if speedup.is_empty() {
        return Err("'speedup' is empty".to_string());
    }
    for (i, s) in speedup.iter().enumerate() {
        let ctx = format!("speedup[{i}]");
        str_key(s, "dataset", &ctx)?;
        finite_num(s, "rows", &ctx)?;
        finite_num(s, "moments_secs", &ctx)?;
        finite_num(s, "rescan_secs", &ctx)?;
        let ratio = finite_num(s, "ratio", &ctx)?;
        if ratio <= 0.0 {
            return Err(format!("{ctx}: non-positive ratio {ratio}"));
        }
    }
    let sharded = doc
        .get("sharded")
        .and_then(Json::as_arr)
        .ok_or("document: 'sharded' missing or not an array")?;
    if sharded.is_empty() {
        return Err("'sharded' is empty".to_string());
    }
    let mut sharded_cells: Vec<(String, String)> = Vec::new();
    for (i, s) in sharded.iter().enumerate() {
        let ctx = format!("sharded[{i}]");
        let dataset = str_key(s, "dataset", &ctx)?.to_string();
        finite_num(s, "rows", &ctx)?;
        let k = finite_num(s, "shards", &ctx)?;
        if k < 2.0 || k.fract() != 0.0 {
            return Err(format!("{ctx}: 'shards' must be an integer >= 2 (got {k})"));
        }
        let boundary = str_key(s, "boundary", &ctx)?.to_string();
        if !BOUNDARY_CELLS.contains(&boundary.as_str()) {
            return Err(format!("{ctx}: unknown boundary '{boundary}'"));
        }
        let balance = finite_num(s, "balance_permille", &ctx)?;
        if !(1.0..=1000.0).contains(&balance) || balance.fract() != 0.0 {
            return Err(format!(
                "{ctx}: 'balance_permille' must be an integer in 1..=1000 (got {balance})"
            ));
        }
        if finite_num(s, "single_secs", &ctx)? <= 0.0 {
            return Err(format!("{ctx}: non-positive single_secs"));
        }
        if finite_num(s, "sharded_secs", &ctx)? <= 0.0 {
            return Err(format!("{ctx}: non-positive sharded_secs"));
        }
        let ratio = finite_num(s, "ratio", &ctx)?;
        if ratio <= 0.0 {
            return Err(format!("{ctx}: non-positive ratio {ratio}"));
        }
        if !sharded_cells.contains(&(dataset.clone(), boundary.clone())) {
            sharded_cells.push((dataset, boundary));
        }
    }
    // Every sharded dataset must measure both boundary placements, so the
    // adaptive plan always has its equal-width baseline next to it.
    let sharded_datasets: Vec<&str> = {
        let mut ds: Vec<&str> = Vec::new();
        for (d, _) in &sharded_cells {
            if !ds.contains(&d.as_str()) {
                ds.push(d);
            }
        }
        ds
    };
    for d in &sharded_datasets {
        for want in BOUNDARY_CELLS {
            if !sharded_cells.iter().any(|(sd, b)| sd == d && b == want) {
                return Err(format!(
                    "sharded dataset '{d}': boundary '{want}' never measured"
                ));
            }
        }
    }
    let kernels = doc
        .get("kernels")
        .and_then(Json::as_arr)
        .ok_or("document: 'kernels' missing or not an array")?;
    if kernels.is_empty() {
        return Err("'kernels' is empty".to_string());
    }
    let mut kinds: Vec<String> = Vec::new();
    for (i, k) in kernels.iter().enumerate() {
        let ctx = format!("kernels[{i}]");
        str_key(k, "dataset", &ctx)?;
        finite_num(k, "rows", &ctx)?;
        let kind = str_key(k, "kernel", &ctx)?.to_string();
        if !KERNEL_CELLS.contains(&kind.as_str()) {
            return Err(format!("{ctx}: unknown kernel '{kind}'"));
        }
        for key in ["interpreted_per_sec", "compiled_per_sec", "ratio"] {
            if finite_num(k, key, &ctx)? <= 0.0 {
                return Err(format!("{ctx}: non-positive {key}"));
            }
        }
        if !kinds.contains(&kind) {
            kinds.push(kind);
        }
    }
    for want in KERNEL_CELLS {
        if !kinds.iter().any(|k| k == want) {
            return Err(format!("kernel cell '{want}' never measured"));
        }
    }
    Ok(format!(
        "ok: {} records over {} dataset(s), {} speedup point(s), {} sharded cell(s), \
         {} kernel cell(s)",
        records.len(),
        datasets.len(),
        speedup.len(),
        sharded.len(),
        kernels.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut report = BenchReport::default();
        for dataset in ["electricity", "tax"] {
            for rows in [1000usize, 2000] {
                for engine in ["moments", "rescan", "interpreted"] {
                    report.records.push(BenchRecord {
                        dataset: dataset.into(),
                        rows,
                        engine: engine.into(),
                        learn_secs: 0.25,
                        rules: 12,
                        trained: 4,
                        rmse: 0.05,
                    });
                }
                report.speedup.push(SpeedupEntry {
                    dataset: dataset.into(),
                    rows,
                    moments_secs: 0.2,
                    rescan_secs: 0.3,
                    ratio: 1.5,
                });
            }
            for boundary in BOUNDARY_CELLS {
                report.sharded.push(ShardedEntry {
                    dataset: dataset.into(),
                    rows: 2000,
                    shards: 4,
                    boundary: boundary.into(),
                    balance_permille: if boundary == "quantile" { 980 } else { 410 },
                    single_secs: 0.4,
                    sharded_secs: 0.2,
                    ratio: 2.0,
                });
            }
            for kernel in KERNEL_CELLS {
                report.kernels.push(KernelEntry {
                    dataset: dataset.into(),
                    rows: 2000,
                    kernel: kernel.into(),
                    interpreted_per_sec: 1.0e7,
                    compiled_per_sec: 3.0e7,
                    ratio: 3.0,
                });
            }
        }
        report
    }

    #[test]
    fn render_round_trips_through_validate() {
        let text = render(&sample());
        let summary = validate(&text).expect("valid");
        assert!(summary.contains("12 records"), "{summary}");
        assert!(summary.contains("2 dataset"), "{summary}");
        assert!(summary.contains("6 kernel cell(s)"), "{summary}");
    }

    #[test]
    fn diverging_interpreted_cell_is_rejected() {
        let mut report = sample();
        let r = report
            .records
            .iter_mut()
            .find(|r| r.engine == "interpreted")
            .unwrap();
        r.rmse += 1e-9;
        let err = validate(&render(&report)).expect_err("must fail");
        assert!(err.contains("diverges"), "{err}");
    }

    #[test]
    fn missing_interpreted_cell_is_rejected() {
        let mut report = sample();
        report.records.retain(|r| r.engine != "interpreted");
        let err = validate(&render(&report)).expect_err("must fail");
        assert!(err.contains("interpreted"), "{err}");
    }

    #[test]
    fn kernel_cells_are_required_and_checked() {
        let mut report = sample();
        report.kernels.clear();
        let err = validate(&render(&report)).expect_err("empty kernels must fail");
        assert!(err.contains("kernels"), "{err}");

        let mut report = sample();
        report.kernels.retain(|k| k.kernel != "end_to_end");
        let err = validate(&render(&report)).expect_err("must fail");
        assert!(err.contains("end_to_end"), "{err}");

        let mut report = sample();
        report.kernels[0].kernel = "warp_scan".into();
        let err = validate(&render(&report)).expect_err("must fail");
        assert!(err.contains("warp_scan"), "{err}");

        let mut report = sample();
        report.kernels[0].compiled_per_sec = 0.0;
        let err = validate(&render(&report)).expect_err("must fail");
        assert!(err.contains("compiled_per_sec"), "{err}");
    }

    #[test]
    fn non_finite_numbers_are_rejected() {
        let mut report = sample();
        report.records[0].learn_secs = f64::NAN;
        let text = render(&report);
        let err = validate(&text).expect_err("NaN must fail");
        assert!(err.contains("learn_secs"), "{err}");
    }

    #[test]
    fn missing_keys_are_rejected() {
        let text = render(&sample()).replace("\"rmse\": 0.05", "\"rmsx\": 0.05");
        let err = validate(&text).expect_err("missing key must fail");
        assert!(err.contains("rmse"), "{err}");
    }

    #[test]
    fn sharded_cells_are_required_and_checked() {
        let mut report = sample();
        report.sharded.clear();
        let err = validate(&render(&report)).expect_err("empty sharded must fail");
        assert!(err.contains("sharded"), "{err}");

        let mut report = sample();
        report.sharded[0].shards = 1;
        let err = validate(&render(&report)).expect_err("1 shard is not a sharded cell");
        assert!(err.contains("shards"), "{err}");
    }

    #[test]
    fn sharded_boundary_labels_are_required_and_checked() {
        let mut report = sample();
        report.sharded[0].boundary = "fibonacci".into();
        let err = validate(&render(&report)).expect_err("unknown boundary must fail");
        assert!(err.contains("fibonacci"), "{err}");

        let mut report = sample();
        report.sharded.retain(|s| s.boundary != "quantile");
        let err = validate(&render(&report)).expect_err("missing quantile cell must fail");
        assert!(err.contains("quantile"), "{err}");

        let mut report = sample();
        report.sharded.retain(|s| s.boundary != "equal_width");
        let err = validate(&render(&report)).expect_err("missing equal-width cell must fail");
        assert!(err.contains("equal_width"), "{err}");
    }

    #[test]
    fn sharded_balance_must_be_a_permille() {
        let mut report = sample();
        report.sharded[0].balance_permille = 0;
        let err = validate(&render(&report)).expect_err("zero balance must fail");
        assert!(err.contains("balance_permille"), "{err}");

        let mut report = sample();
        report.sharded[0].balance_permille = 1001;
        let err = validate(&render(&report)).expect_err("balance above 1000 must fail");
        assert!(err.contains("balance_permille"), "{err}");
    }

    #[test]
    fn sharded_engine_records_are_accepted() {
        let mut report = sample();
        report.records.push(BenchRecord {
            dataset: "electricity".into(),
            rows: 2000,
            engine: "sharded".into(),
            learn_secs: 0.2,
            rules: 12,
            trained: 3,
            rmse: 0.05,
        });
        validate(&render(&report)).expect("sharded engine label is valid");
    }

    #[test]
    fn single_engine_runs_are_rejected() {
        let mut report = sample();
        report.records.retain(|r| r.engine == "moments");
        let err = validate(&render(&report)).expect_err("one engine must fail");
        assert!(err.contains("rescan"), "{err}");
    }

    // Parser internals are tested where they live, in `crr_obs::json`;
    // here only the validator's use of them matters.
    #[test]
    fn non_object_documents_are_rejected() {
        assert!(validate("[]").is_err());
        assert!(validate("{").is_err());
    }
}
