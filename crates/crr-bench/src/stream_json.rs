//! Tracked streaming-maintenance benchmark output: the `stream`
//! experiment discovers on a base slice, replays an appended tail through
//! a `crr_stream::StreamEngine` (batched appends + one partition-scoped
//! repair), measures the same end state reached by full rediscovery over
//! base+tail, and writes `BENCH_stream.json`; CI (`scripts/ci.sh
//! --check-stream`) re-parses and validates it so a regressed emitter or
//! a lost incremental advantage fails the build.
//!
//! Like the sibling emitters, rendering and parsing ride on the
//! hand-rolled JSON layer in [`crr_obs::json`] — no serde. The schema is
//! documented field by field in `EXPERIMENTS.md`, section "Benchmark
//! artifact schemas".

use crr_obs::json::{esc, num, parse, Json};
use std::fmt::Write as _;

/// Schema tag stamped into the file; bump when the layout changes.
pub const SCHEMA: &str = "crr-stream-v1";

/// Instance-size floor above which the speedup gate applies: the paper's
/// Electricity headline scale. Smoke-scale records document the loop but
/// are too small for the incremental advantage to be a stable promise.
pub const GATE_ROWS: usize = 11_520;

/// Minimum incremental-over-full speedup enforced at gate scale.
pub const MIN_SPEEDUP: f64 = 5.0;

/// One measured maintenance cell: a (dataset, base size) point whose
/// appended tail was maintained incrementally and, separately,
/// rediscovered from scratch.
#[derive(Debug, Clone)]
pub struct StreamRecord {
    /// Dataset label (`electricity`, `tax`).
    pub dataset: String,
    /// Rows discovered on before streaming began.
    pub base_rows: usize,
    /// Rows appended through the maintainer.
    pub appended_rows: usize,
    /// Append batches the tail was split into.
    pub batches: usize,
    /// `(row, rule)` coverage pairs the interval index routed.
    pub routed_pairs: u64,
    /// Appended rows no rule covered (repair obligations).
    pub uncovered_rows: u64,
    /// Write-time monitor hits across the tail.
    pub violations: u64,
    /// Rules flagged drifted before repair.
    pub drifted_rules: u64,
    /// Live rows the partition-scoped repair re-ran Algorithm 1 on.
    pub repair_affected_rows: usize,
    /// Rules before streaming (the base discovery).
    pub rules_before: usize,
    /// Rules after the incremental repair.
    pub rules_after: usize,
    /// Wall time of the incremental path: appends + drift refresh +
    /// repair + artifact export. Milliseconds.
    pub incremental_ms: f64,
    /// Wall time of full rediscovery (Algorithm 1 + Algorithm 2 + export)
    /// over base+tail. Milliseconds.
    pub full_ms: f64,
    /// `full_ms / incremental_ms`.
    pub speedup: f64,
    /// Whether the repaired artifact passed `crr_analyze::is_sound`.
    pub sound: bool,
    /// Whether a `crr-serve` rule store admitted the repaired artifact
    /// and served predictions byte-identical to offline evaluation.
    pub swap_served_identical: bool,
}

/// Renders the records as pretty-printed JSON with a stable key order.
pub fn render(records: &[StreamRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"records\": [");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"dataset\": \"{}\", \"base_rows\": {}, \"appended_rows\": {}, \
             \"batches\": {}, \"routed_pairs\": {}, \"uncovered_rows\": {}, \
             \"violations\": {}, \"drifted_rules\": {}, \"repair_affected_rows\": {}, \
             \"rules_before\": {}, \"rules_after\": {}, \"incremental_ms\": {}, \
             \"full_ms\": {}, \"speedup\": {}, \"sound\": {}, \
             \"swap_served_identical\": {}}}{comma}",
            esc(&r.dataset),
            r.base_rows,
            r.appended_rows,
            r.batches,
            r.routed_pairs,
            r.uncovered_rows,
            r.violations,
            r.drifted_rules,
            r.repair_affected_rows,
            r.rules_before,
            r.rules_after,
            num(r.incremental_ms),
            num(r.full_ms),
            num(r.speedup),
            r.sound,
            r.swap_served_identical,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn finite_num(obj: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    let v = obj
        .get(key)
        .ok_or_else(|| format!("{ctx}: missing key '{key}'"))?;
    let x = v
        .as_num()
        .ok_or_else(|| format!("{ctx}: key '{key}' is not a number (got {v:?})"))?;
    if !x.is_finite() {
        return Err(format!("{ctx}: key '{key}' is non-finite"));
    }
    Ok(x)
}

fn uint(obj: &Json, key: &str, ctx: &str) -> Result<u64, String> {
    let x = finite_num(obj, key, ctx)?;
    if x < 0.0 || x.fract() != 0.0 {
        return Err(format!(
            "{ctx}: key '{key}' is not a non-negative integer ({x})"
        ));
    }
    Ok(x as u64)
}

fn bool_key(obj: &Json, key: &str, ctx: &str) -> Result<bool, String> {
    obj.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("{ctx}: key '{key}' missing or not a boolean"))
}

/// Validates a `BENCH_stream.json` document. On success, returns a
/// one-line summary; on failure, a message naming the first violation.
///
/// Shape checks: the schema tag and a non-empty `records` array. Per
/// record: positive base and appended sizes, positive batch count, both
/// timings positive, `speedup` consistent with `full_ms /
/// incremental_ms` (1% tolerance), a non-empty repaired rule set,
/// appended-row accounting that reconciles (every appended row is routed
/// to at least one rule or counted uncovered is not required — a row can
/// be both covered and violating — but `uncovered_rows <=
/// appended_rows`), `sound` true and `swap_served_identical` true (the
/// repaired artifact must pass the verifier and serve pinned answers).
/// The incremental advantage is a tracked promise at scale: every
/// `electricity` record with `base_rows >= 11520` must show `speedup >=
/// 5`.
pub fn validate(text: &str) -> Result<String, String> {
    let doc = parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("document: missing 'schema'")?;
    if schema != SCHEMA {
        return Err(format!("unexpected schema '{schema}' (want '{SCHEMA}')"));
    }
    let records = doc
        .get("records")
        .and_then(Json::as_arr)
        .ok_or("document: 'records' missing or not an array")?;
    if records.is_empty() {
        return Err("'records' is empty".to_string());
    }
    let mut gated = 0usize;
    let mut best = 0.0f64;
    for (i, r) in records.iter().enumerate() {
        let ctx = format!("records[{i}]");
        let dataset = r
            .get("dataset")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{ctx}: missing 'dataset'"))?;
        let base = uint(r, "base_rows", &ctx)?;
        let appended = uint(r, "appended_rows", &ctx)?;
        if base == 0 || appended == 0 {
            return Err(format!("{ctx}: empty base or tail"));
        }
        if uint(r, "batches", &ctx)? == 0 {
            return Err(format!("{ctx}: tail streamed in zero batches"));
        }
        if uint(r, "uncovered_rows", &ctx)? > appended {
            return Err(format!("{ctx}: more uncovered rows than appended rows"));
        }
        uint(r, "routed_pairs", &ctx)?;
        uint(r, "violations", &ctx)?;
        uint(r, "drifted_rules", &ctx)?;
        uint(r, "repair_affected_rows", &ctx)?;
        uint(r, "rules_before", &ctx)?;
        if uint(r, "rules_after", &ctx)? == 0 {
            return Err(format!("{ctx}: repaired rule set is empty"));
        }
        let inc = finite_num(r, "incremental_ms", &ctx)?;
        let full = finite_num(r, "full_ms", &ctx)?;
        if inc <= 0.0 || full <= 0.0 {
            return Err(format!(
                "{ctx}: non-positive timing (incremental={inc}, full={full})"
            ));
        }
        let speedup = finite_num(r, "speedup", &ctx)?;
        let derived = full / inc;
        if (speedup - derived).abs() > 0.01 * derived.max(1.0) {
            return Err(format!(
                "{ctx}: speedup {speedup} inconsistent with {full} / {inc} = {derived}"
            ));
        }
        if !bool_key(r, "sound", &ctx)? {
            return Err(format!("{ctx}: repaired artifact failed the verifier"));
        }
        if !bool_key(r, "swap_served_identical", &ctx)? {
            return Err(format!(
                "{ctx}: served answers diverged from offline evaluation after the swap"
            ));
        }
        if dataset == "electricity" && base as usize >= GATE_ROWS {
            gated += 1;
            if speedup < MIN_SPEEDUP {
                return Err(format!(
                    "{ctx}: incremental maintenance only {speedup:.2}x faster than \
                     rediscovery at gate scale (floor {MIN_SPEEDUP}x)"
                ));
            }
        }
        best = best.max(speedup);
    }
    Ok(format!(
        "ok: {} record(s), {gated} at gate scale, best speedup {best:.1}x",
        records.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(base: usize) -> StreamRecord {
        StreamRecord {
            dataset: "electricity".into(),
            base_rows: base,
            appended_rows: base / 10,
            batches: 8,
            routed_pairs: 1_000,
            uncovered_rows: 40,
            violations: 3,
            drifted_rules: 2,
            repair_affected_rows: 180,
            rules_before: 24,
            rules_after: 26,
            incremental_ms: 12.0,
            full_ms: 120.0,
            speedup: 10.0,
            sound: true,
            swap_served_identical: true,
        }
    }

    #[test]
    fn render_round_trips_through_validate() {
        let summary = validate(&render(&[record(11_520)])).expect("valid");
        assert!(summary.contains("1 record(s)"), "{summary}");
        assert!(summary.contains("1 at gate scale"), "{summary}");
    }

    #[test]
    fn slow_incremental_path_is_rejected_at_gate_scale_only() {
        let mut r = record(11_520);
        r.incremental_ms = 60.0;
        r.speedup = 2.0;
        let err = validate(&render(&[r.clone()])).expect_err("must fail");
        assert!(err.contains("gate scale"), "{err}");
        // The same ratio below gate scale is documented, not gated.
        r.base_rows = 2_880;
        r.appended_rows = 288;
        validate(&render(&[r])).expect("smoke scale passes");
    }

    #[test]
    fn inconsistent_speedup_is_rejected() {
        let mut r = record(11_520);
        r.speedup = 99.0;
        let err = validate(&render(&[r])).expect_err("must fail");
        assert!(err.contains("inconsistent"), "{err}");
    }

    #[test]
    fn unsound_or_diverged_records_are_rejected() {
        let mut r = record(11_520);
        r.sound = false;
        let err = validate(&render(&[r])).expect_err("must fail");
        assert!(err.contains("verifier"), "{err}");
        let mut r = record(11_520);
        r.swap_served_identical = false;
        let err = validate(&render(&[r])).expect_err("must fail");
        assert!(err.contains("diverged"), "{err}");
    }

    #[test]
    fn implausible_accounting_is_rejected() {
        let mut r = record(11_520);
        r.uncovered_rows = r.appended_rows as u64 + 1;
        assert!(validate(&render(&[r])).is_err());
        let mut r = record(11_520);
        r.rules_after = 0;
        assert!(validate(&render(&[r])).is_err());
        let mut r = record(11_520);
        r.full_ms = 0.0;
        assert!(validate(&render(&[r])).is_err());
    }

    #[test]
    fn empty_or_mislabeled_documents_are_rejected() {
        assert!(validate("{}").is_err());
        assert!(validate("{\"schema\": \"crr-stream-v1\", \"records\": []}").is_err());
        assert!(validate("{\"schema\": \"other\", \"records\": [1]}").is_err());
    }
}
