//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation section (§VI).
//!
//! ```text
//! cargo run --release -p crr-bench --bin experiments -- all
//! cargo run --release -p crr-bench --bin experiments -- fig2 fig9 table3
//! cargo run --release -p crr-bench --bin experiments -- --scale 0.2 all
//! cargo run --release -p crr-bench --bin experiments -- --time-budget 500 --max-fits 200 fig3
//! ```
//!
//! `--time-budget <ms>` / `--max-fits <n>` bound every discovery run in
//! the process; runs that trip the budget degrade gracefully (best-so-far
//! rules, fallback constants for the rest) and log a `[budget]` note.
//!
//! Beyond the paper artifacts there is a tracked benchmark, excluded from
//! `all`:
//!
//! ```text
//! cargo run --release -p crr-bench --bin experiments -- bench
//! cargo run --release -p crr-bench --bin experiments -- --bench-json out.json bench
//! cargo run --release -p crr-bench --bin experiments -- --check BENCH_discovery.json
//! ```
//!
//! `bench` times discovery with the sufficient-statistics fit engine
//! against the row-rescan baseline on Electricity and Tax at three sizes
//! each, plus sharded cells per dataset at the largest size (1-shard
//! baseline vs `--shards N` key-range shards, default 4, under both
//! equal-width and quantile boundary placement, through the cross-shard
//! model pool and the Algorithm 2 merge), and writes the result to
//! `BENCH_discovery.json` (or the `--bench-json` path).
//!
//! `--check <path>` re-parses any previously written tracked artifact and
//! fails the process unless it is complete and finite — the CI gate. The
//! file's own `schema` tag picks the validator, so one flag covers every
//! artifact; the legacy spellings (`--check-bench`, `--check-metrics`,
//! `--check-analysis`, `--check-serving`, `--check-stream`) remain as
//! aliases that force the artifact kind instead of sniffing it.
//!
//! Observability artifacts ride along:
//!
//! ```text
//! cargo run --release -p crr-bench --bin experiments -- --metrics-out metrics.json bench
//! cargo run --release -p crr-bench --bin experiments -- --check-metrics metrics.json
//! ```
//!
//! `--metrics-out` re-runs each bench cell once with an enabled
//! `MetricsSink` (timed reps stay uninstrumented), adds a fault-harness
//! cell with one injected fit failure, asserts the counter invariants
//! in-process (moments runs never rescan, cross-shard pool hits + misses
//! reconcile with probes, the injected-fault count matches the plan), and
//! writes the snapshots as `metrics.json`.
//! `--check-metrics` re-validates such a file — see EXPERIMENTS.md,
//! section "Benchmark artifact schemas", for both layouts.
//!
//! Static verification (also excluded from `all`):
//!
//! ```text
//! cargo run --release -p crr-bench --bin experiments -- analyze
//! cargo run --release -p crr-bench --bin experiments -- --analysis-json out.json analyze
//! cargo run --release -p crr-bench --bin experiments -- --check-analysis analysis.json
//! ```
//!
//! `analyze` discovers rules on Electricity and Tax — once unsharded,
//! once under a key-range shard plan — plus one stream-repaired
//! Electricity artifact (a regime-changed tail driven through
//! `crr-stream`'s repair), and runs `crr-analyze`'s seven static checks
//! (satisfiability, subsumption, shard-guard soundness, inference audit,
//! ρ-monotonicity, compile equivalence, repair obligations) over each
//! artifact — the sharded ones against their emitted proof obligations,
//! the repaired one against its bundled repair obligations. The reports
//! are written as `analysis.json` (or the `--analysis-json` path); any
//! `unsound` finding aborts in-process. `--check-analysis` re-validates
//! such a file — the CI gate refusing artifacts that fail their own
//! verification.
//!
//! Artifact-level verification rides along:
//!
//! ```text
//! cargo run --release -p crr-bench --bin experiments -- --artifact-out repaired.crr analyze
//! cargo run --release -p crr-bench --bin experiments -- --analyze-artifact repaired.crr
//! cargo run --release -p crr-bench --bin experiments -- --mutate-repair-guard repaired.crr
//! ```
//!
//! `--artifact-out <path>` makes `analyze` (and `stream`) persist the
//! stream-repaired artifact text. `--analyze-artifact <path>` re-runs the
//! full A1–A7 battery over such a file and fails unless it is sound.
//! `--mutate-repair-guard <path>` is the A7 mutation smoke: it strips the
//! guards off every repaired rule and fails unless the verifier refuses
//! the result with an `unsound` repair-obligations finding — proving the
//! gate actually bites.
//!
//! The serving benchmark (also excluded from `all`):
//!
//! ```text
//! cargo run --release -p crr-bench --bin experiments -- serving
//! cargo run --release -p crr-bench --bin experiments -- --serving-json out.json serving
//! cargo run --release -p crr-bench --bin experiments -- --check-serving BENCH_serving.json
//! ```
//!
//! `serving` discovers a rule set on Electricity, stands up a live
//! `crr-serve` server over the exported artifact, and measures it with
//! the closed-loop load generator: smoke cells (within capacity — must be
//! loss-free: zero sheds, zero deadline timeouts, every request `200`) on
//! `/v1/predict` and `/v1/check`, an overload cell (more clients than
//! `max_in_flight` — must shed `503`s, never reset connections), and a
//! hot-swap churn cell that drives accepted and rejected swaps while
//! pinning in-flight answers byte-identical to offline evaluation. The
//! result is written as `BENCH_serving.json`; `--check-serving`
//! re-validates it — the CI gate for the serving runtime.
//!
//! The streaming-maintenance benchmark (also excluded from `all`):
//!
//! ```text
//! cargo run --release -p crr-bench --bin experiments -- stream
//! cargo run --release -p crr-bench --bin experiments -- --stream-json out.json stream
//! cargo run --release -p crr-bench --bin experiments -- --check-stream BENCH_stream.json
//! ```
//!
//! `stream` discovers on a base slice of Electricity and Tax, replays an
//! appended tail through a `crr-stream` maintainer (batched appends, then
//! one partition-scoped repair), and measures the same end state reached
//! by full rediscovery over base+tail. The repaired artifact must pass
//! `crr-analyze`, hot-swap into a live `crr-serve` server, and serve
//! predictions byte-identical to offline evaluation; at the Electricity
//! headline scale the incremental path must beat rediscovery by the
//! `crr-stream-v1` speedup floor. The result is written as
//! `BENCH_stream.json`; `--check-stream` re-validates it.
//!
//! Absolute numbers differ from the paper (different hardware, synthetic
//! stand-in datasets); the *shape* — who wins, by what factor, where
//! crossovers fall — is what EXPERIMENTS.md records and compares.

// CLI harness: panicking on setup/IO failure is the failure mode we want,
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::type_complexity)]

use crr_baselines::{RegTree, RegTreeConfig};
use crr_bench::*;
use crr_core::LocateStrategy;
use crr_data::{RowSet, ShardSpec, Table};
use crr_datasets::{abalone, airquality, birdmap, electricity, paper_sizes, tax, GenConfig};
use crr_discovery::{
    compact_on_data, DiscoveryConfig, DiscoveryError, DiscoverySession, FitEngine, PredicateGen,
    PredicateSpace, QueueOrder, ScanKernel, ShardedDiscovery,
};
use crr_impute::{impute_with_rules, mask_random};
use crr_models::ModelKind;
use std::time::Instant;

/// One single-shard discovery run through the session front door, used at
/// every untimed call site. Timed sites build the session *before* starting
/// the clock so the builder clones stay out of the measurement.
fn run_discovery(
    table: &Table,
    rows: &RowSet,
    cfg: &DiscoveryConfig,
    space: &PredicateSpace,
) -> Result<ShardedDiscovery, DiscoveryError> {
    DiscoverySession::on(table)
        .rows(rows.clone())
        .predicates(space.clone())
        .config(cfg.clone())
        .run()
}

/// `--check <path>`: one gate for every tracked artifact. The file's own
/// `schema` tag picks the validator; the legacy per-artifact spellings
/// (`--check-bench`, `--check-metrics`, `--check-analysis`,
/// `--check-serving`, `--check-stream`) force `kind` instead of sniffing,
/// so a mislabeled file can't dodge its intended gate.
///
/// Prints the validator's summary and returns on success; prints the first
/// violation and exits non-zero otherwise.
fn check_artifact(path: &str, kind: Option<&str>) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let sniffed;
    let kind = match kind {
        Some(k) => k,
        None => {
            let schema = bench_json::parse(&text)
                .ok()
                .and_then(|doc| doc.get("schema").and_then(|s| s.as_str().map(String::from)));
            sniffed = schema;
            match sniffed.as_deref() {
                Some(s) if s.starts_with("crr-bench-discovery-") => "bench",
                Some(s) if s.starts_with("crr-metrics-") => "metrics",
                Some(s) if s.starts_with("crr-analysis-") => "analysis",
                Some(s) if s.starts_with("crr-serving-") => "serving",
                Some(s) if s.starts_with("crr-stream-") => "stream",
                Some(s) => {
                    eprintln!("{path}: INVALID: unrecognized artifact schema '{s}'");
                    std::process::exit(1);
                }
                None => {
                    eprintln!(
                        "{path}: INVALID: no 'schema' tag to dispatch on \
                         (is this a tracked artifact?)"
                    );
                    std::process::exit(1);
                }
            }
        }
    };
    let result = match kind {
        "bench" => bench_json::validate(&text),
        "metrics" => metrics_json::validate(&text),
        "analysis" => analysis_json::validate(&text),
        "serving" => serving_json::validate(&text),
        "stream" => stream_json::validate(&text),
        other => unreachable!("unknown artifact kind '{other}'"),
    };
    match result {
        Ok(summary) => println!("{path}: {summary}"),
        Err(e) => {
            eprintln!("{path}: INVALID: {e}");
            eprintln!(
                "(the expected layout is documented in EXPERIMENTS.md, \
                 section \"Benchmark artifact schemas\")"
            );
            std::process::exit(1);
        }
    }
}

/// Rebuilds `a` with every repaired rule's (index ≥ `kept`) conjuncts
/// stripped of their predicates: the spliced rules then claim
/// unconditional coverage while the bundled obligations still claim
/// bounded regions — the over-claim the verifier's A7 check exists to
/// catch. Returns `None` when the mutation cannot be caught (no repair
/// obligations, no regions, no repaired rules, or a guard-free region
/// that would confine any conjunct vacuously).
fn strip_repair_guards(
    a: &crr_discovery::RuleSetArtifact,
) -> Option<crr_discovery::RuleSetArtifact> {
    use crr_core::{Conjunction, Crr, Dnf, RuleSet};
    let repair = a.repair.clone()?;
    if repair.regions.is_empty()
        || repair.kept >= a.rules.len()
        || repair.regions.iter().any(|r| r.guards.is_empty())
    {
        return None;
    }
    let mut rules = RuleSet::new();
    for (i, r) in a.rules.rules().iter().enumerate() {
        if i < repair.kept {
            rules.push(r.clone());
            continue;
        }
        let conjs: Vec<Conjunction> = r
            .condition()
            .conjuncts()
            .iter()
            .map(|c| match c.builtin() {
                Some(t) => Conjunction::with_builtin(Vec::new(), t.clone()),
                None => Conjunction::top(),
            })
            .collect();
        let stripped = Crr::new(
            r.inputs().to_vec(),
            r.target(),
            std::sync::Arc::clone(r.model()),
            r.rho(),
            Dnf::of(conjs),
        )
        .expect("stripped rule stays well-formed");
        rules.push(stripped);
    }
    Some(
        crr_discovery::RuleSetArtifact::new(a.schema.clone(), rules, a.obligations.clone())
            .expect("mutated artifact keeps valid references")
            .with_repair(repair)
            .expect("repair guards keep valid references"),
    )
}

/// `--analyze-artifact <path>`: parse a `crr-artifact v1` file, run the
/// full verifier battery (A1–A7) and fail the process unless the artifact
/// is sound. The row-free analogue of `--check` for rule-set artifacts.
fn analyze_artifact_cmd(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let artifact = crr_discovery::RuleSetArtifact::from_text(&text)
        .unwrap_or_else(|e| panic!("{path}: not a rule-set artifact: {e}"));
    let report = crr_analyze::analyze_artifact(&artifact);
    for f in &report.findings {
        println!("  {f}");
    }
    let s = report.summary();
    println!(
        "{path}: rules={} conjuncts={} compile-equiv={} repair-regions={} \
         findings: {} unsound, {} redundant, {} hygiene",
        report.rules,
        report.conjuncts,
        report.counters.compile_equiv_checks,
        report.counters.repair_regions,
        s.unsound,
        s.redundant,
        s.hygiene
    );
    if !report.is_sound() {
        eprintln!("{path}: INVALID: artifact fails its own static verification");
        std::process::exit(1);
    }
}

/// `--mutate-repair-guard <path>`: the A7 mutation smoke. Strips the
/// guards off every repaired rule of the artifact and requires the
/// verifier to refuse the mutant with an `unsound` repair-obligations
/// finding. Exits non-zero when the artifact has nothing to mutate or —
/// the regression this gate exists for — when the mutant slips through.
fn mutate_repair_guard_cmd(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let artifact = crr_discovery::RuleSetArtifact::from_text(&text)
        .unwrap_or_else(|e| panic!("{path}: not a rule-set artifact: {e}"));
    let Some(mutated) = strip_repair_guards(&artifact) else {
        eprintln!("{path}: INVALID: artifact carries no strippable repair guards to mutate");
        std::process::exit(1);
    };
    let report = crr_analyze::analyze_artifact(&mutated);
    let caught = report.findings.iter().any(|f| {
        f.check == crr_analyze::Check::RepairObligations
            && f.severity == crr_analyze::Severity::Unsound
    });
    if caught {
        println!("{path}: mutation caught — stripped repair guard flagged unsound by A7");
    } else {
        eprintln!(
            "{path}: INVALID: stripped repair guard was NOT caught ({:?})",
            report.findings
        );
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut budget = crr_discovery::Budget::unlimited();
    let mut bench_json_path = "BENCH_discovery.json".to_string();
    let mut analysis_json_path = "analysis.json".to_string();
    let mut serving_json_path = "BENCH_serving.json".to_string();
    let mut stream_json_path = "BENCH_stream.json".to_string();
    let mut metrics_out: Option<String> = None;
    let mut artifact_out: Option<String> = None;
    let mut shards = 4usize;
    let mut experiments: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--bench-json" => {
                bench_json_path = it.next().expect("--bench-json needs a path").clone();
            }
            "--check" => {
                let path = it.next().expect("--check needs an artifact path");
                check_artifact(path, None);
                return;
            }
            "--check-bench" => {
                let path = it.next().expect("--check-bench needs a path");
                check_artifact(path, Some("bench"));
                return;
            }
            "--analysis-json" => {
                analysis_json_path = it.next().expect("--analysis-json needs a path").clone();
            }
            "--check-analysis" => {
                let path = it.next().expect("--check-analysis needs a path");
                check_artifact(path, Some("analysis"));
                return;
            }
            "--artifact-out" => {
                artifact_out = Some(it.next().expect("--artifact-out needs a path").clone());
            }
            "--analyze-artifact" => {
                let path = it.next().expect("--analyze-artifact needs a path");
                analyze_artifact_cmd(path);
                return;
            }
            "--mutate-repair-guard" => {
                let path = it.next().expect("--mutate-repair-guard needs a path");
                mutate_repair_guard_cmd(path);
                return;
            }
            "--serving-json" => {
                serving_json_path = it.next().expect("--serving-json needs a path").clone();
            }
            "--check-serving" => {
                let path = it.next().expect("--check-serving needs a path");
                check_artifact(path, Some("serving"));
                return;
            }
            "--stream-json" => {
                stream_json_path = it.next().expect("--stream-json needs a path").clone();
            }
            "--check-stream" => {
                let path = it.next().expect("--check-stream needs a path");
                check_artifact(path, Some("stream"));
                return;
            }
            "--metrics-out" => {
                metrics_out = Some(it.next().expect("--metrics-out needs a path").clone());
            }
            "--check-metrics" => {
                let path = it.next().expect("--check-metrics needs a path");
                check_artifact(path, Some("metrics"));
                return;
            }
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs a number");
            }
            "--shards" => {
                shards = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 2)
                    .expect("--shards needs a count >= 2");
            }
            "--time-budget" => {
                let ms: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--time-budget needs milliseconds");
                budget = budget.with_deadline(std::time::Duration::from_millis(ms));
            }
            "--max-fits" => {
                let n: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-fits needs a count");
                budget = budget.with_max_fits(n);
            }
            other => experiments.push(other.to_string()),
        }
    }
    if !budget.is_unlimited() {
        // Every discovery run in this process degrades gracefully at the
        // budget instead of running unbounded; degraded runs log a
        // "[budget]" note with their outcome.
        set_global_budget(budget);
    }
    if experiments.is_empty() || experiments.iter().any(|e| e == "all") {
        experiments = vec![
            "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
            "table3", "table4", "ablation",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }
    let total = Instant::now();
    for exp in &experiments {
        let start = Instant::now();
        match exp.as_str() {
            "table2" => table2(scale),
            "fig2" => fig2(scale),
            "fig3" => fig3(scale),
            "fig4" => fig4(scale),
            "fig5" => fig5(scale),
            "fig6" => fig6(scale),
            "fig7" => fig7(scale),
            "fig8" => fig8(scale),
            "fig9" => fig9(scale),
            "fig10" => fig10(scale),
            "table3" => table3(scale),
            "table4" => table4(scale),
            "ablation" => ablation(scale),
            "bench" => bench(scale, &bench_json_path, metrics_out.as_deref(), shards),
            "analyze" => analyze_cmd(scale, &analysis_json_path, shards, artifact_out.as_deref()),
            "serving" => serving_cmd(scale, &serving_json_path),
            "stream" => stream_cmd(scale, &stream_json_path, artifact_out.as_deref()),
            other => eprintln!("unknown experiment: {other}"),
        }
        eprintln!("[{exp} took {:?}]", start.elapsed());
    }
    eprintln!("\n[all requested experiments took {:?}]", total.elapsed());
}

fn scaled(n: usize, scale: f64) -> usize {
    ((n as f64 * scale) as usize).max(100)
}

/// Table II: dataset statistics.
fn table2(scale: f64) {
    let mut rows = Vec::new();
    let gens: [(&str, fn(&GenConfig) -> crr_datasets::Dataset, usize); 5] = [
        ("AirQuality", airquality, paper_sizes::AIRQUALITY),
        ("Electricity", electricity, paper_sizes::ELECTRICITY),
        ("BirdMap", birdmap, paper_sizes::BIRDMAP),
        ("Tax", tax, paper_sizes::TAX),
        ("Abalone", abalone, paper_sizes::ABALONE),
    ];
    for (_, make, full) in gens {
        let ds = make(&GenConfig {
            rows: scaled(full, scale),
            seed: 42,
        });
        let (name, r, c, cat) = ds.stats();
        rows.push(vec![
            name.to_string(),
            format!("{:.1}k", r as f64 / 1e3),
            c.to_string(),
            cat.to_string(),
        ]);
    }
    print_table(
        "Table II: dataset statistics",
        &["Dataset", "#Row", "#Column", "Category"],
        &rows,
    );
}

/// Shared runner for Figures 2–4: instance scalability vs. baselines.
fn scalability_figure(
    title: &str,
    make: impl Fn(usize) -> Scenario,
    sizes: &[usize],
    baselines: &[BaselineKind],
    crr_opts: &CrrOptions,
) {
    let mut rows = Vec::new();
    let max = *sizes.last().expect("sizes non-empty");
    let sc = make(max);
    for &n in sizes {
        let inst = sc.instance(n);
        let (crr, _) = measure_crr(&sc, &inst, crr_opts);
        rows.push(result_row(&crr, n));
        for &b in baselines {
            let r = measure_baseline(&sc, &inst, b);
            rows.push(result_row(&r, n));
        }
    }
    print_table(
        title,
        &["Method", "|I|", "Learn(s)", "Eval(ms)", "#Rules", "RMSE"],
        &rows,
    );
}

/// Figure 2: AirQuality, all time-series comparators.
fn fig2(scale: f64) {
    let sizes: Vec<usize> = [1_000, 2_500, 5_000, 7_500, paper_sizes::AIRQUALITY]
        .iter()
        .map(|&n| scaled(n, scale))
        .collect();
    scalability_figure(
        "Figure 2: training/evaluation instance scalability, AirQuality",
        |n| airquality_scenario(n, 2),
        &sizes,
        &BaselineKind::TIME_SERIES,
        // ~2h predicate resolution over the 9.4k-hour domain (4-6h regimes).
        &CrrOptions {
            predicates_per_attr: 4_095,
            ..Default::default()
        },
    );
}

/// Figure 3: Electricity. The paper sweeps to 2M rows; the default here
/// sweeps a scaled-down range (multiply with --scale to go bigger).
fn fig3(scale: f64) {
    let sizes: Vec<usize> = [5_000, 10_000, 20_000, 40_000]
        .iter()
        .map(|&n| scaled(n, scale))
        .collect();
    scalability_figure(
        "Figure 3: training/evaluation instance scalability, Electricity",
        |n| electricity_scenario(n, 3),
        &sizes,
        &BaselineKind::TIME_SERIES,
        &CrrOptions {
            predicates_per_attr: 511,
            ..Default::default()
        },
    );
}

/// Figure 4: Tax, relational comparators only.
fn fig4(scale: f64) {
    let sizes: Vec<usize> = [10_000, 25_000, 50_000, 100_000]
        .iter()
        .map(|&n| scaled(n, scale))
        .collect();
    scalability_figure(
        "Figure 4: training/evaluation instance scalability, Tax",
        |n| tax_scenario(n, 4),
        &sizes,
        &BaselineKind::RELATIONAL,
        &CrrOptions {
            predicates_per_attr: 15,
            ..Default::default()
        },
    );
}

/// Figure 5: CRR vs. unconditional RR across instance sizes, per model
/// family, on BirdMap (one year per bird, per-bird predicates).
fn fig5(scale: f64) {
    let sizes: Vec<usize> = [1_000, 2_000, 4_000, 8_000]
        .iter()
        .map(|&n| scaled(n, scale))
        .collect();
    let sc = birdmap_scenario(*sizes.last().unwrap(), 5);
    let mut rows = Vec::new();
    for &n in &sizes {
        let inst = sc.instance(n);
        for kind in ModelKind::ALL {
            let opts = CrrOptions {
                kind,
                predicates_per_attr: 127,
                ..Default::default()
            };
            let (crr, _) = measure_crr(&sc, &inst, &opts);
            rows.push(vec![
                format!("CRR-{}", kind.label()),
                n.to_string(),
                secs(crr.learn),
                format!("{:.4}", crr.rmse),
                crr.rules.to_string(),
            ]);
            let rr = measure_rr(&sc, &inst, kind);
            rows.push(vec![
                format!("RR-{}", kind.label()),
                n.to_string(),
                secs(rr.learn),
                format!("{:.4}", rr.rmse),
                rr.rules.to_string(),
            ]);
        }
    }
    print_table(
        "Figure 5: instance scalability, RMSE and time, BirdMap",
        &["Method", "|I|", "Learn(s)", "RMSE", "#Rules"],
        &rows,
    );
}

/// Figure 6: predicate scalability — RMSE and time vs. |P|.
fn fig6(scale: f64) {
    let n = scaled(6_000, scale);
    let sc = birdmap_scenario(n, 6);
    let rows_set = sc.rows();
    let mut rows = Vec::new();
    for per_attr in [4usize, 8, 16, 32, 64, 128, 256] {
        for kind in ModelKind::ALL {
            let opts = CrrOptions {
                kind,
                predicates_per_attr: per_attr,
                ..Default::default()
            };
            let (crr, _) = measure_crr(&sc, &rows_set, &opts);
            rows.push(vec![
                format!("CRR-{}", kind.label()),
                (2 * per_attr).to_string(), // >/<= pairs
                secs(crr.learn),
                format!("{:.4}", crr.rmse),
                crr.rules.to_string(),
            ]);
        }
    }
    print_table(
        "Figure 6: predicate scalability, BirdMap",
        &["Method", "|P|", "Learn(s)", "RMSE", "#Rules"],
        &rows,
    );
}

/// Figure 7: column scalability — discover CRRs for 1..k target columns
/// of AirQuality (in parallel), report per-column RMSE stability and the
/// near-linear growth of total time.
fn fig7(scale: f64) {
    let n = scaled(4_000, scale);
    let sc = airquality_scenario(n, 7);
    let table = sc.table();
    let hour = sc.time_attr;
    let sensor_names = ["no2", "co", "o3", "pm25", "temp", "nox", "so2", "rh"];
    let mut rows = Vec::new();
    for k in 1..=sensor_names.len() {
        let tasks: Vec<crr_discovery::parallel::Task> = sensor_names[..k]
            .iter()
            .map(|name| {
                let target = table.attr(name).unwrap();
                let space = PredicateGen::binary(2_047).generate(table, &[hour], target, 11);
                let mut cfg = crr_discovery::DiscoveryConfig::new(vec![hour], target, sc.rho_max);
                if let Some(budget) = global_budget() {
                    cfg = cfg.with_budget(budget);
                }
                crr_discovery::parallel::Task { config: cfg, space }
            })
            .collect();
        let session = DiscoverySession::on(table).rows(sc.rows());
        let start = Instant::now();
        let results = session.run_all(&tasks, 4);
        let elapsed = start.elapsed();
        let mut rmse_sum = 0.0;
        let mut rule_sum = 0usize;
        for r in &results {
            let d = r.as_ref().expect("discovery");
            let report = d.rules.evaluate(table, &sc.rows(), LocateStrategy::First);
            rmse_sum += report.rmse;
            rule_sum += d.rules.len();
        }
        rows.push(vec![
            k.to_string(),
            secs(elapsed),
            format!("{:.4}", rmse_sum / k as f64),
            rule_sum.to_string(),
        ]);
    }
    print_table(
        "Figure 7: column scalability, AirQuality",
        &["#TargetCols", "TotalLearn(s)", "AvgRMSE", "TotalRules"],
        &rows,
    );
}

/// Figure 8: sensitivity to the maximum bias rho_M. Beyond the paper, the
/// runner also reports held-out RMSE (20% test split) so the
/// over-refinement cost of tiny rho_M is visible out of sample.
fn fig8(scale: f64) {
    let mut rows = Vec::new();
    let bird = birdmap_scenario(scaled(6_000, scale), 8);
    let aba = abalone_scenario(scaled(4_200, scale), 8);
    for (sc, name, rhos) in [
        (&bird, "BirdMap", [0.1, 0.2, 0.5, 1.0, 2.0, 5.0]),
        (&aba, "Abalone", [0.1, 0.25, 0.5, 1.0, 2.0, 5.0]),
    ] {
        let (train, test) = holdout_split(&sc.rows(), 0.2, 8);
        for rho in rhos {
            let opts = CrrOptions {
                rho_max: Some(rho),
                predicates_per_attr: 127,
                ..Default::default()
            };
            let (crr, ruleset) = measure_crr(sc, &train, &opts);
            let test_rep = ruleset.evaluate(sc.table(), &test, LocateStrategy::First);
            rows.push(vec![
                name.to_string(),
                format!("{rho}"),
                secs(crr.learn),
                format!("{:.4}", crr.rmse),
                format!("{:.4}", test_rep.rmse),
                crr.rules.to_string(),
            ]);
        }
    }
    print_table(
        "Figure 8: parameter study on regression bias rho_M",
        &[
            "Dataset",
            "rho_M",
            "Learn(s)",
            "TrainRMSE",
            "TestRMSE",
            "#Rules",
        ],
        &rows,
    );
}

/// Shared fig9/fig10 fixture: a regression tree, its compaction, and CRR
/// searching, per model family and dataset.
struct CompactionFixture {
    dataset: String,
    family: &'static str,
    tree_rules: crr_core::RuleSet,
    tree_compacted: crr_core::RuleSet,
    crr_search: crr_core::RuleSet,
    crr_compacted: crr_core::RuleSet,
}

fn compaction_fixtures(scale: f64) -> Vec<CompactionFixture> {
    let mut out = Vec::new();
    for (sc, name) in [
        (birdmap_scenario(scaled(5_000, scale), 9), "BirdMap"),
        (abalone_scenario(scaled(4_200, scale), 9), "Abalone"),
    ] {
        for kind in ModelKind::ALL {
            let rows = sc.rows();
            let mut tree_cfg = RegTreeConfig::with_kind(kind);
            if kind == ModelKind::Mlp {
                tree_cfg.fit.mlp.epochs = 60;
                tree_cfg.fit.mlp.hidden = 6;
            }
            let tree = RegTree::fit(
                sc.table(),
                &rows,
                &sc.inputs,
                &sc.condition_attrs,
                sc.target,
                &tree_cfg,
            )
            .expect("regtree");
            let tree_rules = tree.to_ruleset().expect("export");
            let (tree_compacted, _) =
                compact_on_data(&tree_rules, 0.2, sc.rho_max, sc.table(), &rows)
                    .expect("compaction");
            let opts = CrrOptions {
                kind,
                predicates_per_attr: 127,
                compact: false,
                ..Default::default()
            };
            let (cfg, space) = crr_inputs(&sc, &opts);
            let search = run_discovery(sc.table(), &rows, &cfg, &space).expect("crr");
            let (crr_compacted, _) =
                compact_on_data(&search.rules, 1e-6, sc.rho_max, sc.table(), &rows)
                    .expect("crr compaction");
            out.push(CompactionFixture {
                dataset: name.to_string(),
                family: kind.label(),
                tree_rules,
                tree_compacted,
                crr_search: search.rules,
                crr_compacted,
            });
        }
    }
    out
}

/// Figure 9: rule counts — RegTree vs. RegTree+compaction vs. CRR search.
fn fig9(scale: f64) {
    let rows: Vec<Vec<String>> = compaction_fixtures(scale)
        .into_iter()
        .map(|f| {
            vec![
                f.dataset,
                f.family.to_string(),
                f.tree_rules.len().to_string(),
                f.tree_compacted.len().to_string(),
                f.crr_search.len().to_string(),
                f.crr_compacted.len().to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 9: rule compaction via translation and fusion",
        &[
            "Dataset",
            "Model",
            "RegTree",
            "RegTree+Compact",
            "CRR-search",
            "CRR+Compact",
        ],
        &rows,
    );
}

/// Figure 10: imputation RMSE and time, with vs. without compaction.
fn fig10(scale: f64) {
    let mut rows = Vec::new();
    for f in compaction_fixtures(scale) {
        // Rebuild the matching scenario to mask values.
        let sc = match f.dataset.as_str() {
            "BirdMap" => birdmap_scenario(scaled(5_000, scale), 9),
            _ => abalone_scenario(scaled(4_200, scale), 9),
        };
        let mut masked = sc.table().clone();
        let plan = mask_random(&mut masked, sc.target, 0.1, 10);
        for (label, rules) in [
            ("RegTree", &f.tree_rules),
            ("RegTree+Compact", &f.tree_compacted),
            ("CRR+Compact", &f.crr_compacted),
        ] {
            let rep = impute_with_rules(&masked, rules, &plan);
            rows.push(vec![
                f.dataset.clone(),
                f.family.to_string(),
                label.to_string(),
                format!("{:.4}", rep.rmse),
                millis(rep.time),
                rules.len().to_string(),
            ]);
        }
    }
    print_table(
        "Figure 10: missing-data imputation with/without compaction",
        &["Dataset", "Model", "Rules", "RMSE", "Time(ms)", "#Rules"],
        &rows,
    );
}

/// Table III: predicate generation strategies (averaged over seeds).
fn table3(scale: f64) {
    let mut rows = Vec::new();
    let datasets: [(fn(usize, u64) -> Scenario, &str); 2] =
        [(birdmap_scenario, "BirdMap"), (abalone_scenario, "Abalone")];
    for (make, name) in datasets {
        let n = scaled(if name == "BirdMap" { 5_000 } else { 4_200 }, scale);
        for gen_name in ["Expert", "Binary", "Random"] {
            let (mut learn, mut eval, mut rmse, mut rules) = (0.0, 0.0, 0.0, 0.0);
            let seeds = [1u64, 2, 3];
            for &seed in &seeds {
                let sc = make(n, seed);
                let generator = match gen_name {
                    "Expert" => PredicateGen::expert(sc.expert_boundaries()),
                    "Binary" => PredicateGen::binary(64),
                    _ => PredicateGen::random(64),
                };
                let opts = CrrOptions {
                    generator: Some(generator),
                    predicates_per_attr: 64,
                    ..Default::default()
                };
                let (r, _) = measure_crr(&sc, &sc.rows(), &opts);
                learn += r.learn.as_secs_f64();
                eval += r.eval.as_secs_f64() * 1e3;
                rmse += r.rmse;
                rules += r.rules as f64;
            }
            let k = seeds.len() as f64;
            rows.push(vec![
                name.to_string(),
                gen_name.to_string(),
                format!("{:.3}", learn / k),
                format!("{:.2}", eval / k),
                format!("{:.4}", rmse / k),
                format!("{:.1}", rules / k),
            ]);
        }
    }
    print_table(
        "Table III: performance over varied predicate generators",
        &[
            "Data",
            "Method",
            "Learning(s)",
            "Evaluation(ms)",
            "RMSE",
            "#Rules",
        ],
        &rows,
    );
}

/// Table IV: model-sharing priority (queue ordering).
fn table4(scale: f64) {
    let mut rows = Vec::new();
    let datasets: [(fn(usize, u64) -> Scenario, &str); 2] =
        [(birdmap_scenario, "BirdMap"), (abalone_scenario, "Abalone")];
    for (make, name) in datasets {
        let n = scaled(if name == "BirdMap" { 5_000 } else { 4_200 }, scale);
        for (order, label) in [
            (QueueOrder::Decrease, "Decrease"),
            (QueueOrder::Increase, "Increase"),
            (QueueOrder::Random(7), "Random"),
        ] {
            let (mut learn, mut eval, mut rmse, mut rules, mut trained) = (0.0, 0.0, 0.0, 0.0, 0.0);
            let seeds = [1u64, 2, 3];
            for &seed in &seeds {
                let sc = make(n, seed);
                let opts = CrrOptions {
                    order,
                    predicates_per_attr: 64,
                    ..Default::default()
                };
                let (r, _) = measure_crr(&sc, &sc.rows(), &opts);
                learn += r.learn.as_secs_f64();
                eval += r.eval.as_secs_f64() * 1e3;
                rmse += r.rmse;
                rules += r.rules as f64;
                trained += r.trained as f64;
            }
            let k = seeds.len() as f64;
            rows.push(vec![
                name.to_string(),
                label.to_string(),
                format!("{:.3}", learn / k),
                format!("{:.2}", eval / k),
                format!("{:.4}", rmse / k),
                format!("{:.1}", rules / k),
                format!("{:.1}", trained / k),
            ]);
        }
    }
    print_table(
        "Table IV: performance of model sharing priority",
        &[
            "Data",
            "Order",
            "Learning(s)",
            "Evaluation(ms)",
            "RMSE",
            "#Rules",
            "#Trained",
        ],
        &rows,
    );
}

/// Ablations of the design choices DESIGN.md calls out (not a paper
/// artifact): model sharing on/off, split criterion, data-validated vs.
/// pure-inference compaction, and the interval rule index.
fn ablation(scale: f64) {
    use crr_core::RuleIndex;
    use crr_discovery::{compact, SplitStrategy};

    let n = scaled(8_000, scale);
    let sc = birdmap_scenario(n, 40);
    let rows = sc.rows();
    let mut out: Vec<Vec<String>> = Vec::new();

    // (a) Model sharing on/off: trained models and learning time.
    for share in [true, false] {
        let opts = CrrOptions {
            share,
            predicates_per_attr: 127,
            ..Default::default()
        };
        let (r, _) = measure_crr(&sc, &rows, &opts);
        out.push(vec![
            format!("sharing={share}"),
            secs(r.learn),
            format!("{:.4}", r.rmse),
            r.rules.to_string(),
            r.trained.to_string(),
        ]);
    }

    // (b) Split criterion: residual vs. raw-variance vs. first-applicable.
    for (label, split) in [
        ("split=residual", SplitStrategy::BestResidual),
        ("split=variance", SplitStrategy::BestVariance),
        ("split=first", SplitStrategy::FirstApplicable),
    ] {
        let opts = CrrOptions {
            predicates_per_attr: 127,
            ..Default::default()
        };
        let (mut cfg, space) = crr_inputs(&sc, &opts);
        cfg.split = split;
        let session = DiscoverySession::on(sc.table())
            .rows(rows.clone())
            .predicates(space.clone())
            .config(cfg.clone());
        let start = Instant::now();
        let d = session.run().expect("discover");
        let learn = start.elapsed();
        let rep = d.rules.evaluate(sc.table(), &rows, LocateStrategy::First);
        out.push(vec![
            label.to_string(),
            secs(learn),
            format!("{:.4}", rep.rmse),
            d.rules.len().to_string(),
            d.stats.models_trained.to_string(),
        ]);
    }

    // (c) Compaction: data-validated vs. pure inference, on the same
    //     discovered set.
    let opts = CrrOptions {
        predicates_per_attr: 127,
        compact: false,
        ..Default::default()
    };
    let (cfg, space) = crr_inputs(&sc, &opts);
    let d = run_discovery(sc.table(), &rows, &cfg, &space).expect("discover");
    for (label, rules) in [
        (
            "compact=validated",
            compact_on_data(&d.rules, 1e-6, cfg.rho_max, sc.table(), &rows)
                .expect("compact")
                .0,
        ),
        ("compact=pure", compact(&d.rules, 1e-6).expect("compact").0),
        ("compact=none", d.rules.clone()),
    ] {
        let rep = rules.evaluate(sc.table(), &rows, LocateStrategy::First);
        out.push(vec![
            label.to_string(),
            "-".into(),
            format!("{:.4}", rep.rmse),
            rules.len().to_string(),
            "-".into(),
        ]);
    }

    // (d) Rule locating: linear scan vs. interval index, same rule set.
    let (compacted, _) =
        compact_on_data(&d.rules, 1e-6, cfg.rho_max, sc.table(), &rows).expect("compact");
    let t0 = Instant::now();
    let scan_rep = compacted.evaluate(sc.table(), &rows, LocateStrategy::First);
    let scan_time = t0.elapsed();
    let t1 = Instant::now();
    let index = RuleIndex::build(&compacted, sc.table());
    let idx_rep = index.evaluate(sc.table(), &rows);
    let idx_time = t1.elapsed();
    assert_eq!(scan_rep, idx_rep, "index must match the scan exactly");
    out.push(vec![
        "locate=scan".into(),
        format!("eval {}ms", millis(scan_time)),
        format!("{:.4}", scan_rep.rmse),
        compacted.len().to_string(),
        "-".into(),
    ]);
    out.push(vec![
        "locate=index".into(),
        format!("eval {}ms", millis(idx_time)),
        format!("{:.4}", idx_rep.rmse),
        compacted.len().to_string(),
        "-".into(),
    ]);

    print_table(
        "Ablations: sharing / split criterion / compaction / rule index (BirdMap)",
        &["Variant", "Learn(s)", "RMSE", "#Rules", "#Trained"],
        &out,
    );
}

/// Tracked benchmark: the sufficient-statistics fit engine vs. the
/// row-rescan baseline, on Electricity and Tax at three instance sizes,
/// plus a sharded cell per dataset at the largest size (1-shard vs
/// `shards`-way key-range plan). Pure Algorithm 1 (no compaction) in the
/// engine cells; the sharded cells include the cross-shard Algorithm 2
/// merge, which is part of what they measure. Best-of-reps wall clock.
/// Writes the machine-readable report to `path` (`--bench-json`), which
/// `--check-bench` / `scripts/ci.sh` re-validate.
///
/// With `metrics_out` set, each cell is re-run once with an enabled
/// [`crr_discovery::MetricsSink`] (kept out of the timed reps), a
/// fault-harness cell with exactly one injected fit failure is added, and
/// the snapshots are written as a `metrics.json` document after in-process
/// invariant checks.
fn bench(scale: f64, path: &str, metrics_out: Option<&str>, shards: usize) {
    use crr_core::LocateStrategy;
    use crr_discovery::MetricsSink;

    let reps = if scale >= 1.0 { 3 } else { 1 };
    let cells: [(&str, fn(usize, u64) -> Scenario, [usize; 3], usize); 2] = [
        (
            "electricity",
            electricity_scenario,
            [2_880, 5_760, 11_520],
            255,
        ),
        ("tax", tax_scenario, [2_500, 5_000, 10_000], 15),
    ];
    let mut report = bench_json::BenchReport::default();
    let mut metric_runs: Vec<metrics_json::MetricsRun> = Vec::new();
    let mut table_rows = Vec::new();
    for (name, make, sizes, per_attr) in cells {
        for size in sizes {
            let sc = make(scaled(size, scale), 42);
            let rows = sc.rows();
            let mut secs_by_engine = [f64::INFINITY; 3];
            // rules / trained / rmse of the compiled moments cell — the
            // interpreted cell must reproduce them exactly (the compiled
            // kernels are accelerators, never a semantic change).
            let mut moments_outcome: Option<(usize, usize, f64)> = None;
            for (ei, (label, engine, kernel)) in [
                ("moments", FitEngine::Moments, ScanKernel::Compiled),
                ("rescan", FitEngine::Rescan, ScanKernel::Compiled),
                ("interpreted", FitEngine::Moments, ScanKernel::Interpreted),
            ]
            .into_iter()
            .enumerate()
            {
                let opts = CrrOptions {
                    engine,
                    compact: false,
                    predicates_per_attr: per_attr,
                    ..Default::default()
                };
                let (cfg, space) = crr_inputs(&sc, &opts);
                let cfg = cfg.with_kernel(kernel);
                let mut found = None;
                for _ in 0..reps {
                    let session = DiscoverySession::on(sc.table())
                        .rows(rows.clone())
                        .predicates(space.clone())
                        .config(cfg.clone());
                    let start = Instant::now();
                    let d = session.run().expect("discovery");
                    secs_by_engine[ei] = secs_by_engine[ei].min(start.elapsed().as_secs_f64());
                    found = Some(d);
                }
                let d = found.expect("at least one rep");
                let rep = d.rules.evaluate(sc.table(), &rows, LocateStrategy::First);
                match label {
                    "moments" => {
                        moments_outcome = Some((d.rules.len(), d.stats.models_trained, rep.rmse));
                    }
                    "interpreted" => {
                        let (mr, mt, mrmse) = moments_outcome.expect("moments cell measured first");
                        assert_eq!(
                            (mr, mt),
                            (d.rules.len(), d.stats.models_trained),
                            "{name}@{}: interpreted kernel changed the discovered rules",
                            rows.len()
                        );
                        assert_eq!(
                            mrmse.to_bits(),
                            rep.rmse.to_bits(),
                            "{name}@{}: interpreted kernel changed the RMSE",
                            rows.len()
                        );
                    }
                    _ => {}
                }
                table_rows.push(vec![
                    name.to_string(),
                    rows.len().to_string(),
                    label.to_string(),
                    format!("{:.4}", secs_by_engine[ei]),
                    d.rules.len().to_string(),
                    d.stats.models_trained.to_string(),
                    format!("{:.4}", rep.rmse),
                ]);
                report.records.push(bench_json::BenchRecord {
                    dataset: name.to_string(),
                    rows: rows.len(),
                    engine: label.to_string(),
                    learn_secs: secs_by_engine[ei],
                    rules: d.rules.len(),
                    trained: d.stats.models_trained,
                    rmse: rep.rmse,
                });
                if metrics_out.is_some() && label != "interpreted" {
                    // One extra instrumented run per cell, outside the timed
                    // reps so the tracked numbers stay uninstrumented (the
                    // interpreted oracle cell is not re-instrumented: it is
                    // the same moments configuration under the slow kernel).
                    // The in-process asserts pin the invariants
                    // --check-metrics re-verifies from the file.
                    let cfg = cfg.clone().with_metrics(MetricsSink::enabled());
                    let dm =
                        run_discovery(sc.table(), &rows, &cfg, &space).expect("metered discovery");
                    let m = &dm.metrics;
                    assert_eq!(
                        m.count("queue", "rules_emitted"),
                        Some(dm.rules.len() as u64),
                        "{name}@{}/{label}: rules_emitted drifted",
                        rows.len()
                    );
                    match engine {
                        FitEngine::Moments => assert_eq!(
                            m.count("fits", "rescans"),
                            Some(0),
                            "{name}@{}/moments: engine rescanned rows",
                            rows.len()
                        ),
                        FitEngine::Rescan => assert_eq!(
                            m.count("fits", "moments_solves"),
                            Some(0),
                            "{name}@{}/rescan: engine used moments",
                            rows.len()
                        ),
                    }
                    metric_runs.push(metrics_json::MetricsRun {
                        dataset: name.to_string(),
                        rows: rows.len(),
                        engine: label.to_string(),
                        expected_fault_events: None,
                        shard_rows: Vec::new(),
                        snapshot: dm.metrics,
                    });
                }
            }
            report.speedup.push(bench_json::SpeedupEntry {
                dataset: name.to_string(),
                rows: rows.len(),
                moments_secs: secs_by_engine[0],
                rescan_secs: secs_by_engine[1],
                ratio: secs_by_engine[1] / secs_by_engine[0],
            });
            if size == sizes[sizes.len() - 1] {
                // Per-kernel throughput cells at the largest size, plus the
                // end-to-end cell from the engine timings above
                // (interpreted kernel vs compiled, both moments engine).
                let opts = CrrOptions {
                    compact: false,
                    predicates_per_attr: per_attr,
                    ..Default::default()
                };
                let (cfg, space) = crr_inputs(&sc, &opts);
                kernel_microbench(
                    &mut report,
                    name,
                    sc.table(),
                    &rows,
                    &cfg,
                    &space,
                    secs_by_engine[2],
                    secs_by_engine[0],
                );
            }
        }
    }

    // Sharded cells: the largest size per dataset, key-range shards on the
    // scenario's key attribute under *both* boundary placements. The
    // 1-shard run is the baseline (pinned byte-identical to classic
    // discovery by the regression tests); the N-shard runs exercise the
    // frozen cross-shard pool and the Algorithm 2 merge. The quantile cell
    // is the adaptive planner's and is what the acceptance gate reads; the
    // equal-width cell keeps the old geometry measured beside it.
    for (name, make, sizes, per_attr) in cells {
        let size = *sizes.last().expect("sizes non-empty");
        let sc = make(scaled(size, scale), 42);
        let rows = sc.rows();
        let opts = CrrOptions {
            compact: false,
            predicates_per_attr: per_attr,
            ..Default::default()
        };
        let (cfg, space) = crr_inputs(&sc, &opts);
        let key = sc.time_attr;
        let specs = [
            ("single", ShardSpec::by_key(key).quantile().shards(1)),
            (
                "equal_width",
                ShardSpec::by_key(key).equal_width().shards(shards),
            ),
            ("quantile", ShardSpec::by_key(key).quantile().shards(shards)),
        ];
        // Oversubscribing a small box serializes the waves anyway and adds
        // contention, so shard workers are capped at the hardware's actual
        // parallelism (the algorithmic sharding gains — smaller per-shard
        // queues, cross-pool sharing — survive even at one worker).
        let hw = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let mut best = [f64::INFINITY; 3];
        let mut quantile_found = None;
        for (pi, (_, spec)) in specs.iter().enumerate() {
            let threads = if pi == 0 { 1 } else { shards.min(4).min(hw) };
            let cfg = cfg.clone().with_shard_threads(threads);
            for _ in 0..reps {
                let session = DiscoverySession::on(sc.table())
                    .rows(rows.clone())
                    .predicates(space.clone())
                    .config(cfg.clone())
                    .sharded(spec.clone());
                let start = Instant::now();
                let d = session.run().expect("sharded discovery");
                best[pi] = best[pi].min(start.elapsed().as_secs_f64());
                if pi == 2 {
                    quantile_found = Some(d);
                }
            }
        }
        let d = quantile_found.expect("at least one quantile rep");
        let rep = d.rules.evaluate(sc.table(), &rows, LocateStrategy::First);
        // Acceptance pin: the compiled kernels must be byte-identical under
        // the adaptive N-way plan too. One untimed interpreted-kernel run
        // of the same spec; rule conditions, biases and RMSE must all match.
        let di = DiscoverySession::on(sc.table())
            .rows(rows.clone())
            .predicates(space.clone())
            .config(
                cfg.clone()
                    .with_shard_threads(shards.min(4))
                    .with_kernel(ScanKernel::Interpreted),
            )
            .sharded(ShardSpec::by_key(key).quantile().shards(shards))
            .run()
            .expect("interpreted sharded discovery");
        assert_eq!(
            d.rules.len(),
            di.rules.len(),
            "{name}: interpreted kernel changed the sharded rule count"
        );
        for (ra, rb) in d.rules.rules().iter().zip(di.rules.rules()) {
            assert_eq!(
                ra.condition(),
                rb.condition(),
                "{name}: interpreted kernel changed a sharded condition"
            );
            assert_eq!(
                ra.rho().to_bits(),
                rb.rho().to_bits(),
                "{name}: interpreted kernel changed a sharded rho"
            );
        }
        let repi = di.rules.evaluate(sc.table(), &rows, LocateStrategy::First);
        assert_eq!(
            rep.rmse.to_bits(),
            repi.rmse.to_bits(),
            "{name}: interpreted kernel changed the sharded RMSE"
        );
        table_rows.push(vec![
            name.to_string(),
            rows.len().to_string(),
            format!("sharded x{shards} (quantile)"),
            format!("{:.4}", best[2]),
            d.rules.len().to_string(),
            d.stats.models_trained.to_string(),
            format!("{:.4}", rep.rmse),
        ]);
        report.records.push(bench_json::BenchRecord {
            dataset: name.to_string(),
            rows: rows.len(),
            engine: "sharded".to_string(),
            learn_secs: best[2],
            rules: d.rules.len(),
            trained: d.stats.models_trained,
            rmse: rep.rmse,
        });
        for (pi, boundary) in [(1usize, "equal_width"), (2, "quantile")] {
            // Plan geometry for the cell: min/max shard size in permille.
            // Planning is deterministic, so one untimed plan reproduces
            // exactly what the timed runs partitioned on.
            let (plan, _) = specs[pi]
                .1
                .plan(
                    sc.table(),
                    &rows,
                    &crr_data::PlannerCost {
                        predicate_vocab: space.len().max(1),
                        workers: 1,
                    },
                )
                .expect("bench shard plan");
            report.sharded.push(bench_json::ShardedEntry {
                dataset: name.to_string(),
                rows: rows.len(),
                shards,
                boundary: boundary.to_string(),
                balance_permille: crr_data::balance_permille(&plan),
                single_secs: best[0],
                sharded_secs: best[pi],
                ratio: best[0] / best[pi],
            });
        }
        if metrics_out.is_some() {
            // One instrumented N-shard run of the adaptive plan, outside
            // the timed reps: the planner and cross-shard pool counters
            // land in metrics.json's "shards" section, and the per-shard
            // row counts ride along for the sum invariant --check re-checks.
            let mcfg = cfg
                .clone()
                .with_shard_threads(shards.min(4))
                .with_metrics(MetricsSink::enabled());
            let dm = DiscoverySession::on(sc.table())
                .rows(rows.clone())
                .predicates(space.clone())
                .config(mcfg)
                .sharded(ShardSpec::by_key(key).quantile().shards(shards))
                .run()
                .expect("metered sharded discovery");
            let m = &dm.metrics;
            let probes = metrics_json::snapshot_counter(m, "shards", "cross_pool_probes");
            let hits = metrics_json::snapshot_counter(m, "shards", "cross_pool_hits");
            let misses = metrics_json::snapshot_counter(m, "shards", "cross_pool_misses");
            assert_eq!(
                hits + misses,
                probes,
                "{name}: cross-pool probe accounting must reconcile"
            );
            if scale >= 1.0 {
                // At smoke scales the shards can be too small to retrain the
                // shared regime, so the hit guarantee only binds full-scale.
                assert!(hits > 0, "{name}: no cross-shard pool hits at full scale");
            }
            let shard_rows: Vec<usize> = dm.shards.iter().map(|s| s.rows.len()).collect();
            assert_eq!(
                shard_rows.iter().sum::<usize>(),
                rows.len(),
                "{name}: shard rows must sum to the table rows"
            );
            metric_runs.push(metrics_json::MetricsRun {
                dataset: name.to_string(),
                rows: rows.len(),
                engine: "sharded".to_string(),
                expected_fault_events: None,
                shard_rows,
                snapshot: dm.metrics,
            });
        }
    }
    print_table(
        "Tracked benchmark: fit engines (best of reps)",
        &[
            "Dataset", "|I|", "Engine", "Learn(s)", "#Rules", "#Trained", "RMSE",
        ],
        &table_rows,
    );
    for s in &report.speedup {
        println!(
            "  {}@{}: moments {:.4}s vs rescan {:.4}s -> {:.2}x",
            s.dataset, s.rows, s.moments_secs, s.rescan_secs, s.ratio
        );
    }
    for s in &report.sharded {
        println!(
            "  {}@{}: 1 shard {:.4}s vs {} shards ({}, balance {}‰) {:.4}s -> {:.2}x",
            s.dataset,
            s.rows,
            s.single_secs,
            s.shards,
            s.boundary,
            s.balance_permille,
            s.sharded_secs,
            s.ratio
        );
    }
    let text = bench_json::render(&report);
    // Self-check before writing: never persist a report CI would reject.
    let summary = bench_json::validate(&text).expect("emitted report must validate");
    std::fs::write(path, &text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path} ({summary})");

    if let Some(mpath) = metrics_out {
        // Fault-harness cell: the first fit attempt fails (the only
        // injection point guaranteed at every --scale), discovery surfaces
        // the typed error, and the sink — which outlives the failed run —
        // must have recorded exactly that one injection.
        let sc = electricity_scenario(scaled(2_880, scale), 42);
        let rows = sc.rows();
        let opts = CrrOptions {
            compact: false,
            predicates_per_attr: 255,
            ..Default::default()
        };
        let (cfg, space) = crr_inputs(&sc, &opts);
        let sink = MetricsSink::enabled();
        let plan = std::sync::Arc::new(crr_discovery::FaultPlan::new().fail_fit_every(1));
        let cfg = cfg
            .with_metrics(sink.clone())
            .with_faults(std::sync::Arc::clone(&plan));
        let err = run_discovery(sc.table(), &rows, &cfg, &space);
        assert!(err.is_err(), "fault harness: injected failure must surface");
        let snapshot = sink.snapshot();
        let injected = snapshot.count("faults", "injected_failures");
        assert_eq!(
            injected,
            Some(1),
            "fault harness: plan fired once, metrics recorded {injected:?}"
        );
        assert_eq!(plan.fits_attempted(), 1, "plan injects on the first fit");
        metric_runs.push(metrics_json::MetricsRun {
            dataset: "electricity".to_string(),
            rows: rows.len(),
            engine: "moments".to_string(),
            expected_fault_events: Some(1),
            shard_rows: Vec::new(),
            snapshot,
        });

        let mtext = metrics_json::render(&metric_runs);
        let msummary = metrics_json::validate(&mtext).expect("emitted metrics must validate");
        std::fs::write(mpath, &mtext).unwrap_or_else(|e| panic!("cannot write {mpath}: {e}"));
        println!("wrote {mpath} ({msummary})");
    }
}

/// Per-kernel throughput cells for one dataset at one size: times the
/// interpreted row-at-a-time predicate scan against the compiled
/// cache-blocked kernel over every space predicate, and the per-row
/// `Moments::add_row` gather against the batched `Moments::add_rows`
/// column pass, asserting bit-identical results in-process; the
/// `end_to_end` cell reuses the engine-cell wall clocks passed in.
#[allow(clippy::too_many_arguments)]
fn kernel_microbench(
    report: &mut bench_json::BenchReport,
    dataset: &str,
    table: &Table,
    rows: &RowSet,
    cfg: &DiscoveryConfig,
    space: &PredicateSpace,
    interpreted_e2e_secs: f64,
    compiled_e2e_secs: f64,
) {
    use crr_core::CompiledConjunction;
    use crr_data::NumericSnapshot;
    use crr_models::Moments;

    let n = rows.len();
    let push = |report: &mut bench_json::BenchReport, kernel: &str, i_sec: f64, c_sec: f64| {
        let entry = bench_json::KernelEntry {
            dataset: dataset.to_string(),
            rows: n,
            kernel: kernel.to_string(),
            interpreted_per_sec: i_sec,
            compiled_per_sec: c_sec,
            ratio: c_sec / i_sec,
        };
        println!(
            "  {}@{} {}: interpreted {:.3e} rows/s vs compiled {:.3e} rows/s -> {:.2}x",
            entry.dataset, entry.rows, entry.kernel, i_sec, c_sec, entry.ratio
        );
        report.kernels.push(entry);
    };
    let reps = 2;

    // Predicate scan: every predicate of the space over the whole instance.
    let preds = space.predicates();
    let (mut i_best, mut c_best) = (f64::INFINITY, f64::INFINITY);
    let (mut i_count, mut c_count) = (0usize, 0usize);
    for _ in 0..reps {
        let t = Instant::now();
        i_count = 0;
        for p in preds {
            i_count += rows.iter().filter(|&r| p.eval(table, r)).count();
        }
        i_best = i_best.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        c_count = 0;
        for p in preds {
            c_count += CompiledConjunction::from_preds(std::slice::from_ref(p), table)
                .count(rows.as_slice());
        }
        c_best = c_best.min(t.elapsed().as_secs_f64());
    }
    assert_eq!(
        i_count, c_count,
        "{dataset}: compiled predicate scan diverged from the interpreter"
    );
    let scanned = (n * preds.len()) as f64;
    push(
        report,
        "predicate_scan",
        scanned / i_best.max(1e-9),
        scanned / c_best.max(1e-9),
    );

    // Gram accumulation over the fit-ready rows.
    let snap =
        NumericSnapshot::build(table, &cfg.inputs, cfg.target, rows).expect("bench snapshot");
    let fit = snap.ready_rows(rows);
    let d = snap.num_inputs();
    let cols: Vec<&[f64]> = (0..d).map(|j| snap.input(j)).collect();
    let (mut i_best, mut c_best) = (f64::INFINITY, f64::INFINITY);
    let (mut m_i, mut m_c) = (Moments::zeros(d), Moments::zeros(d));
    for _ in 0..reps {
        let t = Instant::now();
        let mut m = Moments::zeros(d);
        let mut x = vec![0.0; d];
        for &r in &fit {
            snap.gather_x(r as usize, &mut x);
            m.add_row(&x, snap.target()[r as usize]);
        }
        i_best = i_best.min(t.elapsed().as_secs_f64());
        m_i = m;
        let t = Instant::now();
        let mut m = Moments::zeros(d);
        m.add_rows(&cols, snap.target(), &fit);
        c_best = c_best.min(t.elapsed().as_secs_f64());
        m_c = m;
    }
    assert_eq!(
        m_i, m_c,
        "{dataset}: batched Gram accumulation diverged from per-row adds"
    );
    let accumulated = fit.len() as f64;
    push(
        report,
        "gram_accumulate",
        accumulated / i_best.max(1e-9),
        accumulated / c_best.max(1e-9),
    );

    // End-to-end: whole discovery runs as rows/second, from the engine
    // cells (moments engine under each kernel, best of reps).
    push(
        report,
        "end_to_end",
        n as f64 / interpreted_e2e_secs.max(1e-9),
        n as f64 / compiled_e2e_secs.max(1e-9),
    );
}

/// `analyze`: discover on Electricity and Tax — unsharded and under a
/// key-range shard plan — plus one stream-repaired Electricity artifact,
/// and run the full `crr-analyze` battery (A1–A7) over each exported
/// artifact: the sharded ones against their emitted proof obligations,
/// the repaired one against its bundled repair obligations, and every
/// conjunct through the A6 compile-equivalence comparison. Any `unsound`
/// finding aborts here; redundant/hygiene findings are reported and land
/// in the artifact. The runs are written to `path` in the
/// `crr-analysis-v2` layout that `--check-analysis` (and CI)
/// re-validates. With `artifact_out`, the repaired artifact's text is
/// persisted for `--analyze-artifact` / `--mutate-repair-guard`.
fn analyze_cmd(scale: f64, path: &str, shards: usize, artifact_out: Option<&str>) {
    let cells: [(&str, fn(usize, u64) -> Scenario, usize, usize); 2] = [
        ("electricity", electricity_scenario, 11_520, 255),
        ("tax", tax_scenario, 10_000, 15),
    ];
    let mut runs: Vec<analysis_json::AnalysisRun> = Vec::new();
    let mut table_rows = Vec::new();
    for (name, make, size, per_attr) in cells {
        let sc = make(scaled(size, scale), 42);
        let rows = sc.rows();
        let opts = CrrOptions {
            predicates_per_attr: per_attr,
            ..Default::default()
        };
        let (cfg, space) = crr_inputs(&sc, &opts);

        // Unsharded artifact: no guard obligations, so A3 is vacuous and
        // the report covers satisfiability, subsumption, the inference
        // audit and rho-monotonicity.
        let single = run_discovery(sc.table(), &rows, &cfg, &space).expect("discovery");
        // Sharded artifact: quantile key-range shards (the adaptive
        // planner's boundary placement) over the scenario's key attribute,
        // verified against the emitted proof obligations.
        let sharded = DiscoverySession::on(sc.table())
            .rows(rows.clone())
            .predicates(space.clone())
            .config(cfg.clone().with_shard_threads(shards.min(4)))
            .sharded(ShardSpec::by_key(sc.time_attr).quantile().shards(shards))
            .run()
            .expect("sharded discovery");

        for (source, d) in [("single", &single), ("sharded", &sharded)] {
            // Analysis runs over the *exported artifact*, not the raw
            // rules: A6 re-compiles every conjunct against the schema the
            // artifact declares, A7 would audit repair obligations if any.
            let artifact = d
                .export_artifact(sc.table().schema())
                .expect("export artifact");
            let report = crr_analyze::analyze_artifact_on(&artifact, sc.table());
            assert!(
                report.is_sound(),
                "{name}/{source}: analyzer found unsound artifacts: {:#?}",
                report.findings
            );
            push_analysis_run(&mut runs, &mut table_rows, name, rows.len(), source, report);
        }
    }

    // The repaired cell: a regime-changed Electricity tail driven through
    // crr-stream's repair, analyzed against its bundled obligations.
    let (repaired_rows, repaired_artifact, repaired_report) = repaired_artifact_cell();
    push_analysis_run(
        &mut runs,
        &mut table_rows,
        "electricity",
        repaired_rows,
        "repair",
        repaired_report,
    );
    if let Some(out) = artifact_out {
        std::fs::write(out, repaired_artifact.to_text())
            .unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
        println!("wrote {out} (stream-repaired artifact, proof-carrying)");
    }
    print_table(
        "Static analysis: crr-analyze over discovered artifacts",
        &[
            "Dataset", "|I|", "Source", "#Rules", "#Conj", "#Shards", "#Impl", "Redund", "Hygiene",
        ],
        &table_rows,
    );
    for run in &runs {
        for f in &run.report.findings {
            println!("  {}@{}/{}: {f}", run.dataset, run.rows, run.source);
        }
    }
    let text = analysis_json::render(&runs);
    // Self-check before writing: never persist an artifact CI would reject.
    let summary = analysis_json::validate(&text).expect("emitted analysis must validate");
    std::fs::write(path, &text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path} ({summary})");
}

/// Appends one analysis run to both the printed table and the JSON runs.
fn push_analysis_run(
    runs: &mut Vec<analysis_json::AnalysisRun>,
    table_rows: &mut Vec<Vec<String>>,
    name: &str,
    rows: usize,
    source: &str,
    report: crr_analyze::AnalysisReport,
) {
    let s = report.summary();
    table_rows.push(vec![
        name.to_string(),
        rows.to_string(),
        source.to_string(),
        report.rules.to_string(),
        report.conjuncts.to_string(),
        report.shards.to_string(),
        report.counters.implication_checks.to_string(),
        s.redundant.to_string(),
        s.hygiene.to_string(),
    ]);
    runs.push(analysis_json::AnalysisRun {
        dataset: name.to_string(),
        rows,
        source: source.to_string(),
        report,
    });
}

/// Builds the proof-carrying repaired artifact for the `analyze` repair
/// cell: discover on an Electricity base slice, append the generator's
/// tail under a deliberate regime change (`y → 3y + 5`) so covered rows
/// drift, repair, and verify the exported artifact (A1–A7) against its
/// bundled repair obligations. The fixture is fixed-size (3168 rows, two
/// generator days + one tail) so the drift — and therefore at least one
/// claimed repair region — is deterministic at every `--scale`.
fn repaired_artifact_cell() -> (
    usize,
    crr_discovery::RuleSetArtifact,
    crr_analyze::AnalysisReport,
) {
    use crr_stream::{StreamConfig, StreamEngine};

    let ds = electricity(&GenConfig {
        rows: 3_168,
        seed: 7,
    });
    let t = ds.table;
    let minute = t.attr("minute").expect("minute attr");
    let target = t.attr("global_active_power").expect("target attr");
    let space = PredicateGen::binary(64).generate(&t, &[minute], target, 0);
    let cfg = DiscoveryConfig::new(vec![minute], target, 0.25);
    let mut base = Table::new(t.schema().clone());
    for r in 0..2_880 {
        base.push_row(t.row(r)).expect("base row");
    }
    let (_, base_artifact) = DiscoverySession::on(&base)
        .predicates(space.clone())
        .config(cfg.clone())
        .export()
        .expect("base discovery");
    let mut engine = StreamEngine::new(
        base,
        base_artifact.rules.clone(),
        cfg,
        space,
        StreamConfig::default(),
    )
    .expect("stream engine");
    let ty = target.0;
    let batch: Vec<Vec<crr_data::Value>> = (2_880..t.num_rows())
        .map(|r| {
            let mut row = t.row(r);
            if let crr_data::Value::Float(y) = row[ty] {
                row[ty] = crr_data::Value::Float(3.0 * y + 5.0);
            }
            row
        })
        .collect();
    engine.append(&batch).expect("append regime-changed tail");
    assert!(engine.needs_repair(), "regime change must surface as drift");
    let repair = engine.repair().expect("repair");
    let artifact = repair.artifact.clone();
    let regions = artifact.repair.as_ref().map_or(0, |rep| rep.regions.len());
    assert!(regions >= 1, "repair must claim at least one region");
    let report = crr_analyze::analyze_artifact_on(&artifact, engine.table());
    assert!(
        report.is_sound(),
        "repair cell: analyzer found unsound artifacts: {:#?}",
        report.findings
    );
    (engine.table().num_rows(), artifact, report)
}

/// `serving`: stand up a live `crr-serve` server over an exported
/// Electricity rule set and measure it end to end — loss-free smoke cells
/// on `/v1/predict` and `/v1/check`, an overload cell that must shed, and
/// a hot-swap churn cell whose in-flight answers are pinned byte-identical
/// to offline evaluation. Every gate the `crr-serving-v1` validator
/// re-checks from the file is asserted in-process first.
fn serving_cmd(scale: f64, path: &str) {
    use crr_discovery::MetricsSink;
    use crr_serve::client::{roundtrip, run_load, LoadOptions};
    use crr_serve::{RuleStore, ServeConfig, ServeFaultPlan, Server};
    use std::sync::Arc;
    use std::time::Duration;

    // Discover and export the served artifact.
    let sc = electricity_scenario(scaled(11_520, scale), 42);
    let rows = sc.table().num_rows();
    let opts = CrrOptions {
        predicates_per_attr: 255,
        ..Default::default()
    };
    let (cfg, space) = crr_inputs(&sc, &opts);
    let (_, artifact) = DiscoverySession::on(sc.table())
        .predicates(space)
        .config(cfg)
        .export()
        .expect("discovery + export");
    let sound_text = artifact.to_text();

    // Probe batch: every row is sent verbatim, capped at 240 rows.
    let step = (rows / 240).max(1);
    let probe_rows: Vec<usize> = (0..rows).step_by(step).take(240).collect();
    let batch_rows = probe_rows.len();
    let mut body = String::from("{\"rows\": [");
    for (i, &row) in probe_rows.iter().enumerate() {
        if i > 0 {
            body.push_str(", ");
        }
        body.push('[');
        for (j, v) in sc.table().row(row).iter().enumerate() {
            if j > 0 {
                body.push_str(", ");
            }
            body.push_str(&match v {
                crr_data::Value::Null => "null".to_string(),
                crr_data::Value::Int(i) => i.to_string(),
                crr_data::Value::Float(x) => crr_obs::json::num(*x),
                crr_data::Value::Str(s) => format!("\"{}\"", crr_obs::json::esc(s)),
            });
        }
        body.push(']');
    }
    body.push_str("]}");

    // Offline evaluation of the same probe, rendered with the same
    // formatter the server uses — the swap-churn pin.
    let mut probe = Table::new(sc.table().schema().clone());
    for &row in &probe_rows {
        probe.push_row(sc.table().row(row)).expect("probe row");
    }
    let index = crr_core::RuleIndex::build(&artifact.rules, &probe);
    let mut expected = String::from("\"predictions\": [");
    for row in 0..probe.num_rows() {
        if row > 0 {
            expected.push_str(", ");
        }
        match index.predict(&probe, row) {
            Some(x) => expected.push_str(&crr_obs::json::num(x)),
            None => expected.push_str("null"),
        }
    }
    expected.push(']');

    let mut records: Vec<serving_json::ServingRecord> = Vec::new();
    let mut table_rows = Vec::new();
    let mut record = |r: serving_json::ServingRecord, table_rows: &mut Vec<Vec<String>>| {
        table_rows.push(vec![
            r.endpoint.clone(),
            r.mode.label().to_string(),
            r.clients.to_string(),
            format!("{}/{}", r.completed, r.requests),
            r.shed.to_string(),
            format!("{:.3}", r.p50_ms),
            format!("{:.3}", r.p99_ms),
            format!("{:.1}", r.throughput_rps),
        ]);
        records.push(r);
    };

    // Smoke cells: within capacity, must be loss-free.
    let sink = MetricsSink::enabled();
    let store = Arc::new(
        RuleStore::open(artifact, sink.clone()).expect("exported artifact must be admissible"),
    );
    let server = Server::start(Arc::clone(&store), ServeConfig::default()).expect("bind");
    for endpoint in ["/v1/predict", "/v1/check"] {
        let load = LoadOptions {
            clients: 2,
            requests_per_client: 40,
            path: endpoint.to_string(),
            body: body.clone(),
            timeout: Duration::from_secs(30),
        };
        let report = run_load(server.addr(), &load);
        let requests = load.clients * load.requests_per_client;
        let snap = sink.snapshot();
        let (shed, timeouts) = (
            snap.count("serve", "shed").unwrap_or(0),
            snap.count("serve", "timeouts").unwrap_or(0),
        );
        assert_eq!(report.errors, 0, "{endpoint}: smoke transport errors");
        assert_eq!(report.completed(), requests, "{endpoint}: smoke losses");
        assert_eq!((shed, timeouts), (0, 0), "{endpoint}: smoke shed/timeout");
        record(
            serving_json::ServingRecord {
                dataset: "electricity".into(),
                rows,
                endpoint: endpoint.into(),
                mode: serving_json::ServingMode::Smoke,
                clients: load.clients,
                requests,
                completed: report.completed(),
                batch_rows,
                shed,
                timeouts,
                errors: report.errors,
                p50_ms: report.percentile_ms(50.0),
                p90_ms: report.percentile_ms(90.0),
                p99_ms: report.percentile_ms(99.0),
                max_ms: report.percentile_ms(100.0),
                throughput_rps: report.throughput_rps(),
            },
            &mut table_rows,
        );
    }

    // Swap churn on the live smoke server: accepted swaps interleaved with
    // rejected garbage while answers stay pinned to offline evaluation.
    const SWAPS: usize = 10;
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut pinned = true;
    for i in 0..SWAPS {
        let candidate: &str = if i % 2 == 0 { &sound_text } else { "garbage" };
        let (status, _) =
            roundtrip(server.addr(), "POST", "/admin/swap", candidate).expect("swap roundtrip");
        match status {
            200 => accepted += 1,
            422 => rejected += 1,
            other => panic!("swap answered {other}"),
        }
        let (status, resp) =
            roundtrip(server.addr(), "POST", "/v1/predict", &body).expect("pin roundtrip");
        assert_eq!(status, 200);
        pinned &= resp.contains(&expected);
    }
    assert!(
        pinned,
        "an in-flight answer diverged from offline evaluation"
    );
    let swaps = serving_json::SwapCell {
        accepted,
        rejected,
        generation: store.generation(),
        predictions_pinned: pinned,
    };
    server.shutdown();

    // Overload cell: capacity 1, slow handler, 8 closed-loop clients —
    // the shed path must engage and stay well-formed.
    let over_sink = MetricsSink::enabled();
    let over_store = Arc::new(
        RuleStore::open(
            crr_discovery::RuleSetArtifact::from_text(&sound_text).expect("reparse"),
            over_sink.clone(),
        )
        .expect("admissible"),
    );
    let over_cfg = ServeConfig {
        workers: 1,
        max_in_flight: 1,
        faults: Arc::new(ServeFaultPlan::none().delay_request_every(1, Duration::from_millis(3))),
        ..ServeConfig::default()
    };
    let over_server = Server::start(over_store, over_cfg).expect("bind");
    let load = LoadOptions {
        clients: 8,
        requests_per_client: 8,
        path: "/v1/predict".to_string(),
        body: body.clone(),
        timeout: Duration::from_secs(30),
    };
    let mut over_report = run_load(over_server.addr(), &load);
    let mut attempts = 1usize;
    while over_sink.snapshot().count("serve", "shed").unwrap_or(0) == 0 && attempts < 5 {
        // Scheduling can let a tiny burst through unshed; drive it again.
        over_report = run_load(over_server.addr(), &load);
        attempts += 1;
    }
    // Earlier attempts (if any) shed nothing by construction, so the
    // cumulative counter equals the recorded attempt's sheds.
    let _ = attempts;
    let over_snap = over_sink.snapshot();
    let shed = over_snap.count("serve", "shed").unwrap_or(0);
    assert!(shed > 0, "overload never engaged the shed path");
    assert_eq!(over_report.errors, 0, "sheds must be 503s, not resets");
    record(
        serving_json::ServingRecord {
            dataset: "electricity".into(),
            rows,
            endpoint: "/v1/predict".into(),
            mode: serving_json::ServingMode::Overload,
            clients: load.clients,
            requests: load.clients * load.requests_per_client,
            completed: over_report.completed(),
            batch_rows,
            shed,
            timeouts: over_snap.count("serve", "timeouts").unwrap_or(0),
            errors: over_report.errors,
            p50_ms: over_report.percentile_ms(50.0),
            p90_ms: over_report.percentile_ms(90.0),
            p99_ms: over_report.percentile_ms(99.0),
            max_ms: over_report.percentile_ms(100.0),
            throughput_rps: over_report.throughput_rps(),
        },
        &mut table_rows,
    );
    over_server.shutdown();

    print_table(
        "Serving benchmark: live crr-serve under closed-loop load",
        &[
            "Endpoint", "Mode", "Clients", "OK/Total", "Shed", "p50(ms)", "p99(ms)", "RPS",
        ],
        &table_rows,
    );
    println!(
        "  swaps: {} accepted / {} rejected, generation {}, predictions pinned: {}",
        swaps.accepted, swaps.rejected, swaps.generation, swaps.predictions_pinned
    );
    let report = serving_json::ServingReport { records, swaps };
    let text = serving_json::render(&report);
    // Self-check before writing: never persist a report CI would reject.
    let summary = serving_json::validate(&text).expect("emitted serving report must validate");
    std::fs::write(path, &text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path} ({summary})");
}

/// One dataset's maintenance cell for [`stream_cmd`]: stream the tail of
/// `sc` (rows `base..`) through a standing `crr-stream` maintainer, repair,
/// and race the same end state against full rediscovery over base+tail.
/// Returns the benchmark record plus the proof-carrying repaired artifact
/// (for `--artifact-out`).
fn stream_cell(
    dataset: &str,
    sc: &Scenario,
    base: usize,
    batches: usize,
    opts: &CrrOptions,
) -> (stream_json::StreamRecord, crr_discovery::RuleSetArtifact) {
    use crr_stream::{StreamConfig, StreamEngine};

    let total = sc.table().num_rows();
    let tail = total - base;
    let (cfg, space) = crr_inputs(sc, opts);

    // The maintainer stands on the base slice: base discovery is "yesterday's"
    // work for both contenders and stays outside either measurement.
    let mut base_table = Table::new(sc.table().schema().clone());
    for r in 0..base {
        base_table.push_row(sc.table().row(r)).expect("base row");
    }
    let (_, base_artifact) = DiscoverySession::on(&base_table)
        .predicates(space.clone())
        .config(cfg.clone())
        .export()
        .expect("base discovery");
    let rules_before = base_artifact.rules.len();
    let sink = crr_discovery::MetricsSink::enabled();
    let mut engine = StreamEngine::new(
        base_table,
        base_artifact.rules.clone(),
        cfg.clone(),
        space.clone(),
        StreamConfig::default().with_metrics(sink.clone()),
    )
    .expect("engine over its own discovery inputs");

    // Incremental path: batched appends, one partition-scoped repair, and
    // the artifact export — everything the maintainer does for this tail.
    let mut outcome_sum = crr_stream::BatchOutcome::default();
    let per = tail.div_ceil(batches);
    let inc_start = Instant::now();
    let mut sent = 0usize;
    while sent < tail {
        let hi = (sent + per).min(tail);
        let batch: Vec<Vec<crr_data::Value>> = (base + sent..base + hi)
            .map(|r| sc.table().row(r))
            .collect();
        let out = engine.append(&batch).expect("append batch");
        outcome_sum.routed_pairs += out.routed_pairs;
        outcome_sum.uncovered += out.uncovered;
        outcome_sum.violations += out.violations;
        sent = hi;
    }
    let drifted = engine.drift().drifted.len();
    let repair = engine.repair().expect("repair");
    let incremental = inc_start.elapsed();
    assert_eq!(
        repair.residual_violations, 0,
        "{dataset}: repair left live violations"
    );

    // Full-rediscovery contender over base+tail, same inputs, same export.
    let session = DiscoverySession::on(sc.table())
        .predicates(space)
        .config(cfg);
    let full_start = Instant::now();
    let (_, _full_artifact) = session.export().expect("full rediscovery");
    let full = full_start.elapsed();

    // The repaired artifact must be proof-carrying and pass the full
    // verifier battery (A1–A7) including the repair-obligation audit ...
    let artifact = repair.artifact.clone();
    assert!(
        artifact.repair.is_some(),
        "{dataset}: a stream repair must bundle its obligations"
    );
    let analysis = crr_analyze::analyze_artifact_on(&artifact, engine.table());
    let sound = analysis.is_sound();
    assert!(
        sound,
        "{dataset}: repaired artifact failed crr-analyze: {:#?}",
        analysis.findings
    );

    // ... and hot-swap into a live server that keeps serving answers
    // byte-identical to offline evaluation of the repaired rules.
    let swap_served_identical = {
        use crr_serve::client::roundtrip;
        use crr_serve::{RuleStore, ServeConfig, Server};
        use std::sync::Arc;

        let store = Arc::new(
            RuleStore::open(base_artifact, crr_discovery::MetricsSink::disabled())
                .expect("base artifact admissible"),
        );
        let server = Server::start(Arc::clone(&store), ServeConfig::default()).expect("bind");
        let (status, _) = roundtrip(server.addr(), "POST", "/admin/swap", &artifact.to_text())
            .expect("swap roundtrip");
        assert_eq!(status, 200, "{dataset}: repaired artifact was not admitted");

        // When the splice is strippable (non-trivial region guards), the
        // same artifact with its repaired rules widened to unconditional
        // coverage must be bounced by the gate's A7 audit.
        if let Some(mutated) = strip_repair_guards(&artifact) {
            let (status, resp) =
                roundtrip(server.addr(), "POST", "/admin/swap", &mutated.to_text())
                    .expect("mutated swap roundtrip");
            assert_eq!(
                status, 422,
                "{dataset}: stripped repair guard must be refused: {resp}"
            );
        }

        let probe_step = (engine.table().num_rows() / 240).max(1);
        let probe_rows: Vec<usize> = (0..engine.table().num_rows())
            .step_by(probe_step)
            .take(240)
            .collect();
        let mut body = String::from("{\"rows\": [");
        let mut probe = Table::new(engine.table().schema().clone());
        for (i, &row) in probe_rows.iter().enumerate() {
            if i > 0 {
                body.push_str(", ");
            }
            body.push('[');
            for (j, v) in engine.table().row(row).iter().enumerate() {
                if j > 0 {
                    body.push_str(", ");
                }
                body.push_str(&match v {
                    crr_data::Value::Null => "null".to_string(),
                    crr_data::Value::Int(i) => i.to_string(),
                    crr_data::Value::Float(x) => crr_obs::json::num(*x),
                    crr_data::Value::Str(s) => format!("\"{}\"", crr_obs::json::esc(s)),
                });
            }
            body.push(']');
            probe.push_row(engine.table().row(row)).expect("probe row");
        }
        body.push_str("]}");
        let index = crr_core::RuleIndex::build(&artifact.rules, &probe);
        let mut expected = String::from("\"predictions\": [");
        for row in 0..probe.num_rows() {
            if row > 0 {
                expected.push_str(", ");
            }
            match index.predict(&probe, row) {
                Some(x) => expected.push_str(&crr_obs::json::num(x)),
                None => expected.push_str("null"),
            }
        }
        expected.push(']');
        let (status, resp) =
            roundtrip(server.addr(), "POST", "/v1/predict", &body).expect("predict roundtrip");
        server.shutdown();
        status == 200 && resp.contains(&expected)
    };
    assert!(
        swap_served_identical,
        "{dataset}: served answers diverged from offline evaluation after the swap"
    );

    let record = stream_json::StreamRecord {
        dataset: dataset.into(),
        base_rows: base,
        appended_rows: tail,
        batches,
        routed_pairs: outcome_sum.routed_pairs as u64,
        uncovered_rows: outcome_sum.uncovered as u64,
        violations: outcome_sum.violations as u64,
        drifted_rules: drifted as u64,
        repair_affected_rows: repair.affected_rows,
        rules_before,
        rules_after: repair.rules,
        incremental_ms: incremental.as_secs_f64() * 1e3,
        full_ms: full.as_secs_f64() * 1e3,
        speedup: full.as_secs_f64() / incremental.as_secs_f64(),
        sound,
        swap_served_identical,
    };
    (record, artifact)
}

/// `stream`: the incremental-maintenance benchmark — append an unseen tail
/// through a `crr-stream` maintainer (route + delta + monitor + repair) and
/// race it against full rediscovery over base+tail. Writes
/// `BENCH_stream.json` in the `crr-stream-v1` layout that `--check-stream`
/// / `scripts/ci.sh` re-validate. With `--artifact-out`, also writes the
/// electricity cell's proof-carrying repaired artifact.
fn stream_cmd(scale: f64, path: &str, artifact_out: Option<&str>) {
    let mut records = Vec::new();
    let mut table_rows = Vec::new();
    let mut exported: Option<String> = None;
    let cells: [(&str, fn(usize, u64) -> Scenario, usize); 2] = [
        ("electricity", electricity_scenario, scaled(11_520, scale)),
        ("tax", tax_scenario, scaled(4_000, scale)),
    ];
    for (dataset, make, base) in cells {
        let tail = (base / 10).max(10);
        let sc = make(base + tail, 42);
        let opts = CrrOptions {
            predicates_per_attr: 255,
            ..Default::default()
        };
        let (r, artifact) = stream_cell(dataset, &sc, base, 8, &opts);
        if exported.is_none() {
            exported = Some(artifact.to_text());
        }
        table_rows.push(vec![
            r.dataset.clone(),
            r.base_rows.to_string(),
            r.appended_rows.to_string(),
            r.uncovered_rows.to_string(),
            r.violations.to_string(),
            r.drifted_rules.to_string(),
            format!("{} -> {}", r.rules_before, r.rules_after),
            format!("{:.1}", r.incremental_ms),
            format!("{:.1}", r.full_ms),
            format!("{:.1}x", r.speedup),
        ]);
        records.push(r);
    }
    print_table(
        "Streaming maintenance: incremental (crr-stream) vs full rediscovery",
        &[
            "Dataset", "Base", "Appended", "Uncov", "Viol", "Drift", "Rules", "Inc(ms)",
            "Full(ms)", "Speedup",
        ],
        &table_rows,
    );
    let text = stream_json::render(&records);
    // Self-check before writing: never persist a report CI would reject.
    // At smoke scale the speedup gate does not apply (see crr-stream-v1).
    let summary = stream_json::validate(&text).expect("emitted stream report must validate");
    std::fs::write(path, &text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path} ({summary})");
    if let Some(out) = artifact_out {
        let text = exported.expect("stream ran at least one cell");
        std::fs::write(out, &text).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
        println!("wrote {out} (stream-repaired artifact, proof-carrying)");
    }
}
