//! The `metrics.json` artifact: structured observability snapshots from
//! instrumented discovery runs, written by `experiments -- bench
//! --metrics-out` and re-validated by `--check-metrics` so a drifted
//! emitter or a broken counter invariant fails CI, not a reader.
//!
//! Like [`crate::bench_json`], rendering and parsing ride on the
//! hand-rolled JSON layer in [`crr_obs::json`] — no serde. Every metric's
//! meaning, unit and paper correspondence, and this file's layout, are
//! documented in `EXPERIMENTS.md`, section "Benchmark artifact schemas".

use crr_obs::json::{esc, parse, Json};
use crr_obs::{MetricValue, MetricsSnapshot};
use std::fmt::Write as _;

/// Schema tag stamped into the file; bump when the layout changes.
/// v2 added the `shards` section and the `sharded` engine label; v3 added
/// the `serve` section (the serving runtime's counters and gauges); v4
/// added the `kernels` section (compiled-scan and batched-accumulate
/// counters) plus the `pred_scan`/`gram_accumulate` phase timers; v5 added
/// the `stream` section (the incremental maintainer's counters and drift
/// gauges) plus the `stream_apply`/`stream_repair` phase timers; v6 added
/// the planner counters (`shards.plan_*`, `shards.steal_assists`, the
/// `shards.balance_permille` gauge) and the per-run `shard_rows` array,
/// whose sum must equal the run's row count — previously sharded runs
/// never recorded how the rows actually split.
pub const SCHEMA: &str = "crr-metrics-v6";

/// Sections every enabled-sink snapshot must carry (the sink always emits
/// the full schema, zeros included, so file shape is run-independent).
pub const REQUIRED_SECTIONS: [&str; 12] = [
    "queue", "pool", "fits", "moments", "budget", "faults", "run", "phases", "shards", "serve",
    "kernels", "stream",
];

/// Streaming-maintainer counters that must stay zero in a batch discovery
/// run — `metrics.json` captures discovery, and any `stream.*` activity in
/// it means a maintainer leaked into the wrong instrumentation scope.
/// (`BENCH_stream.json` is where streaming runs are tracked.)
const STREAM_COUNTERS: [&str; 10] = [
    "batches",
    "append_rows",
    "delete_rows",
    "routed_pairs",
    "uncovered_rows",
    "moments_updates",
    "violations",
    "drifted_rules",
    "repairs",
    "repaired_rules",
];

/// One instrumented discovery run and its frozen snapshot.
#[derive(Debug, Clone)]
pub struct MetricsRun {
    /// Dataset label (`electricity`, `tax`).
    pub dataset: String,
    /// Instance size |I|.
    pub rows: usize,
    /// Fit engine label (`moments`, `rescan`), or `sharded` for a
    /// multi-shard run (moments engine under a key-range shard plan).
    pub engine: String,
    /// For the fault-harness run: how many injected faults the plan fired,
    /// which `metrics.faults.injected_failures` must equal. `None` for
    /// clean runs, which must record zero fault events.
    pub expected_fault_events: Option<u64>,
    /// Per-shard row counts in shard order for a `sharded` run, empty
    /// otherwise. The validator enforces that they sum to `rows` — a
    /// shard plan that loses or duplicates rows is an emitter bug, not a
    /// tuning matter.
    pub shard_rows: Vec<usize>,
    /// The run's frozen metrics.
    pub snapshot: MetricsSnapshot,
}

/// Renders the runs as pretty-printed JSON with a stable key order.
pub fn render(runs: &[MetricsRun]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"dataset\": \"{}\",", esc(&r.dataset));
        let _ = writeln!(out, "      \"rows\": {},", r.rows);
        let _ = writeln!(out, "      \"engine\": \"{}\",", esc(&r.engine));
        if let Some(n) = r.expected_fault_events {
            let _ = writeln!(out, "      \"expected_fault_events\": {n},");
        }
        if !r.shard_rows.is_empty() {
            let counts: Vec<String> = r.shard_rows.iter().map(usize::to_string).collect();
            let _ = writeln!(out, "      \"shard_rows\": [{}],", counts.join(", "));
        }
        let _ = writeln!(out, "      \"metrics\": {}", r.snapshot.to_json(6));
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn uint(obj: &Json, section: &str, key: &str, ctx: &str) -> Result<u64, String> {
    let v = obj
        .get(section)
        .and_then(|s| s.get(key))
        .ok_or_else(|| format!("{ctx}: missing metric '{section}.{key}'"))?
        .as_num()
        .ok_or_else(|| format!("{ctx}: metric '{section}.{key}' is not a number"))?;
    if !v.is_finite() || v < 0.0 || v.fract() != 0.0 {
        return Err(format!(
            "{ctx}: metric '{section}.{key}' is not a non-negative integer ({v})"
        ));
    }
    Ok(v as u64)
}

/// Validates a `metrics.json` document. On success, returns a one-line
/// summary; on failure, a message naming the first violation.
///
/// Beyond shape (schema tag, non-empty `runs`, every required section
/// present per run), this enforces the counter invariants the
/// instrumentation promises:
///
/// * a `moments`-engine run never rescans rows (`fits.rescans == 0`), and
///   so does a `sharded` run (which uses the moments engine per shard);
/// * a `rescan`-engine run never touches the moments path
///   (`fits.moments_solves == 0`, `fits.declined_singular == 0`,
///   `moments.add_row_ops == 0`);
/// * the cross-shard pool accounting reconciles in **every** run:
///   `shards.cross_pool_hits + shards.cross_pool_misses ==
///   shards.cross_pool_probes` (all three are zero when unsharded);
/// * the scan-kernel ledger balances in **every** run: each split filters
///   both of its sides through exactly one engine, so
///   `kernels.compiled_scans + kernels.interpreted_scans ==
///   2 × queue.splits`;
/// * a `sharded` run actually ran at least two shards (`shards.run >= 2`),
///   carries a `shard_rows` array with one entry per shard run whose sum
///   equals the run's `rows` (no shard plan may lose or duplicate rows),
///   and reports a `shards.balance_permille` gauge within `[0, 1000]`;
///   non-sharded runs must not carry `shard_rows`;
/// * `faults.injected_failures` equals `expected_fault_events` when the
///   run declares one, and zero otherwise;
/// * every run popped at least one partition;
/// * every `stream.*` counter is zero — these are batch discovery runs,
///   and streaming-maintainer activity belongs in `BENCH_stream.json`.
pub fn validate(text: &str) -> Result<String, String> {
    let doc = parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("document: missing 'schema'")?;
    if schema != SCHEMA {
        return Err(format!("unexpected schema '{schema}' (want '{SCHEMA}')"));
    }
    let runs = doc
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or("document: 'runs' missing or not an array")?;
    if runs.is_empty() {
        return Err("'runs' is empty".to_string());
    }
    let mut fault_runs = 0usize;
    for (i, r) in runs.iter().enumerate() {
        let ctx = format!("runs[{i}]");
        let engine = r
            .get("engine")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{ctx}: missing 'engine'"))?;
        if engine != "moments" && engine != "rescan" && engine != "sharded" {
            return Err(format!("{ctx}: unknown engine '{engine}'"));
        }
        r.get("dataset")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{ctx}: missing 'dataset'"))?;
        let m = r
            .get("metrics")
            .ok_or_else(|| format!("{ctx}: missing 'metrics'"))?;
        for section in REQUIRED_SECTIONS {
            if m.get(section).is_none() {
                return Err(format!("{ctx}: metrics missing section '{section}'"));
            }
        }
        if uint(m, "queue", "pops", &ctx)? == 0 {
            return Err(format!("{ctx}: run popped no partitions"));
        }
        for key in STREAM_COUNTERS {
            let n = uint(m, "stream", key, &ctx)?;
            if n != 0 {
                return Err(format!(
                    "{ctx}: discovery run recorded {n} 'stream.{key}' event(s)"
                ));
            }
        }
        let probes = uint(m, "shards", "cross_pool_probes", &ctx)?;
        let hits = uint(m, "shards", "cross_pool_hits", &ctx)?;
        let misses = uint(m, "shards", "cross_pool_misses", &ctx)?;
        if hits + misses != probes {
            return Err(format!(
                "{ctx}: cross-shard pool accounting does not reconcile \
                 ({hits} hits + {misses} misses != {probes} probes)"
            ));
        }
        let splits = uint(m, "queue", "splits", &ctx)?;
        let cscans = uint(m, "kernels", "compiled_scans", &ctx)?;
        let iscans = uint(m, "kernels", "interpreted_scans", &ctx)?;
        if cscans + iscans != 2 * splits {
            return Err(format!(
                "{ctx}: scan-kernel ledger does not balance \
                 ({cscans} compiled + {iscans} interpreted != 2 x {splits} splits)"
            ));
        }
        match engine {
            "moments" | "sharded" => {
                let rescans = uint(m, "fits", "rescans", &ctx)?;
                if rescans != 0 {
                    return Err(format!(
                        "{ctx}: {engine} engine recorded {rescans} row rescans"
                    ));
                }
                if engine == "sharded" {
                    let run = uint(m, "shards", "run", &ctx)?;
                    if run < 2 {
                        return Err(format!("{ctx}: sharded run executed fewer than 2 shards"));
                    }
                    let rows = r
                        .get("rows")
                        .and_then(Json::as_num)
                        .ok_or_else(|| format!("{ctx}: missing 'rows'"))?;
                    let shard_rows = r
                        .get("shard_rows")
                        .and_then(Json::as_arr)
                        .ok_or_else(|| format!("{ctx}: sharded run missing 'shard_rows'"))?;
                    if shard_rows.len() as u64 != run {
                        return Err(format!(
                            "{ctx}: 'shard_rows' has {} entries but the run executed {run} shards",
                            shard_rows.len()
                        ));
                    }
                    let mut sum = 0.0f64;
                    for (j, v) in shard_rows.iter().enumerate() {
                        let n = v
                            .as_num()
                            .ok_or_else(|| format!("{ctx}: shard_rows[{j}] is not a number"))?;
                        if !n.is_finite() || n < 1.0 || n.fract() != 0.0 {
                            return Err(format!(
                                "{ctx}: shard_rows[{j}] is not a positive integer ({n})"
                            ));
                        }
                        sum += n;
                    }
                    if sum != rows {
                        return Err(format!(
                            "{ctx}: shard rows do not sum to the table rows \
                             ({sum} != {rows}) — the plan lost or duplicated rows"
                        ));
                    }
                    let balance = uint(m, "shards", "balance_permille", &ctx)?;
                    if balance > 1000 {
                        return Err(format!(
                            "{ctx}: shards.balance_permille gauge out of range ({balance})"
                        ));
                    }
                }
            }
            _ => {
                for key in ["moments_solves", "declined_singular"] {
                    let n = uint(m, "fits", key, &ctx)?;
                    if n != 0 {
                        return Err(format!("{ctx}: rescan engine recorded {n} '{key}' events"));
                    }
                }
                let adds = uint(m, "moments", "add_row_ops", &ctx)?;
                if adds != 0 {
                    return Err(format!(
                        "{ctx}: rescan engine recorded {adds} moments add-row ops"
                    ));
                }
            }
        }
        if engine != "sharded" && r.get("shard_rows").is_some() {
            return Err(format!(
                "{ctx}: '{engine}' run carries 'shard_rows' (sharded runs only)"
            ));
        }
        let injected = uint(m, "faults", "injected_failures", &ctx)?;
        match r.get("expected_fault_events").and_then(Json::as_num) {
            Some(expected) => {
                fault_runs += 1;
                if injected != expected as u64 {
                    return Err(format!(
                        "{ctx}: expected {expected} injected fault(s), recorded {injected}"
                    ));
                }
            }
            None => {
                if injected != 0 {
                    return Err(format!(
                        "{ctx}: clean run recorded {injected} injected fault(s)"
                    ));
                }
            }
        }
    }
    Ok(format!(
        "ok: {} run(s), {fault_runs} fault-harness",
        runs.len()
    ))
}

/// Convenience for emitters: a snapshot rendered standalone must parse and
/// expose a counter; used by tests and the `--metrics-out` smoke assert.
pub fn snapshot_counter(snap: &MetricsSnapshot, section: &str, name: &str) -> u64 {
    match snap.get(section, name) {
        Some(MetricValue::Count(v) | MetricValue::Gauge(v)) => v,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crr_obs::{Counter, MetricsSink};

    fn snap_with(faults: u64) -> MetricsSnapshot {
        let sink = MetricsSink::enabled();
        sink.add(Counter::QueuePops, 7);
        sink.add(Counter::MomentsSolves, 5);
        sink.add(Counter::MomentsAddRowOps, 100);
        sink.add(Counter::InjectedFailures, faults);
        sink.snapshot()
    }

    fn sample() -> Vec<MetricsRun> {
        vec![
            MetricsRun {
                dataset: "electricity".into(),
                rows: 2880,
                engine: "moments".into(),
                expected_fault_events: None,
                shard_rows: Vec::new(),
                snapshot: snap_with(0),
            },
            MetricsRun {
                dataset: "electricity".into(),
                rows: 2880,
                engine: "moments".into(),
                expected_fault_events: Some(1),
                shard_rows: Vec::new(),
                snapshot: snap_with(1),
            },
        ]
    }

    #[test]
    fn render_round_trips_through_validate() {
        let summary = validate(&render(&sample())).expect("valid");
        assert!(summary.contains("2 run(s)"), "{summary}");
        assert!(summary.contains("1 fault-harness"), "{summary}");
    }

    fn sharded_sink() -> MetricsSink {
        let sink = MetricsSink::enabled();
        sink.add(Counter::QueuePops, 7);
        sink.add(Counter::ShardsRun, 4);
        sink.add(Counter::CrossShardPoolProbes, 5);
        sink.add(Counter::CrossShardPoolHits, 3);
        sink.add(Counter::CrossShardPoolMisses, 2);
        sink
    }

    fn sharded_run() -> MetricsRun {
        MetricsRun {
            dataset: "electricity".into(),
            rows: 11520,
            engine: "sharded".into(),
            expected_fault_events: None,
            shard_rows: vec![2880, 2880, 2880, 2880],
            snapshot: sharded_sink().snapshot(),
        }
    }

    #[test]
    fn sharded_runs_validate_with_reconciled_pool_counters() {
        validate(&render(&[sharded_run()])).expect("valid sharded run");
    }

    #[test]
    fn shard_rows_must_sum_to_the_table_rows() {
        let mut run = sharded_run();
        run.shard_rows = vec![2880, 2880, 2880, 2879];
        let err = validate(&render(&[run])).expect_err("must fail");
        assert!(err.contains("lost or duplicated"), "{err}");
    }

    #[test]
    fn shard_rows_must_cover_every_shard_run() {
        let mut run = sharded_run();
        run.shard_rows = vec![5760, 5760];
        let err = validate(&render(&[run])).expect_err("must fail");
        assert!(err.contains("2 entries"), "{err}");

        let mut run = sharded_run();
        run.shard_rows.clear(); // renders as absent
        let err = validate(&render(&[run])).expect_err("must fail");
        assert!(err.contains("shard_rows"), "{err}");
    }

    #[test]
    fn shard_rows_on_an_unsharded_run_are_rejected() {
        let mut runs = sample();
        runs[0].shard_rows = vec![2880];
        let err = validate(&render(&runs)).expect_err("must fail");
        assert!(err.contains("sharded runs only"), "{err}");
    }

    #[test]
    fn unreconciled_pool_counters_are_rejected() {
        let mut runs = sample();
        // A hit that no probe accounts for.
        let sink = MetricsSink::enabled();
        sink.add(Counter::QueuePops, 7);
        sink.add(Counter::MomentsSolves, 5);
        sink.add(Counter::CrossShardPoolHits, 1);
        runs[0].snapshot = sink.snapshot();
        let err = validate(&render(&runs)).expect_err("must fail");
        assert!(err.contains("reconcile"), "{err}");
    }

    #[test]
    fn sharded_run_with_too_few_shards_is_rejected() {
        let mut runs = sample();
        runs[0].engine = "sharded".into(); // snapshot has shards.run == 0
        let err = validate(&render(&runs)).expect_err("must fail");
        assert!(err.contains("fewer than 2 shards"), "{err}");
    }

    #[test]
    fn engine_inconsistency_is_rejected() {
        let mut runs = sample();
        runs[0].engine = "rescan".into(); // but the snapshot has moments_solves=5
        let err = validate(&render(&runs)).expect_err("must fail");
        assert!(err.contains("moments_solves"), "{err}");
    }

    #[test]
    fn fault_count_mismatch_is_rejected() {
        let mut runs = sample();
        runs[1].expected_fault_events = Some(3);
        let err = validate(&render(&runs)).expect_err("must fail");
        assert!(err.contains("expected 3"), "{err}");
    }

    #[test]
    fn unexpected_faults_on_clean_run_are_rejected() {
        let mut runs = sample();
        runs[0].snapshot = snap_with(2);
        let err = validate(&render(&runs)).expect_err("must fail");
        assert!(err.contains("clean run"), "{err}");
    }

    #[test]
    fn missing_section_is_rejected() {
        let mut runs = sample();
        runs[0].snapshot.sections.retain(|s| s.name != "budget");
        let err = validate(&render(&runs)).expect_err("must fail");
        assert!(err.contains("budget"), "{err}");
    }

    #[test]
    fn unbalanced_scan_ledger_is_rejected() {
        let mut runs = sample();
        // A split whose side-filters no kernel accounts for.
        let sink = MetricsSink::enabled();
        sink.add(Counter::QueuePops, 7);
        sink.add(Counter::MomentsSolves, 5);
        sink.add(Counter::Splits, 3);
        sink.add(Counter::KernelCompiledScans, 5);
        runs[0].snapshot = sink.snapshot();
        let err = validate(&render(&runs)).expect_err("must fail");
        assert!(err.contains("scan-kernel ledger"), "{err}");
    }

    #[test]
    fn stream_activity_in_a_discovery_run_is_rejected() {
        let mut runs = sample();
        let sink = MetricsSink::enabled();
        sink.add(Counter::QueuePops, 7);
        sink.add(Counter::MomentsSolves, 5);
        sink.add(Counter::StreamBatches, 1);
        runs[0].snapshot = sink.snapshot();
        let err = validate(&render(&runs)).expect_err("must fail");
        assert!(err.contains("stream.batches"), "{err}");
    }

    #[test]
    fn empty_or_mislabeled_documents_are_rejected() {
        assert!(validate("{}").is_err());
        assert!(validate("{\"schema\": \"crr-metrics-v6\", \"runs\": []}").is_err());
        assert!(validate("{\"schema\": \"other\", \"runs\": [1]}").is_err());
        // The v5 tag is stale now that sharded runs carry shard_rows.
        assert!(validate("{\"schema\": \"crr-metrics-v5\", \"runs\": [1]}").is_err());
    }
}
