//! Tracked serving benchmark output: the `serving` experiment stands up a
//! live `crr-serve` server, drives it with the closed-loop load generator
//! in `crr_serve::client`, and writes `BENCH_serving.json`; CI
//! (`scripts/ci.sh --check-serving`) re-parses and validates it so a
//! regressed emitter or a degraded serving run fails the build.
//!
//! Like the sibling emitters, rendering and parsing ride on the
//! hand-rolled JSON layer in [`crr_obs::json`] — no serde. The schema is
//! documented field by field in `EXPERIMENTS.md`, section "Benchmark
//! artifact schemas".

use crr_obs::json::{esc, num, parse, Json};
use std::fmt::Write as _;

/// Schema tag stamped into the file; bump when the layout changes.
pub const SCHEMA: &str = "crr-serving-v1";

/// How a load cell was driven, which decides what the validator enforces.
///
/// * `smoke` — a closed loop sized inside the server's capacity: the
///   validator requires **zero** sheds, **zero** timeouts, zero transport
///   errors, and every request answered `200`. This is the CI gate: the
///   serving runtime must answer clean traffic cleanly.
/// * `overload` — deliberately more clients than `max_in_flight`: the
///   validator requires at least one shed (the backpressure path is
///   demonstrably exercised) and zero transport errors (sheds are
///   well-formed `503`s, never resets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingMode {
    /// Within capacity; must be loss-free.
    Smoke,
    /// Beyond capacity; must shed, never error.
    Overload,
}

impl ServingMode {
    /// The label written into the artifact.
    pub fn label(self) -> &'static str {
        match self {
            ServingMode::Smoke => "smoke",
            ServingMode::Overload => "overload",
        }
    }
}

/// One measured load cell: a (dataset, endpoint, mode) point.
#[derive(Debug, Clone)]
pub struct ServingRecord {
    /// Dataset the served rule set was discovered on (`electricity`).
    pub dataset: String,
    /// Discovery instance size |I|.
    pub rows: usize,
    /// Endpoint driven (`/v1/predict`, `/v1/check`).
    pub endpoint: String,
    /// Load mode (see [`ServingMode`]).
    pub mode: ServingMode,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Total requests issued across all clients.
    pub requests: usize,
    /// Requests answered `200`.
    pub completed: usize,
    /// Batch rows per request.
    pub batch_rows: usize,
    /// Requests shed with `503` (`serve.shed` delta over the cell).
    pub shed: u64,
    /// Requests that tripped their deadline (`serve.timeouts` delta).
    pub timeouts: u64,
    /// Transport errors seen by the load generator (resets, hangs).
    pub errors: usize,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 90th-percentile latency, milliseconds.
    pub p90_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Worst observed latency, milliseconds.
    pub max_ms: f64,
    /// Completed requests per second over the cell's wall time.
    pub throughput_rps: f64,
}

/// The hot-swap churn cell: swaps driven against the live server while
/// load ran, and whether answers stayed pinned to offline evaluation.
#[derive(Debug, Clone)]
pub struct SwapCell {
    /// Sound candidates admitted (`serve.swap_accepted`).
    pub accepted: u64,
    /// Candidates refused by the admission gate (`serve.swap_rejected`).
    pub rejected: u64,
    /// Final serving generation (must equal `accepted`).
    pub generation: u64,
    /// Whether every sampled in-flight answer was byte-identical to the
    /// offline evaluation of the same rule set.
    pub predictions_pinned: bool,
}

/// The full report the `serving` experiment emits.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Every measured load cell.
    pub records: Vec<ServingRecord>,
    /// The swap-churn cell.
    pub swaps: SwapCell,
}

/// Renders the report as pretty-printed JSON with a stable key order.
pub fn render(report: &ServingReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"records\": [");
    for (i, r) in report.records.iter().enumerate() {
        let comma = if i + 1 < report.records.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"dataset\": \"{}\", \"rows\": {}, \"endpoint\": \"{}\", \
             \"mode\": \"{}\", \"clients\": {}, \"requests\": {}, \"completed\": {}, \
             \"batch_rows\": {}, \"shed\": {}, \"timeouts\": {}, \"errors\": {}, \
             \"p50_ms\": {}, \"p90_ms\": {}, \"p99_ms\": {}, \"max_ms\": {}, \
             \"throughput_rps\": {}}}{comma}",
            esc(&r.dataset),
            r.rows,
            esc(&r.endpoint),
            r.mode.label(),
            r.clients,
            r.requests,
            r.completed,
            r.batch_rows,
            r.shed,
            r.timeouts,
            r.errors,
            num(r.p50_ms),
            num(r.p90_ms),
            num(r.p99_ms),
            num(r.max_ms),
            num(r.throughput_rps),
        );
    }
    let _ = writeln!(out, "  ],");
    let s = &report.swaps;
    let _ = writeln!(
        out,
        "  \"swaps\": {{\"accepted\": {}, \"rejected\": {}, \"generation\": {}, \
         \"predictions_pinned\": {}}}",
        s.accepted, s.rejected, s.generation, s.predictions_pinned
    );
    let _ = writeln!(out, "}}");
    out
}

fn finite_num(obj: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    let v = obj
        .get(key)
        .ok_or_else(|| format!("{ctx}: missing key '{key}'"))?;
    let x = v
        .as_num()
        .ok_or_else(|| format!("{ctx}: key '{key}' is not a number (got {v:?})"))?;
    if !x.is_finite() {
        return Err(format!("{ctx}: key '{key}' is non-finite"));
    }
    Ok(x)
}

fn uint(obj: &Json, key: &str, ctx: &str) -> Result<u64, String> {
    let x = finite_num(obj, key, ctx)?;
    if x < 0.0 || x.fract() != 0.0 {
        return Err(format!(
            "{ctx}: key '{key}' is not a non-negative integer ({x})"
        ));
    }
    Ok(x as u64)
}

fn str_key<'a>(obj: &'a Json, key: &str, ctx: &str) -> Result<&'a str, String> {
    obj.get(key)
        .ok_or_else(|| format!("{ctx}: missing key '{key}'"))?
        .as_str()
        .ok_or_else(|| format!("{ctx}: key '{key}' is not a string"))
}

/// Validates a `BENCH_serving.json` document. On success, returns a
/// one-line summary; on failure, a message naming the first violation.
///
/// Shape checks: the schema tag, a non-empty `records` array, and the
/// `swaps` cell. Per record: finite numbers, `completed <= requests`,
/// latency quantiles ordered `0 <= p50 <= p90 <= p99 <= max`, and positive
/// throughput whenever anything completed. Mode semantics:
///
/// * `smoke` cells are loss-free: zero sheds, zero timeouts, zero
///   transport errors, `completed == requests`;
/// * `overload` cells shed at least once and never see transport errors
///   (backpressure answers `503`, it does not reset connections);
/// * at least one record of each mode is present.
///
/// Swap semantics: at least one accepted and one rejected swap (both sides
/// of the admission gate exercised), `generation == accepted`, and
/// `predictions_pinned` true.
pub fn validate(text: &str) -> Result<String, String> {
    let doc = parse(text)?;
    let schema = str_key(&doc, "schema", "document")?;
    if schema != SCHEMA {
        return Err(format!("unexpected schema '{schema}' (want '{SCHEMA}')"));
    }
    let records = doc
        .get("records")
        .and_then(Json::as_arr)
        .ok_or("document: 'records' missing or not an array")?;
    if records.is_empty() {
        return Err("'records' is empty".to_string());
    }
    let (mut smoke, mut overload) = (0usize, 0usize);
    for (i, r) in records.iter().enumerate() {
        let ctx = format!("records[{i}]");
        str_key(r, "dataset", &ctx)?;
        let endpoint = str_key(r, "endpoint", &ctx)?;
        if !endpoint.starts_with("/v1/") {
            return Err(format!("{ctx}: unknown endpoint '{endpoint}'"));
        }
        if uint(r, "rows", &ctx)? == 0 || uint(r, "batch_rows", &ctx)? == 0 {
            return Err(format!("{ctx}: empty instance or batch"));
        }
        if uint(r, "clients", &ctx)? == 0 {
            return Err(format!("{ctx}: no clients"));
        }
        let requests = uint(r, "requests", &ctx)?;
        let completed = uint(r, "completed", &ctx)?;
        if requests == 0 || completed > requests {
            return Err(format!(
                "{ctx}: implausible request accounting ({completed}/{requests})"
            ));
        }
        let shed = uint(r, "shed", &ctx)?;
        let timeouts = uint(r, "timeouts", &ctx)?;
        let errors = uint(r, "errors", &ctx)?;
        let p50 = finite_num(r, "p50_ms", &ctx)?;
        let p90 = finite_num(r, "p90_ms", &ctx)?;
        let p99 = finite_num(r, "p99_ms", &ctx)?;
        let max = finite_num(r, "max_ms", &ctx)?;
        if !(0.0 <= p50 && p50 <= p90 && p90 <= p99 && p99 <= max) {
            return Err(format!(
                "{ctx}: latency quantiles out of order (p50={p50}, p90={p90}, p99={p99}, max={max})"
            ));
        }
        let rps = finite_num(r, "throughput_rps", &ctx)?;
        if completed > 0 && rps <= 0.0 {
            return Err(format!("{ctx}: completed {completed} but throughput {rps}"));
        }
        match str_key(r, "mode", &ctx)? {
            "smoke" => {
                smoke += 1;
                if shed != 0 || timeouts != 0 || errors != 0 || completed != requests {
                    return Err(format!(
                        "{ctx}: smoke cell is not loss-free \
                         (shed={shed}, timeouts={timeouts}, errors={errors}, {completed}/{requests})"
                    ));
                }
            }
            "overload" => {
                overload += 1;
                if shed == 0 {
                    return Err(format!("{ctx}: overload cell never shed"));
                }
                if errors != 0 {
                    return Err(format!(
                        "{ctx}: overload cell saw {errors} transport error(s); sheds must be 503s"
                    ));
                }
            }
            other => return Err(format!("{ctx}: unknown mode '{other}'")),
        }
    }
    if smoke == 0 || overload == 0 {
        return Err(format!(
            "need both modes measured (smoke={smoke}, overload={overload})"
        ));
    }
    let swaps = doc.get("swaps").ok_or("document: missing 'swaps' cell")?;
    let accepted = uint(swaps, "accepted", "swaps")?;
    let rejected = uint(swaps, "rejected", "swaps")?;
    let generation = uint(swaps, "generation", "swaps")?;
    if accepted == 0 || rejected == 0 {
        return Err(format!(
            "swaps: both gate outcomes must be exercised (accepted={accepted}, rejected={rejected})"
        ));
    }
    if generation != accepted {
        return Err(format!(
            "swaps: generation {generation} != accepted {accepted}"
        ));
    }
    match swaps.get("predictions_pinned").and_then(Json::as_bool) {
        Some(true) => {}
        Some(false) => return Err("swaps: predictions diverged from offline evaluation".into()),
        None => return Err("swaps: missing 'predictions_pinned'".into()),
    }
    Ok(format!(
        "ok: {} cell(s) ({smoke} smoke, {overload} overload), \
         {accepted} swap(s) accepted / {rejected} rejected",
        records.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(mode: ServingMode) -> ServingRecord {
        let overload = mode == ServingMode::Overload;
        ServingRecord {
            dataset: "electricity".into(),
            rows: 11_520,
            endpoint: "/v1/predict".into(),
            mode,
            clients: if overload { 8 } else { 2 },
            requests: 80,
            completed: if overload { 61 } else { 80 },
            batch_rows: 240,
            shed: if overload { 19 } else { 0 },
            timeouts: 0,
            errors: 0,
            p50_ms: 1.2,
            p90_ms: 2.5,
            p99_ms: 4.0,
            max_ms: 9.5,
            throughput_rps: 800.0,
        }
    }

    fn report() -> ServingReport {
        ServingReport {
            records: vec![record(ServingMode::Smoke), record(ServingMode::Overload)],
            swaps: SwapCell {
                accepted: 5,
                rejected: 5,
                generation: 5,
                predictions_pinned: true,
            },
        }
    }

    #[test]
    fn render_round_trips_through_validate() {
        let summary = validate(&render(&report())).expect("valid");
        assert!(summary.contains("2 cell(s)"), "{summary}");
        assert!(summary.contains("5 swap(s) accepted"), "{summary}");
    }

    #[test]
    fn smoke_cell_with_sheds_is_rejected() {
        let mut rep = report();
        rep.records[0].shed = 1;
        let err = validate(&render(&rep)).expect_err("must fail");
        assert!(err.contains("loss-free"), "{err}");
    }

    #[test]
    fn smoke_cell_with_timeouts_is_rejected() {
        let mut rep = report();
        rep.records[0].timeouts = 2;
        assert!(validate(&render(&rep)).is_err());
    }

    #[test]
    fn overload_cell_without_sheds_is_rejected() {
        let mut rep = report();
        rep.records[1].shed = 0;
        let err = validate(&render(&rep)).expect_err("must fail");
        assert!(err.contains("never shed"), "{err}");
    }

    #[test]
    fn transport_errors_are_rejected_in_both_modes() {
        for i in 0..2 {
            let mut rep = report();
            rep.records[i].errors = 1;
            assert!(validate(&render(&rep)).is_err(), "record {i}");
        }
    }

    #[test]
    fn disordered_quantiles_are_rejected() {
        let mut rep = report();
        rep.records[0].p99_ms = 0.5; // below p90
        let err = validate(&render(&rep)).expect_err("must fail");
        assert!(err.contains("out of order"), "{err}");
    }

    #[test]
    fn missing_modes_are_rejected() {
        let mut rep = report();
        rep.records.remove(1);
        let err = validate(&render(&rep)).expect_err("must fail");
        assert!(err.contains("both modes"), "{err}");
    }

    #[test]
    fn unexercised_or_diverged_swap_gate_is_rejected() {
        let mut rep = report();
        rep.swaps.rejected = 0;
        assert!(validate(&render(&rep)).is_err());
        let mut rep = report();
        rep.swaps.generation = 4;
        assert!(validate(&render(&rep)).is_err());
        let mut rep = report();
        rep.swaps.predictions_pinned = false;
        let err = validate(&render(&rep)).expect_err("must fail");
        assert!(err.contains("diverged"), "{err}");
    }

    #[test]
    fn empty_or_mislabeled_documents_are_rejected() {
        assert!(validate("{}").is_err());
        assert!(validate("{\"schema\": \"crr-serving-v1\", \"records\": []}").is_err());
        assert!(validate("{\"schema\": \"other\", \"records\": [1]}").is_err());
    }
}
