//! Property-based tests for the relational substrate: CSV round-trips and
//! RowSet set-algebra laws.

// Test harness: panicking on malformed fixtures is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use crr_data::{csv, AttrType, PlannerCost, RowSet, Schema, ShardPlan, ShardSpec, Table, Value};
use proptest::prelude::*;

/// An arbitrary cell for a column type. Floats are rounded to a fixed
/// precision so text round-trips are exact.
fn arb_value(ty: AttrType) -> BoxedStrategy<Value> {
    match ty {
        AttrType::Int => prop_oneof![
            3 => (-1_000_000i64..1_000_000).prop_map(Value::Int),
            1 => Just(Value::Null),
        ]
        .boxed(),
        AttrType::Float => prop_oneof![
            3 => (-1_000_000i64..1_000_000)
                .prop_map(|v| Value::Float(v as f64 / 128.0)),
            1 => Just(Value::Null),
        ]
        .boxed(),
        AttrType::Str => prop_oneof![
            3 => "[a-zA-Z0-9 ,\"_-]{0,12}".prop_map(Value::str),
            1 => Just(Value::Null),
        ]
        .boxed(),
    }
}

/// A random table: random column types, random cells (including nulls,
/// commas and quotes in strings).
fn arb_table() -> impl Strategy<Value = Table> {
    prop::collection::vec(
        prop_oneof![
            Just(AttrType::Int),
            Just(AttrType::Float),
            Just(AttrType::Str)
        ],
        1..5,
    )
    .prop_flat_map(|types| {
        let schema_types = types.clone();
        let row_strategy: Vec<BoxedStrategy<Value>> = types.iter().map(|&t| arb_value(t)).collect();
        prop::collection::vec(row_strategy, 1..30).prop_map(move |rows| {
            let schema = Schema::new(
                schema_types
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| (format!("c{i}"), t))
                    .collect(),
            );
            let mut table = Table::new(schema);
            for row in rows {
                table.push_row(row).unwrap();
            }
            table
        })
    })
}

/// Equality of cells after a CSV round trip. Type inference may narrow a
/// column (e.g. a Str column whose every cell happens to parse as a
/// number, or an all-null Float column inferred as Int), so values are
/// compared through their semantic ordering when kinds differ.
fn roundtrip_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        // An empty string serializes as an empty field == null.
        (Value::Str(s), Value::Null) | (Value::Null, Value::Str(s)) => s.is_empty(),
        (x, y) => {
            if x == y {
                return true;
            }
            // Str "42" may come back as Int 42: compare textually.
            x.to_string() == y.to_string()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// CSV write → read preserves shape and cell contents (modulo type
    /// narrowing on text that happens to look numeric).
    #[test]
    fn csv_roundtrip(table in arb_table()) {
        let mut buf = Vec::new();
        csv::write_csv(&table, &mut buf).unwrap();
        let back = csv::read_csv(buf.as_slice()).unwrap();
        prop_assert_eq!(back.num_rows(), table.num_rows());
        prop_assert_eq!(back.num_cols(), table.num_cols());
        for (id, _) in table.schema().iter() {
            for r in 0..table.num_rows() {
                let a = table.value(r, id);
                let b = back.value(r, id);
                prop_assert!(roundtrip_eq(&a, &b), "row {} col {}: {:?} vs {:?}", r, id, a, b);
            }
        }
    }

    /// RowSet algebra: union/intersection are commutative, idempotent and
    /// respect containment.
    #[test]
    fn rowset_set_algebra(
        a in prop::collection::vec(0u32..100, 0..50),
        b in prop::collection::vec(0u32..100, 0..50),
    ) {
        let a = RowSet::from_indices(a);
        let b = RowSet::from_indices(b);
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(a.union(&a), a.clone());
        prop_assert_eq!(a.intersect(&a), a.clone());
        // |A ∪ B| + |A ∩ B| = |A| + |B|.
        prop_assert_eq!(
            a.union(&b).len() + a.intersect(&b).len(),
            a.len() + b.len()
        );
        // Intersection ⊆ each input ⊆ union.
        for r in a.intersect(&b).iter() {
            prop_assert!(a.iter().any(|x| x == r) && b.iter().any(|x| x == r));
        }
        for r in a.iter() {
            prop_assert!(a.union(&b).iter().any(|x| x == r));
        }
    }

    /// Partition is exact: the two sides are disjoint and rebuild the set.
    #[test]
    fn rowset_partition_laws(rows in prop::collection::vec(0u32..200, 0..60), pivot in 0u32..200) {
        let set = RowSet::from_indices(rows);
        let (yes, no) = set.partition(|r| (r as u32) < pivot);
        prop_assert!(yes.intersect(&no).is_empty());
        prop_assert_eq!(yes.union(&no), set);
    }

    /// Column statistics bounds: min ≤ mean ≤ max over any numeric subset.
    #[test]
    fn stats_are_ordered(values in prop::collection::vec(-100.0f64..100.0, 1..50)) {
        let schema = Schema::new(vec![("v", AttrType::Float)]);
        let mut t = Table::new(schema);
        for v in &values {
            t.push_row(vec![Value::Float(*v)]).unwrap();
        }
        let s = crr_data::ColumnStats::compute(&t, t.attr("v").unwrap(), &t.all_rows());
        let (min, max) = (s.min.unwrap(), s.max.unwrap());
        prop_assert!(min <= s.mean + 1e-9 && s.mean <= max + 1e-9);
        prop_assert!(s.variance >= 0.0);
        prop_assert!(s.variance <= (max - min).powi(2) + 1e-9);
    }

    /// Quantile shard plans are exact on arbitrary keys — skewed, heavily
    /// repeated, constant, null-ridden or all-null: shards are disjoint,
    /// their union is the input, no shard is empty, key ranges never
    /// interleave (cuts land strictly between distinct values) and every
    /// null-key row sits in the single trailing null-regime shard.
    #[test]
    fn quantile_plans_are_disjoint_and_covering(
        keys in prop::collection::vec(arb_shard_key(), 1..80),
        k in 1usize..6,
    ) {
        let (t, attr) = shard_key_table(&keys);
        let rows = t.all_rows();
        let (shards, report) = ShardSpec::by_key(attr)
            .quantile()
            .shards(k)
            .plan(&t, &rows, &PlannerCost::default())
            .unwrap();

        // Disjoint, covering, no empty shards, dense ids.
        let mut seen: Vec<u32> = Vec::new();
        for (i, s) in shards.iter().enumerate() {
            prop_assert_eq!(s.id, i, "shard ids not dense");
            prop_assert!(!s.rows.is_empty(), "empty shard survived");
            seen.extend_from_slice(s.rows.as_slice());
        }
        seen.sort_unstable();
        let total = seen.len();
        seen.dedup();
        prop_assert_eq!(seen.len(), total, "shards overlap");
        prop_assert_eq!(seen, rows.as_slice().to_vec(), "union is not the input");

        // Null regime: all null-key rows in one trailing null shard.
        let nulls: Vec<u32> = rows
            .as_slice()
            .iter()
            .copied()
            .filter(|&r| t.value_f64(r as usize, attr).is_none())
            .collect();
        let null_shards: Vec<_> = shards
            .iter()
            .filter(|s| s.bounds.map(|b| b.null_keys).unwrap_or(false))
            .collect();
        if nulls.is_empty() {
            prop_assert!(null_shards.is_empty());
        } else {
            prop_assert_eq!(null_shards.len(), 1);
            prop_assert_eq!(null_shards[0].id, shards.len() - 1, "null shard must trail");
            prop_assert_eq!(null_shards[0].rows.as_slice().to_vec(), nulls);
        }

        // Interval shards never split a repeated-value run: max key of one
        // shard is strictly below the min key of the next.
        let interval_extents: Vec<(f64, f64)> = shards
            .iter()
            .filter(|s| !s.bounds.map(|b| b.null_keys).unwrap_or(false))
            .map(|s| {
                let ks: Vec<f64> = s.rows.iter().filter_map(|r| t.value_f64(r, attr)).collect();
                let lo = ks.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = ks.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                (lo, hi)
            })
            .collect();
        for w in interval_extents.windows(2) {
            prop_assert!(w[0].1 < w[1].0, "key ranges interleave: {:?}", interval_extents);
        }
        prop_assert!(interval_extents.len() <= k, "more interval shards than requested");
        prop_assert_eq!(report.produced, shards.len());
    }

    /// A one-shard spec is byte-identical to the classic unsharded
    /// partition: same ids, same row order, same (absent) bounds.
    #[test]
    fn single_shard_spec_matches_classic_partition(
        keys in prop::collection::vec(arb_shard_key(), 1..60),
    ) {
        let (t, attr) = shard_key_table(&keys);
        let rows = t.all_rows();
        let classic = ShardPlan::Single.partition(&t, &rows).unwrap();
        let (via_spec, report) = ShardSpec::single()
            .plan(&t, &rows, &PlannerCost::default())
            .unwrap();
        prop_assert_eq!(via_spec, classic);
        prop_assert_eq!(report.produced, 1);
        // And a quantile spec degenerates identically whether asked for
        // one shard or collapsed by a constant key.
        let (one, _) = ShardSpec::by_key(attr)
            .quantile()
            .shards(1)
            .plan(&t, &rows, &PlannerCost::default())
            .unwrap();
        let mut flat: Vec<u32> = one
            .iter()
            .flat_map(|s| s.rows.as_slice().iter().copied())
            .collect();
        flat.sort_unstable();
        prop_assert_eq!(flat, rows.as_slice().to_vec());
        prop_assert!(one.len() <= 2, "one interval shard plus at most a null shard");
    }
}

/// Shard keys for plan proptests: a null regime, a small repeated-value
/// vocabulary (forces runs and constants) and a skewed wide range.
fn arb_shard_key() -> BoxedStrategy<Option<f64>> {
    prop_oneof![
        1 => Just(None),
        2 => (0i64..6).prop_map(|v| Some(v as f64)),
        2 => (-1_000i64..1_000).prop_map(|v| Some((v * v.abs()) as f64 / 16.0)),
    ]
    .boxed()
}

fn shard_key_table(keys: &[Option<f64>]) -> (Table, crr_data::AttrId) {
    let schema = Schema::new(vec![("k", AttrType::Float)]);
    let mut t = Table::new(schema);
    for k in keys {
        let kv = match k {
            Some(v) => Value::Float(*v),
            None => Value::Null,
        };
        t.push_row(vec![kv]).unwrap();
    }
    let attr = t.attr("k").unwrap();
    (t, attr)
}
