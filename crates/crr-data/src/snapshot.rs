//! Columnar numeric snapshot of the attributes one discovery run touches.
//!
//! Algorithm 1 revisits the same `(inputs, target)` columns at every queue
//! pop: share tests, residual scans, and model fits all read the same cells
//! over and over. Extracting those cells through the typed [`Value`]
//! machinery costs an enum dispatch per cell; this snapshot pays that cost
//! exactly once per run, materializing each input and the target as a flat
//! `Vec<f64>` indexed by global row id, plus a *fit-ready* bitmask marking
//! rows where every input and the target are present. After the build,
//! a partition is just a slice of row ids into these buffers.
//!
//! Rows with a missing (null or non-numeric) cell are simply not fit-ready —
//! they stay in partitions for predicate evaluation but contribute nothing
//! to fits, matching `Table::complete_rows`. A *present* cell holding NaN or
//! ±Inf is different: it would poison any fit it touched, so the build
//! rejects it with [`DataError::NonFiniteCell`], naming the first offending
//! `(row, attribute)` in row-major order.
//!
//! [`Value`]: crate::Value

use crate::{AttrId, DataError, Result, RowSet, Table};

/// Column-major `f64` buffers for one discovery run's inputs and target,
/// with a completeness/finiteness bitmask. Built once per run; see the
/// module docs.
#[derive(Debug, Clone)]
pub struct NumericSnapshot {
    /// One buffer per input attribute, each `table.num_rows()` long; cells
    /// outside the snapshot's rows, or missing in them, hold NaN.
    inputs: Vec<Vec<f64>>,
    /// Target buffer, same indexing as `inputs`.
    target: Vec<f64>,
    /// Bit `r` set iff row `r` is fit-ready (all inputs + target present).
    ready: Vec<u64>,
}

impl NumericSnapshot {
    /// Materializes `inputs` and `target` over `rows` of `table`.
    ///
    /// Fails with [`DataError::NonFiniteCell`] if any otherwise-complete row
    /// in `rows` holds a non-finite numeric cell in these attributes.
    pub fn build(
        table: &Table,
        inputs: &[AttrId],
        target: AttrId,
        rows: &RowSet,
    ) -> Result<NumericSnapshot> {
        let n = table.num_rows();
        let mut snap = NumericSnapshot {
            inputs: vec![vec![f64::NAN; n]; inputs.len()],
            target: vec![f64::NAN; n],
            ready: vec![0u64; n.div_ceil(64)],
        };
        let mut cells: Vec<Option<f64>> = vec![None; inputs.len() + 1];
        for r in rows.iter() {
            for (slot, &a) in cells.iter_mut().zip(inputs) {
                *slot = table.value_f64(r, a);
            }
            cells[inputs.len()] = table.value_f64(r, target);
            if cells.iter().any(Option::is_none) {
                continue; // incomplete: not fit-ready, matching complete_rows
            }
            // Complete rows must be finite end to end; report the first
            // offender in attribute order (inputs, then target).
            for (i, v) in cells.iter().enumerate() {
                let v = v.unwrap_or(f64::NAN);
                if !v.is_finite() {
                    let attr = if i < inputs.len() { inputs[i] } else { target };
                    return Err(DataError::NonFiniteCell {
                        row: r,
                        attribute: table.schema().attribute(attr).name().to_string(),
                    });
                }
                if i < inputs.len() {
                    snap.inputs[i][r] = v;
                } else {
                    snap.target[r] = v;
                }
            }
            snap.ready[r / 64] |= 1u64 << (r % 64);
        }
        Ok(snap)
    }

    /// Number of input columns.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// The `j`-th input buffer, indexed by global row id.
    #[inline]
    pub fn input(&self, j: usize) -> &[f64] {
        &self.inputs[j]
    }

    /// The target buffer, indexed by global row id.
    #[inline]
    pub fn target(&self) -> &[f64] {
        &self.target
    }

    /// True when every input and the target are present and finite at `row`.
    #[inline]
    pub fn is_ready(&self, row: usize) -> bool {
        self.ready
            .get(row / 64)
            .is_some_and(|w| w & (1u64 << (row % 64)) != 0)
    }

    /// The fit-ready subset of `rows`, in ascending order — the snapshot
    /// equivalent of `Table::complete_rows`.
    pub fn ready_rows(&self, rows: &RowSet) -> Vec<u32> {
        rows.as_slice()
            .iter()
            .copied()
            .filter(|&r| self.is_ready(r as usize))
            .collect()
    }

    /// Copies row `row`'s input cells into `out` (`out.len() == num_inputs`).
    #[inline]
    pub fn gather_x(&self, row: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.inputs.len());
        for (o, col) in out.iter_mut().zip(&self.inputs) {
            *o = col[row];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrType, Schema, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ("x", AttrType::Float),
            ("y", AttrType::Float),
            ("s", AttrType::Str),
        ]);
        let mut t = Table::new(schema);
        for i in 0..10 {
            t.push_row(vec![
                Value::Float(i as f64),
                Value::Float(2.0 * i as f64),
                Value::str("a"),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn clean_table_is_fully_ready() {
        let t = table();
        let (x, y) = (t.attr("x").unwrap(), t.attr("y").unwrap());
        let snap = NumericSnapshot::build(&t, &[x], y, &t.all_rows()).unwrap();
        assert_eq!(snap.num_inputs(), 1);
        assert_eq!(snap.ready_rows(&t.all_rows()).len(), 10);
        assert_eq!(snap.input(0)[3], 3.0);
        assert_eq!(snap.target()[3], 6.0);
        let mut buf = [0.0];
        snap.gather_x(7, &mut buf);
        assert_eq!(buf[0], 7.0);
    }

    #[test]
    fn null_cells_drop_rows_from_readiness_without_error() {
        let mut t = table();
        let (x, y) = (t.attr("x").unwrap(), t.attr("y").unwrap());
        t.set_null(2, x);
        t.set_null(5, y);
        let snap = NumericSnapshot::build(&t, &[x], y, &t.all_rows()).unwrap();
        assert!(!snap.is_ready(2));
        assert!(!snap.is_ready(5));
        assert_eq!(snap.ready_rows(&t.all_rows()).len(), 8);
        // The buffers mark the holes as NaN.
        assert!(snap.input(0)[2].is_nan());
        assert!(snap.target()[5].is_nan());
    }

    #[test]
    fn non_finite_present_cell_is_a_typed_error() {
        let mut t = table();
        let (x, y) = (t.attr("x").unwrap(), t.attr("y").unwrap());
        t.set_value(4, x, Value::Float(f64::INFINITY));
        match NumericSnapshot::build(&t, &[x], y, &t.all_rows()) {
            Err(DataError::NonFiniteCell { row: 4, attribute }) => assert_eq!(attribute, "x"),
            other => panic!("expected NonFiniteCell, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_in_an_incomplete_row_is_skipped_not_reported() {
        // Matches the pre-snapshot extraction order: rows filtered out by
        // completeness were never finiteness-checked.
        let mut t = table();
        let (x, y) = (t.attr("x").unwrap(), t.attr("y").unwrap());
        t.set_value(4, x, Value::Float(f64::NAN));
        t.set_null(4, y);
        let snap = NumericSnapshot::build(&t, &[x], y, &t.all_rows()).unwrap();
        assert!(!snap.is_ready(4));
    }

    #[test]
    fn string_input_means_no_row_is_ready() {
        let t = table();
        let (s, y) = (t.attr("s").unwrap(), t.attr("y").unwrap());
        let snap = NumericSnapshot::build(&t, &[s], y, &t.all_rows()).unwrap();
        assert!(snap.ready_rows(&t.all_rows()).is_empty());
    }

    #[test]
    fn rows_outside_the_snapshot_are_not_ready() {
        let t = table();
        let (x, y) = (t.attr("x").unwrap(), t.attr("y").unwrap());
        let some = RowSet::from_indices(vec![1, 3, 8]);
        let snap = NumericSnapshot::build(&t, &[x], y, &some).unwrap();
        assert!(snap.is_ready(3));
        assert!(!snap.is_ready(2));
        assert_eq!(snap.ready_rows(&t.all_rows()), vec![1, 3, 8]);
    }
}
