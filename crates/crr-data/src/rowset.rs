/// A subset of a table's rows, by index.
///
/// CRR discovery repeatedly refines conditions `C → C ∧ p`, each refinement
/// selecting a subset `D_C` of the same underlying table. `RowSet` is that
/// subset: a sorted list of `u32` row indices, cheap to filter and to hand
/// to model fitting without copying any column data.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RowSet {
    rows: Vec<u32>,
}

impl RowSet {
    /// Empty set.
    pub fn new() -> Self {
        RowSet::default()
    }

    /// All rows `0..n`.
    pub fn all(n: usize) -> Self {
        RowSet {
            rows: (0..n as u32).collect(),
        }
    }

    /// From raw indices. Sorts and deduplicates to maintain the invariant.
    pub fn from_indices(mut rows: Vec<u32>) -> Self {
        rows.sort_unstable();
        rows.dedup();
        RowSet { rows }
    }

    /// From indices that are already sorted and deduplicated — the shape
    /// every selection kernel emits. Skips the re-sort of
    /// [`RowSet::from_indices`]; the invariant is checked in debug builds.
    pub fn from_sorted(rows: Vec<u32>) -> Self {
        debug_assert!(rows.windows(2).all(|w| w[0] < w[1]));
        RowSet { rows }
    }

    /// Number of rows in the set.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows are selected.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates row indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.rows.iter().map(|&r| r as usize)
    }

    /// Borrow of the raw indices.
    pub fn as_slice(&self) -> &[u32] {
        &self.rows
    }

    /// Keeps only rows satisfying `keep`.
    pub fn filter(&self, mut keep: impl FnMut(usize) -> bool) -> RowSet {
        let mut rows = Vec::with_capacity(self.rows.len());
        rows.extend(self.rows.iter().copied().filter(|&r| keep(r as usize)));
        RowSet { rows }
    }

    /// Splits into `(satisfying, rest)` in one pass.
    pub fn partition(&self, mut pred: impl FnMut(usize) -> bool) -> (RowSet, RowSet) {
        let mut yes = Vec::with_capacity(self.rows.len());
        let mut no = Vec::with_capacity(self.rows.len());
        for &r in &self.rows {
            if pred(r as usize) {
                yes.push(r);
            } else {
                no.push(r);
            }
        }
        (RowSet { rows: yes }, RowSet { rows: no })
    }

    /// Writes the rows satisfying `keep` into `out`, clearing it first.
    ///
    /// Kernel callers loop over many candidate predicates against the same
    /// partition; this lets them reuse one scratch buffer instead of
    /// allocating a fresh `Vec` per candidate.
    pub fn retain_into(&self, mut keep: impl FnMut(usize) -> bool, out: &mut Vec<u32>) {
        out.clear();
        out.reserve(self.rows.len());
        out.extend(self.rows.iter().copied().filter(|&r| keep(r as usize)));
    }

    /// Set intersection (both inputs are sorted).
    pub fn intersect(&self, other: &RowSet) -> RowSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.rows.len() && j < other.rows.len() {
            match self.rows[i].cmp(&other.rows[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.rows[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        RowSet { rows: out }
    }

    /// Set union (both inputs are sorted).
    pub fn union(&self, other: &RowSet) -> RowSet {
        let mut out = Vec::with_capacity(self.rows.len() + other.rows.len());
        let (mut i, mut j) = (0, 0);
        while i < self.rows.len() && j < other.rows.len() {
            match self.rows[i].cmp(&other.rows[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.rows[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.rows[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.rows[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.rows[i..]);
        out.extend_from_slice(&other.rows[j..]);
        RowSet { rows: out }
    }
}

impl FromIterator<u32> for RowSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        RowSet::from_indices(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_every_row() {
        let s = RowSet::all(4);
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn from_indices_sorts_and_dedups() {
        let s = RowSet::from_indices(vec![3, 1, 3, 0]);
        assert_eq!(s.as_slice(), &[0, 1, 3]);
    }

    #[test]
    fn filter_and_partition() {
        let s = RowSet::all(6);
        let even = s.filter(|r| r % 2 == 0);
        assert_eq!(even.as_slice(), &[0, 2, 4]);
        let (yes, no) = s.partition(|r| r < 2);
        assert_eq!(yes.as_slice(), &[0, 1]);
        assert_eq!(no.as_slice(), &[2, 3, 4, 5]);
    }

    #[test]
    fn intersect_and_union() {
        let a = RowSet::from_indices(vec![0, 2, 4, 6]);
        let b = RowSet::from_indices(vec![2, 3, 4]);
        assert_eq!(a.intersect(&b).as_slice(), &[2, 4]);
        assert_eq!(a.union(&b).as_slice(), &[0, 2, 3, 4, 6]);
    }

    #[test]
    fn retain_into_reuses_the_buffer() {
        let s = RowSet::all(6);
        let mut buf = vec![9, 9, 9];
        s.retain_into(|r| r % 2 == 0, &mut buf);
        assert_eq!(buf, vec![0, 2, 4]);
        s.retain_into(|r| r >= 5, &mut buf);
        assert_eq!(buf, vec![5]);
    }

    #[test]
    fn from_sorted_preserves_indices() {
        let s = RowSet::from_sorted(vec![1, 4, 7]);
        assert_eq!(s.as_slice(), &[1, 4, 7]);
        assert_eq!(s, RowSet::from_indices(vec![7, 4, 1]));
    }

    #[test]
    fn empty_behaviour() {
        let e = RowSet::new();
        assert!(e.is_empty());
        let a = RowSet::all(3);
        assert_eq!(e.intersect(&a), e);
        assert_eq!(e.union(&a), a);
    }
}
