use crate::{DataError, Result};
use std::collections::HashMap;
use std::fmt;

/// Declared type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// 64-bit integers (also dates encoded as day offsets).
    Int,
    /// 64-bit floats.
    Float,
    /// Dictionary-encoded strings (categorical attributes).
    Str,
}

impl AttrType {
    /// True for types that admit a numeric (`f64`) view.
    pub fn is_numeric(self) -> bool {
        matches!(self, AttrType::Int | AttrType::Float)
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrType::Int => write!(f, "int"),
            AttrType::Float => write!(f, "float"),
            AttrType::Str => write!(f, "str"),
        }
    }
}

/// Index of an attribute within its schema.
///
/// A newtype rather than a bare `usize` so that row indices and attribute
/// indices cannot be swapped silently — a classic source of off-by-one-table
/// bugs in columnar code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub usize);

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One named, typed attribute of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    name: String,
    ty: AttrType,
}

impl Attribute {
    /// Creates an attribute.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Self {
        Attribute {
            name: name.into(),
            ty,
        }
    }

    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared type.
    pub fn ty(&self) -> AttrType {
        self.ty
    }
}

/// An ordered set of attributes with O(1) lookup by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attrs: Vec<Attribute>,
    by_name: HashMap<String, AttrId>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    ///
    /// # Panics
    ///
    /// Panics on duplicate attribute names — a schema is a set.
    pub fn new<N: Into<String>>(attrs: Vec<(N, AttrType)>) -> Self {
        let attrs: Vec<Attribute> = attrs
            .into_iter()
            .map(|(n, t)| Attribute::new(n, t))
            .collect();
        let mut by_name = HashMap::with_capacity(attrs.len());
        for (i, a) in attrs.iter().enumerate() {
            let prev = by_name.insert(a.name().to_string(), AttrId(i));
            assert!(prev.is_none(), "duplicate attribute name: {}", a.name());
        }
        Schema { attrs, by_name }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Looks up an attribute id by name.
    pub fn attr(&self, name: &str) -> Result<AttrId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| DataError::UnknownAttribute(name.to_string()))
    }

    /// The attribute at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range; `AttrId`s should only come from this
    /// schema.
    pub fn attribute(&self, id: AttrId) -> &Attribute {
        &self.attrs[id.0]
    }

    /// Iterates `(AttrId, &Attribute)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Attribute)> {
        self.attrs.iter().enumerate().map(|(i, a)| (AttrId(i), a))
    }

    /// All ids of numeric attributes, in declaration order.
    pub fn numeric_attrs(&self) -> Vec<AttrId> {
        self.iter()
            .filter(|(_, a)| a.ty().is_numeric())
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            ("lat", AttrType::Float),
            ("date", AttrType::Int),
            ("bird", AttrType::Str),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = sample();
        assert_eq!(s.attr("date").unwrap(), AttrId(1));
        assert!(matches!(
            s.attr("nope"),
            Err(DataError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn numeric_attrs_skips_strings() {
        let s = sample();
        assert_eq!(s.numeric_attrs(), vec![AttrId(0), AttrId(1)]);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_names_panic() {
        Schema::new(vec![("a", AttrType::Int), ("a", AttrType::Float)]);
    }

    #[test]
    fn iter_in_declaration_order() {
        let s = sample();
        let names: Vec<&str> = s.iter().map(|(_, a)| a.name()).collect();
        assert_eq!(names, vec!["lat", "date", "bird"]);
    }
}
