use crate::{AttrType, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Type-specific columnar storage.
///
/// Strings are dictionary-encoded: categorical attributes in the paper's
/// datasets (bird id, US state, abalone sex) have tiny domains, so storing
/// `u32` codes plus one dictionary keeps the 2M-row Electricity-scale tables
/// compact and makes equality predicates a code comparison.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Plain integers.
    Int(Vec<i64>),
    /// Plain floats.
    Float(Vec<f64>),
    /// Dictionary codes into `dict`.
    Str {
        codes: Vec<u32>,
        dict: Vec<Arc<str>>,
        index: HashMap<Arc<str>, u32>,
    },
}

/// One column of a table: typed data plus an optional null mask.
///
/// The mask is allocated lazily — fully-observed columns (the common case
/// outside the imputation experiments) pay nothing for null support.
#[derive(Debug, Clone)]
pub struct Column {
    data: ColumnData,
    /// `Some(mask)` where `mask[i] == true` marks row `i` as null.
    nulls: Option<Vec<bool>>,
}

impl Column {
    /// Creates an empty column of the given type.
    pub fn new(ty: AttrType) -> Self {
        let data = match ty {
            AttrType::Int => ColumnData::Int(Vec::new()),
            AttrType::Float => ColumnData::Float(Vec::new()),
            AttrType::Str => ColumnData::Str {
                codes: Vec::new(),
                dict: Vec::new(),
                index: HashMap::new(),
            },
        };
        Column { data, nulls: None }
    }

    /// Declared type of the column.
    pub fn ty(&self) -> AttrType {
        match &self.data {
            ColumnData::Int(_) => AttrType::Int,
            ColumnData::Float(_) => AttrType::Float,
            ColumnData::Str { .. } => AttrType::Str,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str { codes, .. } => codes.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when row `i` holds a null.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls.as_ref().is_some_and(|mask| mask[i])
    }

    /// Reads row `i` as a [`Value`].
    pub fn get(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Str { codes, dict, .. } => Value::Str(dict[codes[i] as usize].clone()),
        }
    }

    /// Numeric view of row `i`; `None` for nulls and strings.
    #[inline]
    pub fn get_f64(&self, i: usize) -> Option<f64> {
        if self.is_null(i) {
            return None;
        }
        match &self.data {
            ColumnData::Int(v) => Some(v[i] as f64),
            ColumnData::Float(v) => Some(v[i]),
            ColumnData::Str { .. } => None,
        }
    }

    /// Dictionary code of row `i` for string columns; `None` otherwise.
    #[inline]
    pub fn get_code(&self, i: usize) -> Option<u32> {
        if self.is_null(i) {
            return None;
        }
        match &self.data {
            ColumnData::Str { codes, .. } => Some(codes[i]),
            _ => None,
        }
    }

    /// Looks up the dictionary code an equality predicate's constant would
    /// need; `None` when the constant never occurs in this column.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        match &self.data {
            ColumnData::Str { index, .. } => index.get(s).copied(),
            _ => None,
        }
    }

    /// Appends one value. Type mismatches append `Null` and report `false`;
    /// the table layer turns that into a typed error.
    pub fn push(&mut self, v: Value) -> bool {
        match (&mut self.data, v) {
            (_, Value::Null) => {
                self.push_null();
                return true;
            }
            (ColumnData::Int(col), Value::Int(x)) => col.push(x),
            // Ints widen into float columns (CSV inference may see "1" then "1.5").
            (ColumnData::Float(col), Value::Int(x)) => col.push(x as f64),
            (ColumnData::Float(col), Value::Float(x)) => col.push(x),
            (ColumnData::Str { codes, dict, index }, Value::Str(s)) => {
                let code = *index.entry(s.clone()).or_insert_with(|| {
                    dict.push(s);
                    (dict.len() - 1) as u32
                });
                codes.push(code);
            }
            (_, v) => {
                // Keep lengths consistent even on error.
                drop(v);
                self.push_null();
                return false;
            }
        }
        if let Some(mask) = &mut self.nulls {
            mask.push(false);
        }
        true
    }

    /// Appends a null.
    pub fn push_null(&mut self) {
        let len = self.len();
        let mask = self.nulls.get_or_insert_with(|| vec![false; len]);
        mask.push(true);
        match &mut self.data {
            ColumnData::Int(v) => v.push(0),
            ColumnData::Float(v) => v.push(0.0),
            ColumnData::Str { codes, .. } => codes.push(u32::MAX),
        }
    }

    /// Overwrites row `i` with a null (used to mask values for imputation).
    pub fn set_null(&mut self, i: usize) {
        let len = self.len();
        let mask = self.nulls.get_or_insert_with(|| vec![false; len]);
        mask[i] = true;
    }

    /// Overwrites row `i` with a value of the column's own type.
    ///
    /// # Panics
    ///
    /// Panics on type mismatch; callers route through the table layer which
    /// validates types.
    pub fn set(&mut self, i: usize, v: Value) {
        if let Value::Null = v {
            self.set_null(i);
            return;
        }
        if let Some(mask) = &mut self.nulls {
            mask[i] = false;
        }
        match (&mut self.data, v) {
            (ColumnData::Int(col), Value::Int(x)) => col[i] = x,
            (ColumnData::Float(col), Value::Float(x)) => col[i] = x,
            (ColumnData::Float(col), Value::Int(x)) => col[i] = x as f64,
            (ColumnData::Str { codes, dict, index }, Value::Str(s)) => {
                let code = *index.entry(s.clone()).or_insert_with(|| {
                    dict.push(s);
                    (dict.len() - 1) as u32
                });
                codes[i] = code;
            }
            (_, v) => panic!(
                "type mismatch in Column::set: column {:?} <- {}",
                self.ty(),
                v.type_name()
            ),
        }
    }

    /// Three-way comparison of row `i` against a numeric constant, without
    /// materializing a [`Value`] — the predicate-evaluation fast path.
    /// `None` for nulls and non-numeric columns.
    #[inline]
    pub fn cmp_f64(&self, i: usize, c: f64) -> Option<std::cmp::Ordering> {
        if self.is_null(i) {
            return None;
        }
        match &self.data {
            ColumnData::Int(v) => (v[i] as f64).partial_cmp(&c),
            ColumnData::Float(v) => v[i].partial_cmp(&c),
            ColumnData::Str { .. } => None,
        }
    }

    /// Three-way comparison of row `i` against a string constant, without
    /// cloning the interned string. `None` for nulls and numeric columns.
    #[inline]
    pub fn cmp_str(&self, i: usize, s: &str) -> Option<std::cmp::Ordering> {
        if self.is_null(i) {
            return None;
        }
        match &self.data {
            ColumnData::Str { codes, dict, .. } => Some(dict[codes[i] as usize].as_ref().cmp(s)),
            _ => None,
        }
    }

    /// Number of nulls in the column.
    pub fn null_count(&self) -> usize {
        self.nulls
            .as_ref()
            .map_or(0, |m| m.iter().filter(|&&b| b).count())
    }

    /// Borrow of the raw data enum, for type-specialized scans.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Borrow of the null mask, when one exists. `None` means the column is
    /// fully observed — a compiled kernel can skip the null lane entirely.
    #[inline]
    pub fn null_mask(&self) -> Option<&[bool]> {
        self.nulls.as_deref()
    }

    /// Dictionary of a string column, in code order.
    pub fn dict(&self) -> Option<&[Arc<str>]> {
        match &self.data {
            ColumnData::Str { dict, .. } => Some(dict),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_column_roundtrip() {
        let mut c = Column::new(AttrType::Int);
        assert!(c.push(Value::Int(5)));
        assert!(c.push(Value::Int(-2)));
        assert_eq!(c.get(0), Value::Int(5));
        assert_eq!(c.get_f64(1), Some(-2.0));
        assert_eq!(c.null_count(), 0);
    }

    #[test]
    fn float_column_widens_ints() {
        let mut c = Column::new(AttrType::Float);
        assert!(c.push(Value::Int(1)));
        assert!(c.push(Value::Float(1.5)));
        assert_eq!(c.get(0), Value::Float(1.0));
    }

    #[test]
    fn str_column_dictionary_encodes() {
        let mut c = Column::new(AttrType::Str);
        c.push(Value::str("IA"));
        c.push(Value::str("NY"));
        c.push(Value::str("IA"));
        assert_eq!(c.get_code(0), c.get_code(2));
        assert_ne!(c.get_code(0), c.get_code(1));
        assert_eq!(c.dict().unwrap().len(), 2);
        assert_eq!(c.code_of("NY"), Some(1));
        assert_eq!(c.code_of("TX"), None);
    }

    #[test]
    fn nulls_are_lazy_and_tracked() {
        let mut c = Column::new(AttrType::Float);
        c.push(Value::Float(1.0));
        assert_eq!(c.null_count(), 0);
        c.push_null();
        c.push(Value::Float(2.0));
        assert_eq!(c.len(), 3);
        assert!(c.get(1).is_null());
        assert_eq!(c.get_f64(1), None);
        assert_eq!(c.get_f64(2), Some(2.0));
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn set_null_then_set_value() {
        let mut c = Column::new(AttrType::Int);
        c.push(Value::Int(7));
        c.set_null(0);
        assert!(c.get(0).is_null());
        c.set(0, Value::Int(9));
        assert_eq!(c.get(0), Value::Int(9));
    }

    #[test]
    fn cmp_fast_paths_match_value_semantics() {
        use std::cmp::Ordering;
        let mut ints = Column::new(AttrType::Int);
        ints.push(Value::Int(5));
        ints.push_null();
        assert_eq!(ints.cmp_f64(0, 4.5), Some(Ordering::Greater));
        assert_eq!(ints.cmp_f64(0, 5.0), Some(Ordering::Equal));
        assert_eq!(ints.cmp_f64(1, 0.0), None); // null
        assert_eq!(ints.cmp_str(0, "5"), None); // cross-kind

        let mut strs = Column::new(AttrType::Str);
        strs.push(Value::str("IA"));
        assert_eq!(strs.cmp_str(0, "IA"), Some(Ordering::Equal));
        assert_eq!(strs.cmp_str(0, "NY"), Some(Ordering::Less));
        assert_eq!(strs.cmp_f64(0, 1.0), None);
    }

    #[test]
    fn type_mismatch_reports_false() {
        let mut c = Column::new(AttrType::Int);
        assert!(!c.push(Value::str("oops")));
        // Length stays consistent; the bad cell reads as null.
        assert_eq!(c.len(), 1);
        assert!(c.get(0).is_null());
    }
}
