use crate::{AttrId, RowSet, Table};

/// Summary statistics of one attribute over a row subset.
///
/// Predicate generation (paper §VI-D2) needs the domain of each attribute —
/// min/max for numeric split constants and the distinct categories for
/// equality predicates — and the discovery split heuristic needs means and
/// variances. All are computed in a single pass here.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Rows with a present value.
    pub count: usize,
    /// Rows with a null.
    pub nulls: usize,
    /// Minimum numeric value, if any numeric cell was seen.
    pub min: Option<f64>,
    /// Maximum numeric value, if any numeric cell was seen.
    pub max: Option<f64>,
    /// Mean of numeric values.
    pub mean: f64,
    /// Population variance of numeric values.
    pub variance: f64,
    /// Distinct dictionary codes, for string columns.
    pub distinct_codes: Vec<u32>,
}

impl ColumnStats {
    /// Computes statistics of `attr` over `rows` in one pass.
    pub fn compute(table: &Table, attr: AttrId, rows: &RowSet) -> ColumnStats {
        let col = table.column(attr);
        let mut count = 0usize;
        let mut nulls = 0usize;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let mut codes: Vec<u32> = Vec::new();
        for r in rows.iter() {
            if col.is_null(r) {
                nulls += 1;
                continue;
            }
            count += 1;
            if let Some(v) = col.get_f64(r) {
                min = min.min(v);
                max = max.max(v);
                sum += v;
                sum_sq += v * v;
            } else if let Some(code) = col.get_code(r) {
                codes.push(code);
            }
        }
        codes.sort_unstable();
        codes.dedup();
        let (mean, variance) = if count > 0 && min.is_finite() {
            let m = sum / count as f64;
            (m, (sum_sq / count as f64 - m * m).max(0.0))
        } else {
            (0.0, 0.0)
        };
        ColumnStats {
            count,
            nulls,
            min: min.is_finite().then_some(min),
            max: max.is_finite().then_some(max),
            mean,
            variance,
            distinct_codes: codes,
        }
    }

    /// Width of the numeric domain (`max - min`), zero when degenerate.
    pub fn range(&self) -> f64 {
        match (self.min, self.max) {
            (Some(lo), Some(hi)) => hi - lo,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrType, Schema, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![("v", AttrType::Float), ("s", AttrType::Str)]);
        let mut t = Table::new(schema);
        for (v, s) in [(1.0, "a"), (3.0, "b"), (5.0, "a")] {
            t.push_row(vec![Value::Float(v), Value::str(s)]).unwrap();
        }
        t.push_row(vec![Value::Null, Value::str("c")]).unwrap();
        t
    }

    #[test]
    fn numeric_stats() {
        let t = table();
        let s = ColumnStats::compute(&t, t.attr("v").unwrap(), &t.all_rows());
        assert_eq!(s.count, 3);
        assert_eq!(s.nulls, 1);
        assert_eq!(s.min, Some(1.0));
        assert_eq!(s.max, Some(5.0));
        assert_eq!(s.mean, 3.0);
        assert!((s.variance - 8.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.range(), 4.0);
    }

    #[test]
    fn categorical_stats() {
        let t = table();
        let s = ColumnStats::compute(&t, t.attr("s").unwrap(), &t.all_rows());
        assert_eq!(s.count, 4);
        assert_eq!(s.distinct_codes.len(), 3);
        assert_eq!(s.min, None);
        assert_eq!(s.range(), 0.0);
    }

    #[test]
    fn subset_stats() {
        let t = table();
        let rows = RowSet::from_indices(vec![0, 2]);
        let s = ColumnStats::compute(&t, t.attr("v").unwrap(), &rows);
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.variance, 4.0);
    }
}
