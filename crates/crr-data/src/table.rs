use crate::{AttrId, Column, DataError, Result, RowSet, Schema, Value};

/// A columnar relational table.
///
/// The table owns one [`Column`] per schema attribute. Discovery code never
/// copies the table; it carries [`RowSet`]s of indices into it.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
}

impl Table {
    /// Creates an empty table for `schema`.
    pub fn new(schema: Schema) -> Self {
        let columns = schema.iter().map(|(_, a)| Column::new(a.ty())).collect();
        Table { schema, columns }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.columns.len()
    }

    /// Resolves an attribute name to its id.
    pub fn attr(&self, name: &str) -> Result<AttrId> {
        self.schema.attr(name)
    }

    /// Borrows a column.
    pub fn column(&self, id: AttrId) -> &Column {
        &self.columns[id.0]
    }

    /// Appends a row. Cells must match the schema's arity and types
    /// (`Null` is accepted anywhere).
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(DataError::ArityMismatch {
                expected: self.schema.len(),
                got: row.len(),
            });
        }
        // Validate all cells before mutating any column so a failed push
        // leaves the table unchanged.
        for (i, v) in row.iter().enumerate() {
            let col_ty = self.columns[i].ty();
            let ok = matches!(
                (col_ty, v),
                (_, Value::Null)
                    | (crate::AttrType::Int, Value::Int(_))
                    | (crate::AttrType::Float, Value::Float(_) | Value::Int(_))
                    | (crate::AttrType::Str, Value::Str(_))
            );
            if !ok {
                return Err(DataError::TypeMismatch {
                    attribute: self.schema.attribute(AttrId(i)).name().to_string(),
                    expected: match col_ty {
                        crate::AttrType::Int => "int",
                        crate::AttrType::Float => "float",
                        crate::AttrType::Str => "str",
                    },
                    got: v.type_name(),
                });
            }
        }
        for (col, v) in self.columns.iter_mut().zip(row) {
            let ok = col.push(v);
            debug_assert!(ok, "push validated above");
        }
        Ok(())
    }

    /// Reads one cell.
    pub fn value(&self, row: usize, attr: AttrId) -> Value {
        self.columns[attr.0].get(row)
    }

    /// Numeric view of one cell.
    #[inline]
    pub fn value_f64(&self, row: usize, attr: AttrId) -> Option<f64> {
        self.columns[attr.0].get_f64(row)
    }

    /// Overwrites one cell (type-checked by the column).
    pub fn set_value(&mut self, row: usize, attr: AttrId, v: Value) {
        self.columns[attr.0].set(row, v);
    }

    /// Masks one cell as null.
    pub fn set_null(&mut self, row: usize, attr: AttrId) {
        self.columns[attr.0].set_null(row);
    }

    /// Materializes one row as values, in schema order.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(row)).collect()
    }

    /// A [`RowSet`] over every row.
    pub fn all_rows(&self) -> RowSet {
        RowSet::all(self.num_rows())
    }

    /// The numeric values of `attr` at `rows`, skipping nothing: rows whose
    /// cell is null or non-numeric yield an error, because model fitting
    /// must see every selected row.
    pub fn numeric_values(&self, attr: AttrId, rows: &RowSet) -> Result<Vec<f64>> {
        let col = self.column(attr);
        if !col.ty().is_numeric() {
            return Err(DataError::NotNumeric(
                self.schema.attribute(attr).name().to_string(),
            ));
        }
        rows.iter()
            .map(|r| {
                col.get_f64(r).ok_or_else(|| {
                    DataError::Io(format!(
                        "null cell at row {r} of {}",
                        self.schema.attribute(attr).name()
                    ))
                })
            })
            .collect()
    }

    /// Design-matrix rows: for each row in `rows`, the f64 values of
    /// `attrs` in order. Null cells make the row `None` so callers can skip
    /// or fail explicitly.
    pub fn feature_rows(&self, attrs: &[AttrId], rows: &RowSet) -> Vec<Option<Vec<f64>>> {
        rows.iter()
            .map(|r| {
                attrs
                    .iter()
                    .map(|&a| self.value_f64(r, a))
                    .collect::<Option<Vec<f64>>>()
            })
            .collect()
    }

    /// Rows of `rows` where every cell of `attrs ∪ {target}` is present and
    /// numeric — the fit-ready subset.
    pub fn complete_rows(&self, attrs: &[AttrId], target: AttrId, rows: &RowSet) -> RowSet {
        rows.filter(|r| {
            self.value_f64(r, target).is_some()
                && attrs.iter().all(|&a| self.value_f64(r, a).is_some())
        })
    }

    /// Copies the selected rows into a new table (used by scalability
    /// experiments to build size-`|I|` instances).
    #[allow(clippy::expect_used)] // rows come from this table, so the schema matches
    pub fn subset(&self, rows: &RowSet) -> Table {
        let mut out = Table::new(self.schema.clone());
        for r in rows.iter() {
            out.push_row(self.row(r)).expect("same schema");
        }
        out
    }

    /// Total null count across all columns.
    pub fn null_count(&self) -> usize {
        self.columns.iter().map(Column::null_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttrType;

    fn bird_table() -> Table {
        let schema = Schema::new(vec![
            ("lat", AttrType::Float),
            ("date", AttrType::Int),
            ("bird", AttrType::Str),
        ]);
        let mut t = Table::new(schema);
        t.push_row(vec![
            Value::Float(56.2),
            Value::Int(218),
            Value::str("maria"),
        ])
        .unwrap();
        t.push_row(vec![
            Value::Float(55.8),
            Value::Int(219),
            Value::str("maria"),
        ])
        .unwrap();
        t.push_row(vec![Value::Null, Value::Int(444), Value::str("raivo")])
            .unwrap();
        t
    }

    #[test]
    fn push_and_read() {
        let t = bird_table();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.value(0, t.attr("lat").unwrap()), Value::Float(56.2));
        assert_eq!(t.value(2, t.attr("bird").unwrap()), Value::str("raivo"));
        assert!(t.value(2, t.attr("lat").unwrap()).is_null());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = bird_table();
        assert!(matches!(
            t.push_row(vec![Value::Int(1)]),
            Err(DataError::ArityMismatch {
                expected: 3,
                got: 1
            })
        ));
        assert_eq!(t.num_rows(), 3);
    }

    #[test]
    fn type_mismatch_rejected_atomically() {
        let mut t = bird_table();
        let r = t.push_row(vec![
            Value::Float(1.0),
            Value::str("not a date"),
            Value::str("x"),
        ]);
        assert!(matches!(r, Err(DataError::TypeMismatch { .. })));
        // Nothing was appended to any column.
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.column(AttrId(0)).len(), 3);
    }

    #[test]
    fn numeric_values_fail_on_null() {
        let t = bird_table();
        let lat = t.attr("lat").unwrap();
        assert!(t.numeric_values(lat, &t.all_rows()).is_err());
        let present = RowSet::from_indices(vec![0, 1]);
        assert_eq!(t.numeric_values(lat, &present).unwrap(), vec![56.2, 55.8]);
    }

    #[test]
    fn complete_rows_drops_nulls() {
        let t = bird_table();
        let lat = t.attr("lat").unwrap();
        let date = t.attr("date").unwrap();
        let fit = t.complete_rows(&[date], lat, &t.all_rows());
        assert_eq!(fit.as_slice(), &[0, 1]);
    }

    #[test]
    fn subset_copies_rows() {
        let t = bird_table();
        let s = t.subset(&RowSet::from_indices(vec![1]));
        assert_eq!(s.num_rows(), 1);
        assert_eq!(s.value(0, s.attr("date").unwrap()), Value::Int(219));
    }

    #[test]
    fn feature_rows_mark_missing() {
        let t = bird_table();
        let lat = t.attr("lat").unwrap();
        let rows = t.all_rows();
        let feats = t.feature_rows(&[lat], &rows);
        assert_eq!(feats[0], Some(vec![56.2]));
        assert_eq!(feats[2], None);
    }

    #[test]
    fn null_count_spans_columns() {
        let mut t = bird_table();
        assert_eq!(t.null_count(), 1);
        let date = t.attr("date").unwrap();
        t.set_null(1, date);
        assert_eq!(t.null_count(), 2);
    }
}
