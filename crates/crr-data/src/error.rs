use std::fmt;

/// Errors from the relational substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// Referenced an attribute that the schema does not contain.
    UnknownAttribute(String),
    /// A row had the wrong number of cells for the schema.
    ArityMismatch { expected: usize, got: usize },
    /// A value's type does not match the attribute's declared type.
    TypeMismatch {
        attribute: String,
        expected: &'static str,
        got: &'static str,
    },
    /// CSV parse failure with row/column context.
    Csv { line: usize, message: String },
    /// Underlying I/O failure (message only, to keep the error `Clone`).
    Io(String),
    /// A numeric view was requested of a non-numeric column.
    NotNumeric(String),
    /// A present numeric cell held NaN or ±Inf where a finite value was
    /// required (building a fit snapshot).
    NonFiniteCell { row: usize, attribute: String },
    /// A shard plan that cannot be applied to any instance (zero shards,
    /// non-positive window width, …).
    InvalidShardPlan(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownAttribute(name) => write!(f, "unknown attribute: {name}"),
            DataError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row arity mismatch: expected {expected} cells, got {got}"
                )
            }
            DataError::TypeMismatch {
                attribute,
                expected,
                got,
            } => write!(
                f,
                "type mismatch on attribute {attribute}: expected {expected}, got {got}"
            ),
            DataError::Csv { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            DataError::Io(msg) => write!(f, "io error: {msg}"),
            DataError::NotNumeric(name) => {
                write!(f, "attribute {name} is not numeric")
            }
            DataError::NonFiniteCell { row, attribute } => {
                write!(f, "non-finite value at row {row}, attribute {attribute}")
            }
            DataError::InvalidShardPlan(msg) => write!(f, "invalid shard plan: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e.to_string())
    }
}
