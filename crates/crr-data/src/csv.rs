//! Minimal CSV reader/writer with type inference.
//!
//! Supports the subset of RFC 4180 the workspace needs: comma separation,
//! double-quote quoting with `""` escapes, a header row, and empty fields as
//! nulls. Type inference scans all rows: a column is `Int` if every non-null
//! cell parses as `i64`, else `Float` if every non-null cell parses as
//! `f64`, else `Str`.

use crate::{AttrType, DataError, Result, Schema, Table, Value};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Parses one CSV record into fields. Handles quoted fields and `""`.
fn parse_record(line: &str, line_no: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        cur.push('"');
                        chars.next();
                    } else {
                        in_quotes = false;
                    }
                }
                _ => cur.push(c),
            }
        } else {
            match c {
                '"' => {
                    if cur.is_empty() {
                        in_quotes = true;
                    } else {
                        return Err(DataError::Csv {
                            line: line_no,
                            message: "quote inside unquoted field".into(),
                        });
                    }
                }
                ',' => fields.push(std::mem::take(&mut cur)),
                _ => cur.push(c),
            }
        }
    }
    if in_quotes {
        return Err(DataError::Csv {
            line: line_no,
            message: "unterminated quote".into(),
        });
    }
    fields.push(cur);
    Ok(fields)
}

/// Infers the narrowest [`AttrType`] covering every non-empty cell.
fn infer_type(cells: &[&str]) -> AttrType {
    let mut ty = AttrType::Int;
    for cell in cells {
        if cell.is_empty() {
            continue;
        }
        match ty {
            AttrType::Int => {
                if cell.parse::<i64>().is_err() {
                    ty = if cell.parse::<f64>().is_ok() {
                        AttrType::Float
                    } else {
                        AttrType::Str
                    };
                }
            }
            AttrType::Float => {
                if cell.parse::<f64>().is_err() {
                    ty = AttrType::Str;
                }
            }
            AttrType::Str => return AttrType::Str,
        }
    }
    ty
}

fn parse_cell(cell: &str, ty: AttrType) -> Value {
    if cell.is_empty() {
        return Value::Null;
    }
    match ty {
        AttrType::Int => cell.parse::<i64>().map(Value::Int).unwrap_or(Value::Null),
        AttrType::Float => cell.parse::<f64>().map(Value::from).unwrap_or(Value::Null),
        AttrType::Str => Value::str(cell),
    }
}

/// Reads a table from CSV text with a header row, inferring column types.
pub fn read_csv(reader: impl Read) -> Result<Table> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines().enumerate();
    let header = match lines.next() {
        Some((_, line)) => {
            let owned = line?;
            // Windows tools prepend a UTF-8 BOM; keep it out of the first
            // column name. `lines()` splits CRLF, but a file whose last
            // line ends in a bare `\r` (no final newline) leaks it — trim.
            let s = owned.strip_prefix('\u{feff}').unwrap_or(&owned);
            parse_record(s.strip_suffix('\r').unwrap_or(s), 1)?
        }
        None => {
            return Err(DataError::Csv {
                line: 0,
                message: "empty input".into(),
            })
        }
    };
    let mut records: Vec<Vec<String>> = Vec::new();
    for (i, line) in lines {
        let owned = line?;
        let line = owned.strip_suffix('\r').unwrap_or(&owned);
        // Blank lines are skipped for multi-column schemas, but a
        // single-column table legitimately serializes a null cell as an
        // empty line — that must parse back as one null row.
        if line.is_empty() && header.len() > 1 {
            continue;
        }
        let rec = parse_record(line, i + 1)?;
        if rec.len() != header.len() {
            return Err(DataError::Csv {
                line: i + 1,
                message: format!("expected {} fields, got {}", header.len(), rec.len()),
            });
        }
        records.push(rec);
    }
    let types: Vec<AttrType> = (0..header.len())
        .map(|c| {
            let cells: Vec<&str> = records.iter().map(|r| r[c].as_str()).collect();
            infer_type(&cells)
        })
        .collect();
    let schema = Schema::new(header.into_iter().zip(types.iter().copied()).collect());
    let mut table = Table::new(schema);
    for rec in &records {
        let row = rec
            .iter()
            .zip(types.iter())
            .map(|(cell, &ty)| parse_cell(cell, ty))
            .collect();
        table.push_row(row)?;
    }
    Ok(table)
}

/// Reads a table from a CSV file.
pub fn read_csv_path(path: impl AsRef<Path>) -> Result<Table> {
    read_csv(std::fs::File::open(path)?)
}

fn quote_field(out: &mut String, field: &str) {
    if field.contains([',', '"', '\n']) {
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Serializes a table to CSV with a header row. Nulls become empty fields.
pub fn write_csv(table: &Table, mut writer: impl Write) -> Result<()> {
    let mut out = String::new();
    let names: Vec<&str> = table.schema().iter().map(|(_, a)| a.name()).collect();
    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        quote_field(&mut out, name);
    }
    out.push('\n');
    for r in 0..table.num_rows() {
        for (i, (id, _)) in table.schema().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let v = table.value(r, id);
            if !v.is_null() {
                let mut cell = String::new();
                let _ = write!(cell, "{v}");
                quote_field(&mut out, &cell);
            }
        }
        out.push('\n');
        // Flush in chunks so huge tables do not hold the whole file in memory.
        if out.len() > 1 << 20 {
            writer.write_all(out.as_bytes())?;
            out.clear();
        }
    }
    writer.write_all(out.as_bytes())?;
    Ok(())
}

/// Writes a table to a CSV file.
pub fn write_csv_path(table: &Table, path: impl AsRef<Path>) -> Result<()> {
    write_csv(table, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_types_and_nulls() {
        let src = "lat,date,bird\n56.2,218,maria\n,219,maria\n21.9,,raivo\n";
        let t = read_csv(src.as_bytes()).unwrap();
        assert_eq!(t.num_rows(), 3);
        let lat = t.attr("lat").unwrap();
        let date = t.attr("date").unwrap();
        let bird = t.attr("bird").unwrap();
        assert_eq!(t.schema().attribute(lat).ty(), AttrType::Float);
        assert_eq!(t.schema().attribute(date).ty(), AttrType::Int);
        assert_eq!(t.schema().attribute(bird).ty(), AttrType::Str);
        assert!(t.value(1, lat).is_null());
        assert!(t.value(2, date).is_null());

        let mut out = Vec::new();
        write_csv(&t, &mut out).unwrap();
        let t2 = read_csv(out.as_slice()).unwrap();
        assert_eq!(t2.num_rows(), 3);
        assert_eq!(t2.value(0, lat), Value::Float(56.2));
        assert!(t2.value(1, lat).is_null());
    }

    #[test]
    fn quoted_fields_and_escapes() {
        let src = "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n";
        let t = read_csv(src.as_bytes()).unwrap();
        assert_eq!(t.value(0, t.attr("name").unwrap()), Value::str("a,b"));
        assert_eq!(
            t.value(0, t.attr("note").unwrap()),
            Value::str("say \"hi\"")
        );
    }

    #[test]
    fn writer_quotes_when_needed() {
        let schema = Schema::new(vec![("s", AttrType::Str)]);
        let mut t = Table::new(schema);
        t.push_row(vec![Value::str("x,y")]).unwrap();
        let mut out = Vec::new();
        write_csv(&t, &mut out).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "s\n\"x,y\"\n");
    }

    #[test]
    fn field_count_mismatch_is_an_error() {
        let src = "a,b\n1\n";
        assert!(matches!(
            read_csv(src.as_bytes()),
            Err(DataError::Csv { line: 2, .. })
        ));
    }

    #[test]
    fn int_column_with_float_cell_widens() {
        let src = "v\n1\n2.5\n";
        let t = read_csv(src.as_bytes()).unwrap();
        assert_eq!(
            t.schema().attribute(t.attr("v").unwrap()).ty(),
            AttrType::Float
        );
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let src = "a\n\"open\n";
        assert!(read_csv(src.as_bytes()).is_err());
    }

    #[test]
    fn leading_bom_is_stripped_from_header() {
        let src = "\u{feff}lat,date\n1.5,2\n";
        let t = read_csv(src.as_bytes()).unwrap();
        // The first column is addressable by its clean name.
        let lat = t.attr("lat").expect("BOM must not pollute the name");
        assert_eq!(t.value(0, lat), Value::Float(1.5));
    }

    #[test]
    fn crlf_line_endings_accepted() {
        // CRLF everywhere, including a final line with a bare trailing \r.
        let src = "a,b\r\n1,x\r\n2,y\r";
        let t = read_csv(src.as_bytes()).unwrap();
        assert_eq!(t.num_rows(), 2);
        let b = t.attr("b").unwrap();
        assert_eq!(t.value(0, b), Value::str("x"));
        assert_eq!(t.value(1, b), Value::str("y"));
        assert_eq!(
            t.schema().attribute(t.attr("a").unwrap()).ty(),
            AttrType::Int
        );
    }

    #[test]
    fn ragged_rows_error_with_line_number() {
        // Too few and too many fields both point at the offending line.
        for (src, bad_line) in [("a,b\n1,2\n3\n", 3), ("a,b\n1,2,3\n", 2)] {
            match read_csv(src.as_bytes()) {
                Err(DataError::Csv { line, message }) => {
                    assert_eq!(line, bad_line);
                    assert!(message.contains("expected 2 fields"), "{message}");
                }
                other => panic!("expected ragged-row error, got {other:?}"),
            }
        }
    }
}
