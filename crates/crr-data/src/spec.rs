//! Typed shard planning: the [`ShardSpec`] builder and the cost-based
//! planner that turns a spec into concrete [`Shard`]s.
//!
//! [`ShardSpec`] replaces the positional [`ShardPlan`] constructors with a
//! typed builder:
//!
//! ```
//! use crr_data::{PlannerCost, ShardSpec};
//! # use crr_data::{AttrType, Schema, Table, Value};
//! # let schema = Schema::new(vec![("k", AttrType::Float)]);
//! # let mut t = Table::new(schema);
//! # for i in 0..32 { t.push_row(vec![Value::Float((i * i) as f64)]).unwrap(); }
//! # let key = t.attr("k").unwrap();
//! // Four equal-frequency shards on `key`:
//! let spec = ShardSpec::by_key(key).quantile().shards(4);
//! let (shards, report) = spec.plan(&t, &t.all_rows(), &PlannerCost::default())?;
//! assert_eq!(shards.len(), 4);
//! assert_eq!(report.boundary, Some(crr_data::Boundary::Quantile));
//! # Ok::<(), crr_data::DataError>(())
//! ```
//!
//! Three decisions are made here rather than by the caller:
//!
//! * **Boundary placement** — [`Boundary::Quantile`] picks equal-frequency
//!   cut points from the sorted key sample, snapped strictly between
//!   distinct values so repeated-value runs are never split; skewed keys
//!   yield balanced shards. [`Boundary::EqualWidth`] keeps PR 4's
//!   equal-width geometry.
//! * **Shard count** — [`ShardCount::Auto`] estimates per-shard work from
//!   the row count and the predicate-vocabulary size ([`PlannerCost`]) and
//!   picks `k` by a wall-clock model instead of requiring a guess.
//! * **Degeneracy** — null-only, constant and near-constant keys collapse
//!   to fewer shards; the null regime always lands in its own trailing
//!   shard exactly as in [`ShardPlan::partition`].
//!
//! The planner never invents a new cutting engine: every spec resolves to
//! ascending cut points fed through the same `cut_into_shards` core as
//! [`ShardPlan`], so the disjoint/covering/dense-id guarantees (and the
//! non-finite-key rejection) are shared, not re-proved.

use crate::shard::{cut_into_shards, key_extent};
use crate::{AttrId, DataError, Result, RowSet, Shard, ShardPlan, Table};

/// How interval boundaries are placed on the shard key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boundary {
    /// Equal-width geometry over the observed `[min, max]` range.
    EqualWidth,
    /// Equal-frequency (equi-depth) cut points from the sorted key sample,
    /// snapped strictly between distinct values.
    Quantile,
}

/// How many interval shards to request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardCount {
    /// Exactly this many intervals (before empty ones are dropped).
    Fixed(usize),
    /// Let the planner pick `k` from the cost model in [`PlannerCost`].
    Auto,
}

/// Cost-model inputs for [`ShardCount::Auto`]: the planner estimates
/// per-shard discovery work as `rows × predicate_vocab` and amortizes it
/// over `workers` concurrent non-seed shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerCost {
    /// Size of the predicate vocabulary the search will refine over.
    pub predicate_vocab: usize,
    /// Worker threads available to run non-seed shards concurrently.
    pub workers: usize,
}

impl Default for PlannerCost {
    fn default() -> Self {
        PlannerCost {
            predicate_vocab: 1,
            workers: 1,
        }
    }
}

/// What the planner decided, for observability and proof obligations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanReport {
    /// Boundary placement used, `None` for single-shard and time-window
    /// plans (which have no boundary choice).
    pub boundary: Option<Boundary>,
    /// Shard count requested by the spec, `None` when data-dependent
    /// (time windows).
    pub requested: Option<usize>,
    /// Shards actually produced (after empty shards are dropped).
    pub produced: usize,
    /// The shard count came from the cost model, not the caller.
    pub auto_count: bool,
}

/// A typed, self-describing shard plan: what to cut on, how to place
/// boundaries, and how many shards to aim for.
///
/// Construct with [`ShardSpec::single`], [`ShardSpec::by_key`] or
/// [`ShardSpec::by_time`]; refine key plans with the chainable
/// [`quantile`](ShardSpec::quantile) / [`equal_width`](ShardSpec::equal_width) /
/// [`shards`](ShardSpec::shards) / [`auto`](ShardSpec::auto) modifiers.
/// Key plans default to quantile boundaries with an auto shard count —
/// the adaptive configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSpec {
    kind: SpecKind,
}

#[derive(Debug, Clone, PartialEq)]
enum SpecKind {
    Single,
    ByKey {
        attr: AttrId,
        boundary: Boundary,
        count: ShardCount,
    },
    ByTime {
        attr: AttrId,
        width: f64,
    },
}

impl ShardSpec {
    /// The trivial one-shard spec.
    pub fn single() -> Self {
        ShardSpec {
            kind: SpecKind::Single,
        }
    }

    /// Key-range spec over `attr`, defaulting to quantile boundaries and
    /// an auto shard count.
    pub fn by_key(attr: AttrId) -> Self {
        ShardSpec {
            kind: SpecKind::ByKey {
                attr,
                boundary: Boundary::Quantile,
                count: ShardCount::Auto,
            },
        }
    }

    /// Fixed-width time-window spec over `attr`.
    pub fn by_time(attr: AttrId, width: f64) -> Self {
        ShardSpec {
            kind: SpecKind::ByTime { attr, width },
        }
    }

    /// Use equal-frequency (quantile) boundaries. No effect on non-key
    /// specs, which have no boundary choice.
    pub fn quantile(mut self) -> Self {
        if let SpecKind::ByKey { boundary, .. } = &mut self.kind {
            *boundary = Boundary::Quantile;
        }
        self
    }

    /// Use equal-width boundaries. No effect on non-key specs.
    pub fn equal_width(mut self) -> Self {
        if let SpecKind::ByKey { boundary, .. } = &mut self.kind {
            *boundary = Boundary::EqualWidth;
        }
        self
    }

    /// Request exactly `n` interval shards. No effect on non-key specs.
    pub fn shards(mut self, n: usize) -> Self {
        if let SpecKind::ByKey { count, .. } = &mut self.kind {
            *count = ShardCount::Fixed(n);
        }
        self
    }

    /// Let the cost model pick the shard count. No effect on non-key specs.
    pub fn auto(mut self) -> Self {
        if let SpecKind::ByKey { count, .. } = &mut self.kind {
            *count = ShardCount::Auto;
        }
        self
    }

    /// The shard-key attribute, when the spec cuts on one.
    pub fn key_attr(&self) -> Option<AttrId> {
        match self.kind {
            SpecKind::Single => None,
            SpecKind::ByKey { attr, .. } | SpecKind::ByTime { attr, .. } => Some(attr),
        }
    }

    /// Boundary placement, when the spec has a boundary choice.
    pub fn boundary(&self) -> Option<Boundary> {
        match self.kind {
            SpecKind::ByKey { boundary, .. } => Some(boundary),
            _ => None,
        }
    }

    /// `true` when the shard count is left to the cost model.
    pub fn is_auto_count(&self) -> bool {
        matches!(
            self.kind,
            SpecKind::ByKey {
                count: ShardCount::Auto,
                ..
            }
        )
    }

    /// `true` for the trivial one-shard spec.
    pub fn is_single(&self) -> bool {
        matches!(self.kind, SpecKind::Single)
    }

    /// Shard count the spec requests, `None` when data-dependent
    /// (auto counts and time windows).
    pub fn requested_shards(&self) -> Option<usize> {
        match self.kind {
            SpecKind::Single => Some(1),
            SpecKind::ByKey {
                count: ShardCount::Fixed(n),
                ..
            } => Some(n),
            _ => None,
        }
    }

    /// Resolves the spec against `(table, rows)` into concrete shards plus
    /// a [`PlanReport`] of what the planner decided.
    ///
    /// Success guarantees are those of [`ShardPlan::partition`]: shards
    /// are disjoint, their union is exactly `rows`, no shard is empty, ids
    /// are dense in emission order (intervals ascending, then the null-key
    /// shard), and every row with a null key lands in the trailing
    /// `null_keys` shard. Errors are also shared: zero fixed shards and
    /// bad window widths are [`DataError::InvalidShardPlan`], non-numeric
    /// keys [`DataError::NotNumeric`], and NaN/±Inf keys
    /// [`DataError::NonFiniteCell`].
    pub fn plan(
        &self,
        table: &Table,
        rows: &RowSet,
        cost: &PlannerCost,
    ) -> Result<(Vec<Shard>, PlanReport)> {
        match self.kind {
            SpecKind::Single => {
                let shards = ShardPlan::Single.partition(table, rows)?;
                Ok((
                    shards,
                    PlanReport {
                        boundary: None,
                        requested: Some(1),
                        produced: 1,
                        auto_count: false,
                    },
                ))
            }
            SpecKind::ByTime { attr, width } => {
                let shards = ShardPlan::ByTimeWindow { attr, width }.partition(table, rows)?;
                let produced = shards.len();
                Ok((
                    shards,
                    PlanReport {
                        boundary: None,
                        requested: None,
                        produced,
                        auto_count: false,
                    },
                ))
            }
            SpecKind::ByKey {
                attr,
                boundary,
                count,
            } => {
                let (auto_count, k) = match count {
                    ShardCount::Fixed(0) => {
                        return Err(DataError::InvalidShardPlan(
                            "key-range spec requests zero shards".to_string(),
                        ));
                    }
                    ShardCount::Fixed(n) => (false, n),
                    ShardCount::Auto => (true, auto_shard_count(rows.len(), cost)),
                };
                let shards = match boundary {
                    Boundary::EqualWidth => {
                        ShardPlan::ByKeyRange { attr, shards: k }.partition(table, rows)?
                    }
                    Boundary::Quantile => {
                        let cuts = quantile_cuts(table, attr, rows, k)?;
                        cut_into_shards(table, attr, rows, &cuts)
                    }
                };
                let produced = shards.len();
                Ok((
                    shards,
                    PlanReport {
                        boundary: Some(boundary),
                        requested: Some(k),
                        produced,
                        auto_count,
                    },
                ))
            }
        }
    }
}

impl From<ShardPlan> for ShardSpec {
    /// Every legacy plan maps onto an equivalent spec: `Single` stays
    /// single, `ByKeyRange` becomes an equal-width fixed-count key spec,
    /// `ByTimeWindow` a time spec — so code migrating from the removed
    /// positional constructors changes behavior only when it opts into
    /// the new adaptive defaults.
    fn from(plan: ShardPlan) -> Self {
        match plan {
            ShardPlan::Single => ShardSpec::single(),
            ShardPlan::ByKeyRange { attr, shards } => {
                ShardSpec::by_key(attr).equal_width().shards(shards)
            }
            ShardPlan::ByTimeWindow { attr, width } => ShardSpec::by_time(attr, width),
        }
    }
}

impl From<&ShardPlan> for ShardSpec {
    fn from(plan: &ShardPlan) -> Self {
        ShardSpec::from(plan.clone())
    }
}

/// Equal-frequency cut points for `k` intervals over the finite keys of
/// `attr`, snapped strictly between distinct values.
///
/// For each target rank `⌈i·n/k⌉` the cut is the midpoint of the key at
/// that rank and the next *strictly greater* key; when the run of equal
/// keys extends to the end of the sample, the cut is skipped rather than
/// split a repeated-value run. Cuts are deduplicated, so heavily repeated
/// keys yield fewer (possibly zero) cuts — degeneracy collapses shards
/// instead of producing empty or overlapping ones. Null keys are skipped
/// here; `cut_into_shards` gives them the trailing shard. Errors mirror
/// [`ShardPlan::partition`]: non-numeric keys and non-finite keys are
/// rejected.
pub(crate) fn quantile_cuts(
    table: &Table,
    attr: AttrId,
    rows: &RowSet,
    k: usize,
) -> Result<Vec<f64>> {
    // Validates the attribute and rejects NaN/±Inf up front (shared with
    // every other partitioning path).
    let (lo, hi) = key_extent(table, attr, rows)?;
    if k <= 1 || lo.is_none() || lo == hi {
        return Ok(Vec::new());
    }
    let mut keys: Vec<f64> = Vec::new();
    for r in rows.iter() {
        if let Some(v) = table.value_f64(r, attr) {
            keys.push(v);
        }
    }
    keys.sort_unstable_by(f64::total_cmp);
    let n = keys.len();
    let mut cuts: Vec<f64> = Vec::new();
    for i in 1..k {
        // Rank of the first key the i-th interval should NOT contain.
        let rank = (i * n).div_ceil(k).clamp(1, n - 1);
        let below = keys[rank - 1];
        // The next strictly greater key; a run reaching the end of the
        // sample yields no cut (the run stays whole in the last interval).
        let Some(&above) = keys[rank..].iter().find(|&&v| v > below) else {
            continue;
        };
        // Snap strictly between the two distinct values. Midpoints of
        // adjacent floats can round onto an endpoint; `above` is still a
        // valid half-open cut (`c <= key` sends the upper run right).
        let mid = below + (above - below) / 2.0;
        let cut = if mid > below && mid <= above {
            mid
        } else {
            above
        };
        if cuts.last() != Some(&cut) {
            cuts.push(cut);
        }
    }
    Ok(cuts)
}

/// Picks a shard count from a wall-clock model of sharded discovery.
///
/// Per-shard work is estimated as `rows/k × vocab`. The seed shard runs
/// alone first (it publishes the cross-shard pool), then the `k-1`
/// remaining shards run in `⌈(k-1)/workers⌉` waves, and each shard adds a
/// fixed planning/merge overhead proportional to the vocabulary:
///
/// `wall(k) = (rows·vocab/k) · (1 + ⌈(k-1)/workers⌉) + k · overhead(vocab)`
///
/// The model is deterministic: candidates `1..=min(2·workers, 16)` are
/// scored, shards are floored at [`MIN_AUTO_SHARD_ROWS`] rows (smaller
/// shards under-train models and defeat sharing), and ties break toward
/// fewer shards.
pub(crate) fn auto_shard_count(rows: usize, cost: &PlannerCost) -> usize {
    let workers = cost.workers.max(1);
    let vocab = cost.predicate_vocab.max(1) as f64;
    let work = rows as f64 * vocab;
    let overhead = 64.0 * vocab + 1024.0;
    let cap = (2 * workers).clamp(1, 16);
    let mut best_k = 1usize;
    let mut best = f64::INFINITY;
    for k in 1..=cap {
        if k > 1 && rows / k < MIN_AUTO_SHARD_ROWS {
            break;
        }
        let waves = 1 + (k - 1).div_ceil(workers);
        let wall = work / k as f64 * waves as f64 + k as f64 * overhead;
        if wall < best {
            best = wall;
            best_k = k;
        }
    }
    best_k
}

/// Minimum rows per shard the auto planner will accept.
pub(crate) const MIN_AUTO_SHARD_ROWS: usize = 256;

/// Row balance of a partition in permille: `min(rows)/max(rows) × 1000`,
/// ignoring the trailing null-key shard (its size is a property of the
/// data, not the boundary placement). `1000` means perfectly balanced;
/// degenerate partitions (≤ 1 interval shard) report `1000`.
pub fn balance_permille(shards: &[Shard]) -> u64 {
    let sizes: Vec<usize> = shards
        .iter()
        .filter(|s| !s.bounds.map(|b| b.null_keys).unwrap_or(false))
        .map(|s| s.rows.len())
        .collect();
    if sizes.len() <= 1 {
        return 1000;
    }
    let min = *sizes.iter().min().unwrap_or(&0) as u64;
    let max = *sizes.iter().max().unwrap_or(&1) as u64;
    if max == 0 {
        return 1000;
    }
    min * 1000 / max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrType, Schema, Value};

    fn table_with_keys(keys: &[Option<f64>]) -> (Table, AttrId) {
        let schema = Schema::new(vec![("k", AttrType::Float), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for (i, k) in keys.iter().enumerate() {
            let kv = match k {
                Some(v) => Value::Float(*v),
                None => Value::Null,
            };
            t.push_row(vec![kv, Value::Float(i as f64)]).unwrap();
        }
        let attr = t.attr("k").unwrap();
        (t, attr)
    }

    fn assert_disjoint_cover(shards: &[Shard], rows: &RowSet) {
        let mut seen: Vec<u32> = Vec::new();
        for s in shards {
            assert!(!s.rows.is_empty(), "empty shard {} survived", s.id);
            seen.extend_from_slice(s.rows.as_slice());
        }
        seen.sort_unstable();
        let before = seen.len();
        seen.dedup();
        assert_eq!(before, seen.len(), "shards overlap");
        assert_eq!(seen, rows.as_slice(), "union is not the input rows");
    }

    #[test]
    fn quantile_balances_a_skewed_key() {
        // Quadratic skew: equal-width crams most rows into the first
        // interval; quantile splits them 25/25/25/25.
        let keys: Vec<Option<f64>> = (0..100).map(|i| Some((i * i) as f64)).collect();
        let (t, attr) = table_with_keys(&keys);
        let cost = PlannerCost::default();
        let (ew, _) = ShardSpec::by_key(attr)
            .equal_width()
            .shards(4)
            .plan(&t, &t.all_rows(), &cost)
            .unwrap();
        let (q, report) = ShardSpec::by_key(attr)
            .quantile()
            .shards(4)
            .plan(&t, &t.all_rows(), &cost)
            .unwrap();
        assert_disjoint_cover(&q, &t.all_rows());
        assert_eq!(q.len(), 4);
        for s in &q {
            assert_eq!(s.rows.len(), 25, "shard {}: {:?}", s.id, s.bounds);
        }
        assert!(balance_permille(&q) > balance_permille(&ew));
        assert_eq!(report.boundary, Some(Boundary::Quantile));
        assert_eq!(report.requested, Some(4));
        assert_eq!(report.produced, 4);
        assert!(!report.auto_count);
    }

    #[test]
    fn quantile_keeps_repeated_value_runs_whole() {
        // 60 copies of 1.0 then 20 each of 2.0 and 3.0: no cut may land
        // inside the run of 1.0s, so the first shard holds all 60.
        let mut keys: Vec<Option<f64>> = vec![Some(1.0); 60];
        keys.extend(vec![Some(2.0); 20]);
        keys.extend(vec![Some(3.0); 20]);
        let (t, attr) = table_with_keys(&keys);
        let (shards, _) = ShardSpec::by_key(attr)
            .quantile()
            .shards(4)
            .plan(&t, &t.all_rows(), &PlannerCost::default())
            .unwrap();
        assert_disjoint_cover(&shards, &t.all_rows());
        assert_eq!(shards[0].rows.len(), 60);
        for s in &shards {
            // Every shard's rows share no key with any other shard: cuts
            // were snapped strictly between distinct values.
            let mut vals: Vec<f64> = s.rows.iter().filter_map(|r| t.value_f64(r, attr)).collect();
            vals.sort_by(f64::total_cmp);
            vals.dedup();
            assert!(!vals.is_empty());
        }
    }

    #[test]
    fn quantile_handles_nulls_and_constants() {
        let (t, attr) = table_with_keys(&[Some(5.0), None, Some(5.0), None, Some(5.0)]);
        let (shards, report) = ShardSpec::by_key(attr)
            .quantile()
            .shards(3)
            .plan(&t, &t.all_rows(), &PlannerCost::default())
            .unwrap();
        assert_disjoint_cover(&shards, &t.all_rows());
        // Constant key collapses to one interval shard + the null shard.
        assert_eq!(shards.len(), 2);
        assert!(shards[1].bounds.unwrap().null_keys);
        assert_eq!(shards[1].rows.as_slice(), &[1, 3]);
        assert_eq!(report.produced, 2);
    }

    #[test]
    fn quantile_all_null_column_is_one_null_shard() {
        let (t, attr) = table_with_keys(&[None, None, None]);
        let (shards, _) = ShardSpec::by_key(attr)
            .quantile()
            .shards(4)
            .plan(&t, &t.all_rows(), &PlannerCost::default())
            .unwrap();
        assert_eq!(shards.len(), 1);
        assert!(shards[0].bounds.unwrap().null_keys);
        assert_eq!(shards[0].rows.len(), 3);
    }

    #[test]
    fn quantile_rejects_non_finite_keys() {
        let (t, attr) = table_with_keys(&[Some(0.0), Some(f64::NAN), Some(1.0)]);
        assert!(matches!(
            ShardSpec::by_key(attr).quantile().shards(2).plan(
                &t,
                &t.all_rows(),
                &PlannerCost::default()
            ),
            Err(DataError::NonFiniteCell { row: 1, .. })
        ));
    }

    #[test]
    fn zero_fixed_shards_is_rejected() {
        let (t, attr) = table_with_keys(&[Some(1.0)]);
        for spec in [
            ShardSpec::by_key(attr).quantile().shards(0),
            ShardSpec::by_key(attr).equal_width().shards(0),
        ] {
            assert!(matches!(
                spec.plan(&t, &t.all_rows(), &PlannerCost::default()),
                Err(DataError::InvalidShardPlan(_))
            ));
        }
    }

    #[test]
    fn auto_count_scales_with_rows_and_floors_small_inputs() {
        let cost = PlannerCost {
            predicate_vocab: 32,
            workers: 4,
        };
        // Too small to shard at all.
        assert_eq!(auto_shard_count(100, &cost), 1);
        assert_eq!(auto_shard_count(2 * MIN_AUTO_SHARD_ROWS - 1, &cost), 1);
        // Large inputs shard, bounded by the candidate cap.
        let k = auto_shard_count(100_000, &cost);
        assert!(k > 1 && k <= 16, "k = {k}");
        // More rows never picks fewer shards (the overhead term is fixed
        // while the parallelizable term grows).
        assert!(auto_shard_count(1_000_000, &cost) >= k);
        // Deterministic.
        assert_eq!(auto_shard_count(100_000, &cost), k);
    }

    #[test]
    fn auto_plan_reports_the_model_choice() {
        let keys: Vec<Option<f64>> = (0..2048).map(|i| Some((i % 97) as f64)).collect();
        let (t, attr) = table_with_keys(&keys);
        let cost = PlannerCost {
            predicate_vocab: 16,
            workers: 4,
        };
        let (shards, report) = ShardSpec::by_key(attr)
            .plan(&t, &t.all_rows(), &cost)
            .unwrap();
        assert!(report.auto_count);
        assert_eq!(report.boundary, Some(Boundary::Quantile));
        assert_eq!(report.requested, Some(auto_shard_count(2048, &cost)));
        assert_disjoint_cover(&shards, &t.all_rows());
    }

    #[test]
    fn legacy_plans_convert_to_equivalent_specs() {
        let keys: Vec<Option<f64>> = (0..50).map(|i| Some(i as f64)).collect();
        let (t, attr) = table_with_keys(&keys);
        let rows = t.all_rows();
        let cost = PlannerCost::default();
        for plan in [
            ShardPlan::Single,
            ShardPlan::ByKeyRange { attr, shards: 3 },
            ShardPlan::ByTimeWindow { attr, width: 10.0 },
        ] {
            let direct = plan.partition(&t, &rows).unwrap();
            let (via_spec, _) = ShardSpec::from(&plan).plan(&t, &rows, &cost).unwrap();
            assert_eq!(direct, via_spec, "spec diverged from {plan:?}");
        }
    }

    #[test]
    fn single_spec_is_one_unguarded_shard() {
        let (t, _) = table_with_keys(&[Some(1.0), Some(2.0)]);
        let (shards, report) = ShardSpec::single()
            .plan(&t, &t.all_rows(), &PlannerCost::default())
            .unwrap();
        assert_eq!(shards.len(), 1);
        assert!(shards[0].bounds.is_none());
        assert_eq!(report.boundary, None);
        assert!(ShardSpec::single().is_single());
    }

    #[test]
    fn balance_permille_reads_interval_shards_only() {
        let keys: Vec<Option<f64>> = (0..40)
            .map(|i| if i < 4 { None } else { Some(i as f64) })
            .collect();
        let (t, attr) = table_with_keys(&keys);
        let (shards, _) = ShardSpec::by_key(attr)
            .quantile()
            .shards(4)
            .plan(&t, &t.all_rows(), &PlannerCost::default())
            .unwrap();
        // 36 finite keys over 4 shards: 9 each → perfectly balanced even
        // though the null shard holds only 4 rows.
        assert_eq!(balance_permille(&shards), 1000);
        assert_eq!(balance_permille(&shards[..1]), 1000);
    }

    #[test]
    fn builder_modifiers_are_inert_on_non_key_specs() {
        assert!(ShardSpec::single().quantile().shards(4).is_single());
        let (t, attr) = table_with_keys(&[Some(1.0), Some(9.0)]);
        let spec = ShardSpec::by_time(attr, 4.0).equal_width().auto();
        let (shards, _) = spec
            .plan(&t, &t.all_rows(), &PlannerCost::default())
            .unwrap();
        assert_eq!(shards.len(), 2);
    }
}
