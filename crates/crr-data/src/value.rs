use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// One typed cell of a relation.
///
/// Predicates `A φ c` (paper §III-A1) compare a tuple's cell against a
/// constant, so `Value` carries exactly the comparison semantics the rule
/// language needs: numeric values compare numerically across `Int`/`Float`,
/// strings compare lexicographically, `Null` compares to nothing (any
/// predicate over a null cell is unsatisfied).
#[derive(Debug, Clone)]
pub enum Value {
    /// Missing value. Satisfies no predicate.
    Null,
    /// 64-bit integer (also used for dates as day offsets).
    Int(i64),
    /// 64-bit float. Never NaN — constructors normalize NaN to `Null`.
    Float(f64),
    /// Interned string; `Arc` keeps row materialization cheap.
    Str(Arc<str>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// True when this is [`Value::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: `Int` widens to `f64`, `Float` passes through,
    /// everything else is `None`.
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Name of this value's runtime type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
        }
    }

    /// Three-way comparison following predicate semantics: numerics compare
    /// across `Int`/`Float`, strings lexicographically; `Null` and
    /// cross-kind pairs are incomparable (`None`).
    pub fn partial_cmp_sem(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.partial_cmp_sem(other) == Some(Ordering::Equal)
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.partial_cmp_sem(other)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        if v.is_nan() {
            Value::Null
        } else {
            Value::Float(v)
        }
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_kind_numeric_comparison() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(3.0) > Value::Int(2));
    }

    #[test]
    fn null_is_incomparable() {
        assert_ne!(Value::Null, Value::Null);
        assert_eq!(Value::Null.partial_cmp(&Value::Int(0)), None);
        assert_eq!(Value::Int(0).partial_cmp(&Value::Null), None);
    }

    #[test]
    fn strings_compare_lexicographically() {
        assert!(Value::str("IA") < Value::str("NY"));
        assert_eq!(Value::str("IA"), Value::str("IA"));
        // Cross-kind string/number comparisons are undefined.
        assert_eq!(Value::str("1").partial_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn nan_normalizes_to_null() {
        assert!(Value::from(f64::NAN).is_null());
    }

    #[test]
    fn numeric_view() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::str("x").as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn display_roundtrips_simply() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::str("abc").to_string(), "abc");
        assert_eq!(Value::Null.to_string(), "");
    }
}
