//! Relational substrate for conditional regression rules.
//!
//! CRRs are defined over a relational database `D` of schema
//! `R(A_1, …, A_n)` (paper §III-A). This crate provides that substrate:
//!
//! * [`Value`] — a typed cell (integer, float, dictionary-encoded string, or
//!   null), with the comparison semantics predicates need;
//! * [`Schema`] / [`Attribute`] / [`AttrId`] — named, typed columns;
//! * [`Table`] — a columnar table with cheap row-subset views ([`RowSet`]),
//!   because CRR discovery repeatedly partitions the same table and must not
//!   copy it;
//! * CSV import/export with type inference ([`csv`]);
//! * per-column summary statistics used by predicate generation
//!   ([`ColumnStats`]).
//!
//! # Example
//!
//! ```
//! use crr_data::{Table, Schema, AttrType, Value};
//!
//! let schema = Schema::new(vec![
//!     ("salary", AttrType::Float),
//!     ("state", AttrType::Str),
//! ]);
//! let mut table = Table::new(schema);
//! table.push_row(vec![Value::from(50_000.0), Value::str("IA")]).unwrap();
//! table.push_row(vec![Value::from(61_000.0), Value::str("NY")]).unwrap();
//! assert_eq!(table.num_rows(), 2);
//! let salary = table.attr("salary").unwrap();
//! assert_eq!(table.value(1, salary), Value::from(61_000.0));
//! ```

#![deny(unsafe_code)]

mod column;
pub mod csv;
mod error;
mod rowset;
mod schema;
mod shard;
mod snapshot;
mod spec;
mod stats;
mod table;
mod value;

pub use column::{Column, ColumnData};
pub use error::DataError;
pub use rowset::RowSet;
pub use schema::{AttrId, AttrType, Attribute, Schema};
pub use shard::{Shard, ShardBounds, ShardPlan};
pub use snapshot::NumericSnapshot;
pub use spec::{balance_permille, Boundary, PlanReport, PlannerCost, ShardCount, ShardSpec};
pub use stats::ColumnStats;
pub use table::Table;
pub use value::Value;

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, DataError>;
