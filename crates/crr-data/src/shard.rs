//! Shard plans: partitioning an instance into disjoint row ranges by key
//! range or time window, ahead of per-shard CRR discovery.
//!
//! A [`ShardPlan`] describes *how* to cut the instance; [`ShardPlan::
//! partition`] applies it to a concrete `(table, rows)` pair and returns
//! [`Shard`]s — disjoint [`RowSet`]s whose union is exactly the input rows.
//! Each shard carries its [`ShardBounds`] (the half-open key interval it
//! was cut on, or the null-key marker), which downstream layers turn into
//! guard predicates so per-shard rules stay sound after cross-shard
//! merging. Rows whose shard key is null cannot satisfy any interval and
//! land in a trailing shard of their own, flagged `null_keys` so it can be
//! guarded with `key IS NULL`. Non-finite keys (NaN, ±Inf) are rejected
//! outright: ±Inf would satisfy other shards' interval guards, so no
//! guard assignment keeps them sound.

use crate::{AttrId, DataError, Result, RowSet, Table};

/// How to partition an instance into shards.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardPlan {
    /// No sharding: one shard holding every row.
    Single,
    /// Split the observed `[min, max]` range of a numeric attribute into
    /// `shards` equal-width, half-open key intervals.
    ByKeyRange {
        /// Numeric shard-key attribute.
        attr: AttrId,
        /// Number of intervals (≥ 1).
        shards: usize,
    },
    /// Split a numeric (time) attribute into consecutive windows of fixed
    /// `width`, starting at the observed minimum.
    ByTimeWindow {
        /// Numeric time attribute.
        attr: AttrId,
        /// Window width in the attribute's own units (> 0, finite).
        width: f64,
    },
}

/// The half-open key interval `[lo, hi)` a shard was cut on, or the
/// null-key marker. `None` on either side means unbounded (the first/last
/// shard absorbs the extremes, so float round-off at the edges can never
/// drop a row).
///
/// Because [`ShardPlan::partition`] rejects non-finite keys, these bounds
/// are *exact* row-membership descriptions: a row lies in an interval
/// shard iff its (finite) key satisfies the interval, and in the
/// `null_keys` shard iff its key is null.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardBounds {
    /// The shard-key attribute.
    pub attr: AttrId,
    /// Inclusive lower bound, when bounded below.
    pub lo: Option<f64>,
    /// Exclusive upper bound, when bounded above.
    pub hi: Option<f64>,
    /// This is the trailing null-key shard: it holds exactly the rows
    /// whose key is null, and `lo`/`hi` are both `None`.
    pub null_keys: bool,
}

/// One shard of a partitioned instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Shard {
    /// Dense shard index, `0..n` after empty shards are dropped.
    pub id: usize,
    /// The shard's rows — disjoint across shards, union = the input rows.
    pub rows: RowSet,
    /// The key interval (or null-key marker) this shard was cut on;
    /// `None` only for [`ShardPlan::Single`], whose one shard needs no
    /// guard.
    pub bounds: Option<ShardBounds>,
}

impl ShardPlan {
    // The 0.9.0 positional constructors (`single`, `by_key_range`,
    // `by_time_window`) are gone; build plans through `ShardSpec`, which
    // names the strategy and boundary placement explicitly. The ci.sh
    // deprecation wall keeps them from creeping back.

    /// How many shards the plan *requests* (before empty ones are dropped).
    /// Time-window plans are data-dependent and report `None`.
    pub fn requested_shards(&self) -> Option<usize> {
        match self {
            ShardPlan::Single => Some(1),
            ShardPlan::ByKeyRange { shards, .. } => Some(*shards),
            ShardPlan::ByTimeWindow { .. } => None,
        }
    }

    /// Applies the plan to `rows` of `table`.
    ///
    /// Guarantees on success: shards are disjoint, their union is exactly
    /// `rows`, no shard is empty, and ids are dense in emission order
    /// (key intervals ascending, then the null-key shard if any).
    ///
    /// Errors: [`DataError::InvalidShardPlan`] for zero shards or a
    /// non-positive/non-finite window width, [`DataError::NotNumeric`]
    /// when the shard key is not a numeric attribute, and
    /// [`DataError::NonFiniteCell`] when any row's key is NaN or ±Inf
    /// (such a key would satisfy other shards' interval guards, so no
    /// shard could soundly own the row).
    pub fn partition(&self, table: &Table, rows: &RowSet) -> Result<Vec<Shard>> {
        match *self {
            ShardPlan::Single => Ok(vec![Shard {
                id: 0,
                rows: rows.clone(),
                bounds: None,
            }]),
            ShardPlan::ByKeyRange { attr, shards } => {
                if shards == 0 {
                    return Err(DataError::InvalidShardPlan(
                        "key-range plan requests zero shards".to_string(),
                    ));
                }
                let (lo, hi) = key_extent(table, attr, rows)?;
                let cuts = match (lo, hi) {
                    // Every key equal (or no keys at all): nothing to cut.
                    _ if shards == 1 => Vec::new(),
                    (Some(lo), Some(hi)) if hi > lo => {
                        let w = (hi - lo) / shards as f64;
                        (1..shards).map(|i| lo + w * i as f64).collect()
                    }
                    _ => Vec::new(),
                };
                Ok(cut_into_shards(table, attr, rows, &cuts))
            }
            ShardPlan::ByTimeWindow { attr, width } => {
                if !(width > 0.0 && width.is_finite()) {
                    return Err(DataError::InvalidShardPlan(format!(
                        "time-window width must be positive and finite, got {width}"
                    )));
                }
                let (lo, hi) = key_extent(table, attr, rows)?;
                let cuts = match (lo, hi) {
                    (Some(lo), Some(hi)) if hi > lo => {
                        let mut cuts = Vec::new();
                        let mut k = 1usize;
                        loop {
                            let c = lo + width * k as f64;
                            if c > hi {
                                break;
                            }
                            cuts.push(c);
                            k += 1;
                        }
                        cuts
                    }
                    _ => Vec::new(),
                };
                Ok(cut_into_shards(table, attr, rows, &cuts))
            }
        }
    }
}

/// Min/max of the shard key over `rows`, skipping nulls; errors on a
/// non-numeric attribute and on any non-finite key (NaN/±Inf cannot be
/// soundly guarded by interval predicates, so partitioning refuses them
/// up front — every partitioning path runs this before cutting).
pub(crate) fn key_extent(
    table: &Table,
    attr: AttrId,
    rows: &RowSet,
) -> Result<(Option<f64>, Option<f64>)> {
    if !table.schema().attribute(attr).ty().is_numeric() {
        return Err(DataError::NotNumeric(
            table.schema().attribute(attr).name().to_string(),
        ));
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for r in rows.iter() {
        if let Some(v) = table.value_f64(r, attr) {
            if !v.is_finite() {
                return Err(DataError::NonFiniteCell {
                    row: r,
                    attribute: table.schema().attribute(attr).name().to_string(),
                });
            }
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if lo.is_finite() {
        Ok((Some(lo), Some(hi)))
    } else {
        Ok((None, None))
    }
}

/// Distributes rows over the half-open intervals the ascending `cuts`
/// induce, drops empty shards, renumbers ids densely, and appends the
/// `null_keys` shard when any row's key is null. The first interval is
/// unbounded below and the last unbounded above.
pub(crate) fn cut_into_shards(
    table: &Table,
    attr: AttrId,
    rows: &RowSet,
    cuts: &[f64],
) -> Vec<Shard> {
    let n = cuts.len() + 1;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut nulls: Vec<u32> = Vec::new();
    for r in rows.iter() {
        // Keys are finite or null here: `key_extent` already rejected
        // NaN/±Inf on every path that reaches this point.
        match table.value_f64(r, attr) {
            Some(v) => {
                // First interval whose (exclusive) upper cut lies above v.
                let b = cuts.partition_point(|&c| c <= v);
                buckets[b].push(r as u32);
            }
            None => nulls.push(r as u32),
        }
    }
    let mut shards = Vec::new();
    for (b, bucket) in buckets.into_iter().enumerate() {
        if bucket.is_empty() {
            continue;
        }
        let id = shards.len();
        shards.push(Shard {
            id,
            rows: RowSet::from_indices(bucket),
            bounds: Some(ShardBounds {
                attr,
                lo: (b > 0).then(|| cuts[b - 1]),
                hi: (b < cuts.len()).then(|| cuts[b]),
                null_keys: false,
            }),
        });
    }
    if !nulls.is_empty() {
        let id = shards.len();
        shards.push(Shard {
            id,
            rows: RowSet::from_indices(nulls),
            bounds: Some(ShardBounds {
                attr,
                lo: None,
                hi: None,
                null_keys: true,
            }),
        });
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrType, Schema, Value};

    fn table_with_keys(keys: &[Option<f64>]) -> (Table, AttrId) {
        let schema = Schema::new(vec![("k", AttrType::Float), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for (i, k) in keys.iter().enumerate() {
            let kv = match k {
                Some(v) => Value::Float(*v),
                None => Value::Null,
            };
            t.push_row(vec![kv, Value::Float(i as f64)]).unwrap();
        }
        let attr = t.attr("k").unwrap();
        (t, attr)
    }

    fn assert_disjoint_cover(shards: &[Shard], rows: &RowSet) {
        let mut seen: Vec<u32> = Vec::new();
        for s in shards {
            assert!(!s.rows.is_empty(), "empty shard {} survived", s.id);
            seen.extend_from_slice(s.rows.as_slice());
        }
        seen.sort_unstable();
        let before = seen.len();
        seen.dedup();
        assert_eq!(before, seen.len(), "shards overlap");
        assert_eq!(seen, rows.as_slice(), "union is not the input rows");
    }

    #[test]
    fn single_plan_is_one_shard() {
        let (t, _) = table_with_keys(&[Some(1.0), Some(2.0)]);
        let shards = ShardPlan::Single.partition(&t, &t.all_rows()).unwrap();
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].id, 0);
        assert_eq!(shards[0].rows, t.all_rows());
        assert!(shards[0].bounds.is_none());
    }

    #[test]
    fn key_range_splits_evenly_and_covers() {
        let keys: Vec<Option<f64>> = (0..100).map(|i| Some(i as f64)).collect();
        let (t, attr) = table_with_keys(&keys);
        let shards = ShardPlan::ByKeyRange { attr, shards: 4 }
            .partition(&t, &t.all_rows())
            .unwrap();
        assert_eq!(shards.len(), 4);
        assert_disjoint_cover(&shards, &t.all_rows());
        // Interval chain: first unbounded below, last unbounded above,
        // inner bounds meet exactly.
        assert!(shards[0].bounds.unwrap().lo.is_none());
        assert!(shards[3].bounds.unwrap().hi.is_none());
        for w in shards.windows(2) {
            assert_eq!(w[0].bounds.unwrap().hi, w[1].bounds.unwrap().lo);
        }
        // Equal-width cuts over 0..99: ~25 rows per shard.
        for s in &shards {
            assert_eq!(s.rows.len(), 25, "shard {}: {:?}", s.id, s.bounds);
        }
    }

    #[test]
    fn null_keys_form_trailing_marked_shard() {
        let (t, attr) = table_with_keys(&[Some(0.0), None, Some(10.0), None, Some(5.0)]);
        let shards = ShardPlan::ByKeyRange { attr, shards: 2 }
            .partition(&t, &t.all_rows())
            .unwrap();
        assert_disjoint_cover(&shards, &t.all_rows());
        let last = shards.last().unwrap();
        let b = last.bounds.expect("null shard must carry bounds");
        assert!(b.null_keys);
        assert_eq!(b.attr, attr);
        assert!(b.lo.is_none() && b.hi.is_none());
        assert_eq!(last.rows.as_slice(), &[1, 3]);
        // Interval shards are never marked as null-key shards.
        for s in &shards[..shards.len() - 1] {
            assert!(!s.bounds.unwrap().null_keys);
        }
    }

    #[test]
    fn non_finite_keys_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let (t, attr) = table_with_keys(&[Some(0.0), Some(bad), Some(5.0)]);
            for plan in [
                ShardPlan::ByKeyRange { attr, shards: 2 },
                ShardPlan::ByTimeWindow { attr, width: 2.0 },
            ] {
                match plan.partition(&t, &t.all_rows()) {
                    Err(DataError::NonFiniteCell { row, attribute }) => {
                        assert_eq!(row, 1);
                        assert_eq!(attribute, "k");
                    }
                    other => panic!("expected NonFiniteCell for key {bad}, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn empty_shards_are_dropped_and_ids_renumbered() {
        // All keys in a narrow band + one far outlier: middle intervals of
        // a 5-way cut are empty.
        let (t, attr) = table_with_keys(&[Some(0.0), Some(0.5), Some(1.0), Some(100.0), Some(0.2)]);
        let shards = ShardPlan::ByKeyRange { attr, shards: 5 }
            .partition(&t, &t.all_rows())
            .unwrap();
        assert_disjoint_cover(&shards, &t.all_rows());
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.id, i, "ids must stay dense");
        }
        assert!(shards.len() < 5);
    }

    #[test]
    fn constant_key_collapses_to_one_shard() {
        let (t, attr) = table_with_keys(&[Some(7.0), Some(7.0), Some(7.0)]);
        let shards = ShardPlan::ByKeyRange { attr, shards: 4 }
            .partition(&t, &t.all_rows())
            .unwrap();
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].rows.len(), 3);
    }

    #[test]
    fn time_window_cuts_at_fixed_width() {
        let keys: Vec<Option<f64>> = (0..30).map(|i| Some(i as f64)).collect();
        let (t, attr) = table_with_keys(&keys);
        let shards = ShardPlan::ByTimeWindow { attr, width: 10.0 }
            .partition(&t, &t.all_rows())
            .unwrap();
        // Cuts at 10 and 20; key 29 < 30 so no fourth window.
        assert_eq!(shards.len(), 3);
        assert_disjoint_cover(&shards, &t.all_rows());
        for s in &shards {
            assert_eq!(s.rows.len(), 10);
        }
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let (t, attr) = table_with_keys(&[Some(1.0)]);
        assert!(matches!(
            ShardPlan::ByKeyRange { attr, shards: 0 }.partition(&t, &t.all_rows()),
            Err(DataError::InvalidShardPlan(_))
        ));
        for width in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                ShardPlan::ByTimeWindow { attr, width }.partition(&t, &t.all_rows()),
                Err(DataError::InvalidShardPlan(_))
            ));
        }
    }

    #[test]
    fn non_numeric_key_is_rejected() {
        let schema = Schema::new(vec![("s", AttrType::Str), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        t.push_row(vec![Value::str("a"), Value::Float(0.0)])
            .unwrap();
        let s = t.attr("s").unwrap();
        assert!(matches!(
            ShardPlan::ByKeyRange { attr: s, shards: 2 }.partition(&t, &t.all_rows()),
            Err(DataError::NotNumeric(_))
        ));
    }

    #[test]
    fn partition_respects_the_input_rowset() {
        let keys: Vec<Option<f64>> = (0..20).map(|i| Some(i as f64)).collect();
        let (t, attr) = table_with_keys(&keys);
        let rows = RowSet::from_indices((0..20u32).filter(|i| i % 2 == 0).collect());
        let shards = ShardPlan::ByKeyRange { attr, shards: 3 }
            .partition(&t, &rows)
            .unwrap();
        assert_disjoint_cover(&shards, &rows);
    }
}
