//! Property-based tests of Algorithm 1's postconditions (Problem 1) on
//! randomly generated piecewise data.

// Test harness: panicking on malformed fixtures is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use crr_core::LocateStrategy;
use crr_data::{AttrType, RowSet, Schema, Table, Value};
use crr_discovery::{
    DiscoveryConfig, DiscoverySession, PredicateGen, PredicateSpace, QueueOrder, ShardedDiscovery,
};
use proptest::prelude::*;

/// Single-shard run through the session front door.
fn discover(
    t: &Table,
    rows: &RowSet,
    cfg: &DiscoveryConfig,
    space: &PredicateSpace,
) -> crr_discovery::Result<ShardedDiscovery> {
    DiscoverySession::on(t)
        .rows(rows.clone())
        .predicates(space.clone())
        .config(cfg.clone())
        .run()
}

/// A random piecewise-affine table: 1–4 segments, each with its own slope
/// and intercept, plus bounded noise.
fn arb_piecewise() -> impl Strategy<Value = (Table, f64)> {
    (
        prop::collection::vec((-2.0f64..2.0, -20.0f64..20.0), 1..4),
        10usize..60,
        0.0f64..0.3,
        0u64..1000,
    )
        .prop_map(|(segments, per_segment, noise_amp, seed)| {
            let schema = Schema::new(vec![("x", AttrType::Float), ("y", AttrType::Float)]);
            let mut t = Table::new(schema);
            let mut x = 0.0;
            for (si, (w, b)) in segments.iter().enumerate() {
                for k in 0..per_segment {
                    // Deterministic pseudo-noise in [-amp, amp].
                    let h = seed
                        .wrapping_add((si * per_segment + k) as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let noise = ((h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) * noise_amp;
                    t.push_row(vec![Value::Float(x), Value::Float(w * x + b + noise)])
                        .unwrap();
                    x += 1.0;
                }
            }
            (t, noise_amp)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Coverage (Problem 1): every tuple is covered by some rule.
    #[test]
    fn discovery_always_covers((table, noise) in arb_piecewise()) {
        let x = table.attr("x").unwrap();
        let y = table.attr("y").unwrap();
        let space = PredicateGen::binary(63).generate(&table, &[x], y, 0);
        let cfg = DiscoveryConfig::new(vec![x], y, (2.5 * noise).max(0.05));
        let d = discover(&table, &table.all_rows(), &cfg, &space).unwrap();
        prop_assert!(d.rules.uncovered(&table, &table.all_rows()).is_empty());
    }

    /// Honesty: every emitted rule satisfies its own ρ on the full table.
    #[test]
    fn rules_respect_their_rho((table, noise) in arb_piecewise()) {
        let x = table.attr("x").unwrap();
        let y = table.attr("y").unwrap();
        let space = PredicateGen::binary(63).generate(&table, &[x], y, 0);
        let cfg = DiscoveryConfig::new(vec![x], y, (2.5 * noise).max(0.05));
        let d = discover(&table, &table.all_rows(), &cfg, &space).unwrap();
        for rule in d.rules.rules() {
            prop_assert!(rule.find_violation(&table, &table.all_rows()).is_none());
        }
    }

    /// Conditions are disjoint partitions: every row matches exactly one
    /// rule (binary refinement of ⊤ with complementary children).
    #[test]
    fn search_partitions_are_disjoint((table, noise) in arb_piecewise()) {
        let x = table.attr("x").unwrap();
        let y = table.attr("y").unwrap();
        let space = PredicateGen::binary(63).generate(&table, &[x], y, 0);
        let cfg = DiscoveryConfig::new(vec![x], y, (2.5 * noise).max(0.05));
        let d = discover(&table, &table.all_rows(), &cfg, &space).unwrap();
        for row in 0..table.num_rows() {
            let matches = d
                .rules
                .rules()
                .iter()
                .filter(|r| r.covers(&table, row))
                .count();
            prop_assert_eq!(matches, 1, "row {} matched {} rules", row, matches);
        }
    }

    /// Queue order never affects coverage or honesty, only traversal.
    #[test]
    fn any_order_is_valid((table, noise) in arb_piecewise(), seed in 0u64..100) {
        let x = table.attr("x").unwrap();
        let y = table.attr("y").unwrap();
        let space = PredicateGen::binary(31).generate(&table, &[x], y, 0);
        for order in [QueueOrder::Decrease, QueueOrder::Increase, QueueOrder::Random(seed)] {
            let cfg = DiscoveryConfig::new(vec![x], y, (2.5 * noise).max(0.05))
                .with_order(order);
            let d = discover(&table, &table.all_rows(), &cfg, &space).unwrap();
            prop_assert!(d.rules.uncovered(&table, &table.all_rows()).is_empty());
            let rep = d.rules.evaluate(&table, &table.all_rows(), LocateStrategy::First);
            prop_assert!(rep.covered == table.num_rows());
        }
    }

    /// Compaction of the discovered set never loses coverage and keeps
    /// every prediction within 2·ρ_M of the original.
    #[test]
    fn compaction_stays_close((table, noise) in arb_piecewise()) {
        let x = table.attr("x").unwrap();
        let y = table.attr("y").unwrap();
        let rho = (2.5 * noise).max(0.05);
        let space = PredicateGen::binary(63).generate(&table, &[x], y, 0);
        let cfg = DiscoveryConfig::new(vec![x], y, rho);
        let d = discover(&table, &table.all_rows(), &cfg, &space).unwrap();
        let (compacted, _) = crr_discovery::compact_on_data(
            &d.rules, 1e-6, rho, &table, &table.all_rows(),
        )
        .unwrap();
        prop_assert!(compacted.len() <= d.rules.len());
        prop_assert!(compacted.uncovered(&table, &table.all_rows()).is_empty());
        for row in 0..table.num_rows() {
            let a = d.rules.predict(&table, row, LocateStrategy::First).unwrap();
            let b = compacted.predict(&table, row, LocateStrategy::First).unwrap();
            prop_assert!((a - b).abs() <= 2.0 * rho + 1e-9, "row {}: {} vs {}", row, a, b);
        }
    }
}
