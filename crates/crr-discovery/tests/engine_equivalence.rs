//! Regression guards for the sufficient-statistics fit engine: the output
//! of a discovery run must be *byte-identical* — serialized rules, stats,
//! and outcome — across repeated runs, and between the sequential and
//! parallel shared-pool scans. The moments engine must also agree semantically with
//! the rescan baseline (coverage, accuracy), though not bitwise: near-rank-
//! deficient partitions may legitimately resolve differently between the
//! cached Cholesky and the row path's QR fallback.

// Test harness: panicking on malformed fixtures is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use crr_core::{serialize, LocateStrategy};
use crr_data::{RowSet, Table};
use crr_datasets::{electricity, GenConfig};
use crr_discovery::{
    DiscoveryConfig, DiscoverySession, FitEngine, MetricsSink, PredicateGen, PredicateSpace,
    QueueOrder, ShardedDiscovery,
};

/// Single-shard run through the session front door.
fn discover(
    t: &Table,
    rows: &RowSet,
    cfg: &DiscoveryConfig,
    space: &PredicateSpace,
) -> crr_discovery::Result<ShardedDiscovery> {
    DiscoverySession::on(t)
        .rows(rows.clone())
        .predicates(space.clone())
        .config(cfg.clone())
        .run()
}

/// Everything observable about a run except wall-clock time.
fn fingerprint(d: &ShardedDiscovery) -> String {
    let s = &d.stats;
    format!(
        "{}\ntrained={} shared={} explored={} forced={} uncoverable={} drained={}+{} outcome={:?}",
        serialize::to_text(&d.rules),
        s.models_trained,
        s.models_shared,
        s.partitions_explored,
        s.forced_accepts,
        s.uncoverable_rows,
        s.drained_partitions,
        s.drained_rows,
        d.outcome,
    )
}

fn setup(rows: usize) -> (Table, DiscoveryConfig, PredicateSpace) {
    let ds = electricity(&GenConfig { rows, seed: 42 });
    let t = ds.table;
    let minute = t.attr("minute").unwrap();
    let target = t.attr("global_active_power").unwrap();
    let space = PredicateGen::binary(64).generate(&t, &[minute], target, 0);
    let cfg = DiscoveryConfig::new(vec![minute], target, 0.25);
    (t, cfg, space)
}

#[test]
fn repeated_runs_are_byte_identical() {
    let (t, cfg, space) = setup(2000);
    let a = discover(&t, &t.all_rows(), &cfg, &space).unwrap();
    let b = discover(&t, &t.all_rows(), &cfg, &space).unwrap();
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn parallel_pool_scan_is_byte_identical_to_sequential() {
    // Enough rows that `|pool| × |fit|` crosses the parallel-scan gate on
    // real pops; both ind-consuming and ind-free orders are exercised since
    // their short-circuit policies differ.
    let (t, base, space) = setup(4000);
    for order in [
        QueueOrder::Decrease,
        QueueOrder::Increase,
        QueueOrder::Random(9),
    ] {
        let seq_cfg = base.clone().with_order(order);
        let par_cfg = seq_cfg.clone().with_pool_scan_threads(4);
        let a = discover(&t, &t.all_rows(), &seq_cfg, &space).unwrap();
        let b = discover(&t, &t.all_rows(), &par_cfg, &space).unwrap();
        assert!(
            a.stats.models_shared > 0,
            "{order:?}: sharing never engaged"
        );
        assert_eq!(fingerprint(&a), fingerprint(&b), "{order:?}");
    }
}

#[test]
fn metrics_instrumentation_is_byte_identical() {
    // The observability contract: an enabled sink must not perturb the
    // search — queue order, fit results and rule output are untouched.
    let (t, plain_cfg, space) = setup(2000);
    let metered_cfg = plain_cfg.clone().with_metrics(MetricsSink::enabled());
    let plain = discover(&t, &t.all_rows(), &plain_cfg, &space).unwrap();
    let metered = discover(&t, &t.all_rows(), &metered_cfg, &space).unwrap();
    assert_eq!(fingerprint(&plain), fingerprint(&metered));
    assert!(plain.metrics.is_empty());
    assert!(!metered.metrics.is_empty());

    // Same holds under the parallel pool scan.
    let par_plain_cfg = plain_cfg.with_pool_scan_threads(4);
    let par_metered_cfg = par_plain_cfg.clone().with_metrics(MetricsSink::enabled());
    let par_plain = discover(&t, &t.all_rows(), &par_plain_cfg, &space).unwrap();
    let par_metered = discover(&t, &t.all_rows(), &par_metered_cfg, &space).unwrap();
    assert_eq!(fingerprint(&par_plain), fingerprint(&par_metered));
    assert_eq!(fingerprint(&plain), fingerprint(&par_plain));
    // Pool-probe counts over the deterministic prefix match the sequential
    // scan's exactly, even though speculative parallel probes may differ.
    assert_eq!(
        metered.metrics.count("pool", "hits"),
        par_metered.metrics.count("pool", "hits"),
    );
    assert_eq!(
        metered.metrics.count("queue", "pops"),
        par_metered.metrics.count("queue", "pops"),
    );
}

#[test]
fn moments_and_rescan_agree_semantically() {
    let (t, base, space) = setup(2000);
    let m = discover(
        &t,
        &t.all_rows(),
        &base.clone().with_engine(FitEngine::Moments),
        &space,
    )
    .unwrap();
    let r = discover(
        &t,
        &t.all_rows(),
        &base.with_engine(FitEngine::Rescan),
        &space,
    )
    .unwrap();
    for (name, d) in [("moments", &m), ("rescan", &r)] {
        assert!(
            d.rules.uncovered(&t, &t.all_rows()).is_empty(),
            "{name}: uncovered rows"
        );
        for rule in d.rules.rules() {
            assert!(
                rule.find_violation(&t, &t.all_rows()).is_none(),
                "{name}: dishonest rho"
            );
        }
    }
    let rep_m = m.rules.evaluate(&t, &t.all_rows(), LocateStrategy::First);
    let rep_r = r.rules.evaluate(&t, &t.all_rows(), LocateStrategy::First);
    assert!(
        (rep_m.rmse - rep_r.rmse).abs() < 0.05,
        "engines diverge: moments rmse {} vs rescan rmse {}",
        rep_m.rmse,
        rep_r.rmse
    );
}
