//! Regression guards for sharded discovery and the `DiscoverySession`
//! front door:
//!
//! * one shard is **byte-identical** to an unsharded session run —
//!   serialized rules, stats, outcome — on the paper's electricity and tax
//!   workloads (the ISSUE 4 acceptance pin);
//! * a multi-shard run is deterministic across repeats and across shard
//!   thread counts (the frozen cross-shard pool makes each shard a pure
//!   function of its rows);
//! * the Algorithm 2 merge never grows the rule set past the per-shard sum
//!   and preserves coverage;
//! * cross-shard sharing actually engages (hits, adopted translations) and
//!   its counters reconcile (`hits + misses == probes`);
//! * a failed shard degrades to constant fallbacks without touching its
//!   siblings, and the error stays attributable via `Error::Shard`.

// Test harness: panicking on malformed fixtures is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use crr_core::serialize;
use crr_data::{AttrType, Schema, Table, Value};
use crr_datasets::{electricity, tax, GenConfig};
use crr_discovery::prelude::*;
use crr_discovery::{PredicateGen, PredicateSpace};

/// Everything observable about a sharded run except wall-clock time.
fn sharded_fingerprint(d: &ShardedDiscovery) -> String {
    let s = &d.stats;
    format!(
        "{}\ntrained={} shared={} cross={} explored={} forced={} uncoverable={} drained={}+{} \
         outcome={:?} shards={:?}",
        serialize::to_text(&d.rules),
        s.models_trained,
        s.models_shared,
        s.cross_shard_shares,
        s.partitions_explored,
        s.forced_accepts,
        s.uncoverable_rows,
        s.drained_partitions,
        s.drained_rows,
        d.outcome,
        d.shards.iter().map(|sh| sh.rules).collect::<Vec<_>>(),
    )
}

fn electricity_setup(rows: usize) -> (Table, DiscoveryConfig, PredicateSpace) {
    let ds = electricity(&GenConfig { rows, seed: 42 });
    let t = ds.table;
    let minute = t.attr("minute").unwrap();
    let target = t.attr("global_active_power").unwrap();
    let space = PredicateGen::binary(64).generate(&t, &[minute], target, 0);
    let cfg = DiscoveryConfig::new(vec![minute], target, 0.25);
    (t, cfg, space)
}

fn tax_setup(rows: usize) -> (Table, DiscoveryConfig, PredicateSpace) {
    let ds = tax(&GenConfig { rows, seed: 7 });
    let t = ds.table;
    let salary = t.attr("salary").unwrap();
    let state = t.attr("state").unwrap();
    let target = t.attr("tax").unwrap();
    let space = PredicateGen::binary(8).generate(&t, &[salary, state], target, 7);
    let cfg = DiscoveryConfig::new(vec![salary], target, 2.0);
    (t, cfg, space)
}

/// Two linear regimes over an integer key: `y = x` below 100, `y = x − 50`
/// above. Key-range shards of this table share one model across shards
/// (regime 2 is a pure output shift of regime 1), so cross-shard pool hits
/// and merge fusions are guaranteed, and all sums stay exact in f64.
fn two_regime_table(rows: usize) -> (Table, DiscoveryConfig, PredicateSpace) {
    let schema = Schema::new(vec![("x", AttrType::Float), ("y", AttrType::Float)]);
    let mut t = Table::new(schema);
    for i in 0..rows {
        let x = i as f64;
        let y = if x < 100.0 { x } else { x - 50.0 };
        t.push_row(vec![Value::Float(x), Value::Float(y)]).unwrap();
    }
    let x = t.attr("x").unwrap();
    let y = t.attr("y").unwrap();
    let space = PredicateGen::binary(7).generate(&t, &[x], y, 1);
    let cfg = DiscoveryConfig::new(vec![x], y, 0.5);
    (t, cfg, space)
}

fn key_of(t: &Table, name: &str) -> crr_data::AttrId {
    t.attr(name).unwrap()
}

#[test]
fn one_shard_is_byte_identical_to_unsharded_on_electricity() {
    let (t, cfg, space) = electricity_setup(11520);
    let classic = DiscoverySession::on(&t)
        .predicates(space.clone())
        .config(cfg.clone())
        .run()
        .unwrap();
    let plan = ShardSpec::by_key(key_of(&t, "minute"))
        .equal_width()
        .shards(1);
    let sharded = DiscoverySession::on(&t)
        .predicates(space)
        .config(cfg)
        .sharded(plan)
        .run()
        .unwrap();
    assert_eq!(sharded_fingerprint(&classic), sharded_fingerprint(&sharded));
    assert!(sharded.merge.is_none(), "one shard must skip the merge");
}

#[test]
fn one_shard_is_byte_identical_to_unsharded_on_tax() {
    let (t, cfg, space) = tax_setup(10000);
    let classic = DiscoverySession::on(&t)
        .predicates(space.clone())
        .config(cfg.clone())
        .run()
        .unwrap();
    let sharded = DiscoverySession::on(&t)
        .predicates(space)
        .config(cfg)
        .sharded(
            ShardSpec::by_key(key_of(&t, "salary"))
                .equal_width()
                .shards(1),
        )
        .run()
        .unwrap();
    assert_eq!(sharded_fingerprint(&classic), sharded_fingerprint(&sharded));
}

#[test]
fn multi_shard_runs_are_deterministic_across_thread_counts() {
    let (t, cfg, space) = electricity_setup(4000);
    let plan = ShardSpec::by_key(key_of(&t, "minute"))
        .equal_width()
        .shards(4);
    let run = |threads: usize| {
        DiscoverySession::on(&t)
            .predicates(space.clone())
            .config(cfg.clone().with_shard_threads(threads))
            .sharded(plan.clone())
            .run()
            .unwrap()
    };
    let a = run(1);
    let b = run(4);
    let c = run(4);
    assert_eq!(sharded_fingerprint(&a), sharded_fingerprint(&b));
    assert_eq!(sharded_fingerprint(&b), sharded_fingerprint(&c));
    assert_eq!(a.shards.len(), 4);
}

#[test]
fn cross_shard_pool_shares_models_and_merge_compacts() {
    let (t, cfg, space) = two_regime_table(200);
    let sink = MetricsSink::enabled();
    let out = DiscoverySession::on(&t)
        .predicates(space)
        .config(cfg.with_shard_threads(2))
        .metrics(sink.clone())
        .sharded(ShardSpec::by_key(key_of(&t, "x")).equal_width().shards(4))
        .run()
        .unwrap();
    // Shard 1 (x ∈ [50,100)) obeys the seed shard's y = x model exactly,
    // and shard 2's regime is its pure −50 output shift: both must come
    // from the frozen pool, not fresh training.
    assert!(
        out.stats.cross_shard_shares > 0,
        "cross-shard sharing never engaged"
    );
    let m = sink.snapshot();
    let probes = m.count("shards", "cross_pool_probes").unwrap();
    let hits = m.count("shards", "cross_pool_hits").unwrap();
    let misses = m.count("shards", "cross_pool_misses").unwrap();
    assert!(hits > 0, "no cross-shard pool hits");
    assert_eq!(hits + misses, probes, "probe accounting must reconcile");
    assert_eq!(m.count("shards", "run"), Some(4));
    assert_eq!(m.count("run", "shards"), Some(4));

    // Algorithm 2 across shards: never more rules than the per-shard sum.
    let per_shard_sum: usize = out.shards.iter().map(|s| s.rules).sum();
    assert!(
        out.rules.len() <= per_shard_sum,
        "merge grew the rule set: {} > {per_shard_sum}",
        out.rules.len()
    );
    // Coverage is preserved through guarding + merging.
    assert!(out.rules.uncovered(&t, &t.all_rows()).is_empty());
    // Guarded, merged rules still predict within ρ on every covered row.
    for rule in out.rules.rules() {
        assert!(rule.find_violation(&t, &t.all_rows()).is_none());
    }
}

#[test]
fn shard_moments_merge_to_whole_table_moments() {
    // Integer-valued instance: per-shard root moments merged across shards
    // must equal the single-shard (whole-table) root moments bit for bit.
    let (t, cfg, space) = two_regime_table(200);
    let whole = DiscoverySession::on(&t)
        .predicates(space.clone())
        .config(cfg.clone())
        .run()
        .unwrap();
    let sharded = DiscoverySession::on(&t)
        .predicates(space)
        .config(cfg)
        .sharded(ShardSpec::by_key(key_of(&t, "x")).equal_width().shards(4))
        .run()
        .unwrap();
    let w = whole.global_moments.expect("whole-table moments");
    let s = sharded.global_moments.expect("merged shard moments");
    assert_eq!(w.count(), s.count());
    assert_eq!(w.yty().to_bits(), s.yty().to_bits());
    for (a, b) in w.rhs().iter().zip(s.rhs()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    for (a, b) in w.gram().as_slice().iter().zip(s.gram().as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// A table whose shard key `k` is null on every 6th row, and whose
/// null-key rows follow a *different-slope* regime (`y = 2x` instead of
/// `y = x` — deliberately not an output shift, so Algorithm 2's
/// translation fusion cannot absorb it). Any rule fit on the null shard
/// that escapes its shard unguarded violates ρ on almost every non-null
/// row — the exact soundness gap null-shard guarding closes.
fn null_key_table(rows: usize) -> (Table, DiscoveryConfig, PredicateSpace) {
    let schema = Schema::new(vec![
        ("k", AttrType::Float),
        ("x", AttrType::Float),
        ("y", AttrType::Float),
    ]);
    let mut t = Table::new(schema);
    for i in 0..rows {
        let x = i as f64;
        let (k, y) = if i % 6 == 5 {
            (Value::Null, 2.0 * x)
        } else {
            (Value::Float(x), x)
        };
        t.push_row(vec![k, Value::Float(x), Value::Float(y)])
            .unwrap();
    }
    let x = t.attr("x").unwrap();
    let y = t.attr("y").unwrap();
    let space = PredicateGen::binary(7).generate(&t, &[x], y, 1);
    let cfg = DiscoveryConfig::new(vec![x], y, 0.5);
    (t, cfg, space)
}

#[test]
fn null_key_shard_rules_are_guarded_and_sound_instance_wide() {
    let (t, cfg, space) = null_key_table(240);
    let k = key_of(&t, "k");
    let out = DiscoverySession::on(&t)
        .predicates(space)
        .config(cfg)
        .sharded(ShardSpec::by_key(k).equal_width().shards(2))
        .run()
        .unwrap();
    // The trailing shard holds exactly the null-key rows and is marked so.
    let last = out.shards.last().unwrap();
    let b = last.bounds.expect("null shard must carry bounds");
    assert!(b.null_keys, "trailing shard must be the null-key shard");
    assert_eq!(last.rows.len(), 40);
    assert_eq!(out.failed_shards().count(), 0);
    // Every merged rule holds on the WHOLE instance, not just its shard:
    // an unguarded null-shard rule (y = x + 1000) would violate ρ on every
    // non-null row it claims.
    for rule in out.rules.rules() {
        assert_eq!(
            rule.find_violation(&t, &t.all_rows()),
            None,
            "rule over-claims rows outside its shard: {}",
            rule.display(t.schema())
        );
    }
    // ... and coverage survives the guarding + merge.
    assert!(out.rules.uncovered(&t, &t.all_rows()).is_empty());
}

#[test]
fn constant_key_with_nulls_guards_the_unbounded_shard() {
    // Constant non-null key: the cut degenerates to one unbounded interval
    // shard plus the null shard. The interval shard's rules must be
    // guarded `k IS NOT NULL` or they claim the (different-slope, hence
    // non-fusable) null rows.
    let schema = Schema::new(vec![
        ("k", AttrType::Float),
        ("x", AttrType::Float),
        ("y", AttrType::Float),
    ]);
    let mut t = Table::new(schema);
    for i in 0..120 {
        let x = i as f64;
        let (k, y) = if i % 4 == 3 {
            (Value::Null, 2.0 * x)
        } else {
            (Value::Float(7.0), x)
        };
        t.push_row(vec![k, Value::Float(x), Value::Float(y)])
            .unwrap();
    }
    let x = t.attr("x").unwrap();
    let y = t.attr("y").unwrap();
    let space = PredicateGen::binary(7).generate(&t, &[x], y, 1);
    let cfg = DiscoveryConfig::new(vec![x], y, 0.5);
    let out = DiscoverySession::on(&t)
        .predicates(space)
        .config(cfg)
        .sharded(ShardSpec::by_key(key_of(&t, "k")).equal_width().shards(3))
        .run()
        .unwrap();
    assert_eq!(
        out.shards.len(),
        2,
        "one interval shard plus the null shard"
    );
    let interval = out.shards[0].bounds.unwrap();
    assert!(!interval.null_keys && interval.lo.is_none() && interval.hi.is_none());
    for rule in out.rules.rules() {
        assert_eq!(
            rule.find_violation(&t, &t.all_rows()),
            None,
            "rule over-claims rows outside its shard: {}",
            rule.display(t.schema())
        );
    }
    assert!(out.rules.uncovered(&t, &t.all_rows()).is_empty());
}

#[test]
fn non_finite_shard_keys_error_before_any_shard_runs() {
    let (mut t, cfg, space) = two_regime_table(100);
    let x = key_of(&t, "x");
    t.set_value(50, x, Value::Float(f64::INFINITY));
    // +Inf would satisfy every other shard's `key >= lo` guard, so no
    // guard assignment is sound: partitioning must refuse the instance.
    assert!(matches!(
        DiscoverySession::on(&t)
            .predicates(space)
            .config(cfg)
            .sharded(ShardSpec::by_key(x).equal_width().shards(4))
            .run(),
        Err(DiscoveryError::Data(crr_data::DataError::NonFiniteCell {
            row: 50,
            ..
        }))
    ));
}

#[test]
fn failed_shard_degrades_without_aborting_siblings() {
    let (mut t, cfg, space) = two_regime_table(200);
    // Poison exactly one row of shard 3 (x ∈ [150, 200)): its snapshot
    // build fails with NonFiniteValue while every other shard is clean.
    let y = t.attr("y").unwrap();
    t.set_value(180, y, Value::Float(f64::NAN));
    let sink = MetricsSink::enabled();
    let out = DiscoverySession::on(&t)
        .predicates(space)
        .config(cfg.with_shard_threads(2))
        .metrics(sink.clone())
        .sharded(ShardSpec::by_key(key_of(&t, "x")).equal_width().shards(4))
        .run()
        .unwrap();
    assert_eq!(out.shards.len(), 4);
    let failed: Vec<_> = out.shards.iter().filter(|s| s.error.is_some()).collect();
    assert_eq!(failed.len(), 1, "exactly one shard must fail");
    let bad = failed[0];
    assert_eq!(bad.shard_id, 3);
    match bad.error.as_ref().unwrap() {
        DiscoveryError::Shard { shard_id, source } => {
            assert_eq!(*shard_id, 3);
            assert!(
                matches!(**source, DiscoveryError::NonFiniteValue { .. }),
                "unexpected source: {source:?}"
            );
        }
        other => panic!("expected Error::Shard, got {other:?}"),
    }
    // The failed shard was drained, not dropped: its rows are still
    // covered (by the guarded constant fallback), siblings are complete.
    assert!(bad.stats.drained_partitions > 0);
    assert!(out.rules.uncovered(&t, &t.all_rows()).is_empty());
    for s in out.shards.iter().filter(|s| s.error.is_none()) {
        assert!(
            s.outcome.is_complete(),
            "sibling shard {} degraded",
            s.shard_id
        );
    }
    assert_eq!(sink.snapshot().count("shards", "failed"), Some(1));
    // A poisoned shard forfeits the merged global moments.
    assert!(out.global_moments.is_none());
}

#[test]
fn invalid_plan_and_config_error_before_any_shard_runs() {
    let (t, cfg, space) = two_regime_table(60);
    let x = key_of(&t, "x");
    assert!(matches!(
        DiscoverySession::on(&t)
            .predicates(space.clone())
            .config(cfg.clone())
            .sharded(ShardSpec::by_key(x).shards(0))
            .run(),
        Err(DiscoveryError::Data(crr_data::DataError::InvalidShardPlan(
            _
        )))
    ));
    assert!(matches!(
        DiscoverySession::on(&t)
            .predicates(space)
            .config(cfg.with_pool_scan_threads(0))
            .sharded(ShardSpec::by_key(x).equal_width().shards(4))
            .run(),
        Err(DiscoveryError::InvalidConfig(_))
    ));
}

// ---- Adaptive planning (ISSUE 9) ----------------------------------------

#[test]
fn quantile_one_shard_is_byte_identical_to_classic() {
    let (t, cfg, space) = tax_setup(2000);
    let classic = DiscoverySession::on(&t)
        .predicates(space.clone())
        .config(cfg.clone())
        .run()
        .unwrap();
    let quantile = DiscoverySession::on(&t)
        .predicates(space)
        .config(cfg)
        .sharded(ShardSpec::by_key(key_of(&t, "salary")).quantile().shards(1))
        .run()
        .unwrap();
    assert_eq!(
        sharded_fingerprint(&classic),
        sharded_fingerprint(&quantile)
    );
    assert!(quantile.merge.is_none(), "one shard must skip the merge");
}

#[test]
fn quantile_multi_shard_is_deterministic_across_thread_counts() {
    // With 8 threads and 3 non-seed shards the steal ledger is non-zero
    // from the start, so any stealing exercised here must not perturb the
    // single-thread fingerprint.
    let (t, cfg, space) = electricity_setup(4000);
    let spec = ShardSpec::by_key(key_of(&t, "minute")).quantile().shards(4);
    let run = |threads: usize| {
        DiscoverySession::on(&t)
            .predicates(space.clone())
            .config(cfg.clone().with_shard_threads(threads))
            .sharded(spec.clone())
            .run()
            .unwrap()
    };
    let a = run(1);
    let b = run(4);
    let c = run(8);
    assert_eq!(sharded_fingerprint(&a), sharded_fingerprint(&b));
    assert_eq!(sharded_fingerprint(&b), sharded_fingerprint(&c));
    assert_eq!(a.shards.len(), 4);
}

#[test]
fn quantile_balances_the_skewed_tax_key() {
    // Salaries are right-skewed: equal-width shards pile most rows into
    // the low intervals, quantile shards split them near-evenly.
    let (t, cfg, space) = tax_setup(10000);
    let balance = |out: &ShardedDiscovery| {
        let sizes: Vec<usize> = out.shards.iter().map(|s| s.rows.len()).collect();
        let min = *sizes.iter().min().unwrap() as f64;
        let max = *sizes.iter().max().unwrap() as f64;
        min / max
    };
    let ew = DiscoverySession::on(&t)
        .predicates(space.clone())
        .config(cfg.clone())
        .sharded(
            ShardSpec::by_key(key_of(&t, "salary"))
                .equal_width()
                .shards(4),
        )
        .run()
        .unwrap();
    let q = DiscoverySession::on(&t)
        .predicates(space)
        .config(cfg)
        .sharded(ShardSpec::by_key(key_of(&t, "salary")).quantile().shards(4))
        .run()
        .unwrap();
    assert_eq!(q.shards.len(), 4);
    assert!(
        balance(&q) > balance(&ew),
        "quantile balance {:.3} must beat equal-width {:.3}",
        balance(&q),
        balance(&ew)
    );
    assert!(balance(&q) > 0.9, "quantile shards stay near-even");
    // Both runs stay sound and covering whatever the boundary placement.
    assert!(q.rules.uncovered(&t, &t.all_rows()).is_empty());
    for rule in q.rules.rules() {
        assert!(rule.find_violation(&t, &t.all_rows()).is_none());
    }
}

#[test]
fn obligations_record_the_boundary_construction() {
    use crr_discovery::PlanBoundary;
    let (t, cfg, space) = two_regime_table(200);
    let x = key_of(&t, "x");
    let q = DiscoverySession::on(&t)
        .predicates(space.clone())
        .config(cfg.clone())
        .sharded(ShardSpec::by_key(x).quantile().shards(4))
        .run()
        .unwrap();
    assert_eq!(
        q.obligations.as_ref().unwrap().boundary,
        PlanBoundary::Quantile
    );
    let ew = DiscoverySession::on(&t)
        .predicates(space)
        .config(cfg)
        .sharded(ShardSpec::by_key(x).equal_width().shards(4))
        .run()
        .unwrap();
    assert_eq!(
        ew.obligations.as_ref().unwrap().boundary,
        PlanBoundary::EqualWidth
    );
    // The boundary survives the artifact round-trip.
    let artifact = q.export_artifact(t.schema()).unwrap();
    let back = crr_discovery::RuleSetArtifact::from_text(&artifact.to_text()).unwrap();
    assert_eq!(back.obligations.unwrap().boundary, PlanBoundary::Quantile);
}

#[test]
fn auto_count_plans_from_the_cost_model() {
    let (t, cfg, space) = two_regime_table(4096);
    let sink = MetricsSink::enabled();
    let out = DiscoverySession::on(&t)
        .predicates(space)
        .config(cfg.with_shard_threads(4))
        .metrics(sink.clone())
        .sharded(ShardSpec::by_key(key_of(&t, "x")).auto())
        .run()
        .unwrap();
    let m = sink.snapshot();
    assert_eq!(m.count("shards", "plan_auto_k"), Some(1));
    assert!(out.shards.len() > 1, "4096 rows should shard");
    assert_eq!(
        m.count("shards", "plan_quantile"),
        Some(1),
        "auto specs default to quantile boundaries"
    );
    let balance = m.count("shards", "balance_permille").unwrap();
    assert!(balance > 900, "balance gauge reads {balance}");
    assert!(out.rules.uncovered(&t, &t.all_rows()).is_empty());
}

#[test]
fn auto_count_falls_back_to_single_shard_on_poor_sharing() {
    use crr_obs::Counter;
    let (t, cfg, space) = two_regime_table(4096);
    // A sink whose history says cross-shard sharing never pays: plenty of
    // probes, no hits.
    let sink = MetricsSink::enabled();
    sink.add(Counter::CrossShardPoolProbes, 100);
    sink.add(Counter::CrossShardPoolMisses, 100);
    let out = DiscoverySession::on(&t)
        .predicates(space.clone())
        .config(cfg.clone())
        .metrics(sink.clone())
        .sharded(ShardSpec::by_key(key_of(&t, "x")).auto())
        .run()
        .unwrap();
    assert_eq!(out.shards.len(), 1, "planner must fall back to one shard");
    assert!(out.obligations.is_none());
    assert_eq!(
        sink.snapshot().count("shards", "plan_fallback_single"),
        Some(1)
    );
    // A fixed-count spec is a caller decision: never overridden.
    let sink2 = MetricsSink::enabled();
    sink2.add(Counter::CrossShardPoolProbes, 100);
    sink2.add(Counter::CrossShardPoolMisses, 100);
    let fixed = DiscoverySession::on(&t)
        .predicates(space)
        .config(cfg)
        .metrics(sink2.clone())
        .sharded(ShardSpec::by_key(key_of(&t, "x")).quantile().shards(4))
        .run()
        .unwrap();
    assert_eq!(fixed.shards.len(), 4);
    assert_eq!(
        sink2.snapshot().count("shards", "plan_fallback_single"),
        Some(0)
    );
}
