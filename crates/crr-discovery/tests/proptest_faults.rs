//! Property-based tests of the robustness contract: on *dirty* tables —
//! random NaN/±Inf/null cells in inputs and target — discovery never
//! panics. Every run either succeeds (tagged with its outcome) or returns
//! a typed [`DiscoveryError`]; the same holds with a budget attached, and
//! a success still covers every coverable row.

// Test harness: panicking on malformed fixtures is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use crr_data::{AttrType, RowSet, Schema, Table, Value};
use crr_discovery::{
    inject_dirty_cells, Budget, DiscoveryConfig, DiscoveryError, DiscoverySession, MetricsSink,
    PredicateGen, PredicateSpace, ShardedDiscovery,
};
use proptest::prelude::*;
use std::time::Duration;

/// Single-shard run through the session front door.
fn discover(
    t: &Table,
    rows: &RowSet,
    cfg: &DiscoveryConfig,
    space: &PredicateSpace,
) -> Result<ShardedDiscovery, DiscoveryError> {
    DiscoverySession::on(t)
        .rows(rows.clone())
        .predicates(space.clone())
        .config(cfg.clone())
        .run()
}

/// A clean piecewise table plus a dirtying plan (cell-corruption rate and
/// seed) applied to both the input and the target column.
fn arb_dirty_table() -> impl Strategy<Value = (Table, usize)> {
    (
        prop::collection::vec((-2.0f64..2.0, -20.0f64..20.0), 1..3),
        10usize..40,
        0.0f64..0.25,
        0u64..1000,
    )
        .prop_map(|(segments, per_segment, dirty_rate, seed)| {
            let schema = Schema::new(vec![("x", AttrType::Float), ("y", AttrType::Float)]);
            let mut t = Table::new(schema);
            let mut x = 0.0;
            for (w, b) in &segments {
                for _ in 0..per_segment {
                    t.push_row(vec![Value::Float(x), Value::Float(w * x + b)])
                        .unwrap();
                    x += 1.0;
                }
            }
            let attrs = [t.attr("x").unwrap(), t.attr("y").unwrap()];
            let dirtied = inject_dirty_cells(&mut t, &attrs, dirty_rate, seed);
            (t, dirtied)
        })
}

/// Either a successful discovery or one of the typed errors the dirty
/// cells may legitimately produce. Anything else fails the property.
fn assert_ok_or_typed(
    result: Result<ShardedDiscovery, DiscoveryError>,
    table: &Table,
) -> Result<(), TestCaseError> {
    match result {
        Ok(d) => {
            // A success must honor the coverage guarantee for every
            // *coverable* row; only rows whose input is null (or
            // non-finite, hence matching no predicate) may be left out.
            let x = table.attr("x").unwrap();
            for row in d.rules.uncovered(table, &table.all_rows()).iter() {
                let v = table.value_f64(row, x);
                prop_assert!(
                    v.is_none() || !v.unwrap().is_finite(),
                    "coverable row {row} left uncovered"
                );
            }
        }
        Err(DiscoveryError::NonFiniteValue { row, .. }) => {
            prop_assert!(row < table.num_rows());
        }
        Err(DiscoveryError::IncompleteRow { row, .. }) => {
            prop_assert!(row < table.num_rows());
        }
        Err(other) => {
            // Model/data errors stay typed too; panics would have escaped
            // before reaching here.
            prop_assert!(
                matches!(other, DiscoveryError::Model(_) | DiscoveryError::Data(_)),
                "unexpected error: {other:?}"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dirty cells never panic discovery: the result is `Ok` (outcome
    /// tagged) or a typed error.
    #[test]
    fn dirty_tables_never_panic((table, _dirtied) in arb_dirty_table()) {
        let x = table.attr("x").unwrap();
        let y = table.attr("y").unwrap();
        let space = PredicateGen::binary(31).generate(&table, &[x], y, 0);
        let cfg = DiscoveryConfig::new(vec![x], y, 0.5);
        assert_ok_or_typed(discover(&table, &table.all_rows(), &cfg, &space), &table)?;
    }

    /// The same property holds under a tight budget: degradation and dirty
    /// data compose without panics, and budgeted successes report an
    /// outcome consistent with their stats.
    #[test]
    fn dirty_tables_under_budget_never_panic(
        (table, _dirtied) in arb_dirty_table(),
        max_expansions in 1usize..20,
    ) {
        let x = table.attr("x").unwrap();
        let y = table.attr("y").unwrap();
        let space = PredicateGen::binary(31).generate(&table, &[x], y, 0);
        let cfg = DiscoveryConfig::new(vec![x], y, 0.5).with_budget(
            Budget::unlimited()
                .with_max_expansions(max_expansions)
                .with_deadline(Duration::from_secs(30)),
        );
        let result = discover(&table, &table.all_rows(), &cfg, &space);
        if let Ok(d) = &result {
            prop_assert!(d.outcome.is_complete() || d.stats.drained_partitions > 0);
        }
        assert_ok_or_typed(result, &table)?;
    }

    /// Metrics stay consistent on dirty tables: whatever path a run takes
    /// (success, degradation, typed error), the sink's ledger agrees with
    /// the run's coarse stats and never perturbs the result.
    #[test]
    fn dirty_tables_keep_metrics_consistent((table, _dirtied) in arb_dirty_table()) {
        let x = table.attr("x").unwrap();
        let y = table.attr("y").unwrap();
        let space = PredicateGen::binary(31).generate(&table, &[x], y, 0);
        let plain_cfg = DiscoveryConfig::new(vec![x], y, 0.5);
        let sink = MetricsSink::enabled();
        let metered_cfg = plain_cfg.clone().with_metrics(sink.clone());
        let plain = discover(&table, &table.all_rows(), &plain_cfg, &space);
        let metered = discover(&table, &table.all_rows(), &metered_cfg, &space);
        match (plain, metered) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.rules.len(), b.rules.len());
                prop_assert_eq!(a.stats.models_trained, b.stats.models_trained);
                let m = &b.metrics;
                prop_assert_eq!(
                    m.count("queue", "pops"),
                    Some(b.stats.partitions_explored as u64)
                );
                prop_assert_eq!(
                    m.count("fits", "moments_solves").unwrap()
                        + m.count("fits", "declined_singular").unwrap()
                        + m.count("fits", "rescans").unwrap(),
                    b.stats.models_trained as u64
                );
                prop_assert_eq!(
                    m.count("budget", "drained_partitions"),
                    Some(b.stats.drained_partitions as u64)
                );
            }
            (Err(a), Err(b)) => {
                // Same typed error with or without instrumentation.
                prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
            }
            (a, b) => {
                prop_assert!(false, "instrumentation changed the outcome: {a:?} vs {b:?}");
            }
        }
    }
}
