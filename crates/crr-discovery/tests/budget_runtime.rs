//! Integration tests for the budgeted, fault-tolerant discovery runtime:
//! real dataset, real deadline, real threads. The contract under test is
//! *anytime-with-guarantees* — whatever trips (deadline, fit cap,
//! cancellation), discovery returns a ruleset that still covers every row,
//! tagged with the reason it stopped. It never hangs and never panics.

// Test harness: panicking on malformed fixtures is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use crr_data::{RowSet, Table};
use crr_datasets::{electricity, GenConfig};
use crr_discovery::{
    Budget, CancelToken, DiscoveryConfig, DiscoveryOutcome, DiscoverySession, FaultPlan,
    MetricsSink, PredicateGen, PredicateSpace, ShardedDiscovery,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Single-shard run through the session front door.
fn discover(
    t: &Table,
    rows: &RowSet,
    cfg: &DiscoveryConfig,
    space: &PredicateSpace,
) -> crr_discovery::Result<ShardedDiscovery> {
    DiscoverySession::on(t)
        .rows(rows.clone())
        .predicates(space.clone())
        .config(cfg.clone())
        .run()
}

fn electricity_instance(rows: usize) -> (Table, DiscoveryConfig, PredicateSpace) {
    let ds = electricity(&GenConfig { rows, seed: 11 });
    let minute = ds.table.attr("minute").unwrap();
    let target = ds.table.attr(ds.default_target).unwrap();
    let space = PredicateGen::binary(16).generate(&ds.table, &[minute], target, 3);
    let cfg = DiscoveryConfig::new(vec![minute], target, 0.2);
    (ds.table, cfg, space)
}

/// The headline acceptance test: a 1 ms deadline on the electricity
/// dataset returns promptly with a non-empty partial ruleset tagged
/// `DeadlineExceeded`, and every row stays covered.
#[test]
fn one_ms_deadline_on_electricity_degrades_gracefully() {
    let (table, cfg, space) = electricity_instance(20_000);
    let cfg = cfg
        .with_budget(Budget::unlimited().with_deadline(Duration::from_millis(1)))
        .with_metrics(MetricsSink::enabled());
    let started = Instant::now();
    let d = discover(&table, &table.all_rows(), &cfg, &space).unwrap();
    // "Never hangs": a 1 ms budget must not take seconds. The bound is
    // loose because one in-flight fit may finish after the deadline.
    assert!(started.elapsed() < Duration::from_secs(10));
    assert_eq!(d.outcome, DiscoveryOutcome::DeadlineExceeded);
    assert!(!d.rules.is_empty(), "partial ruleset must not be empty");
    assert!(d.stats.drained_partitions >= 1);
    assert!(
        d.rules.uncovered(&table, &table.all_rows()).is_empty(),
        "degraded runs keep the coverage guarantee"
    );
    // The metrics ledger records the degradation exactly as stats saw it.
    let m = &d.metrics;
    assert_eq!(m.count("budget", "deadline_trips"), Some(1));
    assert_eq!(
        m.count("budget", "drained_partitions"),
        Some(d.stats.drained_partitions as u64)
    );
    assert_eq!(
        m.count("budget", "drained_rows"),
        Some(d.stats.drained_rows as u64)
    );
    assert!(m.count("budget", "checks").unwrap() >= 1);
    assert!(m.secs("phases", "drain_secs").unwrap() > 0.0);
}

/// The same instance without a budget completes and reports so.
#[test]
fn unbudgeted_electricity_run_completes() {
    let (table, cfg, space) = electricity_instance(4_000);
    let d = discover(&table, &table.all_rows(), &cfg, &space).unwrap();
    assert!(d.outcome.is_complete());
    assert_eq!(d.stats.drained_partitions, 0);
    assert!(d.rules.uncovered(&table, &table.all_rows()).is_empty());
}

/// A fit cap produces a partial-but-covering ruleset tagged
/// `BudgetExhausted`, with the cap honored.
#[test]
fn fit_cap_on_electricity_respects_the_cap() {
    let (table, cfg, space) = electricity_instance(8_000);
    let cfg = cfg.with_budget(Budget::unlimited().with_max_fits(3));
    let d = discover(&table, &table.all_rows(), &cfg, &space).unwrap();
    assert_eq!(d.outcome, DiscoveryOutcome::BudgetExhausted);
    // The cap is checked at each pop, so at most one fit past the limit.
    assert!(d.stats.models_trained <= 4, "stats: {:?}", d.stats);
    assert!(d.rules.uncovered(&table, &table.all_rows()).is_empty());
}

/// Cancellation from another thread stops a run whose fits are
/// artificially slow, and the partial result still covers every row.
#[test]
fn cancellation_from_another_thread_stops_the_run() {
    let (table, cfg, space) = electricity_instance(6_000);
    let token = CancelToken::new();
    let cfg = cfg
        .with_cancel(token.clone())
        // Slow solver: every fit sleeps, so the run is mid-flight when the
        // canceller fires regardless of machine speed.
        .with_faults(Arc::new(
            FaultPlan::new().delay_fits(Duration::from_millis(20)),
        ));
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            token.cancel();
        })
    };
    let d = discover(&table, &table.all_rows(), &cfg, &space).unwrap();
    canceller.join().unwrap();
    assert_eq!(d.outcome, DiscoveryOutcome::Cancelled);
    assert!(d.rules.uncovered(&table, &table.all_rows()).is_empty());
}

/// A fit cap trips as a `budget.exhaustion_trips` event in the metrics,
/// and the fit-engine counters stay consistent on the degraded path.
#[test]
fn exhaustion_trip_is_recorded_in_metrics() {
    let (table, cfg, space) = electricity_instance(8_000);
    let cfg = cfg
        .with_budget(Budget::unlimited().with_max_fits(3))
        .with_metrics(MetricsSink::enabled());
    let d = discover(&table, &table.all_rows(), &cfg, &space).unwrap();
    assert_eq!(d.outcome, DiscoveryOutcome::BudgetExhausted);
    let m = &d.metrics;
    assert_eq!(m.count("budget", "exhaustion_trips"), Some(1));
    assert_eq!(m.count("budget", "deadline_trips"), Some(0));
    assert_eq!(m.count("budget", "cancellations"), Some(0));
    let trained = m.count("fits", "moments_solves").unwrap()
        + m.count("fits", "declined_singular").unwrap()
        + m.count("fits", "rescans").unwrap();
    assert_eq!(trained, d.stats.models_trained as u64);
}
