//! CRR discovery — the paper's §V.
//!
//! The front door is [`DiscoverySession`]: a builder owning the table,
//! rows, predicate space, config, budget, metrics sink and shard spec.
//! Two phases underneath, matching the paper's two algorithms:
//!
//! 1. **Searching with model sharing** (Algorithm 1): a
//!    top-down refinement over conjunctions, kept in a priority queue
//!    ordered by the *sharing index* `ind(C)` — the estimated probability
//!    that an already-trained model fits the partition. Before training
//!    anything on a partition `D_C`, the algorithm tries every model in the
//!    shared pool `ℱ` with an output shift `δ₀ = (max r + min r)/2`
//!    (Proposition 6); only when no model fits within `ρ_M` is a new model
//!    trained, and only when that also fails is the condition split.
//!
//! 2. **Compaction with inference** ([`compact`], Algorithm 2): rules whose
//!    models are translations of one another (`f₂(X) = f₁(X + Δ) + δ`,
//!    Proposition 5) are rewritten onto one representative model
//!    (built-ins composed per Proposition 9), then rules with the same
//!    model are merged by Generalization + Fusion into a single rule with a
//!    DNF condition.
//!
//! Supporting pieces: predicate generation in the three styles of
//! Table III ([`predicates`]), queue-ordering strategies of Table IV
//! ([`QueueOrder`]), χ²-based condition post-pruning (the paper's §VII
//! future-work note, [`pruning`]) and multi-target parallel discovery
//! ([`parallel`]).
//!
//! The runtime is *budgeted and fault-tolerant*: a [`Budget`] (wall-clock
//! deadline, expansion cap, fit cap) and a [`CancelToken`] are observed at
//! each queue pop, and a tripped limit degrades gracefully — still-queued
//! partitions are covered with constant fallbacks so Problem 1's coverage
//! guarantee survives, and the result is tagged with a
//! [`DiscoveryOutcome`]. Panicking fits are isolated per task in
//! [`DiscoverySession::run_all`], and the [`faults`] module injects
//! failures deterministically to prove every degradation path under test.
//!
//! Large instances can be *sharded* ([`sharded`], [`crr_data::ShardSpec`]):
//! a typed spec — `ShardSpec::by_key(attr).quantile().shards(4)`, or
//! `.auto()` to let the cost-based planner pick the count — is resolved
//! into balanced shards; Algorithm 1 runs per shard — concurrently,
//! largest shards first, probing a frozen cross-shard model pool published
//! by the seed shard, with idle workers stolen to fan a straggler's probe
//! scans — and per-shard rule sets are merged by Algorithm 2, with
//! per-shard sufficient statistics combined instead of refit.
//!
//! Every run can be *observed*: attach a [`MetricsSink`] (from the
//! zero-dependency `crr-obs` crate) via [`DiscoveryConfig::with_metrics`]
//! and the run freezes a [`MetricsSnapshot`] of queue, pool, fit-engine,
//! budget and fault counters plus per-phase wall time into
//! [`Discovery::metrics`]. Recording is write-only — instrumented runs
//! produce byte-identical rule sets — and the no-op default sink costs one
//! branch per event.
//!
//! # Example
//!
//! ```
//! use crr_datasets::{tax, GenConfig};
//! use crr_discovery::prelude::*;
//! use crr_discovery::PredicateGen;
//!
//! let ds = tax(&GenConfig { rows: 400, seed: 1 });
//! let target = ds.table.attr("tax").unwrap();
//! let salary = ds.table.attr("salary").unwrap();
//! let state = ds.table.attr("state").unwrap();
//! let space = PredicateGen::binary(8).generate(&ds.table, &[salary, state], target, 7);
//! let cfg = DiscoveryConfig::new(vec![salary], target, 2.0);
//! let result = DiscoverySession::on(&ds.table)
//!     .predicates(space)
//!     .config(cfg)
//!     .run()
//!     .unwrap();
//! // Every tuple is covered (Problem 1) ...
//! assert!(result.rules.uncovered(&ds.table, &ds.table.all_rows()).is_empty());
//! // ... by fewer distinct shared models than rules.
//! assert!(result.rules.num_distinct_models() <= result.rules.len());
//! ```
//!
//! # Example: a budgeted, metered run
//!
//! ```
//! use crr_datasets::{tax, GenConfig};
//! use crr_discovery::prelude::*;
//! use crr_discovery::PredicateGen;
//!
//! let ds = tax(&GenConfig { rows: 400, seed: 1 });
//! let target = ds.table.attr("tax").unwrap();
//! let salary = ds.table.attr("salary").unwrap();
//! let state = ds.table.attr("state").unwrap();
//! let space = PredicateGen::binary(8).generate(&ds.table, &[salary, state], target, 7);
//!
//! let sink = MetricsSink::enabled();
//! let cfg = DiscoveryConfig::new(vec![salary], target, 2.0);
//! let result = DiscoverySession::on(&ds.table)
//!     .predicates(space)
//!     .config(cfg)
//!     .budget(Budget::unlimited().with_max_fits(500))
//!     .metrics(sink.clone())
//!     .run()
//!     .unwrap();
//!
//! // The frozen snapshot travels with the result ...
//! let m = &result.metrics;
//! assert_eq!(m.count("queue", "pops"), Some(result.stats.partitions_explored as u64));
//! // ... every trained model came from a moments solve or a fallback,
//! // never a row rescan (the default engine is FitEngine::Moments) ...
//! assert_eq!(m.count("fits", "rescans"), Some(0));
//! // ... and it serializes to JSON without serde.
//! assert!(m.to_json(0).contains("\"pool\""));
//! # assert!(result.outcome.is_complete());
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
mod budget;
mod compaction;
mod config;
mod error;
pub mod faults;
pub mod parallel;
pub mod predicates;
pub mod pruning;
mod search;
mod session;
pub mod sharded;

pub use artifact::{RegionOrigin, RepairObligations, RepairRegion, RuleSetArtifact};
pub use budget::{Budget, CancelToken, DiscoveryOutcome};
pub use compaction::{compact, compact_on_data, CompactionStats};
pub use config::{DiscoveryConfig, FitEngine, QueueOrder, ScanKernel, SplitStrategy};
pub use error::DiscoveryError;
pub use faults::{inject_dirty_cells, FaultPlan};
pub use parallel::Task;
pub use predicates::{PredicateGen, PredicateSpace};
pub use search::{share_fit_rows, share_fit_snapshot, Discovery, DiscoveryStats};
pub use session::DiscoverySession;
pub use sharded::{
    guard_predicates, PlanBoundary, ProofObligations, ShardGuard, ShardOutcome, ShardedDiscovery,
};
// Shard specs live in crr-data (they cut tables, not searches); re-exported
// so sharded sessions need only this crate. `ShardPlan` stays exported as
// the planner's output type (`ShardSpec` is the only way to build one).
pub use crr_data::{
    balance_permille, Boundary, PlannerCost, Shard, ShardBounds, ShardCount, ShardPlan, ShardSpec,
};
// Observability surface, re-exported so callers configuring a metered run
// need only this crate.
pub use crr_obs::{MetricsSink, MetricsSnapshot};

/// The session-first import surface: everything a typical discovery run
/// touches, one `use crr_discovery::prelude::*;` away.
pub mod prelude {
    pub use crate::artifact::RuleSetArtifact;
    pub use crate::budget::{Budget, CancelToken, DiscoveryOutcome};
    pub use crate::config::{DiscoveryConfig, FitEngine, QueueOrder, ScanKernel, SplitStrategy};
    pub use crate::error::DiscoveryError;
    pub use crate::faults::FaultPlan;
    pub use crate::session::DiscoverySession;
    pub use crate::sharded::{ShardOutcome, ShardedDiscovery};
    pub use crr_data::{Boundary, ShardCount, ShardSpec};
    pub use crr_obs::{MetricsSink, MetricsSnapshot};
}

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, DiscoveryError>;
