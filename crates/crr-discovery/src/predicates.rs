//! Predicate-space generation — the three styles compared in Table III.
//!
//! The paper's default (§VI-A2): for each attribute domain, predicates
//! `A φ c` with `φ ∈ {>, ≤}` at *binary-separation* constants — recursive
//! midpoints, so `2ⁿ` predicates segment the domain into `2ⁿ⁻¹` sections.
//! Alternatives: *random* constants from the domain, and *expert*
//! constants supplied from ground-truth knowledge (here: the generators'
//! true segment boundaries).
//!
//! Categorical attributes always contribute equality predicates `A = v`
//! per distinct value — the natural segregation the paper uses for
//! BirdMap's birds.

use crr_core::Predicate;
use crr_data::{AttrId, AttrType, ColumnStats, RowSet, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated predicate space `ℙ`, with no predicates on the target.
///
/// Alongside the flat predicate list, the space keeps per-attribute sorted
/// constant tables so that "find *any* predicate separating this
/// partition" — the coverage-critical fallback of Algorithm 1's split step
/// — is a binary search instead of a scan over `|ℙ|`.
#[derive(Debug, Clone, Default)]
pub struct PredicateSpace {
    preds: Vec<Predicate>,
    /// Per numeric attribute: `(constant, index of an `A ≤ c`-style
    /// predicate)` sorted by constant.
    numeric_sorted: Vec<(AttrId, Vec<(f64, u32)>)>,
    /// Per categorical attribute: indices of its equality predicates.
    categorical_eq: Vec<(AttrId, Vec<u32>)>,
}

impl PredicateSpace {
    /// Wraps an explicit predicate list.
    #[allow(clippy::expect_used)] // the arm matches numeric values only
    pub fn from_predicates(preds: Vec<Predicate>) -> Self {
        let mut numeric: std::collections::BTreeMap<AttrId, Vec<(f64, u32)>> =
            std::collections::BTreeMap::new();
        let mut categorical: std::collections::BTreeMap<AttrId, Vec<u32>> =
            std::collections::BTreeMap::new();
        for (i, p) in preds.iter().enumerate() {
            match &p.value {
                Value::Int(_) | Value::Float(_) => {
                    // One entry per upper-bound-style predicate is enough:
                    // `A ≤ c` (or `A < c`) separates any partition whose
                    // values straddle c.
                    if matches!(p.op, crr_core::Op::Le | crr_core::Op::Lt) {
                        numeric
                            .entry(p.attr)
                            .or_default()
                            .push((p.value.as_f64().expect("numeric"), i as u32));
                    }
                }
                Value::Str(_) => {
                    if p.op == crr_core::Op::Eq {
                        categorical.entry(p.attr).or_default().push(i as u32);
                    }
                }
                Value::Null => {}
            }
        }
        let numeric_sorted = numeric
            .into_iter()
            .map(|(a, mut v)| {
                v.sort_unstable_by(|x, y| x.0.total_cmp(&y.0));
                (a, v)
            })
            .collect();
        let categorical_eq = categorical.into_iter().collect();
        PredicateSpace {
            preds,
            numeric_sorted,
            categorical_eq,
        }
    }

    /// Finds *some* predicate separating `rows` (both sides non-empty), or
    /// `None` when the partition is provably unsplittable by this space.
    ///
    /// Numeric attributes: compute the partition's (min, max) in one pass,
    /// then binary-search the sorted constants for one in `[min, max)` —
    /// an `A ≤ c` predicate with such a constant always separates.
    /// Categorical attributes: any equality predicate on a present value
    /// separates when at least two distinct values occur.
    pub fn separating_candidate(
        &self,
        table: &crr_data::Table,
        rows: &crr_data::RowSet,
    ) -> Option<u32> {
        for (attr, sorted) in &self.numeric_sorted {
            let col = table.column(*attr);
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for r in rows.iter() {
                if let Some(v) = col.get_f64(r) {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
            if lo >= hi {
                continue; // constant or all-null on this attribute
            }
            // First constant >= lo; separating when also < hi.
            let k = sorted.partition_point(|&(c, _)| c < lo);
            if let Some(&(c, idx)) = sorted.get(k) {
                if c < hi {
                    return Some(idx);
                }
            }
        }
        for (attr, eq_idxs) in &self.categorical_eq {
            let col = table.column(*attr);
            let mut first: Option<u32> = None;
            let mut distinct = false;
            for r in rows.iter() {
                match (first, col.get_code(r)) {
                    (_, None) => {}
                    (None, Some(code)) => first = Some(code),
                    (Some(f), Some(code)) if code != f => {
                        distinct = true;
                        break;
                    }
                    _ => {}
                }
            }
            if !distinct {
                continue;
            }
            // Any equality predicate on a value present in the partition
            // separates; try each (few categories per attribute).
            for &idx in eq_idxs {
                let p = &self.preds[idx as usize];
                let yes = rows.iter().filter(|&r| p.eval(table, r)).count();
                if yes > 0 && yes < rows.len() {
                    return Some(idx);
                }
            }
        }
        None
    }

    /// The predicates, in generation order.
    pub fn predicates(&self) -> &[Predicate] {
        &self.preds
    }

    /// `|ℙ|`.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True when the space is empty.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// True when some predicate mentions `attr`.
    pub fn mentions(&self, attr: AttrId) -> bool {
        self.preds.iter().any(|p| p.attr == attr)
    }

    /// Confines the space to one shard of a key-partitioned instance:
    /// drops every predicate on the shard-key attribute that is *constant*
    /// over the shard's rows — always-false ones (the key interval lies
    /// entirely outside the constant) and always-true ones alike. A
    /// constant predicate can never separate a partition, so Algorithm 1
    /// never places it in a rule condition; dropping it changes no
    /// discovered rule, only the per-split candidate scans the shard pays.
    ///
    /// Membership is exact (see [`crr_data::ShardBounds`]): an interval
    /// shard holds exactly the rows with a finite key in `[lo, hi)`, the
    /// null shard exactly the rows with a null key — on which every
    /// comparison is false and the unary null tests are constant too.
    ///
    /// Returns `None` when every predicate survives, so callers keep the
    /// original space (and its indices) without a rebuild. The full-range
    /// shard of a one-shard plan always lands here: nothing is out of
    /// range, which is what keeps the single-shard path byte-identical to
    /// classic discovery.
    pub fn confined_to(&self, bounds: &crr_data::ShardBounds) -> Option<PredicateSpace> {
        use crr_core::Op;
        let constant_on_shard = |p: &Predicate| -> bool {
            if p.attr != bounds.attr {
                return false;
            }
            if bounds.null_keys {
                // Null keys satisfy no comparison; IS [NOT] NULL is
                // uniform across the shard. Every key predicate is
                // constant here.
                return true;
            }
            if matches!(p.op, Op::IsNull | Op::NotNull) {
                // Interval shards hold finite keys only: IS NULL is
                // always false, IS NOT NULL always true.
                return true;
            }
            let c = match &p.value {
                Value::Int(v) => *v as f64,
                Value::Float(v) => *v,
                // A string or null constant against the numeric key is
                // degenerate; leave it alone.
                _ => return false,
            };
            if !c.is_finite() {
                return false;
            }
            // Keys lie in [lo, hi). `A < c` and `A ≥ c` are constant
            // already at c == lo; the rest need c strictly below it.
            let strict = matches!(p.op, Op::Lt | Op::Ge);
            let under = bounds
                .lo
                .map(|l| if strict { c <= l } else { c < l })
                .unwrap_or(false);
            let over = bounds.hi.map(|h| c >= h).unwrap_or(false);
            under || over
        };
        if self.preds.iter().any(&constant_on_shard) {
            let kept: Vec<Predicate> = self
                .preds
                .iter()
                .filter(|p| !constant_on_shard(p))
                .cloned()
                .collect();
            Some(PredicateSpace::from_predicates(kept))
        } else {
            None
        }
    }
}

/// A predicate-space generator (Table III's Expert / Binary / Random).
#[derive(Debug, Clone)]
pub enum PredicateGen {
    /// Recursive binary separation of each numeric domain with `per_attr`
    /// split constants (rounded up to a power-of-two tree).
    Binary {
        /// Number of split constants per numeric attribute.
        per_attr: usize,
    },
    /// `per_attr` uniform-random constants per numeric attribute.
    Random {
        /// Number of split constants per numeric attribute.
        per_attr: usize,
    },
    /// Explicit per-attribute split constants from domain knowledge.
    Expert {
        /// `(attribute name, boundary constants)` pairs.
        boundaries: Vec<(String, Vec<f64>)>,
    },
}

impl PredicateGen {
    /// Binary generator with `per_attr` constants.
    pub fn binary(per_attr: usize) -> Self {
        PredicateGen::Binary { per_attr }
    }

    /// Random generator with `per_attr` constants.
    pub fn random(per_attr: usize) -> Self {
        PredicateGen::Random { per_attr }
    }

    /// Expert generator from `(attr, boundaries)` pairs.
    pub fn expert(boundaries: Vec<(String, Vec<f64>)>) -> Self {
        PredicateGen::Expert { boundaries }
    }

    /// Generates the predicate space over `condition_attrs`, excluding
    /// `target` (Definition 1 forbids conditions on `Y`). Numeric
    /// attributes receive `>`/`≤` pairs at the generator's constants;
    /// categorical attributes receive `=` per distinct value.
    pub fn generate(
        &self,
        table: &Table,
        condition_attrs: &[AttrId],
        target: AttrId,
        seed: u64,
    ) -> PredicateSpace {
        let mut preds = Vec::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let all = table.all_rows();
        for &attr in condition_attrs {
            if attr == target {
                continue;
            }
            match table.schema().attribute(attr).ty() {
                AttrType::Str => {
                    if let Some(dict) = table.column(attr).dict() {
                        for v in dict {
                            preds.push(Predicate::eq(attr, Value::Str(v.clone())));
                        }
                    }
                }
                AttrType::Int | AttrType::Float => {
                    let stats = ColumnStats::compute(table, attr, &all);
                    let (Some(lo), Some(hi)) = (stats.min, stats.max) else {
                        continue;
                    };
                    if hi <= lo {
                        continue;
                    }
                    let constants = match self {
                        PredicateGen::Binary { per_attr } => binary_constants(lo, hi, *per_attr),
                        PredicateGen::Random { per_attr } => {
                            (0..*per_attr).map(|_| rng.gen_range(lo..hi)).collect()
                        }
                        PredicateGen::Expert { boundaries } => {
                            let name = table.schema().attribute(attr).name();
                            boundaries
                                .iter()
                                .find(|(n, _)| n == name)
                                .map(|(_, b)| {
                                    b.iter().copied().filter(|c| *c > lo && *c < hi).collect()
                                })
                                .unwrap_or_else(|| binary_constants(lo, hi, 4))
                        }
                    };
                    for c in constants {
                        let v = constant_value(table, attr, c);
                        preds.push(Predicate::gt(attr, v.clone()));
                        preds.push(Predicate::le(attr, v));
                    }
                }
            }
        }
        PredicateSpace::from_predicates(preds)
    }
}

/// Recursive-midpoint constants: level-order midpoints of `[lo, hi]`, i.e.
/// 1/2, then 1/4 and 3/4, then eighths, … — the "binary separation" of
/// §VI-D2. Returns the first `count` constants.
fn binary_constants(lo: f64, hi: f64, count: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(count);
    let mut denom = 2usize;
    'outer: loop {
        for num in (1..denom).step_by(2) {
            if out.len() >= count {
                break 'outer;
            }
            out.push(lo + (hi - lo) * num as f64 / denom as f64);
        }
        denom *= 2;
        if denom > 1 << 20 {
            break; // domain exhausted at float resolution
        }
    }
    out
}

/// Types the constant like the column (so int columns get int predicates).
fn constant_value(table: &Table, attr: AttrId, c: f64) -> Value {
    match table.schema().attribute(attr).ty() {
        AttrType::Int => Value::Int(c.round() as i64),
        _ => Value::Float(c),
    }
}

/// A "natural segregation" helper (§VI-C1): the equality predicates of one
/// categorical attribute, e.g. one per bird.
pub fn category_predicates(table: &Table, attr: AttrId) -> Vec<Predicate> {
    table
        .column(attr)
        .dict()
        .map(|dict| {
            dict.iter()
                .map(|v| Predicate::eq(attr, Value::Str(v.clone())))
                .collect()
        })
        .unwrap_or_default()
}

/// Evaluates how many rows of `rows` satisfy `p` — used by tests and split
/// diagnostics.
pub fn selectivity(table: &Table, rows: &RowSet, p: &Predicate) -> usize {
    rows.iter().filter(|&r| p.eval(table, r)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crr_data::Schema;

    fn table() -> Table {
        let schema = Schema::new(vec![
            ("v", AttrType::Float),
            ("d", AttrType::Int),
            ("s", AttrType::Str),
            ("y", AttrType::Float),
        ]);
        let mut t = Table::new(schema);
        for i in 0..16 {
            t.push_row(vec![
                Value::Float(i as f64),
                Value::Int(i * 10),
                Value::str(if i % 2 == 0 { "a" } else { "b" }),
                Value::Float(i as f64 * 2.0),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn binary_constants_are_level_order_midpoints() {
        let c = binary_constants(0.0, 16.0, 7);
        assert_eq!(c, vec![8.0, 4.0, 12.0, 2.0, 6.0, 10.0, 14.0]);
    }

    #[test]
    fn binary_generation_pairs_gt_le() {
        let t = table();
        let v = t.attr("v").unwrap();
        let y = t.attr("y").unwrap();
        let space = PredicateGen::binary(3).generate(&t, &[v], y, 0);
        // 3 constants × 2 operators.
        assert_eq!(space.len(), 6);
        let ops: Vec<_> = space.predicates().iter().map(|p| p.op).collect();
        assert_eq!(ops.iter().filter(|o| **o == crr_core::Op::Gt).count(), 3);
    }

    #[test]
    fn int_columns_get_int_constants() {
        let t = table();
        let d = t.attr("d").unwrap();
        let y = t.attr("y").unwrap();
        let space = PredicateGen::binary(1).generate(&t, &[d], y, 0);
        assert!(matches!(space.predicates()[0].value, Value::Int(_)));
    }

    #[test]
    fn categorical_attrs_get_equalities() {
        let t = table();
        let s = t.attr("s").unwrap();
        let y = t.attr("y").unwrap();
        let space = PredicateGen::binary(4).generate(&t, &[s], y, 0);
        assert_eq!(space.len(), 2); // "a" and "b"
        assert!(space.predicates().iter().all(|p| p.op == crr_core::Op::Eq));
    }

    #[test]
    fn target_is_excluded() {
        let t = table();
        let v = t.attr("v").unwrap();
        let y = t.attr("y").unwrap();
        let space = PredicateGen::binary(2).generate(&t, &[v, y], y, 0);
        assert!(!space.mentions(y));
        assert!(space.mentions(v));
    }

    #[test]
    fn random_constants_lie_in_domain() {
        let t = table();
        let v = t.attr("v").unwrap();
        let y = t.attr("y").unwrap();
        let space = PredicateGen::random(10).generate(&t, &[v], y, 7);
        for p in space.predicates() {
            let c = p.value.as_f64().unwrap();
            assert!((0.0..15.0).contains(&c));
        }
        // Deterministic per seed.
        let again = PredicateGen::random(10).generate(&t, &[v], y, 7);
        assert_eq!(space.predicates(), again.predicates());
    }

    #[test]
    fn expert_uses_supplied_boundaries() {
        let t = table();
        let v = t.attr("v").unwrap();
        let y = t.attr("y").unwrap();
        let gen = PredicateGen::expert(vec![("v".into(), vec![3.5, 7.5, 99.0])]);
        let space = gen.generate(&t, &[v], y, 0);
        // 99.0 is outside the domain and dropped; 2 constants × 2 ops.
        assert_eq!(space.len(), 4);
        let consts: Vec<f64> = space
            .predicates()
            .iter()
            .map(|p| p.value.as_f64().unwrap())
            .collect();
        assert!(consts.contains(&3.5) && consts.contains(&7.5));
    }

    #[test]
    fn selectivity_counts_matches() {
        let t = table();
        let v = t.attr("v").unwrap();
        let p = Predicate::le(v, Value::Float(7.0));
        assert_eq!(selectivity(&t, &t.all_rows(), &p), 8);
    }

    #[test]
    fn category_predicates_cover_dict() {
        let t = table();
        let s = t.attr("s").unwrap();
        assert_eq!(category_predicates(&t, s).len(), 2);
    }
}
