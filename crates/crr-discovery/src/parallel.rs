//! Multi-target parallel discovery (used by the column-scalability
//! experiment, Figure 7: "we find CRRs for all attributes").
//!
//! Discovery runs are independent per target, so this is a straightforward
//! scoped-thread fan-out over the same immutable table — no channels, one
//! mutex-guarded (but uncontended) result slot per target. Each task is
//! panic-isolated: a
//! poisoned fit (solver bug, injected fault) becomes that task's
//! [`DiscoveryError::TaskPanicked`] while every other target completes
//! normally.

use crate::search::run_search;
use crate::{Discovery, DiscoveryConfig, DiscoveryError, PredicateSpace, Result};
use crr_data::{RowSet, Table};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// One discovery task: a configuration plus its predicate space.
#[derive(Debug, Clone)]
pub struct Task {
    /// Discovery configuration (target, inputs, ρ_M, family, …).
    pub config: DiscoveryConfig,
    /// Predicate space for this target.
    pub space: PredicateSpace,
}

/// Runs every task over the same `rows` of `table`, in parallel with up to
/// `threads` workers (1 = sequential). Results come back in task order.
/// The body behind [`crate::DiscoverySession::run_all`].
pub(crate) fn discover_all(
    table: &Table,
    rows: &RowSet,
    tasks: &[Task],
    threads: usize,
) -> Vec<Result<Discovery>> {
    if threads <= 1 || tasks.len() <= 1 {
        return tasks
            .iter()
            .enumerate()
            .map(|(i, t)| run_isolated(table, rows, t, i))
            .collect();
    }
    // One mutex-guarded slot per task: each index is claimed (and so
    // written) exactly once, so the locks never contend — they only make
    // the disjoint-index writes safe without raw pointers.
    let slots: Vec<Mutex<Option<Result<Discovery>>>> =
        tasks.iter().map(|_| Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        // Work-stealing over a shared index: each worker claims the next
        // unprocessed task until none remain.
        let (next, slots) = (&next, &slots);
        for _ in 0..threads.min(tasks.len()) {
            scope.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= tasks.len() {
                    break;
                }
                let out = run_isolated(table, rows, &tasks[i], i);
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            let r = slot.into_inner().unwrap_or_else(|e| e.into_inner());
            r.unwrap_or_else(|| {
                // Unreachable: the claim loop covers every index. Typed
                // error rather than panic, to honor the isolation contract.
                Err(DiscoveryError::TaskPanicked {
                    task: i,
                    message: "result slot never written".to_string(),
                })
            })
        })
        .collect()
}

/// Runs one task, converting a panic anywhere inside `discover` (a
/// poisoned solver, an injected fault) into that task's
/// [`DiscoveryError::TaskPanicked`]. `discover` only reads the shared
/// table and a panicking run's partial state is discarded wholesale, so
/// resuming after the unwind is sound.
fn run_isolated(table: &Table, rows: &RowSet, task: &Task, index: usize) -> Result<Discovery> {
    catch_unwind(AssertUnwindSafe(|| {
        run_search(table, rows, &task.config, &task.space, None).map(|r| r.discovery)
    }))
    .unwrap_or_else(|payload| {
        task.config.metrics.incr(crr_obs::Counter::TaskPanics);
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        Err(DiscoveryError::TaskPanicked {
            task: index,
            message,
        })
    })
}

/// Parallel first-match scan with early termination — the engine behind the
/// shared-pool probe of Algorithm 1's lines 7–10 when
/// [`crate::DiscoveryConfig::pool_scan_threads`] > 1.
///
/// Evaluates `eval(i)` for `i < count` across up to `threads` scoped
/// workers; `eval` returns `(payload, matched)`. Returns the lowest matched
/// index (the same one a sequential first-fit scan would pick) plus the
/// payload slots. Determinism contract: every index `i ≤ winner` is
/// guaranteed to have been fully evaluated, so aggregates over that prefix
/// (the sharing index `ind(C)`) are byte-identical to a sequential scan.
/// Indices *above* the winner may be skipped (`None`) or evaluated and
/// discarded — callers must ignore them, as the sequential scan never looks
/// past its first fit either.
pub(crate) fn first_match_scan<R: Send>(
    count: usize,
    threads: usize,
    eval: impl Fn(usize) -> (R, bool) + Sync,
) -> (Option<usize>, Vec<Option<R>>) {
    let mut results: Vec<Option<R>> = (0..count).map(|_| None).collect();
    if threads <= 1 || count <= 1 {
        for (i, slot) in results.iter_mut().enumerate() {
            let (r, matched) = eval(i);
            *slot = Some(r);
            if matched {
                return (Some(i), results);
            }
        }
        return (None, results);
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    let next = AtomicUsize::new(0);
    let first = AtomicUsize::new(usize::MAX);
    // Mutex-per-slot for the same reason as `discover_all`: indices are
    // claimed exactly once, so the locks are uncontended bookkeeping.
    let slots: Vec<Mutex<Option<R>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let (next, first, slots, eval) = (&next, &first, &slots, &eval);
        for _ in 0..threads.min(count) {
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                // Claims are monotonically increasing and the winner index
                // only ever decreases, so once a claim lands above the
                // current winner this worker can never claim a useful index
                // again.
                if i >= count || i > first.load(Ordering::Acquire) {
                    break;
                }
                let (r, matched) = eval(i);
                if matched {
                    first.fetch_min(i, Ordering::AcqRel);
                }
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            });
        }
    });
    for (slot, out) in slots.into_iter().zip(results.iter_mut()) {
        *out = slot.into_inner().unwrap_or_else(|e| e.into_inner());
    }
    let w = first.load(std::sync::atomic::Ordering::Acquire);
    ((w != usize::MAX).then_some(w), results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PredicateGen;
    use crr_core::LocateStrategy;
    use crr_data::{AttrType, Schema, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ("x", AttrType::Float),
            ("y1", AttrType::Float),
            ("y2", AttrType::Float),
            ("y3", AttrType::Float),
        ]);
        let mut t = Table::new(schema);
        for i in 0..150 {
            let x = i as f64;
            t.push_row(vec![
                Value::Float(x),
                Value::Float(2.0 * x),
                Value::Float(if x < 75.0 { x } else { x + 30.0 }),
                Value::Float(-x + 5.0),
            ])
            .unwrap();
        }
        t
    }

    fn tasks(t: &Table) -> Vec<Task> {
        let x = t.attr("x").unwrap();
        ["y1", "y2", "y3"]
            .iter()
            .map(|name| {
                let target = t.attr(name).unwrap();
                Task {
                    config: DiscoveryConfig::new(vec![x], target, 0.5),
                    space: PredicateGen::binary(7).generate(t, &[x], target, 1),
                }
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let t = table();
        let ts = tasks(&t);
        let seq = discover_all(&t, &t.all_rows(), &ts, 1);
        let par = discover_all(&t, &t.all_rows(), &ts, 4);
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
            assert_eq!(s.rules.len(), p.rules.len());
            for (rs, rp) in s.rules.rules().iter().zip(p.rules.rules()) {
                assert_eq!(rs.condition(), rp.condition());
            }
        }
    }

    #[test]
    fn all_targets_covered_and_accurate() {
        let t = table();
        let results = discover_all(&t, &t.all_rows(), &tasks(&t), 3);
        for r in results {
            let d = r.unwrap();
            assert!(d.rules.uncovered(&t, &t.all_rows()).is_empty());
            let rep = d.rules.evaluate(&t, &t.all_rows(), LocateStrategy::First);
            assert!(rep.rmse < 1e-9);
        }
    }

    #[test]
    fn panicking_task_is_isolated() {
        use crate::FaultPlan;
        use crr_obs::MetricsSink;
        use std::sync::Arc;
        let t = table();
        let mut ts = tasks(&t);
        // Poison the middle task: its very first fit panics.
        ts[1].config.faults = Some(Arc::new(FaultPlan::new().panic_fit_every(1)));
        let sink = MetricsSink::enabled();
        ts[1].config.metrics = sink.clone();
        for threads in [1, 3] {
            let results = discover_all(&t, &t.all_rows(), &ts, threads);
            assert_eq!(results.len(), 3);
            match &results[1] {
                Err(DiscoveryError::TaskPanicked { task: 1, message }) => {
                    assert!(message.contains("injected fit panic"), "{message}");
                }
                other => panic!("expected TaskPanicked, got {other:?}"),
            }
            // Sibling targets are untouched by the poisoned task.
            for i in [0, 2] {
                let d = results[i].as_ref().unwrap();
                assert!(d.outcome.is_complete());
                assert!(d.rules.uncovered(&t, &t.all_rows()).is_empty());
            }
        }
        // Both runs (sequential and 3-thread) hit the catch_unwind branch.
        let snap = sink.snapshot();
        assert_eq!(snap.count("faults", "task_panics"), Some(2));
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let t = table();
        let results = discover_all(&t, &t.all_rows(), &tasks(&t)[..1], 8);
        assert_eq!(results.len(), 1);
        assert!(results[0].is_ok());
    }
}
