//! Algorithm 2: CRR compaction with inference.
//!
//! Input: the (conjunction-conditioned) rules of Algorithm 1, or any rule
//! set such as an exported regression tree. Output: an equivalent, smaller
//! set in which every translation-equivalence class of models is
//! represented once and all its conditions are fused into one DNF.
//!
//! Phase 1 — **rule translation** (lines 3–11): for each rule `φ` popped
//! from the queue, every other rule `φ'` whose model satisfies
//! `f'(X) = f(X + Δ) + δ` is rewritten onto `f`: each conjunction of `ℂ'`
//! composes `(Δ, δ)` into its built-ins (Proposition 9), and `φ'` leaves
//! the queue — its whole equivalence class is already handled by `φ`.
//!
//! Phase 2 — **rule fusion** (lines 12–16): rules now sharing a model merge
//! pairwise: Generalization lifts both to `ρ'' = max(ρ, ρ')`, Fusion takes
//! `ℂ'' = ℂ ∨ ℂ'`.

use crate::Result;
use crr_core::inference::generalization;
use crr_core::{Crr, RuleSet};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counters describing one compaction run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompactionStats {
    /// Rules in the input set.
    pub rules_in: usize,
    /// Rules in the compacted set.
    pub rules_out: usize,
    /// Translation rewrites applied (phase 1).
    pub translations: usize,
    /// Fusion merges applied (phase 2).
    pub fusions: usize,
    /// Wall-clock time.
    pub time: Duration,
}

/// Runs Algorithm 2 on `rules` with model-parameter tolerance `tol`
/// (how close two fitted slopes must be to count as the same function —
/// the noise-sensitivity knob of §V-A).
///
/// Pure inference: a translation is applied whenever parameters match
/// within `tol`. With `tol > 0` a translation is *approximate*, drifting
/// by up to `tol · |X|` — safe for tiny tolerances. When compacting rules
/// fitted on noisy data, prefer [`compact_on_data`], which validates every
/// translation against the database as the paper's Algorithm 2 (whose
/// inputs include `D` and `ρ_M`) can.
pub fn compact(rules: &RuleSet, tol: f64) -> Result<(RuleSet, CompactionStats)> {
    compact_impl(rules, tol, None)
}

/// Data-validated compaction: identical to [`compact`], except a
/// translation is only committed when the rewritten rule still predicts
/// every covered row of `table`/`rows` within `rho_max` — rejecting
/// almost-equal-slope rewrites whose drift would exceed the paper's
/// maximum bias. The rewritten rule's `ρ` is re-measured on data.
pub fn compact_on_data(
    rules: &RuleSet,
    tol: f64,
    rho_max: f64,
    table: &crr_data::Table,
    rows: &crr_data::RowSet,
) -> Result<(RuleSet, CompactionStats)> {
    compact_impl(rules, tol, Some((table, rows, rho_max)))
}

fn compact_impl(
    rules: &RuleSet,
    tol: f64,
    validate: Option<(&crr_data::Table, &crr_data::RowSet, f64)>,
) -> Result<(RuleSet, CompactionStats)> {
    let start = Instant::now();
    let mut stats = CompactionStats {
        rules_in: rules.len(),
        ..Default::default()
    };

    // Working set Σ*, phase 1. The queue holds indices into `work`.
    let mut work: Vec<Option<Crr>> = rules.rules().iter().cloned().map(Some).collect();
    let mut queue: VecDeque<usize> = (0..work.len()).collect();
    let mut in_queue: Vec<bool> = vec![true; work.len()];

    while let Some(i) = queue.pop_front() {
        // Line 11: rules translated onto another class left the queue —
        // their equivalence class is already represented by the rule that
        // translated them.
        if !in_queue[i] {
            continue;
        }
        in_queue[i] = false;
        let Some(phi) = work[i].clone() else { continue };
        for j in 0..work.len() {
            if j == i {
                continue;
            }
            let Some(phi_p) = work[j].as_ref() else {
                continue;
            };
            // Line 5: f' ≠ f — identical models are phase 2's job. Both
            // tests are by reference; nothing is cloned until a
            // translation is actually found.
            if Arc::ptr_eq(phi.model(), phi_p.model())
                || phi.model().as_ref() == phi_p.model().as_ref()
            {
                continue;
            }
            // Line 6: ∃ Δ, δ s.t. f'(X) = f(X + Δ) + δ.
            if phi.inputs() != phi_p.inputs()
                || phi.target() != phi_p.target()
                || phi.model().translation_to(phi_p.model(), tol).is_none()
            {
                continue;
            }
            // Lines 8–10: rewrite φ' onto φ's model with composed built-ins.
            let mut rewritten = rewrite_onto(&phi, phi_p, tol)?;
            if let Some((table, rows, rho_max)) = validate {
                // Data-based sharing (Propositions 6–7): instead of the
                // intercept-difference witness (which drifts by (w−w')·X
                // when slopes only match within `tol`), fit the
                // per-conjunct shift δ₀ from the covered rows, then accept
                // only within ρ_M.
                match reshare_on_data(&rewritten, table, rows, rho_max) {
                    Some(valid) => rewritten = valid,
                    None => continue,
                }
            }
            work[j] = Some(rewritten);
            stats.translations += 1;
            // Line 11: φ' leaves the queue — its class is handled.
            in_queue[j] = false;
        }
    }

    // Phase 2 (lines 12–16): fuse rules sharing a model. Rules are grouped
    // by model identity first so fusing k rules costs O(k) condition
    // concatenations instead of the O(k²) of pairwise folding; the
    // pairwise inference steps (Generalization + Fusion) are preserved
    // semantically — concatenation of deduplicated conjunct lists is
    // exactly the fold of Proposition 3.
    let mut groups: Vec<(Crr, Vec<Crr>)> = Vec::new();
    'outer: for rule in work.into_iter().flatten() {
        for (rep, members) in &mut groups {
            let same = Arc::ptr_eq(rep.model(), rule.model())
                || rep.model().as_ref() == rule.model().as_ref();
            if same && rep.inputs() == rule.inputs() && rep.target() == rule.target() {
                members.push(rule);
                continue 'outer;
            }
        }
        groups.push((rule, Vec::new()));
    }
    let mut result: Vec<Crr> = Vec::with_capacity(groups.len());
    for (rep, members) in groups {
        if members.is_empty() {
            result.push(rep);
            continue;
        }
        // Line 13: Generalization to the common rho.
        let rho = members.iter().fold(rep.rho(), |acc, r| acc.max(r.rho()));
        let mut fused = generalization(&rep, rho)?;
        // Line 14: Fusion — concatenate conjuncts, deduplicating by hash.
        let mut seen: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut conjuncts: Vec<crr_core::Conjunction> = fused.condition().conjuncts().to_vec();
        for (i, c) in conjuncts.iter().enumerate() {
            seen.entry(conj_key(c)).or_default().push(i);
        }
        for member in &members {
            stats.fusions += 1;
            for c in member.condition().conjuncts() {
                let key = conj_key(c);
                let bucket = seen.entry(key).or_default();
                if bucket.iter().any(|&i| &conjuncts[i] == c) {
                    continue;
                }
                bucket.push(conjuncts.len());
                conjuncts.push(c.clone());
            }
        }
        *fused.condition_mut() = crr_core::Dnf::of(conjuncts);
        result.push(fused);
    }

    stats.rules_out = result.len();
    stats.time = start.elapsed();
    Ok((RuleSet::from_rules(result), stats))
}

/// Order-sensitive structural hash of a conjunction, for fusion dedup.
fn conj_key(c: &crr_core::Conjunction) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for p in c.preds() {
        p.attr.0.hash(&mut h);
        std::mem::discriminant(&p.op).hash(&mut h);
        match &p.value {
            crr_data::Value::Null => 0u8.hash(&mut h),
            crr_data::Value::Int(v) => {
                1u8.hash(&mut h);
                v.hash(&mut h);
            }
            crr_data::Value::Float(v) => {
                2u8.hash(&mut h);
                v.to_bits().hash(&mut h);
            }
            crr_data::Value::Str(s) => {
                3u8.hash(&mut h);
                s.hash(&mut h);
            }
        }
    }
    if let Some(b) = c.builtin() {
        for d in &b.delta_x {
            d.to_bits().hash(&mut h);
        }
        b.delta_y.to_bits().hash(&mut h);
    }
    h.finish()
}

/// Data-based re-share of `rule`'s model onto its own condition: for each
/// conjunct, the output shift is re-fitted as the midrange residual
/// `δ₀ = (max r + min r) / 2` over the rows that conjunct covers
/// (Proposition 6), and the rule's ρ is re-measured. Returns `None` when
/// any conjunct's best shift still exceeds `rho_max` (translation must be
/// rejected) or nothing is scorable.
fn reshare_on_data(
    rule: &Crr,
    table: &crr_data::Table,
    rows: &crr_data::RowSet,
    rho_max: f64,
) -> Option<Crr> {
    use crr_models::{Regressor, Translation};
    let model = Arc::clone(rule.model());
    let arity = rule.inputs().len();
    let mut condition = rule.condition().clone();
    let mut rho = 0.0f64;
    let mut scorable = false;
    let mut covered: Vec<u32> = Vec::new();
    for conj in condition.conjuncts_mut() {
        // Residuals of the raw model (ignoring the stale builtin) on the
        // rows this conjunct covers. Coverage runs on the compiled kernel
        // (compile once, blocked columnar scan); the selection is ascending
        // like `rows`, so the min/max fold visits residuals in the same
        // order the interpreted per-row loop did.
        crr_core::CompiledConjunction::compile(conj, table)
            .select_into(rows.as_slice(), &mut covered);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &r in &covered {
            let r = r as usize;
            let x: Option<Vec<f64>> = rule
                .inputs()
                .iter()
                .map(|&a| table.value_f64(r, a))
                .collect();
            let (Some(x), Some(actual)) = (x, table.value_f64(r, rule.target())) else {
                continue;
            };
            let resid = actual - model.predict(&x);
            lo = lo.min(resid);
            hi = hi.max(resid);
        }
        if !lo.is_finite() {
            continue; // conjunct covers nothing scorable; keep as-is
        }
        scorable = true;
        let delta0 = (lo + hi) / 2.0;
        let dev = (hi - lo) / 2.0;
        if dev > rho_max {
            return None;
        }
        rho = rho.max(dev);
        conj.set_builtin(Translation::output_shift(arity, delta0));
    }
    if !scorable {
        return None;
    }
    let mut out = rule.with_model(model, rho);
    *out.condition_mut() = condition;
    Some(out)
}

/// Rewrites `phi_p` to use `phi`'s model: translation inference restricted
/// to `ℂ'` (the paper's lines 8–10).
fn rewrite_onto(phi: &Crr, phi_p: &Crr, tol: f64) -> Result<Crr> {
    let t = phi
        .model()
        .translation_to(phi_p.model(), tol)
        .ok_or(crr_core::CoreError::NoTranslation)?;
    let mut condition = phi_p.condition().clone();
    let arity = phi.inputs().len();
    for c in condition.conjuncts_mut() {
        c.compose_builtin(&t, arity);
    }
    let mut rewritten = phi_p.with_model(Arc::clone(phi.model()), phi_p.rho());
    *rewritten.condition_mut() = condition;
    Ok(rewritten)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crr_core::{Conjunction, Dnf, LocateStrategy, Predicate};
    use crr_data::{AttrId, AttrType, Schema, Table, Value};
    use crr_models::{LinearModel, Model};

    fn x() -> AttrId {
        AttrId(0)
    }

    fn y() -> AttrId {
        AttrId(1)
    }

    fn table() -> Table {
        let schema = Schema::new(vec![("x", AttrType::Float), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for i in 0..200 {
            let xv = i as f64;
            let yv = if xv < 100.0 { xv } else { xv - 50.0 };
            t.push_row(vec![Value::Float(xv), Value::Float(yv)])
                .unwrap();
        }
        t
    }

    fn rule(w: f64, b: f64, rho: f64, lo: f64, hi: f64) -> Crr {
        let m = Arc::new(Model::Linear(LinearModel::new(vec![w], b)));
        let cond = Dnf::single(Conjunction::of(vec![
            Predicate::ge(x(), Value::Float(lo)),
            Predicate::lt(x(), Value::Float(hi)),
        ]));
        Crr::new(vec![x()], y(), m, rho, cond).unwrap()
    }

    #[test]
    fn translatable_rules_collapse_to_one() {
        // Same slope, different intercepts: one rule after compaction.
        let rules = RuleSet::from_rules(vec![
            rule(1.0, 0.0, 0.1, 0.0, 100.0),
            rule(1.0, -50.0, 0.1, 100.0, 200.0),
        ]);
        let (out, stats) = compact(&rules, 1e-9).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(stats.translations, 1);
        assert_eq!(stats.fusions, 1);
        assert_eq!(out.num_distinct_models(), 1);
        // Semantics preserved: same predictions everywhere.
        let t = table();
        for row in 0..t.num_rows() {
            assert_eq!(
                rules.predict(&t, row, LocateStrategy::First),
                out.predict(&t, row, LocateStrategy::First),
                "row {row}"
            );
        }
    }

    #[test]
    fn untranslatable_rules_stay_apart() {
        let rules = RuleSet::from_rules(vec![
            rule(1.0, 0.0, 0.1, 0.0, 100.0),
            rule(2.0, 0.0, 0.1, 100.0, 200.0),
        ]);
        let (out, stats) = compact(&rules, 1e-9).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(stats.translations, 0);
    }

    #[test]
    fn identical_models_fuse_without_translation() {
        let m = Arc::new(Model::Linear(LinearModel::new(vec![1.0], 0.0)));
        let mk = |lo: f64, hi: f64, rho: f64| {
            Crr::new(
                vec![x()],
                y(),
                Arc::clone(&m),
                rho,
                Dnf::single(Conjunction::of(vec![
                    Predicate::ge(x(), Value::Float(lo)),
                    Predicate::lt(x(), Value::Float(hi)),
                ])),
            )
            .unwrap()
        };
        let rules = RuleSet::from_rules(vec![mk(0.0, 10.0, 0.1), mk(20.0, 30.0, 0.3)]);
        let (out, stats) = compact(&rules, 1e-9).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(stats.fusions, 1);
        // Generalization picked the max rho.
        assert_eq!(out.rules()[0].rho(), 0.3);
        assert_eq!(out.rules()[0].condition().conjuncts().len(), 2);
    }

    #[test]
    fn chains_of_translations_compose() {
        // Three rules, intercepts 0 / -50 / -80, same slope: all collapse.
        let rules = RuleSet::from_rules(vec![
            rule(1.0, 0.0, 0.1, 0.0, 60.0),
            rule(1.0, -50.0, 0.1, 60.0, 130.0),
            rule(1.0, -80.0, 0.1, 130.0, 200.0),
        ]);
        let (out, _) = compact(&rules, 1e-9).unwrap();
        assert_eq!(out.len(), 1);
        let conjuncts = out.rules()[0].condition().conjuncts();
        assert_eq!(conjuncts.len(), 3);
        // Built-ins record each segment's offset.
        let deltas: Vec<f64> = conjuncts
            .iter()
            .map(|c| c.builtin().map_or(0.0, |b| b.delta_y))
            .collect();
        assert!(deltas.contains(&0.0));
        assert!(deltas.contains(&-50.0));
        assert!(deltas.contains(&-80.0));
    }

    #[test]
    fn compaction_is_idempotent() {
        let rules = RuleSet::from_rules(vec![
            rule(1.0, 0.0, 0.1, 0.0, 100.0),
            rule(1.0, -50.0, 0.1, 100.0, 200.0),
            rule(3.0, 1.0, 0.2, 0.0, 50.0),
        ]);
        let (once, _) = compact(&rules, 1e-9).unwrap();
        let (twice, stats) = compact(&once, 1e-9).unwrap();
        assert_eq!(once.len(), twice.len());
        assert_eq!(stats.translations + stats.fusions, 0);
    }

    #[test]
    fn data_validated_compaction_rejects_drifting_translations() {
        // Second segment's true slope is 1.01: within a loose tol of the
        // first rule's slope 1.0, but over x ∈ [100, 200] no constant shift
        // of f₁ fits it within rho_max — drift (1.01 − 1)·100 / 2 = 0.5.
        let schema = crr_data::Schema::new(vec![("x", AttrType::Float), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for i in 0..200 {
            let xv = i as f64;
            let yv = if xv < 100.0 { xv } else { 1.01 * xv - 51.0 };
            t.push_row(vec![Value::Float(xv), Value::Float(yv)])
                .unwrap();
        }
        let rules = RuleSet::from_rules(vec![
            rule(1.0, 0.0, 0.0, 0.0, 100.0),
            rule(1.01, -51.0, 0.0, 100.0, 200.0),
        ]);
        let loose_tol = 0.02;
        let (pure, _) = compact(&rules, loose_tol).unwrap();
        assert_eq!(pure.len(), 1); // pure inference merges (approximately)
        let (validated, _) = compact_on_data(&rules, loose_tol, 0.11, &t, &t.all_rows()).unwrap();
        // Validation measures the drift and keeps the rules apart.
        assert_eq!(validated.len(), 2);
        // ... and keeps the semantics exact, unlike the pure merge.
        let exact = validated.evaluate(&t, &t.all_rows(), LocateStrategy::First);
        let drifted = pure.evaluate(&t, &t.all_rows(), LocateStrategy::First);
        assert!(exact.rmse < 1e-9);
        assert!(drifted.rmse > 0.1);
    }

    #[test]
    fn data_validated_compaction_refits_delta_from_data() {
        let t = table();
        // Same slope; intercepts differ by 50 between the two segments.
        // Validation accepts and re-fits per-conjunct shifts from data.
        let rules = RuleSet::from_rules(vec![
            rule(1.0, 0.0, 0.0, 0.0, 100.0),
            rule(1.0, -50.0, 0.0, 100.0, 200.0),
        ]);
        let (out, stats) = compact_on_data(&rules, 1e-9, 0.01, &t, &t.all_rows()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(stats.translations, 1);
        let before = rules.evaluate(&t, &t.all_rows(), LocateStrategy::First);
        let after = out.evaluate(&t, &t.all_rows(), LocateStrategy::First);
        assert!((before.rmse - after.rmse).abs() < 1e-9);
    }

    #[test]
    fn mixed_set_preserves_rmse() {
        let t = table();
        let rules = RuleSet::from_rules(vec![
            rule(1.0, 0.0, 0.1, 0.0, 50.0),
            rule(1.0, 0.0, 0.1, 50.0, 100.0),
            rule(1.0, -50.0, 0.1, 100.0, 200.0),
        ]);
        let before = rules.evaluate(&t, &t.all_rows(), LocateStrategy::First);
        let (out, _) = compact(&rules, 1e-9).unwrap();
        let after = out.evaluate(&t, &t.all_rows(), LocateStrategy::First);
        assert_eq!(out.len(), 1);
        assert!((before.rmse - after.rmse).abs() < 1e-12);
        assert_eq!(before.covered, after.covered);
    }
}
