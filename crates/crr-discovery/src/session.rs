//! The `DiscoverySession` front door: one builder owning everything a
//! discovery run needs — table, rows, predicate space, configuration,
//! budget, metrics sink, shard spec — replacing the positional free
//! functions as the primary entry point.
//!
//! ```
//! use crr_discovery::prelude::*;
//! use crr_data::{AttrType, Schema, Table, Value};
//! use crr_discovery::PredicateGen;
//!
//! let schema = Schema::new(vec![("x", AttrType::Float), ("y", AttrType::Float)]);
//! let mut table = Table::new(schema);
//! for i in 0..60 {
//!     let x = i as f64;
//!     table.push_row(vec![Value::Float(x), Value::Float(2.0 * x)]).unwrap();
//! }
//! let x = table.attr("x").unwrap();
//! let y = table.attr("y").unwrap();
//! let space = PredicateGen::binary(7).generate(&table, &[x], y, 1);
//! let cfg = DiscoveryConfig::new(vec![x], y, 0.5);
//!
//! let result = DiscoverySession::on(&table)
//!     .predicates(space)
//!     .config(cfg)
//!     .run()
//!     .unwrap();
//! assert!(result.outcome.is_complete());
//! assert!(!result.rules.is_empty());
//! ```

use crate::parallel::discover_all;
use crate::sharded::discover_sharded;
use crate::{
    Budget, Discovery, DiscoveryConfig, DiscoveryError, PredicateSpace, Result, RuleSetArtifact,
    ShardedDiscovery, Task,
};
use crr_data::{RowSet, ShardSpec, Table};
use crr_obs::MetricsSink;

/// Builder for one discovery run over a table.
///
/// Defaults: all rows, no sharding ([`ShardSpec::single`] — a run
/// byte-identical to the classic `discover`), the config's own budget and
/// metrics sink. [`Self::predicates`] and [`Self::config`] are required;
/// [`Self::run`] rejects a session missing either with
/// [`DiscoveryError::InvalidConfig`].
#[derive(Debug, Clone)]
pub struct DiscoverySession<'a> {
    table: &'a Table,
    rows: Option<RowSet>,
    space: Option<PredicateSpace>,
    config: Option<DiscoveryConfig>,
    budget: Option<Budget>,
    metrics: Option<MetricsSink>,
    spec: ShardSpec,
}

impl<'a> DiscoverySession<'a> {
    /// Starts a session on `table`.
    pub fn on(table: &'a Table) -> Self {
        DiscoverySession {
            table,
            rows: None,
            space: None,
            config: None,
            budget: None,
            metrics: None,
            spec: ShardSpec::single(),
        }
    }

    /// Restricts the run to `rows` (default: every row of the table).
    pub fn rows(mut self, rows: RowSet) -> Self {
        self.rows = Some(rows);
        self
    }

    /// Sets the predicate space (required).
    pub fn predicates(mut self, space: PredicateSpace) -> Self {
        self.space = Some(space);
        self
    }

    /// Sets the discovery configuration (required).
    pub fn config(mut self, cfg: DiscoveryConfig) -> Self {
        self.config = Some(cfg);
        self
    }

    /// Overrides the config's resource budget for this run.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Overrides the config's metrics sink for this run.
    pub fn metrics(mut self, sink: MetricsSink) -> Self {
        self.metrics = Some(sink);
        self
    }

    /// Shards the run under `spec`; per-shard rule sets are merged with
    /// Algorithm 2. The default [`ShardSpec::single`] runs unsharded.
    ///
    /// Accepts anything convertible into a [`ShardSpec`] — including a
    /// legacy [`crr_data::ShardPlan`], which maps onto the equivalent
    /// spec — so `sharded(ShardSpec::by_key(k).quantile().shards(4))`
    /// and existing `sharded(plan)` call sites both compile.
    pub fn sharded(mut self, spec: impl Into<ShardSpec>) -> Self {
        self.spec = spec.into();
        self
    }

    /// Resolves the session into `(rows, cfg, space)`, applying the
    /// budget/metrics overrides onto the config.
    fn resolve(
        self,
    ) -> Result<(
        &'a Table,
        RowSet,
        DiscoveryConfig,
        PredicateSpace,
        ShardSpec,
    )> {
        let rows = self.rows.unwrap_or_else(|| self.table.all_rows());
        let space = self.space.ok_or_else(|| {
            DiscoveryError::InvalidConfig("session has no predicate space".to_string())
        })?;
        let mut cfg = self
            .config
            .ok_or_else(|| DiscoveryError::InvalidConfig("session has no config".to_string()))?;
        if let Some(b) = self.budget {
            cfg.budget = b;
        }
        if let Some(m) = self.metrics {
            cfg.metrics = m;
        }
        Ok((self.table, rows, cfg, space, self.spec))
    }

    /// Runs discovery. Unsharded (or one-shard) sessions behave exactly
    /// like the classic `discover`; sharded sessions run Algorithm 1 per
    /// shard with the frozen cross-shard pool and merge with Algorithm 2
    /// (see [`crate::sharded`]).
    pub fn run(self) -> Result<ShardedDiscovery> {
        let (table, rows, cfg, space, spec) = self.resolve()?;
        discover_sharded(table, &rows, &cfg, &space, &spec)
    }

    /// Runs discovery, compacts the merged rule set against the data
    /// (Algorithm 2, data-validated), and bundles schema, rules, and shard
    /// obligations into the serialized, verifier-ready
    /// [`RuleSetArtifact`] a serving process loads — the one-call export
    /// path, so callers no longer hand-assemble artifacts from raw run
    /// output (which silently drops the obligations the guard-soundness
    /// check needs).
    ///
    /// Returns the full [`ShardedDiscovery`] alongside the artifact so
    /// stats/metrics remain inspectable.
    pub fn export(self) -> Result<(ShardedDiscovery, RuleSetArtifact)> {
        let (table, rows, cfg, space, spec) = self.resolve()?;
        let rho_max = cfg.rho_max;
        let out = discover_sharded(table, &rows, &cfg, &space, &spec)?;
        // Post-merge compaction is idempotent for already-compacted sharded
        // output and compacts the single-shard fast path, which skips
        // Algorithm 2 entirely.
        let (rules, _) = crate::compact_on_data(&out.rules, 1e-6, rho_max, table, &rows)?;
        let artifact =
            RuleSetArtifact::new(table.schema().clone(), rules, out.obligations.clone())?;
        Ok((out, artifact))
    }

    /// Runs many independent per-target tasks over this session's table
    /// and rows, fanned out over up to `threads` workers. Each task carries
    /// its own config and space; the session's predicate space, config,
    /// budget, metrics and shard spec are not consulted.
    pub fn run_all(self, tasks: &[Task], threads: usize) -> Vec<Result<Discovery>> {
        let rows = self.rows.unwrap_or_else(|| self.table.all_rows());
        discover_all(self.table, &rows, tasks, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PredicateGen;
    use crr_data::{AttrType, Schema, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![("x", AttrType::Float), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for i in 0..200 {
            let x = i as f64;
            let y = if x < 100.0 { x } else { x - 50.0 };
            t.push_row(vec![Value::Float(x), Value::Float(y)]).unwrap();
        }
        t
    }

    fn parts(t: &Table) -> (DiscoveryConfig, PredicateSpace) {
        let x = t.attr("x").unwrap();
        let y = t.attr("y").unwrap();
        (
            DiscoveryConfig::new(vec![x], y, 0.5),
            PredicateGen::binary(7).generate(t, &[x], y, 1),
        )
    }

    #[test]
    fn session_matches_classic_discover() {
        let t = table();
        let (cfg, space) = parts(&t);
        let classic = crate::search::run_search(&t, &t.all_rows(), &cfg, &space, None)
            .map(|r| r.discovery)
            .unwrap();
        let session = DiscoverySession::on(&t)
            .predicates(space)
            .config(cfg)
            .run()
            .unwrap();
        assert_eq!(classic.rules.len(), session.rules.len());
        let mut a = classic.stats.clone();
        let mut b = session.stats.clone();
        a.learning_time = std::time::Duration::ZERO;
        b.learning_time = std::time::Duration::ZERO;
        assert_eq!(a, b);
        for (a, b) in classic.rules.rules().iter().zip(session.rules.rules()) {
            assert_eq!(a.condition(), b.condition());
        }
        assert!(session.merge.is_none());
        assert_eq!(session.shards.len(), 1);
    }

    #[test]
    fn missing_pieces_are_invalid_config() {
        let t = table();
        let (cfg, space) = parts(&t);
        assert!(matches!(
            DiscoverySession::on(&t).config(cfg).run(),
            Err(DiscoveryError::InvalidConfig(_))
        ));
        assert!(matches!(
            DiscoverySession::on(&t).predicates(space).run(),
            Err(DiscoveryError::InvalidConfig(_))
        ));
    }

    #[test]
    fn budget_and_metrics_overrides_apply() {
        let t = table();
        let (cfg, space) = parts(&t);
        let sink = MetricsSink::enabled();
        let out = DiscoverySession::on(&t)
            .predicates(space)
            .config(cfg)
            .budget(Budget::unlimited().with_max_fits(1))
            .metrics(sink.clone())
            .run()
            .unwrap();
        assert!(!out.outcome.is_complete());
        assert!(out.stats.drained_partitions > 0);
        assert_eq!(
            sink.snapshot().count("run", "shards"),
            Some(1),
            "metrics override must reach the run"
        );
    }

    #[test]
    fn export_bundles_schema_rules_and_obligations() {
        let t = table();
        let (cfg, space) = parts(&t);
        let k = t.attr("x").unwrap();
        let (out, artifact) = DiscoverySession::on(&t)
            .predicates(space)
            .config(cfg)
            .sharded(ShardSpec::by_key(k).equal_width().shards(2))
            .export()
            .unwrap();
        assert!(out.outcome.is_complete());
        assert_eq!(artifact.schema, *t.schema());
        assert!(!artifact.rules.is_empty());
        let ob = artifact.obligations.as_ref().expect("sharded run obliges");
        assert_eq!(ob.shard_key, k);
        // The artifact survives its own text round-trip ...
        let back = RuleSetArtifact::from_text(&artifact.to_text()).unwrap();
        assert_eq!(back.rules.len(), artifact.rules.len());
        // ... and still covers the instance.
        assert!(back.rules.uncovered(&t, &t.all_rows()).is_empty());
    }

    #[test]
    fn export_on_single_shard_has_no_obligations() {
        let t = table();
        let (cfg, space) = parts(&t);
        let (_, artifact) = DiscoverySession::on(&t)
            .predicates(space)
            .config(cfg)
            .export()
            .unwrap();
        assert!(artifact.obligations.is_none());
        assert!(artifact.check_refs().is_ok());
    }

    #[test]
    fn zero_threads_rejected_through_session() {
        let t = table();
        let (cfg, space) = parts(&t);
        assert!(matches!(
            DiscoverySession::on(&t)
                .predicates(space)
                .config(cfg.with_shard_threads(0))
                .run(),
            Err(DiscoveryError::InvalidConfig(_))
        ));
    }
}
