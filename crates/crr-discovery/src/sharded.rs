//! Sharded discovery: Algorithm 1 per shard with a frozen cross-shard
//! model pool, then Algorithm 2 as the cross-shard merge.
//!
//! The instance is cut by a [`ShardSpec`] resolved through the
//! cost-based planner in `crr-data` (quantile or equal-width key
//! boundaries, fixed or cost-model shard count, or time windows). Shard
//! 0 — the *seed* — runs plain Algorithm 1 first; the models it trains,
//! in publication order keyed `(shard_id, seq)`, freeze into a read-only
//! cross-shard pool. The remaining shards then run concurrently (up to
//! [`crate::DiscoveryConfig::shard_threads`] at a time, largest shards
//! claimed first), each probing that frozen pool in deterministic
//! `(shard, seq)` order after a complete local-pool miss with the first
//! match winning. Threads with no shards left to claim retire into an
//! idle ledger, and straggler shards borrow them to fan their cross-pool
//! probe scans (work stealing) — the probe *order* never changes, only
//! how fast it resolves. Because the pool never changes while shards run
//! and each shard is a pure function of its own rows, the result is
//! byte-identical whatever the thread schedule — the same first-match
//! determinism contract the within-run parallel pool scan gives.
//!
//! Per-shard rule sets are made sound outside their shard by guarding
//! every conjunction with an exact membership predicate for the shard:
//! the key interval for range shards, `key IS NULL` for the trailing
//! null-key shard, `key IS NOT NULL` for a degenerate unbounded interval
//! shard (constant key coexisting with null keys). Partitioning rejects
//! non-finite keys outright, so the guards describe shard membership
//! exactly. The guarded rules are concatenated in shard order and handed
//! to Algorithm 2 ([`crate::compact_on_data`]): the translation-detection
//! and Generalization+Fusion pass is exactly the cross-shard merge —
//! rules from different shards that share a model (or differ by an output
//! shift) fuse into one DNF rule. Per-shard root [`Moments`] are merged
//! (O(d²) each) rather than refit.
//!
//! Failure semantics follow PR 1: a shard whose run errors or panics is
//! drained to constant fallback rules over its rows, the error is kept as
//! [`DiscoveryError::Shard`] in that shard's [`ShardOutcome`], and every
//! sibling shard is unaffected. If even the drain fails, the shard
//! contributes no rules and its rows are counted as uncoverable — a
//! failed shard degrades, it never aborts the run.

use crate::search::{global_midrange, partition_midrange, run_search, CrossShardPool, SearchRun};
use crate::{
    CompactionStats, Discovery, DiscoveryConfig, DiscoveryError, DiscoveryOutcome, DiscoveryStats,
    PredicateSpace, Result,
};
use crr_core::{Conjunction, Crr, Dnf, Predicate, RuleSet};
use crr_data::{
    balance_permille, AttrId, Boundary, PlannerCost, RowSet, Shard, ShardBounds, ShardSpec, Table,
    Value,
};
use crr_models::{ConstantModel, Model, Moments};
use crr_obs::{Counter as Ctr, Gauge, MetricsSnapshot};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What happened inside one shard of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Dense shard id from the applied plan (seed shard is 0).
    pub shard_id: usize,
    /// The shard's rows.
    pub rows: RowSet,
    /// The key interval or null-key marker the shard was cut on (`None`
    /// only for the single-shard plan).
    pub bounds: Option<ShardBounds>,
    /// Rules the shard contributed to the pre-merge concatenation.
    pub rules: usize,
    /// The shard's Algorithm 1 counters (fallback accounting when the
    /// shard failed).
    pub stats: DiscoveryStats,
    /// How the shard's own run stopped. A failed shard reads
    /// [`DiscoveryOutcome::Complete`] — its drain covered (or wrote off)
    /// its rows — with the failure recorded in [`Self::error`].
    pub outcome: DiscoveryOutcome,
    /// Present iff the shard failed and was drained to constant
    /// fallbacks; always the [`DiscoveryError::Shard`] variant.
    pub error: Option<DiscoveryError>,
}

/// The outcome of a sharded discovery run.
#[derive(Debug, Clone)]
pub struct ShardedDiscovery {
    /// The merged rule set (Algorithm 2 output across shards), guarded so
    /// each rule is sound on the whole instance.
    pub rules: RuleSet,
    /// Per-shard counters summed, `learning_time` = wall clock of the
    /// whole sharded run.
    pub stats: DiscoveryStats,
    /// [`DiscoveryOutcome::Complete`] unless some shard was stopped by
    /// its budget, deadline or cancellation, in which case this is the
    /// first non-complete shard's outcome in shard order. Shard
    /// *failures* do not show up here (a failed shard drains to fallbacks
    /// and reports `Complete`); check [`Self::failed_shards`] or each
    /// [`ShardOutcome::error`].
    pub outcome: DiscoveryOutcome,
    /// Per-shard breakdown, in shard order.
    pub shards: Vec<ShardOutcome>,
    /// Algorithm 2 statistics of the cross-shard merge; `None` on the
    /// single-shard fast path (nothing to merge).
    pub merge: Option<CompactionStats>,
    /// Whole-instance sufficient statistics, merged from per-shard root
    /// moments (never refit). `None` when any shard failed, or under the
    /// rescan engine / families without sufficient statistics.
    pub global_moments: Option<Moments>,
    /// Frozen metrics of the run (cumulative for a shared sink).
    pub metrics: MetricsSnapshot,
    /// Guard predicates applied per shard, for static verification.
    /// `None` on the single-shard fast path (no guards were applied).
    pub obligations: Option<ProofObligations>,
}

impl ShardedDiscovery {
    /// The shards that failed and were drained to fallbacks (or, if even
    /// draining failed, contributed nothing). Empty on a clean run.
    pub fn failed_shards(&self) -> impl Iterator<Item = &ShardOutcome> {
        self.shards.iter().filter(|s| s.error.is_some())
    }

    /// Bundles this run's rules and obligations with `schema` into the
    /// serialized serving artifact (no further compaction; see
    /// [`crate::DiscoverySession::export`] for the one-call run+compact
    /// path).
    pub fn export_artifact(&self, schema: &crr_data::Schema) -> Result<crate::RuleSetArtifact> {
        crate::RuleSetArtifact::new(schema.clone(), self.rules.clone(), self.obligations.clone())
    }
}

/// The guard predicates one shard's rules were wrapped in, kept as a
/// machine-checkable record for static analyzers: `crr-analyze` proves
/// the guards pairwise-disjoint and jointly covering without rescanning
/// rows.
#[derive(Debug, Clone)]
pub struct ShardGuard {
    /// Dense shard id from the applied plan.
    pub shard_id: usize,
    /// The key interval or null-key marker the shard was cut on.
    pub bounds: ShardBounds,
    /// The exact membership predicates conjoined onto every conjunct of
    /// the shard's rules (see [`guard_predicates`]).
    pub guards: Vec<Predicate>,
}

/// How a plan's interval boundaries were derived, recorded in
/// [`ProofObligations`] so the verifier can state *which* construction it
/// audited. All constructions discharge the same four checks — exactness,
/// disjointness, coverage, confinement — quantile-derived and stolen-work
/// guards included; the tag is provenance, never a relaxation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanBoundary {
    /// Equal-width geometry over the observed key range (PR 4's
    /// construction, and the default for artifacts predating the tag).
    #[default]
    EqualWidth,
    /// Equal-frequency (quantile) boundaries snapped between distinct
    /// key values.
    Quantile,
    /// Fixed-width time windows from the observed minimum.
    TimeWindow,
}

impl PlanBoundary {
    /// Stable lowercase label used in artifacts and reports.
    pub fn label(self) -> &'static str {
        match self {
            PlanBoundary::EqualWidth => "equal_width",
            PlanBoundary::Quantile => "quantile",
            PlanBoundary::TimeWindow => "time_window",
        }
    }

    /// Parses [`Self::label`] back.
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "equal_width" => Some(PlanBoundary::EqualWidth),
            "quantile" => Some(PlanBoundary::Quantile),
            "time_window" => Some(PlanBoundary::TimeWindow),
            _ => None,
        }
    }
}

/// Proof obligations a sharded run discharges onto its verifier: the
/// shard key, how its boundaries were derived, and, per shard, the guard
/// predicates actually applied. Emitted by every multi-shard run; the
/// single-shard fast path applies no guards and emits none. Work-stolen
/// runs emit exactly the same obligations as unassisted ones — stealing
/// reorders probe *execution*, never probe *order* or shard membership.
#[derive(Debug, Clone)]
pub struct ProofObligations {
    /// The attribute the instance was sharded on.
    pub shard_key: AttrId,
    /// How the plan's interval boundaries were derived.
    pub boundary: PlanBoundary,
    /// One entry per shard, in shard order.
    pub guards: Vec<ShardGuard>,
}

/// One shard's raw result before merging.
enum ShardRun {
    Ok(SearchRun),
    Failed(DiscoveryError),
}

/// Minimum cross-pool probes an auto-count spec needs on the sink before
/// the planner trusts the hit rate enough to fall back to single-shard.
const CROSS_POOL_FALLBACK_MIN_PROBES: u64 = 64;

/// Runs sharded discovery over `rows` of `table` under `spec`.
///
/// The spec is resolved by the cost-based planner ([`ShardSpec::plan`])
/// into concrete shards: quantile or equal-width boundaries, a fixed or
/// cost-model shard count. An auto-count spec additionally consults this
/// sink's own `shards.cross_pool_*` history — when at least
/// [`CROSS_POOL_FALLBACK_MIN_PROBES`] probes have resolved and fewer than
/// one in five hit, cross-shard sharing demonstrably isn't paying on this
/// workload and the planner falls back to a single shard
/// (`shards.plan_fallback_single`).
///
/// With a spec that yields one shard this is byte-identical to a plain
/// unsharded run (no guards, no merge) and errors propagate directly.
/// With more shards, per-shard failures degrade to constant fallbacks
/// and never abort siblings; only instance-level problems (trivial
/// target, empty instance, a non-finite shard key, an invalid spec or
/// config) error out — all detected before any shard runs.
pub(crate) fn discover_sharded(
    table: &Table,
    rows: &RowSet,
    cfg: &DiscoveryConfig,
    space: &PredicateSpace,
    spec: &ShardSpec,
) -> Result<ShardedDiscovery> {
    cfg.validate()?;
    // Instance-level preconditions, identical to `discover`'s preamble:
    // these hold or fail for every shard alike, so they are checked once
    // up front instead of degrading all shards to fallbacks.
    if cfg.inputs.contains(&cfg.target) {
        return Err(DiscoveryError::TrivialTarget);
    }
    if !table.schema().attribute(cfg.target).ty().is_numeric() {
        return Err(DiscoveryError::NonNumericTarget(
            table.schema().attribute(cfg.target).name().to_string(),
        ));
    }
    if space.mentions(cfg.target) {
        return Err(DiscoveryError::PredicateOnTarget);
    }
    if rows.is_empty() {
        return Err(DiscoveryError::EmptyInstance);
    }

    let start = Instant::now();
    let mx = &cfg.metrics;

    // Auto-fallback: an auto-count spec defers not just *how many* shards
    // but *whether* sharding pays. The sink's cumulative cross-pool
    // counters are the evidence — a cold or disabled sink (zero probes)
    // never triggers this.
    let resolved;
    let spec = if spec.is_auto_count() {
        let snap = mx.snapshot();
        let probes = snap.count("shards", "cross_pool_probes").unwrap_or(0);
        let hits = snap.count("shards", "cross_pool_hits").unwrap_or(0);
        if probes >= CROSS_POOL_FALLBACK_MIN_PROBES && hits * 5 < probes {
            mx.incr(Ctr::PlanFallbackSingle);
            resolved = ShardSpec::single();
            &resolved
        } else {
            spec
        }
    } else {
        spec
    };

    let cost = PlannerCost {
        predicate_vocab: space.len().max(1),
        workers: cfg.shard_threads.max(1),
    };
    let (shards, report) = spec.plan(table, rows, &cost)?;
    if report.auto_count {
        mx.incr(Ctr::PlanAutoK);
    }
    if shards.len() > 1 {
        match report.boundary {
            Some(Boundary::Quantile) => mx.incr(Ctr::PlanQuantile),
            Some(Boundary::EqualWidth) => mx.incr(Ctr::PlanEqualWidth),
            None => {}
        }
    }
    mx.set_gauge(Gauge::ShardsPlanned, shards.len() as u64);
    mx.set_gauge(Gauge::ShardBalancePermille, balance_permille(&shards));
    let boundary = match report.boundary {
        Some(Boundary::Quantile) => PlanBoundary::Quantile,
        Some(Boundary::EqualWidth) => PlanBoundary::EqualWidth,
        // Multi-shard plans without a boundary choice are time windows;
        // the single-shard case emits no obligations at all.
        None => PlanBoundary::TimeWindow,
    };

    if shards.len() == 1 {
        // Fast path: one shard is plain Algorithm 1 — no guards, no
        // merge, errors propagate. This is the byte-identity contract the
        // regression tests pin against `discover`.
        let run = run_search(table, &shards[0].rows, cfg, space, None)?;
        mx.incr(Ctr::ShardsRun);
        let SearchRun {
            discovery,
            root_moments,
            ..
        } = run;
        let Discovery {
            rules,
            stats,
            outcome,
            ..
        } = discovery;
        let shard_outcome = ShardOutcome {
            shard_id: 0,
            rows: shards[0].rows.clone(),
            bounds: shards[0].bounds,
            rules: rules.len(),
            stats: stats.clone(),
            outcome,
            error: None,
        };
        return Ok(ShardedDiscovery {
            rules,
            stats,
            outcome,
            shards: vec![shard_outcome],
            merge: None,
            global_moments: root_moments,
            metrics: mx.snapshot(),
            obligations: None,
        });
    }

    // Seed phase: shard 0 runs alone with no cross pool. Its published
    // models freeze into the pool every later shard probes.
    let rest = &shards[1..];
    let seed_run = run_shard_isolated(table, &shards[0], cfg, space, None);
    // Work-stealing ledger: threads the config reserved but this plan
    // cannot occupy start out idle, and every worker that retires (no
    // shards left to claim) adds itself. Stragglers borrow idle threads
    // to fan their cross-pool probe scans (see `run_search`) — by the
    // first-match-scan contract that never changes which model wins,
    // only how fast the scan resolves.
    let workers = if cfg.shard_threads <= 1 || rest.len() <= 1 {
        1
    } else {
        cfg.shard_threads.min(rest.len())
    };
    let frozen = CrossShardPool {
        models: match &seed_run {
            ShardRun::Ok(r) => r
                .published
                .iter()
                .enumerate()
                .map(|(seq, m)| (0usize, seq as u64, Arc::clone(m)))
                .collect(),
            ShardRun::Failed(_) => Vec::new(),
        },
        idle: AtomicUsize::new(cfg.shard_threads.saturating_sub(workers)),
    };

    // Parallel phase: shards 1.. claim work over a shared index, bounded
    // by `shard_threads`. Each is a pure function of (its rows, cfg,
    // space, frozen pool), so the schedule cannot change any result.
    let mut runs: Vec<Option<ShardRun>> = Vec::with_capacity(rest.len());
    if cfg.shard_threads <= 1 || rest.len() <= 1 {
        for shard in rest {
            runs.push(Some(run_shard_isolated(
                table,
                shard,
                cfg,
                space,
                Some(&frozen),
            )));
        }
    } else {
        // Skew-aware claim order (longest processing time first): the
        // largest shards are claimed first so the schedule's tail is
        // short shards, not one straggler holding the run open. Claim
        // order cannot change any result — each shard is a pure function
        // of its own rows and the frozen pool — and results land in
        // slots by original shard index, so output order is unaffected.
        let mut order: Vec<usize> = (0..rest.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(rest[i].rows.len()));
        let slots: Vec<Mutex<Option<ShardRun>>> = rest.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let (next, slots, frozen, order) = (&next, &slots, &frozen, &order);
            for _ in 0..workers {
                scope.spawn(move || {
                    loop {
                        let oi = next.fetch_add(1, Ordering::Relaxed);
                        if oi >= order.len() {
                            break;
                        }
                        let i = order[oi];
                        let out = run_shard_isolated(table, &rest[i], cfg, space, Some(frozen));
                        *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                    }
                    // Retire into the steal ledger: this thread is done
                    // claiming shards, so stragglers may count it as an
                    // available probe-scan helper.
                    frozen.idle.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        runs.extend(
            slots
                .into_iter()
                .map(|s| s.into_inner().unwrap_or_else(|e| e.into_inner())),
        );
    }

    // Merge phase (sequential, shard order). Guard each shard's rules
    // with its key interval so they stay sound instance-wide, then let
    // Algorithm 2 do the cross-shard work: translation detection and
    // Generalization+Fusion over rules from *different* shards.
    let mut all_rules = RuleSet::new();
    let mut total = DiscoveryStats::default();
    let mut outcome = DiscoveryOutcome::Complete;
    let mut shard_outcomes = Vec::with_capacity(shards.len());
    let mut shard_guards = Vec::with_capacity(shards.len());
    let mut global_moments: Option<Moments> = None;
    let mut moments_ok = true;
    // `.expect`, not `.flatten()`: a silently dropped slot would shift
    // every later run onto the wrong shard (wrong bounds guarding the
    // wrong rules). The worker loop fills every slot; hold it to that.
    #[allow(clippy::expect_used)]
    let finished = runs
        .into_iter()
        .map(|s| s.expect("shard slot unfilled by worker loop"));
    for (shard, run) in shards.iter().zip(std::iter::once(seed_run).chain(finished)) {
        mx.incr(Ctr::ShardsRun);
        let (mut rules, stats, shard_outcome, error, root_moments) = match run {
            ShardRun::Ok(r) => (
                r.discovery.rules,
                r.discovery.stats,
                r.discovery.outcome,
                None,
                r.root_moments,
            ),
            ShardRun::Failed(e) => {
                mx.incr(Ctr::ShardsFailed);
                let wrapped = DiscoveryError::Shard {
                    shard_id: shard.id,
                    source: Box::new(e),
                };
                // Degrade, never abort: if even the constant-fallback
                // drain fails, the shard contributes no rules and its
                // rows are written off as uncoverable. The original
                // failure stays the shard's error; the (secondary) drain
                // error is dropped.
                let (fallback, stats) = drain_shard(table, shard, cfg, mx).unwrap_or_else(|_| {
                    (
                        RuleSet::new(),
                        DiscoveryStats {
                            uncoverable_rows: shard.rows.len(),
                            ..DiscoveryStats::default()
                        },
                    )
                });
                (
                    fallback,
                    stats,
                    DiscoveryOutcome::Complete,
                    Some(wrapped),
                    None,
                )
            }
        };
        if let Some(b) = &shard.bounds {
            guard_rules(&mut rules, b);
            shard_guards.push(ShardGuard {
                shard_id: shard.id,
                bounds: *b,
                guards: guard_predicates(b),
            });
        }
        match (&mut global_moments, root_moments) {
            (_, None) => moments_ok = false,
            (Some(acc), Some(m)) => {
                acc.merge(&m);
                mx.incr(Ctr::MomentsMergeOps);
            }
            (acc @ None, Some(m)) => *acc = Some(m),
        }
        sum_stats(&mut total, &stats);
        if outcome.is_complete() && !shard_outcome.is_complete() {
            outcome = shard_outcome;
        }
        shard_outcomes.push(ShardOutcome {
            shard_id: shard.id,
            rows: shard.rows.clone(),
            bounds: shard.bounds,
            rules: rules.len(),
            stats,
            outcome: shard_outcome,
            error,
        });
        for r in rules.rules() {
            all_rules.push(r.clone());
        }
    }
    if !moments_ok {
        global_moments = None;
    }

    let (merged, merge_stats) = crate::compact_on_data(&all_rules, 1e-6, cfg.rho_max, table, rows)?;
    mx.add(Ctr::MergeTranslations, merge_stats.translations as u64);
    mx.add(Ctr::MergeFusions, merge_stats.fusions as u64);
    total.learning_time = start.elapsed();

    let obligations = shard_guards.first().map(|g| ProofObligations {
        shard_key: g.bounds.attr,
        boundary,
        guards: shard_guards.clone(),
    });
    Ok(ShardedDiscovery {
        rules: merged,
        stats: total,
        outcome,
        shards: shard_outcomes,
        merge: Some(merge_stats),
        global_moments,
        metrics: mx.snapshot(),
        obligations,
    })
}

/// Runs one shard with panic isolation: an unwind anywhere inside the
/// search becomes that shard's [`DiscoveryError::TaskPanicked`] (keyed by
/// shard id), leaving siblings untouched.
fn run_shard_isolated(
    table: &Table,
    shard: &Shard,
    cfg: &DiscoveryConfig,
    space: &PredicateSpace,
    cross: Option<&CrossShardPool>,
) -> ShardRun {
    catch_unwind(AssertUnwindSafe(|| {
        // Confine the predicate space to the shard's key interval:
        // predicates constant over the shard (always-false *or*
        // always-true on its key range) can never separate a partition,
        // so dropping them changes no discovered rule — it only spares
        // every split step a scan over candidates the planner already
        // knows are dead. A full-range shard keeps the original space.
        let confined = shard.bounds.as_ref().and_then(|b| space.confined_to(b));
        let space = confined.as_ref().unwrap_or(space);
        run_search(table, &shard.rows, cfg, space, cross)
    }))
    .unwrap_or_else(|payload| {
        cfg.metrics.incr(Ctr::TaskPanics);
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        Err(DiscoveryError::TaskPanicked {
            task: shard.id,
            message,
        })
    })
    .map_or_else(ShardRun::Failed, ShardRun::Ok)
}

/// PR 1 degradation for a failed shard: cover its rows with the honest
/// midrange constant (half-range `ρ`), falling back to the instance
/// midrange when the shard has no finite target at all.
fn drain_shard(
    table: &Table,
    shard: &Shard,
    cfg: &DiscoveryConfig,
    mx: &crr_obs::MetricsSink,
) -> Result<(RuleSet, DiscoveryStats)> {
    let (c, rho) = partition_midrange(table, cfg.target, &shard.rows)
        .unwrap_or_else(|| (global_midrange(table, cfg, &shard.rows), cfg.rho_max));
    let model = Arc::new(Model::Constant(ConstantModel::new(c, cfg.inputs.len())));
    let mut rules = RuleSet::new();
    rules.push(Crr::new(
        cfg.inputs.clone(),
        cfg.target,
        model,
        rho,
        Dnf::single(Conjunction::top()),
    )?);
    mx.incr(Ctr::DrainedPartitions);
    mx.add(Ctr::DrainedRows, shard.rows.len() as u64);
    mx.incr(Ctr::RulesEmitted);
    let stats = DiscoveryStats {
        drained_partitions: 1,
        drained_rows: shard.rows.len(),
        ..DiscoveryStats::default()
    };
    Ok((rules, stats))
}

/// Conjoins an exact shard-membership predicate onto every conjunct of
/// every rule, making per-shard rules sound on the whole instance:
///
/// * interval shard — `lo ≤ key` when bounded below, `key < hi` when
///   bounded above (matching the partition's half-open buckets; the
///   extreme shards stay open-ended, which is exact because null keys
///   satisfy no comparison and non-finite keys are rejected at
///   partition time);
/// * null-key shard — `key IS NULL` (no comparison can express it);
/// * unbounded interval shard (constant key coexisting with a null-key
///   shard, so `lo` and `hi` are both `None`) — `key IS NOT NULL`, the
///   exact complement of the only sibling it has.
fn guard_rules(rules: &mut RuleSet, b: &ShardBounds) {
    let guards = guard_predicates(b);
    for rule in rules.rules_mut() {
        let dnf = rule.condition_mut();
        for conj in dnf.conjuncts_mut() {
            for p in &guards {
                *conj = conj.and(p.clone());
            }
        }
    }
}

/// The exact shard-membership predicates for `b` — the canonical guard
/// construction both the merge's rule guarding and the static verifier
/// use:
///
/// * interval shard — `lo ≤ key` when bounded below, `key < hi` when
///   bounded above;
/// * null-key shard — `key IS NULL`;
/// * unbounded interval shard (both bounds `None`) — `key IS NOT NULL`.
pub fn guard_predicates(b: &ShardBounds) -> Vec<Predicate> {
    let mut guards: Vec<Predicate> = Vec::new();
    if b.null_keys {
        guards.push(Predicate::is_null(b.attr));
    } else {
        if let Some(v) = b.lo {
            guards.push(Predicate::ge(b.attr, Value::Float(v)));
        }
        if let Some(v) = b.hi {
            guards.push(Predicate::lt(b.attr, Value::Float(v)));
        }
        if guards.is_empty() {
            guards.push(Predicate::not_null(b.attr));
        }
    }
    guards
}

/// Accumulates one shard's counters into the run total (time is set once
/// at the end from the sharded run's own clock).
fn sum_stats(total: &mut DiscoveryStats, s: &DiscoveryStats) {
    total.models_trained += s.models_trained;
    total.models_shared += s.models_shared;
    total.partitions_explored += s.partitions_explored;
    total.forced_accepts += s.forced_accepts;
    total.uncoverable_rows += s.uncoverable_rows;
    total.drained_partitions += s.drained_partitions;
    total.drained_rows += s.drained_rows;
    total.cross_shard_shares += s.cross_shard_shares;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::run_search;
    use crate::{DiscoveryConfig, PredicateGen};
    use crr_data::{AttrType, Schema};
    use crr_models::LinearModel;
    use crr_obs::MetricsSink;

    /// Work stealing must never change which frozen model a probe scan
    /// adopts: a scan fanned over idle helpers returns byte-identical
    /// rules to the sequential walk, with identical probe accounting, and
    /// the assist itself is counted.
    #[test]
    #[allow(clippy::unwrap_used)]
    fn stolen_probe_scans_match_sequential_byte_for_byte() {
        let schema = Schema::new(vec![("x", AttrType::Float), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for i in 0..120 {
            let x = i as f64;
            t.push_row(vec![Value::Float(x), Value::Float(x)]).unwrap();
        }
        let x = t.attr("x").unwrap();
        let y = t.attr("y").unwrap();
        let space = PredicateGen::binary(7).generate(&t, &[x], y, 1);
        // Frozen pool: a decoy that misses every row at index 0, then the
        // exact model — first-match must land on index 1 in both modes.
        let models = || {
            vec![
                (
                    0usize,
                    0u64,
                    Arc::new(Model::Linear(LinearModel::new(vec![1.0], 1000.0))),
                ),
                (
                    0usize,
                    1u64,
                    Arc::new(Model::Linear(LinearModel::new(vec![1.0], 0.0))),
                ),
            ]
        };
        let run = |idle: usize| {
            let sink = MetricsSink::enabled();
            let cfg = DiscoveryConfig::new(vec![x], y, 0.5).with_metrics(sink.clone());
            let pool = CrossShardPool {
                models: models(),
                idle: AtomicUsize::new(idle),
            };
            let out = run_search(&t, &t.all_rows(), &cfg, &space, Some(&pool)).unwrap();
            (
                crr_core::serialize::to_text(&out.discovery.rules),
                sink.snapshot(),
            )
        };
        let (seq, m0) = run(0);
        let (stolen, m2) = run(2);
        assert_eq!(seq, stolen, "stealing changed the adopted rules");
        assert_eq!(m0.count("shards", "steal_assists"), Some(0));
        assert!(m2.count("shards", "steal_assists").unwrap() > 0);
        assert_eq!(
            m0.count("shards", "cross_pool_probes"),
            m2.count("shards", "cross_pool_probes"),
            "per-consultation probe accounting must not depend on stealing"
        );
        assert_eq!(
            m0.count("shards", "cross_pool_hits"),
            m2.count("shards", "cross_pool_hits")
        );
    }

    #[test]
    fn plan_boundary_labels_round_trip() {
        for b in [
            PlanBoundary::EqualWidth,
            PlanBoundary::Quantile,
            PlanBoundary::TimeWindow,
        ] {
            assert_eq!(PlanBoundary::from_label(b.label()), Some(b));
        }
        assert_eq!(PlanBoundary::from_label("nope"), None);
    }
}
