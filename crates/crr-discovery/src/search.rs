//! Algorithm 1: CRR searching with model sharing.
//!
//! The implementation follows the paper's pseudo-code line by line; the
//! mapping is noted inline. Key behaviours:
//!
//! * **Sharing before training** (lines 7–10): every partition first tries
//!   the pool `ℱ` of already-trained models with the midrange shift
//!   `δ₀ = (max r + min r)/2` of Proposition 6 — the minimizer of the
//!   maximum absolute residual, so it is the *only* shift that needs
//!   testing.
//! * **Sharing-index ordering** (line 12 + §V-A3): failed partitions
//!   record `ind(C)`, the best fraction of tuples any pooled model covers
//!   within `ρ_M`; children inherit it as queue priority, so
//!   likely-shareable conditions surface first.
//! * **Coverage guarantee** (§V-A2): partitions that cannot be split
//!   further (too small, or no predicate separates them) accept their best
//!   model even when its bias exceeds `ρ_M` — down to the constant-per-
//!   tuple edge case.

use crate::{
    DiscoveryConfig, DiscoveryError, DiscoveryOutcome, PredicateSpace, QueueOrder, Result,
    SplitStrategy,
};
use crr_core::{Conjunction, Crr, Dnf, RuleSet};
use crr_data::{AttrId, AttrType, RowSet, Table};
use crr_models::{fit_model, Model, Regressor, Translation};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counters describing one discovery run — the raw material of the paper's
/// learning-time and #rules plots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiscoveryStats {
    /// New models trained (line 13 executions).
    pub models_trained: usize,
    /// Partitions satisfied by a pooled model (lines 7–10 hits).
    pub models_shared: usize,
    /// Conjunctions popped from the queue.
    pub partitions_explored: usize,
    /// Partitions accepted with bias above `ρ_M` to preserve coverage.
    pub forced_accepts: usize,
    /// Rows whose condition attributes were null — not coverable by any
    /// split (only non-zero on tables with nulls outside the target).
    pub uncoverable_rows: usize,
    /// Partitions still queued when the budget tripped, covered with
    /// constant fallback rules instead of being refined (zero on complete
    /// runs).
    pub drained_partitions: usize,
    /// Rows covered by drained-partition fallback rules rather than
    /// refined ones.
    pub drained_rows: usize,
    /// Wall-clock time of the run.
    pub learning_time: Duration,
}

/// The outcome of [`discover`].
#[derive(Debug, Clone)]
pub struct Discovery {
    /// The discovered rules, in emission order.
    pub rules: RuleSet,
    /// Run counters.
    pub stats: DiscoveryStats,
    /// Why the run stopped: [`DiscoveryOutcome::Complete`] for a full
    /// Algorithm 1 run, otherwise which budget axis (or cancellation)
    /// tripped. Degraded runs still cover every coverable row — queued
    /// partitions are drained with constant fallbacks.
    pub outcome: DiscoveryOutcome,
}

/// Priority-queue entry: a conjunction, its partition, and the predicates
/// still available for splitting it.
struct Entry {
    /// Queue priority (see [`QueueOrder`]).
    priority: f64,
    /// Insertion sequence — deterministic tie-break.
    seq: u64,
    conj: Conjunction,
    rows: RowSet,
    /// Indices into the predicate space usable for further splits.
    avail: Vec<u32>,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on priority; FIFO on ties (lower seq first).
        self.priority
            .total_cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Queue priority of a child carrying its parent's sharing index.
fn priority_for(order: QueueOrder, ind: f64, seq: u64) -> f64 {
    match order {
        QueueOrder::Decrease => ind,
        QueueOrder::Increase => -ind,
        QueueOrder::Random(seed) => {
            // Deterministic hash of (seq, seed) in [0, 1).
            let h = seq
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seed)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            (h >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Runs Algorithm 1 over `rows` of `table`.
///
/// Returns a rule set covering every row whose condition attributes are
/// present (Problem 1's coverage requirement), plus run statistics.
pub fn discover(
    table: &Table,
    rows: &RowSet,
    cfg: &DiscoveryConfig,
    space: &PredicateSpace,
) -> Result<Discovery> {
    // Reflexivity (Proposition 1): refuse trivial targets.
    if cfg.inputs.contains(&cfg.target) {
        return Err(DiscoveryError::TrivialTarget);
    }
    if !table.schema().attribute(cfg.target).ty().is_numeric() {
        return Err(DiscoveryError::NonNumericTarget(
            table.schema().attribute(cfg.target).name().to_string(),
        ));
    }
    // Definition 1: no predicates on Y.
    if space.mentions(cfg.target) {
        return Err(DiscoveryError::PredicateOnTarget);
    }
    if rows.is_empty() {
        return Err(DiscoveryError::EmptyInstance);
    }

    let start = Instant::now();
    let mut stats = DiscoveryStats::default();
    let mut rules = RuleSet::new();
    // Line 2: the shared model pool ℱ.
    let mut pool: Vec<Arc<Model>> = Vec::new();
    let min_partition = cfg.effective_min_partition();

    // Global fallback for partitions with no usable (X, Y) pairs at all.
    let global_fallback = global_midrange(table, cfg, rows);

    // Line 3: the queue starts from the most general condition C = ∅.
    let mut seq = 0u64;
    let mut queue: BinaryHeap<Entry> = BinaryHeap::new();
    queue.push(Entry {
        priority: priority_for(cfg.order, 0.0, 0),
        seq: 0,
        conj: Conjunction::top(),
        rows: rows.clone(),
        avail: (0..space.len() as u32).collect(),
    });

    // Budget and cancellation checks run at each queue pop; the (default)
    // unlimited-and-uncancellable path skips them entirely, so complete
    // runs pay nothing for the machinery.
    let watched = !cfg.budget.is_unlimited() || cfg.cancel.is_some();
    let mut outcome = DiscoveryOutcome::Complete;

    // Line 4: main loop.
    while let Some(entry) = queue.pop() {
        if watched {
            if cfg.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                outcome = DiscoveryOutcome::Cancelled;
            } else if let Some(tripped) =
                cfg.budget
                    .check(start, stats.partitions_explored, stats.models_trained)
            {
                outcome = tripped;
            }
            if !outcome.is_complete() {
                // Graceful degradation: stop refining, but keep Problem 1's
                // coverage guarantee — cover this and every still-queued
                // partition with a constant (the partition's target
                // midrange; the global fallback when it has none).
                let mut pending = Some(entry);
                while let Some(e) = pending.take().or_else(|| queue.pop()) {
                    if e.rows.is_empty() {
                        continue;
                    }
                    let (c, rho) = partition_midrange(table, cfg.target, &e.rows)
                        .unwrap_or((global_fallback, cfg.rho_max));
                    let model = Arc::new(Model::Constant(crr_models::ConstantModel::new(
                        c,
                        cfg.inputs.len(),
                    )));
                    rules.push(Crr::new(
                        cfg.inputs.clone(),
                        cfg.target,
                        model,
                        rho,
                        Dnf::single(e.conj),
                    )?);
                    stats.drained_partitions += 1;
                    stats.drained_rows += e.rows.len();
                }
                break;
            }
        }
        stats.partitions_explored += 1;
        let Entry {
            conj, rows, avail, ..
        } = entry;
        if rows.is_empty() {
            continue;
        }

        // Fit-ready subset: rows with every input and the target present.
        let fit_rows = table.complete_rows(&cfg.inputs, cfg.target, &rows);
        if fit_rows.is_empty() {
            // Nothing to validate against; cover with the global fallback
            // constant so prediction still answers here.
            let model = Arc::new(Model::Constant(crr_models::ConstantModel::new(
                global_fallback,
                cfg.inputs.len(),
            )));
            rules.push(Crr::new(
                cfg.inputs.clone(),
                cfg.target,
                model,
                cfg.rho_max,
                Dnf::single(conj),
            )?);
            stats.forced_accepts += 1;
            continue;
        }
        let mut xs: Vec<Vec<f64>> = Vec::with_capacity(fit_rows.len());
        let mut y: Vec<f64> = Vec::with_capacity(fit_rows.len());
        for r in fit_rows.iter() {
            let mut x = Vec::with_capacity(cfg.inputs.len());
            for &a in &cfg.inputs {
                x.push(finite_cell(table, r, a)?);
            }
            xs.push(x);
            y.push(finite_cell(table, r, cfg.target)?);
        }

        // Lines 7–10: try to share a pooled model, and in the same pass
        // compute the sharing index ind(C) (line 12).
        let mut ind = 0.0f64;
        let mut shared: Option<(Arc<Model>, f64, f64)> = None; // (f, rho, delta)
        if cfg.share_models {
            for f in &pool {
                let (delta0, max_dev, frac) = share_fit(f.as_ref(), &xs, &y, cfg.rho_max);
                ind = ind.max(frac);
                if max_dev <= cfg.rho_max {
                    shared = Some((Arc::clone(f), max_dev, delta0));
                    break;
                }
            }
        }
        if let Some((f, rho, delta)) = shared {
            // Line 9: C := C ∧ (y = δ).
            let mut conj = conj;
            if delta.abs() > 1e-12 {
                conj.compose_builtin(
                    &Translation::output_shift(cfg.inputs.len(), delta),
                    cfg.inputs.len(),
                );
            }
            rules.push(Crr::new(
                cfg.inputs.clone(),
                cfg.target,
                f,
                rho,
                Dnf::single(conj),
            )?);
            stats.models_shared += 1;
            continue;
        }

        // Line 13: train a new model on D_C (after any injected fault).
        if let Some(faults) = &cfg.faults {
            faults.before_fit()?;
        }
        let model = fit_model(&xs, &y, &cfg.fit)?;
        stats.models_trained += 1;
        let rho = crr_models::max_abs_residual(&model, &xs, &y);

        // Line 14: does it generalize to the whole partition within ρ_M?
        let splittable = fit_rows.len() > min_partition && !avail.is_empty();
        if rho <= cfg.rho_max || !splittable {
            if rho > cfg.rho_max {
                stats.forced_accepts += 1;
            }
            let f = Arc::new(model);
            pool.push(Arc::clone(&f)); // line 17
            rules.push(Crr::new(
                cfg.inputs.clone(),
                cfg.target,
                f,
                rho,
                Dnf::single(conj),
            )?);
            continue;
        }

        // Lines 19–22: split the condition. The failed model's residuals
        // feed the default (model-tree) split criterion.
        let residuals: Vec<(usize, f64)> = fit_rows
            .iter()
            .zip(xs.iter().zip(&y))
            .map(|(r, (x, &t))| (r, t - model.predict(x)))
            .collect();
        match choose_split(table, &rows, cfg, space, &avail, &residuals) {
            Some(split_idx) => {
                let p = space.predicates()[split_idx as usize].clone();
                let np = p.negate();
                let yes = rows.filter(|r| p.eval(table, r));
                let no = rows.filter(|r| np.eval(table, r));
                // Rows satisfying neither side have a null condition
                // attribute; no condition can ever select them.
                stats.uncoverable_rows += rows.len() - yes.len() - no.len();
                let child_avail: Vec<u32> =
                    avail.iter().copied().filter(|&i| i != split_idx).collect();
                for (child_conj, child_rows) in [(conj.and(p), yes), (conj.and(np), no)] {
                    if child_rows.is_empty() {
                        continue;
                    }
                    seq += 1;
                    queue.push(Entry {
                        priority: priority_for(cfg.order, ind, seq),
                        seq,
                        conj: child_conj,
                        rows: child_rows,
                        avail: child_avail.clone(),
                    });
                }
            }
            None => {
                // No predicate separates this partition: accept for
                // coverage (the §V-A2 edge case).
                let f = Arc::new(model);
                pool.push(Arc::clone(&f));
                rules.push(Crr::new(
                    cfg.inputs.clone(),
                    cfg.target,
                    f,
                    rho,
                    Dnf::single(conj),
                )?);
                stats.forced_accepts += 1;
            }
        }
    }

    stats.learning_time = start.elapsed();
    Ok(Discovery {
        rules,
        stats,
        outcome,
    })
}

/// Reads one numeric cell, surfacing absence or NaN/±Inf as typed errors
/// (never a panic): dirty tables degrade to `Err`, not a poisoned fit.
fn finite_cell(table: &Table, row: usize, attr: AttrId) -> Result<f64> {
    let name = || table.schema().attribute(attr).name().to_string();
    let v = table
        .value_f64(row, attr)
        .ok_or_else(|| DiscoveryError::IncompleteRow { row, attr: name() })?;
    if !v.is_finite() {
        return Err(DiscoveryError::NonFiniteValue { row, attr: name() });
    }
    Ok(v)
}

/// Midrange and half-range of the target's finite values over a partition;
/// `None` when no row has one. The midrange constant's worst absolute
/// error on the partition is exactly the half-range, so drained rules
/// report an honest `ρ`.
fn partition_midrange(table: &Table, target: AttrId, rows: &RowSet) -> Option<(f64, f64)> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for r in rows.iter() {
        if let Some(v) = table.value_f64(r, target) {
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
    }
    lo.is_finite().then(|| ((lo + hi) / 2.0, (hi - lo) / 2.0))
}

/// Proposition 6's shared-fit test for one pooled model: returns
/// `(δ₀, max |r − δ₀|, fraction of rows within ρ_M of f + δ₀)`.
fn share_fit(f: &Model, xs: &[Vec<f64>], y: &[f64], rho_max: f64) -> (f64, f64, f64) {
    debug_assert!(!xs.is_empty());
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut residuals = Vec::with_capacity(xs.len());
    for (x, &t) in xs.iter().zip(y) {
        let r = t - f.predict(x);
        lo = lo.min(r);
        hi = hi.max(r);
        residuals.push(r);
    }
    let delta0 = (lo + hi) / 2.0;
    let mut max_dev = 0.0f64;
    let mut within = 0usize;
    for r in &residuals {
        let dev = (r - delta0).abs();
        max_dev = max_dev.max(dev);
        if dev <= rho_max {
            within += 1;
        }
    }
    (delta0, max_dev, within as f64 / residuals.len() as f64)
}

/// Midrange of the target over the whole instance — the last-resort
/// constant for partitions with no complete rows.
fn global_midrange(table: &Table, cfg: &DiscoveryConfig, rows: &RowSet) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for r in rows.iter() {
        if let Some(v) = table.value_f64(r, cfg.target) {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if lo.is_finite() {
        (lo + hi) / 2.0
    } else {
        0.0
    }
}

/// Line 19: pick the split predicate among the available ones.
///
/// Only *separating* predicates qualify (both sides non-empty — this is
/// what bounds the search tree at one leaf per tuple). `BestResidual`
/// (default) scores each candidate by the weighted variance of the parent
/// model's residuals per side — the model-tree criterion that surfaces
/// regime attributes; `BestVariance` is the raw CART criterion \[9\].
fn choose_split(
    table: &Table,
    rows: &RowSet,
    cfg: &DiscoveryConfig,
    space: &PredicateSpace,
    avail: &[u32],
    residuals: &[(usize, f64)],
) -> Option<u32> {
    let target = cfg.target;
    let is_numeric_target = table.schema().attribute(target).ty() != AttrType::Str;
    debug_assert!(is_numeric_target);
    // Evaluate at most max_split_candidates, spread evenly over `avail`.
    let stride = (avail.len() / cfg.max_split_candidates.max(1)).max(1);
    let mut best: Option<(f64, u32)> = None;
    for &idx in avail.iter().step_by(stride) {
        let p = &space.predicates()[idx as usize];
        if matches!(cfg.split, SplitStrategy::FirstApplicable) {
            // Cheap separation check only.
            let yes = rows.iter().filter(|&r| p.eval(table, r)).count();
            if yes > 0 && yes < rows.len() {
                return Some(idx);
            }
            continue;
        }
        // Single pass: sum/sum-of-squares accumulation per side, over the
        // scored quantity chosen by the strategy.
        let (mut n1, mut s1, mut q1) = (0usize, 0.0f64, 0.0f64);
        let (mut n2, mut s2, mut q2) = (0usize, 0.0f64, 0.0f64);
        match cfg.split {
            SplitStrategy::BestResidual => {
                for &(r, resid) in residuals {
                    if p.eval(table, r) {
                        n1 += 1;
                        s1 += resid;
                        q1 += resid * resid;
                    } else {
                        n2 += 1;
                        s2 += resid;
                        q2 += resid * resid;
                    }
                }
            }
            _ => {
                for r in rows.iter() {
                    let Some(v) = table.value_f64(r, target) else {
                        continue;
                    };
                    if p.eval(table, r) {
                        n1 += 1;
                        s1 += v;
                        q1 += v * v;
                    } else {
                        n2 += 1;
                        s2 += v;
                        q2 += v * v;
                    }
                }
            }
        }
        if n1 == 0 || n2 == 0 {
            continue; // not separating
        }
        let var = |n: usize, s: f64, q: f64| {
            let m = s / n as f64;
            (q / n as f64 - m * m).max(0.0)
        };
        let score = (n1 as f64 * var(n1, s1, q1) + n2 as f64 * var(n2, s2, q2)) / (n1 + n2) as f64;
        if best.map_or(true, |(b, _)| score < b) {
            best = Some((score, idx));
        }
    }
    if best.is_none() && stride > 1 {
        // The strided sample missed every separating predicate (small
        // partitions need fine constants). Coverage quality beats split
        // cost here: the space's sorted-constant lookup finds one in
        // O(|rows| + log |P|). (Predicates consumed on this path never
        // separate their own descendants, so skipping the avail filter is
        // safe — a non-separating pick is simply rejected upstream.)
        return space.separating_candidate(table, rows);
    }
    best.map(|(_, idx)| idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Budget, CancelToken, FaultPlan, PredicateGen};
    use crr_core::LocateStrategy;
    use crr_data::{Schema, Value};
    use crr_models::ModelKind;

    /// y = x on x < 100; y = x - 50 on x >= 100 (same slope: shareable).
    fn two_segment_table() -> Table {
        let schema = Schema::new(vec![("x", AttrType::Float), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for i in 0..200 {
            let x = i as f64;
            let y = if x < 100.0 { x } else { x - 50.0 };
            t.push_row(vec![Value::Float(x), Value::Float(y)]).unwrap();
        }
        t
    }

    fn cfg_for(t: &Table) -> DiscoveryConfig {
        DiscoveryConfig::new(vec![t.attr("x").unwrap()], t.attr("y").unwrap(), 0.5)
    }

    fn space_for(t: &Table, per_attr: usize) -> PredicateSpace {
        PredicateGen::binary(per_attr).generate(t, &[t.attr("x").unwrap()], t.attr("y").unwrap(), 0)
    }

    #[test]
    fn discovers_and_shares_the_segment_model() {
        let t = two_segment_table();
        let cfg = cfg_for(&t);
        let space = space_for(&t, 7);
        let d = discover(&t, &t.all_rows(), &cfg, &space).unwrap();
        // Coverage (Problem 1).
        assert!(d.rules.uncovered(&t, &t.all_rows()).is_empty());
        // Exact piecewise-linear data: error ~ 0.
        let rep = d.rules.evaluate(&t, &t.all_rows(), LocateStrategy::First);
        assert!(rep.rmse < 1e-9, "rmse {}", rep.rmse);
        // The second segment reuses the first segment's model via sharing:
        // fewer distinct models than rules, and at least one shared hit.
        assert!(d.stats.models_shared >= 1, "stats: {:?}", d.stats);
        assert!(
            d.rules.num_distinct_models() < d.rules.len(),
            "{} models for {} rules",
            d.rules.num_distinct_models(),
            d.rules.len()
        );
        // The shared rule carries a y = -50 built-in.
        let shared_rule = d
            .rules
            .rules()
            .iter()
            .find(|r| r.uses_translation())
            .expect("a translated rule");
        // Its built-in shift is the inter-segment offset (±50, which side
        // depends on which segment trained first).
        let b = shared_rule.condition().conjuncts()[0].builtin().unwrap();
        assert!(
            (b.delta_y.abs() - 50.0).abs() < 0.5 + 1e-9,
            "delta_y {}",
            b.delta_y
        );
    }

    #[test]
    fn sharing_disabled_trains_more_models() {
        let t = two_segment_table();
        let cfg = cfg_for(&t).with_sharing(false);
        let space = space_for(&t, 7);
        let d = discover(&t, &t.all_rows(), &cfg, &space).unwrap();
        assert!(d.stats.models_shared == 0);
        assert!(d.stats.models_trained >= 2);
        // Still accurate and covering.
        assert!(d.rules.uncovered(&t, &t.all_rows()).is_empty());
        let rep = d.rules.evaluate(&t, &t.all_rows(), LocateStrategy::First);
        assert!(rep.rmse < 1e-9);
    }

    #[test]
    fn all_rho_respected_or_forced() {
        let t = two_segment_table();
        let cfg = cfg_for(&t);
        let space = space_for(&t, 7);
        let d = discover(&t, &t.all_rows(), &cfg, &space).unwrap();
        // Every rule's rho is honest: no violation on its own partition.
        for rule in d.rules.rules() {
            assert!(rule.find_violation(&t, &t.all_rows()).is_none());
        }
    }

    #[test]
    fn trivial_target_rejected() {
        let t = two_segment_table();
        let y = t.attr("y").unwrap();
        let cfg = DiscoveryConfig::new(vec![y], y, 0.5);
        assert!(matches!(
            discover(&t, &t.all_rows(), &cfg, &PredicateSpace::default()),
            Err(DiscoveryError::TrivialTarget)
        ));
    }

    #[test]
    fn predicate_on_target_rejected() {
        let t = two_segment_table();
        let cfg = cfg_for(&t);
        let space = PredicateSpace::from_predicates(vec![crr_core::Predicate::ge(
            t.attr("y").unwrap(),
            Value::Float(0.0),
        )]);
        assert!(matches!(
            discover(&t, &t.all_rows(), &cfg, &space),
            Err(DiscoveryError::PredicateOnTarget)
        ));
    }

    #[test]
    fn empty_space_forces_single_rule() {
        let t = two_segment_table();
        let cfg = cfg_for(&t);
        let d = discover(&t, &t.all_rows(), &cfg, &PredicateSpace::default()).unwrap();
        // Cannot split: one rule covering everything, bias above rho_max.
        assert_eq!(d.rules.len(), 1);
        assert_eq!(d.stats.forced_accepts, 1);
        assert!(d.rules.rules()[0].rho() > cfg.rho_max);
        assert!(d.rules.uncovered(&t, &t.all_rows()).is_empty());
    }

    #[test]
    fn single_row_instance_gets_exact_constant() {
        let t = two_segment_table();
        let cfg = cfg_for(&t);
        let one = RowSet::from_indices(vec![7]);
        let d = discover(&t, &one, &cfg, &space_for(&t, 3)).unwrap();
        assert_eq!(d.rules.len(), 1);
        assert_eq!(d.rules.rules()[0].rho(), 0.0);
        assert_eq!(d.rules.predict(&t, 7, LocateStrategy::First), Some(7.0));
    }

    #[test]
    fn orders_explore_differently_but_agree_on_coverage() {
        let t = two_segment_table();
        let space = space_for(&t, 7);
        for order in [
            QueueOrder::Decrease,
            QueueOrder::Increase,
            QueueOrder::Random(3),
        ] {
            let cfg = cfg_for(&t).with_order(order);
            let d = discover(&t, &t.all_rows(), &cfg, &space).unwrap();
            assert!(d.rules.uncovered(&t, &t.all_rows()).is_empty(), "{order:?}");
            let rep = d.rules.evaluate(&t, &t.all_rows(), LocateStrategy::First);
            assert!(rep.rmse < 1e-9, "{order:?}");
        }
    }

    #[test]
    fn mlp_family_discovers_with_y_only_sharing() {
        let t = two_segment_table();
        let mut cfg = cfg_for(&t).with_kind(ModelKind::Mlp);
        cfg.rho_max = 20.0; // MLPs are approximate; allow slack
        cfg.fit.mlp.epochs = 150;
        let space = space_for(&t, 3);
        let d = discover(&t, &t.all_rows(), &cfg, &space).unwrap();
        assert!(d.rules.uncovered(&t, &t.all_rows()).is_empty());
        for rule in d.rules.rules() {
            if let Some(b) = rule.condition().conjuncts()[0].builtin() {
                assert!(b.delta_x.iter().all(|&dx| dx == 0.0), "MLP shares y only");
            }
        }
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let t = two_segment_table();
        let cfg = cfg_for(&t);
        let space = space_for(&t, 7);
        let a = discover(&t, &t.all_rows(), &cfg, &space).unwrap();
        let b = discover(&t, &t.all_rows(), &cfg, &space).unwrap();
        assert_eq!(a.rules.len(), b.rules.len());
        for (ra, rb) in a.rules.rules().iter().zip(b.rules.rules()) {
            assert_eq!(ra.condition(), rb.condition());
            assert_eq!(ra.rho(), rb.rho());
        }
    }

    #[test]
    fn noisy_data_within_rho_uses_one_rule() {
        // Bounded noise 0.2 < rho_max 0.5: a single model suffices.
        let schema = Schema::new(vec![("x", AttrType::Float), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for i in 0..100 {
            let x = i as f64;
            let n = if i % 2 == 0 { 0.2 } else { -0.2 };
            t.push_row(vec![Value::Float(x), Value::Float(2.0 * x + n)])
                .unwrap();
        }
        let cfg = cfg_for(&t);
        let d = discover(&t, &t.all_rows(), &cfg, &space_for(&t, 7)).unwrap();
        assert_eq!(d.rules.len(), 1);
        assert!(d.rules.rules()[0].rho() <= 0.5);
    }

    #[test]
    fn zero_deadline_degrades_but_still_covers() {
        let t = two_segment_table();
        let cfg = cfg_for(&t).with_budget(Budget::unlimited().with_deadline(Duration::ZERO));
        let d = discover(&t, &t.all_rows(), &cfg, &space_for(&t, 7)).unwrap();
        assert_eq!(d.outcome, DiscoveryOutcome::DeadlineExceeded);
        // Degraded, not empty: the drained fallback still covers every row.
        assert!(d.rules.len() >= 1);
        assert!(d.rules.uncovered(&t, &t.all_rows()).is_empty());
        assert!(d.stats.drained_partitions >= 1);
        assert_eq!(d.stats.drained_rows, 200);
        // The fallback rho is honest on its own partition.
        for rule in d.rules.rules() {
            assert!(rule.find_violation(&t, &t.all_rows()).is_none());
        }
    }

    #[test]
    fn expansion_cap_trips_budget_exhausted() {
        let t = two_segment_table();
        let cfg = cfg_for(&t).with_budget(Budget::unlimited().with_max_expansions(1));
        let d = discover(&t, &t.all_rows(), &cfg, &space_for(&t, 7)).unwrap();
        assert_eq!(d.outcome, DiscoveryOutcome::BudgetExhausted);
        assert_eq!(d.stats.partitions_explored, 1);
        assert!(d.rules.uncovered(&t, &t.all_rows()).is_empty());
    }

    #[test]
    fn fit_cap_trips_budget_exhausted() {
        let t = two_segment_table();
        let cfg = cfg_for(&t).with_budget(Budget::unlimited().with_max_fits(1));
        let d = discover(&t, &t.all_rows(), &cfg, &space_for(&t, 7)).unwrap();
        assert_eq!(d.outcome, DiscoveryOutcome::BudgetExhausted);
        assert_eq!(d.stats.models_trained, 1);
        assert!(d.rules.uncovered(&t, &t.all_rows()).is_empty());
    }

    #[test]
    fn pre_cancelled_token_stops_first_pop() {
        let t = two_segment_table();
        let token = CancelToken::new();
        token.cancel();
        let cfg = cfg_for(&t).with_cancel(token);
        let d = discover(&t, &t.all_rows(), &cfg, &space_for(&t, 7)).unwrap();
        assert_eq!(d.outcome, DiscoveryOutcome::Cancelled);
        assert_eq!(d.stats.partitions_explored, 0);
        assert!(d.rules.uncovered(&t, &t.all_rows()).is_empty());
    }

    #[test]
    fn unlimited_run_reports_complete() {
        let t = two_segment_table();
        let cfg = cfg_for(&t);
        let d = discover(&t, &t.all_rows(), &cfg, &space_for(&t, 7)).unwrap();
        assert!(d.outcome.is_complete());
        assert_eq!(d.stats.drained_partitions, 0);
        assert_eq!(d.stats.drained_rows, 0);
    }

    #[test]
    fn injected_fit_failure_is_typed() {
        let t = two_segment_table();
        let cfg = cfg_for(&t).with_faults(Arc::new(FaultPlan::new().fail_fit_every(1)));
        assert!(matches!(
            discover(&t, &t.all_rows(), &cfg, &space_for(&t, 7)),
            Err(DiscoveryError::InjectedFault { fit: 1 })
        ));
    }

    #[test]
    fn non_finite_cell_is_typed_error() {
        let mut t = two_segment_table();
        let x = t.attr("x").unwrap();
        t.set_value(13, x, Value::Float(f64::NAN));
        let cfg = cfg_for(&t);
        match discover(&t, &t.all_rows(), &cfg, &space_for(&t, 7)) {
            Err(DiscoveryError::NonFiniteValue { row: 13, attr }) => assert_eq!(attr, "x"),
            other => panic!("expected NonFiniteValue, got {other:?}"),
        }
    }

    #[test]
    fn share_fit_computes_midrange() {
        let f = Model::Linear(crr_models::LinearModel::new(vec![1.0], 0.0));
        let xs: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64]).collect();
        // y = x + 3 exactly: residuals all 3.
        let y: Vec<f64> = xs.iter().map(|x| x[0] + 3.0).collect();
        let (d0, dev, frac) = share_fit(&f, &xs, &y, 0.5);
        assert_eq!(d0, 3.0);
        assert_eq!(dev, 0.0);
        assert_eq!(frac, 1.0);
    }
}
