//! Algorithm 1: CRR searching with model sharing.
//!
//! The implementation follows the paper's pseudo-code line by line; the
//! mapping is noted inline. Key behaviours:
//!
//! * **Sharing before training** (lines 7–10): every partition first tries
//!   the pool `ℱ` of already-trained models with the midrange shift
//!   `δ₀ = (max r + min r)/2` of Proposition 6 — the minimizer of the
//!   maximum absolute residual, so it is the *only* shift that needs
//!   testing.
//! * **Sharing-index ordering** (line 12 + §V-A3): failed partitions
//!   record `ind(C)`, the best fraction of tuples any pooled model covers
//!   within `ρ_M`; children inherit it as queue priority, so
//!   likely-shareable conditions surface first.
//! * **Coverage guarantee** (§V-A2): partitions that cannot be split
//!   further (too small, or no predicate separates them) accept their best
//!   model even when its bias exceeds `ρ_M` — down to the constant-per-
//!   tuple edge case.
//!
//! # The sufficient-statistics fit engine
//!
//! The search loop never re-extracts rows from the [`Table`]. A
//! [`NumericSnapshot`] — column-major buffers of every input plus the
//! target, with a fit-readiness bitmask — is built once per run, and each
//! queue entry carries its partition's fit-ready row indices into those
//! buffers. Under the default [`FitEngine::Moments`], entries additionally
//! carry the partition's [`Moments`] `(XᵀX, Xᵀy, yᵀy, Σx, Σy, n)`:
//!
//! * a split re-accumulates the *smaller* child in O(|child|·d²) and derives
//!   the larger sibling by subtraction from the parent (exact over the split
//!   because addition of per-row outer products is what built the parent);
//! * a fit solves the cached normal equations in O(d³) instead of an
//!   O(n·d²) rebuild at every pop;
//! * residual scans (`ρ`, the shared-pool probes, the sharing index) stream
//!   the columnar buffers, reproducing [`Regressor::predict`] bitwise for
//!   affine models so every reported `ρ` stays honest.
//!
//! The shared-pool scan short-circuits a probe as soon as its running
//! maximum deviation exceeds `ρ_M` *and* the remaining rows provably cannot
//! raise `ind(C)` above the best already seen — and optionally fans the
//! per-model probes across scoped threads
//! ([`crate::parallel::first_match_scan`]) with results byte-identical to
//! the sequential scan.

use crate::{
    DiscoveryConfig, DiscoveryError, DiscoveryOutcome, FitEngine, PredicateSpace, QueueOrder,
    Result, ScanKernel, SplitStrategy,
};
use crr_core::{CompiledConjunction, Conjunction, Crr, Dnf, Predicate, RuleSet};
use crr_data::{AttrId, AttrType, NumericSnapshot, RowSet, Table};
use crr_models::{
    fit_model, try_fit_from_moments, ConstantModel, Model, ModelKind, Moments, Regressor,
    Translation,
};
use crr_obs::{Counter as Ctr, Gauge, MetricsSink, MetricsSnapshot, Phase};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Minimum `|pool| × |fit rows|` before the shared-pool scan fans out over
/// threads — below this the probes are cheaper than the spawns.
const PARALLEL_SCAN_MIN_WORK: usize = 4096;

/// Counters describing one discovery run — the raw material of the paper's
/// learning-time and #rules plots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiscoveryStats {
    /// New models trained (line 13 executions).
    pub models_trained: usize,
    /// Partitions satisfied by a pooled model (lines 7–10 hits).
    pub models_shared: usize,
    /// Conjunctions popped from the queue.
    pub partitions_explored: usize,
    /// Partitions accepted with bias above `ρ_M` to preserve coverage.
    pub forced_accepts: usize,
    /// Rows whose condition attributes were null — not coverable by any
    /// split (only non-zero on tables with nulls outside the target).
    pub uncoverable_rows: usize,
    /// Partitions still queued when the budget tripped, covered with
    /// constant fallback rules instead of being refined (zero on complete
    /// runs).
    pub drained_partitions: usize,
    /// Rows covered by drained-partition fallback rules rather than
    /// refined ones.
    pub drained_rows: usize,
    /// Partitions satisfied by a model adopted from the frozen cross-shard
    /// pool (zero on unsharded runs and on the seed shard).
    pub cross_shard_shares: usize,
    /// Wall-clock time of the run.
    pub learning_time: Duration,
}

/// The outcome of one Algorithm 1 run (a [`crate::DiscoverySession`]
/// shard or the whole instance).
#[derive(Debug, Clone)]
pub struct Discovery {
    /// The discovered rules, in emission order.
    pub rules: RuleSet,
    /// Run counters.
    pub stats: DiscoveryStats,
    /// Why the run stopped: [`DiscoveryOutcome::Complete`] for a full
    /// Algorithm 1 run, otherwise which budget axis (or cancellation)
    /// tripped. Degraded runs still cover every coverable row — queued
    /// partitions are drained with constant fallbacks.
    pub outcome: DiscoveryOutcome,
    /// Structured metrics of the run, frozen from the sink attached via
    /// [`DiscoveryConfig::with_metrics`]. Empty under the no-op default.
    /// If one enabled sink is shared across several runs, this snapshot
    /// holds the *cumulative* values as of this run's end.
    pub metrics: MetricsSnapshot,
}

/// Priority-queue entry: a conjunction, its partition, the predicates still
/// available for splitting it, and the partition's fit state (snapshot row
/// indices plus, under the moments engine, cached sufficient statistics).
struct Entry {
    /// Queue priority (see [`QueueOrder`]).
    priority: f64,
    /// Insertion sequence — deterministic tie-break.
    seq: u64,
    conj: Conjunction,
    rows: RowSet,
    /// Fit-ready rows (every input and the target present), ascending —
    /// indices into the run's [`NumericSnapshot`] buffers.
    fit: Vec<u32>,
    /// Sufficient statistics over `fit`, maintained across splits. `None`
    /// under [`FitEngine::Rescan`] or for families without sufficient
    /// statistics (the MLP).
    moments: Option<Moments>,
    /// Indices into the predicate space usable for further splits.
    avail: Vec<u32>,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on priority; FIFO on ties (lower seq first).
        self.priority
            .total_cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Queue priority of a child carrying its parent's sharing index.
fn priority_for(order: QueueOrder, ind: f64, seq: u64) -> f64 {
    match order {
        QueueOrder::Decrease => ind,
        QueueOrder::Increase => -ind,
        QueueOrder::Random(seed) => {
            // Deterministic hash of (seq, seed) in [0, 1).
            let h = seq
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seed)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            (h >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// A frozen, read-only model pool published by earlier shards. Entries are
/// keyed `(shard_id, seq)` — the shard that trained the model and its
/// publication sequence within that shard — and held in ascending key
/// order. A shard consults it sequentially after a complete local-pool
/// miss, first match wins, so cross-shard sharing is a pure function of
/// the frozen contents: byte-identical however many shards run
/// concurrently.
pub(crate) struct CrossShardPool {
    /// `(shard_id, seq, model)` in publication order.
    pub models: Vec<(usize, u64, Arc<Model>)>,
    /// Worker threads with no shard left to claim, available to assist a
    /// straggler's probe scan (work stealing). Monotonically increasing
    /// over a run; reading it is advisory — a stale low value only means
    /// a scan fans out less than it could have, never a wrong result.
    pub idle: AtomicUsize,
}

impl CrossShardPool {
    /// Current count of retired workers available as scan helpers.
    pub fn idle_workers(&self) -> usize {
        self.idle.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// What one Algorithm 1 run hands back to the sharded runner beyond the
/// public [`Discovery`]: the models this run *trained* (pool pushes, in
/// publication order — adopted cross-shard models are excluded) and the
/// root partition's sufficient statistics, so shard statistics can be
/// merged instead of refit.
pub(crate) struct SearchRun {
    pub discovery: Discovery,
    pub published: Vec<Arc<Model>>,
    pub root_moments: Option<Moments>,
}

/// Algorithm 1 proper, shared by the session front door and the sharded
/// runner. `cross` attaches a frozen cross-shard pool probed after
/// local-pool misses; `None` reproduces single-table discovery exactly.
pub(crate) fn run_search(
    table: &Table,
    rows: &RowSet,
    cfg: &DiscoveryConfig,
    space: &PredicateSpace,
    cross: Option<&CrossShardPool>,
) -> Result<SearchRun> {
    cfg.validate()?;
    // Reflexivity (Proposition 1): refuse trivial targets.
    if cfg.inputs.contains(&cfg.target) {
        return Err(DiscoveryError::TrivialTarget);
    }
    if !table.schema().attribute(cfg.target).ty().is_numeric() {
        return Err(DiscoveryError::NonNumericTarget(
            table.schema().attribute(cfg.target).name().to_string(),
        ));
    }
    // Definition 1: no predicates on Y.
    if space.mentions(cfg.target) {
        return Err(DiscoveryError::PredicateOnTarget);
    }
    if rows.is_empty() {
        return Err(DiscoveryError::EmptyInstance);
    }

    let start = Instant::now();
    // All recording below is fire-and-forget: the sink is never read back,
    // so queue order, fit results and rule output are untouched (the
    // byte-identical regression tests pin this with the sink enabled).
    let mx = &cfg.metrics;
    let t_total = mx.span();
    let mut stats = DiscoveryStats::default();
    let mut rules = RuleSet::new();
    // Line 2: the shared model pool ℱ, most-recently-shared first.
    let mut pool: Vec<Arc<Model>> = Vec::new();
    // Models this run trains, in publication order — the shard runner
    // freezes the seed shard's list into the cross-shard pool. Adopted
    // cross-shard models are deliberately absent (already frozen).
    let mut published: Vec<Arc<Model>> = Vec::new();
    let min_partition = cfg.effective_min_partition();

    // One pass over the table: columnar numeric buffers + readiness mask.
    // Complete rows holding NaN/±Inf surface here as the same typed error
    // the per-pop extraction used to raise.
    let t_snap = mx.span();
    let snap =
        NumericSnapshot::build(table, &cfg.inputs, cfg.target, rows).map_err(|e| match e {
            crr_data::DataError::NonFiniteCell { row, attribute } => {
                DiscoveryError::NonFiniteValue {
                    row,
                    attr: attribute,
                }
            }
            other => DiscoveryError::Data(other),
        })?;
    // Moments apply to the linear family only; the MLP has no sufficient
    // statistics, and with zero features every fit is a constant anyway.
    let use_moments = cfg.engine == FitEngine::Moments
        && matches!(cfg.fit.kind, ModelKind::Linear | ModelKind::Ridge)
        && !cfg.inputs.is_empty();

    // Global fallback for partitions with no usable (X, Y) pairs at all.
    let global_fallback = global_midrange(table, cfg, rows);

    // Line 3: the queue starts from the most general condition C = ∅.
    let mut seq = 0u64;
    let mut queue: BinaryHeap<Entry> = BinaryHeap::new();
    let root_fit = snap.ready_rows(rows);
    let root_moments = if use_moments {
        mx.add(Ctr::MomentsAddRowOps, root_fit.len() as u64);
        Some(accumulate_moments(&snap, &root_fit, cfg.kernel, mx))
    } else {
        None
    };
    // Kept for the caller: sharded discovery merges per-shard root
    // statistics (O(d²)) instead of re-accumulating the whole instance.
    let root_moments_out = root_moments.clone();
    mx.record(Phase::SnapshotBuild, t_snap);
    mx.set_gauge(Gauge::FitRows, root_fit.len() as u64);
    mx.set_gauge(Gauge::InputDims, cfg.inputs.len() as u64);
    mx.incr(Ctr::QueuePushes);
    queue.push(Entry {
        priority: priority_for(cfg.order, 0.0, 0),
        seq: 0,
        conj: Conjunction::top(),
        rows: rows.clone(),
        fit: root_fit,
        moments: root_moments,
        avail: (0..space.len() as u32).collect(),
    });

    // Budget and cancellation checks run at each queue pop; the (default)
    // unlimited-and-uncancellable path skips them entirely, so complete
    // runs pay nothing for the machinery.
    let watched = !cfg.budget.is_unlimited() || cfg.cancel.is_some();
    let mut outcome = DiscoveryOutcome::Complete;

    // Residual scratch, reused across pops.
    let mut resid: Vec<f64> = Vec::new();

    // Compile-once cache for the split chooser: under the compiled kernel
    // every candidate predicate is compiled against this table exactly
    // once per run instead of once per (pop, candidate).
    let split_scratch =
        (cfg.kernel == ScanKernel::Compiled).then(|| SplitScratch::build(table, space, cfg.target));

    // Line 4: main loop.
    while let Some(entry) = queue.pop() {
        if watched {
            mx.incr(Ctr::BudgetChecks);
            if cfg.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                outcome = DiscoveryOutcome::Cancelled;
            } else if let Some(tripped) =
                cfg.budget
                    .check(start, stats.partitions_explored, stats.models_trained)
            {
                outcome = tripped;
            }
            if !outcome.is_complete() {
                mx.incr(match outcome {
                    DiscoveryOutcome::Cancelled => Ctr::Cancellations,
                    DiscoveryOutcome::DeadlineExceeded => Ctr::DeadlineTrips,
                    _ => Ctr::ExhaustionTrips,
                });
                // Graceful degradation: stop refining, but keep Problem 1's
                // coverage guarantee — cover this and every still-queued
                // partition with a constant (the partition's target
                // midrange; the global fallback when it has none).
                let t_drain = mx.span();
                let mut pending = Some(entry);
                while let Some(e) = pending.take().or_else(|| queue.pop()) {
                    if e.rows.is_empty() {
                        continue;
                    }
                    let (c, rho) = partition_midrange(table, cfg.target, &e.rows)
                        .unwrap_or((global_fallback, cfg.rho_max));
                    let model = Arc::new(Model::Constant(ConstantModel::new(c, cfg.inputs.len())));
                    rules.push(Crr::new(
                        cfg.inputs.clone(),
                        cfg.target,
                        model,
                        rho,
                        Dnf::single(e.conj),
                    )?);
                    stats.drained_partitions += 1;
                    stats.drained_rows += e.rows.len();
                    mx.incr(Ctr::DrainedPartitions);
                    mx.add(Ctr::DrainedRows, e.rows.len() as u64);
                    mx.incr(Ctr::RulesEmitted);
                }
                mx.record(Phase::Drain, t_drain);
                break;
            }
        }
        stats.partitions_explored += 1;
        mx.incr(Ctr::QueuePops);
        let Entry {
            conj,
            rows,
            fit,
            moments,
            avail,
            ..
        } = entry;
        if rows.is_empty() {
            continue;
        }

        if fit.is_empty() {
            // Nothing to validate against; cover with the global fallback
            // constant so prediction still answers here.
            let model = Arc::new(Model::Constant(ConstantModel::new(
                global_fallback,
                cfg.inputs.len(),
            )));
            rules.push(Crr::new(
                cfg.inputs.clone(),
                cfg.target,
                model,
                cfg.rho_max,
                Dnf::single(conj),
            )?);
            stats.forced_accepts += 1;
            mx.incr(Ctr::ForcedAccepts);
            mx.incr(Ctr::RulesEmitted);
            continue;
        }

        // Lines 7–10: try to share a pooled model, and in the same pass
        // compute the sharing index ind(C) (line 12). `best_within` counts
        // rows, not fractions — every probe at this pop shares `fit.len()`,
        // so integer comparison keeps the short-circuit bound exact.
        let mut best_within = 0usize;
        let mut shared: Option<(usize, f64, f64)> = None; // (pool idx, rho, delta)
        if cfg.share_models && !pool.is_empty() {
            mx.incr(Ctr::PoolScans);
            let t_scan = mx.span();
            let order_uses_ind = !matches!(cfg.order, QueueOrder::Random(_));
            let parallel_scan = cfg.pool_scan_threads > 1
                && pool.len() >= 2
                && pool.len().saturating_mul(fit.len()) >= PARALLEL_SCAN_MIN_WORK;
            if parallel_scan {
                // When the queue order consumes ind(C), workers evaluate
                // every row: first_match_scan guarantees each probe at or
                // below the winning index completes, so aggregating over
                // that prefix reproduces the sequential ind exactly. Under
                // Random order ind is never read and misses may abort early.
                let mode = if order_uses_ind {
                    ScanMode::Full
                } else {
                    ScanMode::AbortOnMiss
                };
                let (winner, probes) =
                    crate::parallel::first_match_scan(pool.len(), cfg.pool_scan_threads, |i| {
                        let mut buf = Vec::new();
                        let p =
                            share_probe(pool[i].as_ref(), &snap, &fit, cfg.rho_max, &mut buf, mode);
                        let matched = p.max_dev <= cfg.rho_max;
                        (p, matched)
                    });
                mx.incr(Ctr::PoolParallelScans);
                // Metrics determinism: only the prefix at or below the
                // winner is guaranteed fully evaluated, so only it is
                // counted; speculative probes past the winner vary between
                // runs and are discarded unobserved.
                let scanned = winner.map_or(pool.len(), |w| w + 1);
                mx.add(Ctr::PoolProbes, scanned as u64);
                for p in probes.iter().take(scanned).flatten() {
                    best_within = best_within.max(p.within);
                    if p.truncated {
                        mx.incr(Ctr::PoolShortCircuits);
                    }
                }
                if let Some(w) = winner {
                    if let Some(p) = &probes[w] {
                        shared = Some((w, p.max_dev, p.delta0));
                    }
                }
            } else {
                for (i, f) in pool.iter().enumerate() {
                    let mode = if order_uses_ind {
                        ScanMode::AbortBelowFloor(best_within)
                    } else {
                        ScanMode::AbortOnMiss
                    };
                    let p = share_probe(f.as_ref(), &snap, &fit, cfg.rho_max, &mut resid, mode);
                    mx.incr(Ctr::PoolProbes);
                    if p.truncated {
                        mx.incr(Ctr::PoolShortCircuits);
                    }
                    best_within = best_within.max(p.within);
                    if p.max_dev <= cfg.rho_max {
                        shared = Some((i, p.max_dev, p.delta0));
                        break;
                    }
                }
            }
            mx.record(Phase::PoolScan, t_scan);
            mx.incr(if shared.is_some() {
                Ctr::PoolHits
            } else {
                Ctr::PoolMisses
            });
        }
        let ind = best_within as f64 / fit.len() as f64;

        // Cross-shard sharing: only after a *complete* local-pool miss is
        // the frozen pool consulted, sequentially in (shard_id, seq)
        // publication order with first match winning — deterministic
        // regardless of shard scheduling because the pool never changes.
        // Cross probes do not feed ind(C): the sharing index stays a
        // property of this shard's own pool, as in the unsharded run.
        let mut cross_hit: Option<(Arc<Model>, f64, f64)> = None; // (model, rho, delta)
        if cfg.share_models && shared.is_none() {
            if let Some(cp) = cross.filter(|c| !c.models.is_empty()) {
                mx.incr(Ctr::CrossShardPoolProbes);
                let t_scan = mx.span();
                // Work stealing: a straggler whose siblings have retired
                // fans this scan over the idle threads. first_match_scan
                // returns the lowest matching index — the same winner the
                // sequential walk below finds — so stealing changes wall
                // clock, never results. Below two models there is nothing
                // to fan.
                let helpers = cp.idle_workers();
                if helpers > 0 && cp.models.len() >= 2 {
                    mx.incr(Ctr::StealAssists);
                    let (winner, probes) =
                        crate::parallel::first_match_scan(cp.models.len(), 1 + helpers, |i| {
                            let mut buf = Vec::new();
                            let p = share_probe(
                                cp.models[i].2.as_ref(),
                                &snap,
                                &fit,
                                cfg.rho_max,
                                &mut buf,
                                ScanMode::AbortOnMiss,
                            );
                            let matched = p.max_dev <= cfg.rho_max;
                            (p, matched)
                        });
                    if let Some(w) = winner {
                        if let Some(p) = &probes[w] {
                            cross_hit = Some((Arc::clone(&cp.models[w].2), p.max_dev, p.delta0));
                        }
                    }
                } else {
                    for (_, _, f) in &cp.models {
                        let p = share_probe(
                            f.as_ref(),
                            &snap,
                            &fit,
                            cfg.rho_max,
                            &mut resid,
                            ScanMode::AbortOnMiss,
                        );
                        if p.max_dev <= cfg.rho_max {
                            cross_hit = Some((Arc::clone(f), p.max_dev, p.delta0));
                            break;
                        }
                    }
                }
                mx.record(Phase::PoolScan, t_scan);
                mx.incr(if cross_hit.is_some() {
                    Ctr::CrossShardPoolHits
                } else {
                    Ctr::CrossShardPoolMisses
                });
            }
        }
        if let Some((f, rho, delta)) = cross_hit {
            // Adopt the frozen model into the local pool front so this
            // shard's subsequent scans can hit it as a plain local model.
            pool.insert(0, Arc::clone(&f));
            let mut conj = conj;
            if delta.abs() > 1e-12 {
                conj.compose_builtin(
                    &Translation::output_shift(cfg.inputs.len(), delta),
                    cfg.inputs.len(),
                );
            }
            rules.push(Crr::new(
                cfg.inputs.clone(),
                cfg.target,
                f,
                rho,
                Dnf::single(conj),
            )?);
            stats.cross_shard_shares += 1;
            mx.incr(Ctr::RulesEmitted);
            continue;
        }
        if let Some((idx, rho, delta)) = shared {
            // Move-to-front: pool hits cluster (a regime's model fits its
            // siblings), so the next scan should try this model first.
            let f = pool.remove(idx);
            pool.insert(0, Arc::clone(&f));
            // Line 9: C := C ∧ (y = δ).
            let mut conj = conj;
            if delta.abs() > 1e-12 {
                conj.compose_builtin(
                    &Translation::output_shift(cfg.inputs.len(), delta),
                    cfg.inputs.len(),
                );
            }
            rules.push(Crr::new(
                cfg.inputs.clone(),
                cfg.target,
                f,
                rho,
                Dnf::single(conj),
            )?);
            stats.models_shared += 1;
            mx.incr(Ctr::RulesEmitted);
            continue;
        }

        // Line 13: train a new model on D_C (after any injected fault).
        if let Some(faults) = &cfg.faults {
            if let Err(e) = faults.before_fit() {
                mx.incr(Ctr::InjectedFailures);
                return Err(e);
            }
        }
        let t_fit = mx.span();
        let model = match &moments {
            Some(m) => match try_fit_from_moments(m, &cfg.fit) {
                Some(model) => {
                    mx.incr(Ctr::MomentsSolves);
                    model
                }
                // The moments solve declined (VC guard, singular normal
                // equations): same midrange-constant fallback `fit_model`
                // takes, from one pass over the target buffer.
                None => {
                    mx.incr(Ctr::DeclinedSingular);
                    Model::Constant(ConstantModel::new(
                        midrange_of(&snap, &fit),
                        cfg.inputs.len(),
                    ))
                }
            },
            None => {
                mx.incr(Ctr::Rescans);
                let (xs, y) = materialize(&snap, &fit);
                fit_model(&xs, &y, &cfg.fit)?
            }
        };
        mx.record(Phase::Fitting, t_fit);
        mx.incr(match &model {
            Model::Constant(_) => Ctr::FitConstant,
            Model::Linear(_) => Ctr::FitLinear,
            Model::Ridge(_) => Ctr::FitRidge,
            Model::Mlp(_) => Ctr::FitMlp,
        });
        stats.models_trained += 1;
        fill_residuals(&model, &snap, &fit, &mut resid);
        let rho = resid.iter().fold(0.0f64, |m, r| m.max(r.abs()));

        // Line 14: does it generalize to the whole partition within ρ_M?
        let splittable = fit.len() > min_partition && !avail.is_empty();
        if rho <= cfg.rho_max || !splittable {
            if rho > cfg.rho_max {
                stats.forced_accepts += 1;
                mx.incr(Ctr::ForcedAccepts);
            }
            mx.incr(Ctr::RulesEmitted);
            let f = Arc::new(model);
            pool.push(Arc::clone(&f)); // line 17
            published.push(Arc::clone(&f));
            rules.push(Crr::new(
                cfg.inputs.clone(),
                cfg.target,
                f,
                rho,
                Dnf::single(conj),
            )?);
            continue;
        }

        // Lines 19–22: split the condition. The failed model's residuals
        // feed the default (model-tree) split criterion.
        let residuals: Vec<(usize, f64)> = fit
            .iter()
            .zip(&resid)
            .map(|(&r, &e)| (r as usize, e))
            .collect();
        let t_split = mx.span();
        let chosen = choose_split(
            table,
            &rows,
            cfg,
            space,
            &avail,
            &residuals,
            split_scratch.as_ref(),
        );
        mx.record(Phase::SplitSelection, t_split);
        match chosen {
            Some(split_idx) => {
                mx.incr(Ctr::Splits);
                let p = space.predicates()[split_idx as usize].clone();
                let np = p.negate();
                // p and ¬p are filtered independently — on a null condition
                // attribute *both* are false, so this is not a partition.
                let t_scan = mx.span();
                let yes = select_side(table, &rows, &p, cfg.kernel, mx);
                let no = select_side(table, &rows, &np, cfg.kernel, mx);
                mx.record(Phase::PredScan, t_scan);
                // Rows satisfying neither side have a null condition
                // attribute; no condition can ever select them.
                stats.uncoverable_rows += rows.len() - yes.len() - no.len();
                let child_avail: Vec<u32> =
                    avail.iter().copied().filter(|&i| i != split_idx).collect();
                let yes_fit = intersect_sorted(&fit, yes.as_slice());
                let no_fit = intersect_sorted(&fit, no.as_slice());
                let (yes_m, no_m) =
                    split_moments(moments, &snap, &fit, &yes_fit, &no_fit, cfg.kernel, mx);
                for (child_conj, child_rows, child_fit, child_m) in [
                    (conj.and(p), yes, yes_fit, yes_m),
                    (conj.and(np), no, no_fit, no_m),
                ] {
                    if child_rows.is_empty() {
                        continue;
                    }
                    seq += 1;
                    mx.incr(Ctr::QueuePushes);
                    queue.push(Entry {
                        priority: priority_for(cfg.order, ind, seq),
                        seq,
                        conj: child_conj,
                        rows: child_rows,
                        fit: child_fit,
                        moments: child_m,
                        avail: child_avail.clone(),
                    });
                }
            }
            None => {
                // No predicate separates this partition: accept for
                // coverage (the §V-A2 edge case).
                let f = Arc::new(model);
                pool.push(Arc::clone(&f));
                published.push(Arc::clone(&f));
                rules.push(Crr::new(
                    cfg.inputs.clone(),
                    cfg.target,
                    f,
                    rho,
                    Dnf::single(conj),
                )?);
                stats.forced_accepts += 1;
                mx.incr(Ctr::ForcedAccepts);
                mx.incr(Ctr::RulesEmitted);
            }
        }
    }

    stats.learning_time = start.elapsed();
    mx.set_gauge(Gauge::PoolModels, pool.len() as u64);
    mx.record(Phase::Total, t_total);
    Ok(SearchRun {
        discovery: Discovery {
            rules,
            stats,
            outcome,
            metrics: cfg.metrics.snapshot(),
        },
        published,
        root_moments: root_moments_out,
    })
}

/// Filters one side of a split — [`ScanKernel::Compiled`] runs the
/// cache-blocked predicate kernel over the partition's row slice,
/// [`ScanKernel::Interpreted`] the per-row `Predicate::eval` oracle. The two
/// are byte-identical (pinned by `crr_core::compiled`'s equivalence tests
/// and the kernel regression tests below).
fn select_side(
    table: &Table,
    rows: &RowSet,
    p: &Predicate,
    kernel: ScanKernel,
    mx: &MetricsSink,
) -> RowSet {
    mx.add(Ctr::KernelScanRows, rows.len() as u64);
    match kernel {
        ScanKernel::Compiled => {
            mx.incr(Ctr::KernelCompiledScans);
            CompiledConjunction::from_preds(std::slice::from_ref(p), table).select(rows)
        }
        ScanKernel::Interpreted => {
            mx.incr(Ctr::KernelInterpretedScans);
            rows.filter(|r| p.eval(table, r))
        }
    }
}

/// Accumulates the sufficient statistics of `fit` rows from the snapshot
/// buffers. [`ScanKernel::Compiled`] uses the batched cell-major
/// [`Moments::add_rows`] kernel; [`ScanKernel::Interpreted`] the row-by-row
/// gather. Both visit rows in ascending order with one accumulator chain
/// per cell, so the sums are bitwise identical — and either way a child
/// split re-accumulates in the same order, so parent = yes-child + no-child
/// holds exactly as floating-point sums.
fn accumulate_moments(
    snap: &NumericSnapshot,
    fit: &[u32],
    kernel: ScanKernel,
    mx: &MetricsSink,
) -> Moments {
    let t = mx.span();
    let d = snap.num_inputs();
    let mut m = Moments::zeros(d);
    match kernel {
        ScanKernel::Compiled => {
            mx.incr(Ctr::KernelBatchAccumulates);
            let cols: Vec<&[f64]> = (0..d).map(|j| snap.input(j)).collect();
            m.add_rows(&cols, snap.target(), fit);
        }
        ScanKernel::Interpreted => {
            let mut x = vec![0.0; d];
            for &r in fit {
                snap.gather_x(r as usize, &mut x);
                m.add_row(&x, snap.target()[r as usize]);
            }
        }
    }
    mx.record(Phase::GramAccumulate, t);
    m
}

/// Derives both children's moments from a split of `fit` into
/// `yes_fit`/`no_fit`: the smaller child is re-accumulated, the larger is
/// the parent minus the sibling (O(min·d²) instead of O(n·d²)). When fit
/// rows fall off both sides (a null condition attribute), subtraction no
/// longer matches and both sides are rebuilt fresh.
fn split_moments(
    parent: Option<Moments>,
    snap: &NumericSnapshot,
    fit: &[u32],
    yes_fit: &[u32],
    no_fit: &[u32],
    kernel: ScanKernel,
    mx: &MetricsSink,
) -> (Option<Moments>, Option<Moments>) {
    let Some(parent) = parent else {
        return (None, None);
    };
    if yes_fit.len() + no_fit.len() == fit.len() {
        let small_len = yes_fit.len().min(no_fit.len());
        mx.incr(Ctr::ChildReaccumulations);
        mx.add(Ctr::MomentsAddRowOps, small_len as u64);
        mx.incr(Ctr::SiblingSubtractions);
        mx.incr(Ctr::MomentsSubtractOps);
        if yes_fit.len() <= no_fit.len() {
            let small = accumulate_moments(snap, yes_fit, kernel, mx);
            let mut large = parent;
            large.subtract(&small);
            (Some(small), Some(large))
        } else {
            let small = accumulate_moments(snap, no_fit, kernel, mx);
            let mut large = parent;
            large.subtract(&small);
            (Some(large), Some(small))
        }
    } else {
        mx.incr(Ctr::FullRebuilds);
        mx.add(Ctr::MomentsAddRowOps, (yes_fit.len() + no_fit.len()) as u64);
        (
            Some(accumulate_moments(snap, yes_fit, kernel, mx)),
            Some(accumulate_moments(snap, no_fit, kernel, mx)),
        )
    }
}

/// Sorted-slice intersection (both inputs ascending, as [`RowSet`] and the
/// snapshot's ready lists guarantee).
fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Rebuilds row-major `(xs, y)` from the snapshot buffers — the
/// [`FitEngine::Rescan`] baseline and the MLP's raw-row path.
fn materialize(snap: &NumericSnapshot, fit: &[u32]) -> (Vec<Vec<f64>>, Vec<f64>) {
    let d = snap.num_inputs();
    let mut xs = Vec::with_capacity(fit.len());
    let mut y = Vec::with_capacity(fit.len());
    for &r in fit {
        let r = r as usize;
        let mut x = vec![0.0; d];
        snap.gather_x(r, &mut x);
        xs.push(x);
        y.push(snap.target()[r]);
    }
    (xs, y)
}

/// Midrange of the target over `fit` rows — the constant fallback when the
/// moments solve declines, with the same min/max fold [`ConstantModel::fit`]
/// uses so both engines produce the identical constant.
fn midrange_of(snap: &NumericSnapshot, fit: &[u32]) -> f64 {
    let ty = snap.target();
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &r in fit {
        let v = ty[r as usize];
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo + hi) / 2.0
}

/// Writes `t − f(x)` for every fit row into `out`, streaming the snapshot's
/// column buffers. For affine models the accumulation order matches
/// [`crr_linalg::dot`]'s sequential fold exactly, so the residuals are
/// bitwise what `Regressor::predict` would produce on materialized rows —
/// required for rule biases to stay honest under `find_violation`.
fn fill_residuals(f: &Model, snap: &NumericSnapshot, fit: &[u32], out: &mut Vec<f64>) {
    out.clear();
    out.reserve(fit.len());
    let ty = snap.target();
    match f.as_affine() {
        Some((w, b)) => {
            for &r in fit {
                let r = r as usize;
                let mut acc = 0.0;
                for (j, wj) in w.iter().enumerate() {
                    acc += wj * snap.input(j)[r];
                }
                out.push(ty[r] - (b + acc));
            }
        }
        None => {
            let mut x = vec![0.0; snap.num_inputs()];
            for &r in fit {
                let r = r as usize;
                snap.gather_x(r, &mut x);
                out.push(ty[r] - f.predict(&x));
            }
        }
    }
}

/// How far a shared-pool probe may cut its deviation scan short.
#[derive(Clone, Copy)]
enum ScanMode {
    /// Evaluate every row — parallel workers under ind-consuming orders,
    /// where a truncated `within` count would perturb queue priorities.
    Full,
    /// Abort as soon as the model provably cannot fit (`max_dev > ρ_M`);
    /// the order never reads ind(C), so the truncated count is harmless.
    AbortOnMiss,
    /// Abort once the model provably cannot fit *and* the rows left cannot
    /// lift `within` above `floor` (the best count seen so far) — the final
    /// `max` over probes is provably unchanged, keeping ind(C) exact.
    AbortBelowFloor(usize),
}

/// One probe's result: Proposition 6's midrange shift, the worst deviation
/// from it, how many rows land within `ρ_M` (the ind numerator), and
/// whether the deviation scan stopped before the last row.
struct ShareProbe {
    delta0: f64,
    max_dev: f64,
    within: usize,
    truncated: bool,
}

/// Proposition 6's shared-fit test for one pooled model over the snapshot.
fn share_probe(
    f: &Model,
    snap: &NumericSnapshot,
    fit: &[u32],
    rho_max: f64,
    resid: &mut Vec<f64>,
    mode: ScanMode,
) -> ShareProbe {
    debug_assert!(!fit.is_empty());
    fill_residuals(f, snap, fit, resid);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &r in resid.iter() {
        lo = lo.min(r);
        hi = hi.max(r);
    }
    let delta0 = (lo + hi) / 2.0;
    let n = resid.len();
    let mut max_dev = 0.0f64;
    let mut within = 0usize;
    let mut truncated = false;
    for (i, r) in resid.iter().enumerate() {
        let dev = (r - delta0).abs();
        max_dev = max_dev.max(dev);
        if dev <= rho_max {
            within += 1;
        }
        if max_dev > rho_max {
            match mode {
                ScanMode::Full => {}
                ScanMode::AbortOnMiss => {
                    truncated = i + 1 < n;
                    break;
                }
                ScanMode::AbortBelowFloor(floor) => {
                    // Even if every remaining row counted, `within` could
                    // not beat the floor: stop.
                    if within + (n - i - 1) <= floor {
                        truncated = i + 1 < n;
                        break;
                    }
                }
            }
        }
    }
    ShareProbe {
        delta0,
        max_dev,
        within,
        truncated,
    }
}

/// Row-major variant of the shared-fit test: returns
/// `(δ₀, max |r − δ₀|, fraction of rows within ρ_M of f + δ₀)`.
///
/// This is the pre-snapshot formulation, kept public as the benchmark
/// baseline [`share_fit_snapshot`] is measured against.
pub fn share_fit_rows(f: &Model, xs: &[Vec<f64>], y: &[f64], rho_max: f64) -> (f64, f64, f64) {
    debug_assert!(!xs.is_empty());
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut residuals = Vec::with_capacity(xs.len());
    for (x, &t) in xs.iter().zip(y) {
        let r = t - f.predict(x);
        lo = lo.min(r);
        hi = hi.max(r);
        residuals.push(r);
    }
    let delta0 = (lo + hi) / 2.0;
    let mut max_dev = 0.0f64;
    let mut within = 0usize;
    for r in &residuals {
        let dev = (r - delta0).abs();
        max_dev = max_dev.max(dev);
        if dev <= rho_max {
            within += 1;
        }
    }
    (delta0, max_dev, within as f64 / residuals.len() as f64)
}

/// Columnar variant of [`share_fit_rows`] over a snapshot — the engine the
/// search loop uses, exported for the benchmark harness. Returns the same
/// `(δ₀, max dev, fraction)` triple.
pub fn share_fit_snapshot(
    f: &Model,
    snap: &NumericSnapshot,
    fit: &[u32],
    rho_max: f64,
) -> (f64, f64, f64) {
    let mut buf = Vec::new();
    let p = share_probe(f, snap, fit, rho_max, &mut buf, ScanMode::Full);
    (p.delta0, p.max_dev, p.within as f64 / fit.len() as f64)
}

/// Midrange and half-range of the target's finite values over a partition;
/// `None` when no row has one. The midrange constant's worst absolute
/// error on the partition is exactly the half-range, so drained rules
/// report an honest `ρ`.
pub(crate) fn partition_midrange(
    table: &Table,
    target: AttrId,
    rows: &RowSet,
) -> Option<(f64, f64)> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for r in rows.iter() {
        if let Some(v) = table.value_f64(r, target) {
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
    }
    lo.is_finite().then(|| ((lo + hi) / 2.0, (hi - lo) / 2.0))
}

/// Midrange of the target over the whole instance — the last-resort
/// constant for partitions with no complete rows.
pub(crate) fn global_midrange(table: &Table, cfg: &DiscoveryConfig, rows: &RowSet) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for r in rows.iter() {
        if let Some(v) = table.value_f64(r, cfg.target) {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if lo.is_finite() {
        (lo + hi) / 2.0
    } else {
        0.0
    }
}

/// Line 19: pick the split predicate among the available ones.
///
/// Only *separating* predicates qualify (both sides non-empty — this is
/// what bounds the search tree at one leaf per tuple). `BestResidual`
/// (default) scores each candidate by the weighted variance of the parent
/// model's residuals per side — the model-tree criterion that surfaces
/// regime attributes; `BestVariance` is the raw CART criterion \[9\].
/// Per-run scratch for the compiled split chooser: every candidate
/// predicate compiled against the table exactly once, plus the target
/// column densified to a flat f64 buffer. NaN marks a null cell — the
/// snapshot build already rejected non-finite data cells over the run's
/// rows, so the sentinel is unambiguous.
struct SplitScratch<'t> {
    compiled: Vec<CompiledConjunction<'t>>,
    target: Vec<f64>,
}

impl<'t> SplitScratch<'t> {
    fn build(table: &'t Table, space: &PredicateSpace, target: AttrId) -> SplitScratch<'t> {
        SplitScratch {
            compiled: space
                .predicates()
                .iter()
                .map(|p| CompiledConjunction::from_preds(std::slice::from_ref(p), table))
                .collect(),
            target: (0..table.num_rows())
                .map(|r| table.value_f64(r, target).unwrap_or(f64::NAN))
                .collect(),
        }
    }
}

fn choose_split(
    table: &Table,
    rows: &RowSet,
    cfg: &DiscoveryConfig,
    space: &PredicateSpace,
    avail: &[u32],
    residuals: &[(usize, f64)],
    scratch: Option<&SplitScratch<'_>>,
) -> Option<u32> {
    let target = cfg.target;
    let is_numeric_target = table.schema().attribute(target).ty() != AttrType::Str;
    debug_assert!(is_numeric_target);
    // Under the compiled kernel every candidate is a blocked columnar
    // select into this reused buffer; a two-pointer merge of the (sorted)
    // selection against the partition then feeds the *same* accumulators in
    // the *same* row order as the interpreted per-row branch, so scores —
    // and therefore the chosen split — are bitwise identical.
    let mut sel: Vec<u32> = Vec::new();
    // Rows the BestResidual criterion scores (ascending, mirrors `fit`).
    let resid_rows: Vec<u32> = residuals.iter().map(|&(r, _)| r as u32).collect();
    // Evaluate at most max_split_candidates, spread evenly over `avail`.
    let stride = (avail.len() / cfg.max_split_candidates.max(1)).max(1);
    let mut best: Option<(f64, u32)> = None;
    for &idx in avail.iter().step_by(stride) {
        let p = &space.predicates()[idx as usize];
        if matches!(cfg.split, SplitStrategy::FirstApplicable) {
            // Cheap separation check only.
            let yes = match scratch {
                Some(sc) => sc.compiled[idx as usize].count(rows.as_slice()),
                None => rows.iter().filter(|&r| p.eval(table, r)).count(),
            };
            if yes > 0 && yes < rows.len() {
                return Some(idx);
            }
            continue;
        }
        // Single pass: sum/sum-of-squares accumulation per side, over the
        // scored quantity chosen by the strategy.
        let (mut n1, mut s1, mut q1) = (0usize, 0.0f64, 0.0f64);
        let (mut n2, mut s2, mut q2) = (0usize, 0.0f64, 0.0f64);
        if let Some(sc) = scratch {
            let cp = &sc.compiled[idx as usize];
            match cfg.split {
                SplitStrategy::BestResidual => {
                    cp.select_into(&resid_rows, &mut sel);
                    let mut j = 0;
                    for &(r, resid) in residuals {
                        if j < sel.len() && sel[j] == r as u32 {
                            j += 1;
                            n1 += 1;
                            s1 += resid;
                            q1 += resid * resid;
                        } else {
                            n2 += 1;
                            s2 += resid;
                            q2 += resid * resid;
                        }
                    }
                }
                _ => {
                    cp.select_into(rows.as_slice(), &mut sel);
                    let mut j = 0;
                    for r in rows.iter() {
                        let hit = j < sel.len() && sel[j] == r as u32;
                        if hit {
                            j += 1;
                        }
                        let v = sc.target[r];
                        if v.is_nan() {
                            continue;
                        }
                        if hit {
                            n1 += 1;
                            s1 += v;
                            q1 += v * v;
                        } else {
                            n2 += 1;
                            s2 += v;
                            q2 += v * v;
                        }
                    }
                }
            }
        } else {
            match cfg.split {
                SplitStrategy::BestResidual => {
                    for &(r, resid) in residuals {
                        if p.eval(table, r) {
                            n1 += 1;
                            s1 += resid;
                            q1 += resid * resid;
                        } else {
                            n2 += 1;
                            s2 += resid;
                            q2 += resid * resid;
                        }
                    }
                }
                _ => {
                    for r in rows.iter() {
                        let Some(v) = table.value_f64(r, target) else {
                            continue;
                        };
                        if p.eval(table, r) {
                            n1 += 1;
                            s1 += v;
                            q1 += v * v;
                        } else {
                            n2 += 1;
                            s2 += v;
                            q2 += v * v;
                        }
                    }
                }
            }
        }
        if n1 == 0 || n2 == 0 {
            continue; // not separating
        }
        let var = |n: usize, s: f64, q: f64| {
            let m = s / n as f64;
            (q / n as f64 - m * m).max(0.0)
        };
        let score = (n1 as f64 * var(n1, s1, q1) + n2 as f64 * var(n2, s2, q2)) / (n1 + n2) as f64;
        if best.is_none_or(|(b, _)| score < b) {
            best = Some((score, idx));
        }
    }
    if best.is_none() && stride > 1 {
        // The strided sample missed every separating predicate (small
        // partitions need fine constants). Coverage quality beats split
        // cost here: the space's sorted-constant lookup finds one in
        // O(|rows| + log |P|). (Predicates consumed on this path never
        // separate their own descendants, so skipping the avail filter is
        // safe — a non-separating pick is simply rejected upstream.)
        return space.separating_candidate(table, rows);
    }
    best.map(|(_, idx)| idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Budget, CancelToken, FaultPlan, PredicateGen};
    use crr_core::LocateStrategy;
    use crr_data::{Schema, Value};
    use crr_models::ModelKind;

    /// Test-local positional entry over [`run_search`], standing in for
    /// the removed public `discover` wrapper at every unit-test call site.
    fn discover(
        table: &Table,
        rows: &RowSet,
        cfg: &DiscoveryConfig,
        space: &PredicateSpace,
    ) -> Result<Discovery> {
        run_search(table, rows, cfg, space, None).map(|r| r.discovery)
    }

    /// y = x on x < 100; y = x - 50 on x >= 100 (same slope: shareable).
    fn two_segment_table() -> Table {
        let schema = Schema::new(vec![("x", AttrType::Float), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for i in 0..200 {
            let x = i as f64;
            let y = if x < 100.0 { x } else { x - 50.0 };
            t.push_row(vec![Value::Float(x), Value::Float(y)]).unwrap();
        }
        t
    }

    fn cfg_for(t: &Table) -> DiscoveryConfig {
        DiscoveryConfig::new(vec![t.attr("x").unwrap()], t.attr("y").unwrap(), 0.5)
    }

    fn space_for(t: &Table, per_attr: usize) -> PredicateSpace {
        PredicateGen::binary(per_attr).generate(t, &[t.attr("x").unwrap()], t.attr("y").unwrap(), 0)
    }

    #[test]
    fn discovers_and_shares_the_segment_model() {
        let t = two_segment_table();
        let cfg = cfg_for(&t);
        let space = space_for(&t, 7);
        let d = discover(&t, &t.all_rows(), &cfg, &space).unwrap();
        // Coverage (Problem 1).
        assert!(d.rules.uncovered(&t, &t.all_rows()).is_empty());
        // Exact piecewise-linear data: error ~ 0.
        let rep = d.rules.evaluate(&t, &t.all_rows(), LocateStrategy::First);
        assert!(rep.rmse < 1e-9, "rmse {}", rep.rmse);
        // The second segment reuses the first segment's model via sharing:
        // fewer distinct models than rules, and at least one shared hit.
        assert!(d.stats.models_shared >= 1, "stats: {:?}", d.stats);
        assert!(
            d.rules.num_distinct_models() < d.rules.len(),
            "{} models for {} rules",
            d.rules.num_distinct_models(),
            d.rules.len()
        );
        // The shared rule carries a y = -50 built-in.
        let shared_rule = d
            .rules
            .rules()
            .iter()
            .find(|r| r.uses_translation())
            .expect("a translated rule");
        // Its built-in shift is the inter-segment offset (±50, which side
        // depends on which segment trained first).
        let b = shared_rule.condition().conjuncts()[0].builtin().unwrap();
        assert!(
            (b.delta_y.abs() - 50.0).abs() < 0.5 + 1e-9,
            "delta_y {}",
            b.delta_y
        );
    }

    #[test]
    fn sharing_disabled_trains_more_models() {
        let t = two_segment_table();
        let cfg = cfg_for(&t).with_sharing(false);
        let space = space_for(&t, 7);
        let d = discover(&t, &t.all_rows(), &cfg, &space).unwrap();
        assert!(d.stats.models_shared == 0);
        assert!(d.stats.models_trained >= 2);
        // Still accurate and covering.
        assert!(d.rules.uncovered(&t, &t.all_rows()).is_empty());
        let rep = d.rules.evaluate(&t, &t.all_rows(), LocateStrategy::First);
        assert!(rep.rmse < 1e-9);
    }

    #[test]
    fn all_rho_respected_or_forced() {
        let t = two_segment_table();
        let cfg = cfg_for(&t);
        let space = space_for(&t, 7);
        let d = discover(&t, &t.all_rows(), &cfg, &space).unwrap();
        // Every rule's rho is honest: no violation on its own partition.
        for rule in d.rules.rules() {
            assert!(rule.find_violation(&t, &t.all_rows()).is_none());
        }
    }

    #[test]
    fn trivial_target_rejected() {
        let t = two_segment_table();
        let y = t.attr("y").unwrap();
        let cfg = DiscoveryConfig::new(vec![y], y, 0.5);
        assert!(matches!(
            discover(&t, &t.all_rows(), &cfg, &PredicateSpace::default()),
            Err(DiscoveryError::TrivialTarget)
        ));
    }

    #[test]
    fn predicate_on_target_rejected() {
        let t = two_segment_table();
        let cfg = cfg_for(&t);
        let space = PredicateSpace::from_predicates(vec![crr_core::Predicate::ge(
            t.attr("y").unwrap(),
            Value::Float(0.0),
        )]);
        assert!(matches!(
            discover(&t, &t.all_rows(), &cfg, &space),
            Err(DiscoveryError::PredicateOnTarget)
        ));
    }

    #[test]
    fn empty_space_forces_single_rule() {
        let t = two_segment_table();
        let cfg = cfg_for(&t);
        let d = discover(&t, &t.all_rows(), &cfg, &PredicateSpace::default()).unwrap();
        // Cannot split: one rule covering everything, bias above rho_max.
        assert_eq!(d.rules.len(), 1);
        assert_eq!(d.stats.forced_accepts, 1);
        assert!(d.rules.rules()[0].rho() > cfg.rho_max);
        assert!(d.rules.uncovered(&t, &t.all_rows()).is_empty());
    }

    #[test]
    fn single_row_instance_gets_exact_constant() {
        let t = two_segment_table();
        let cfg = cfg_for(&t);
        let one = RowSet::from_indices(vec![7]);
        let d = discover(&t, &one, &cfg, &space_for(&t, 3)).unwrap();
        assert_eq!(d.rules.len(), 1);
        assert_eq!(d.rules.rules()[0].rho(), 0.0);
        assert_eq!(d.rules.predict(&t, 7, LocateStrategy::First), Some(7.0));
    }

    #[test]
    fn orders_explore_differently_but_agree_on_coverage() {
        let t = two_segment_table();
        let space = space_for(&t, 7);
        for order in [
            QueueOrder::Decrease,
            QueueOrder::Increase,
            QueueOrder::Random(3),
        ] {
            let cfg = cfg_for(&t).with_order(order);
            let d = discover(&t, &t.all_rows(), &cfg, &space).unwrap();
            assert!(d.rules.uncovered(&t, &t.all_rows()).is_empty(), "{order:?}");
            let rep = d.rules.evaluate(&t, &t.all_rows(), LocateStrategy::First);
            assert!(rep.rmse < 1e-9, "{order:?}");
        }
    }

    #[test]
    fn mlp_family_discovers_with_y_only_sharing() {
        let t = two_segment_table();
        let mut cfg = cfg_for(&t).with_kind(ModelKind::Mlp);
        cfg.rho_max = 20.0; // MLPs are approximate; allow slack
        cfg.fit.mlp.epochs = 150;
        let space = space_for(&t, 3);
        let d = discover(&t, &t.all_rows(), &cfg, &space).unwrap();
        assert!(d.rules.uncovered(&t, &t.all_rows()).is_empty());
        for rule in d.rules.rules() {
            if let Some(b) = rule.condition().conjuncts()[0].builtin() {
                assert!(b.delta_x.iter().all(|&dx| dx == 0.0), "MLP shares y only");
            }
        }
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let t = two_segment_table();
        let cfg = cfg_for(&t);
        let space = space_for(&t, 7);
        let a = discover(&t, &t.all_rows(), &cfg, &space).unwrap();
        let b = discover(&t, &t.all_rows(), &cfg, &space).unwrap();
        assert_eq!(a.rules.len(), b.rules.len());
        for (ra, rb) in a.rules.rules().iter().zip(b.rules.rules()) {
            assert_eq!(ra.condition(), rb.condition());
            assert_eq!(ra.rho(), rb.rho());
        }
    }

    #[test]
    fn engines_agree_on_coverage_and_accuracy() {
        let t = two_segment_table();
        let space = space_for(&t, 7);
        for kind in [ModelKind::Linear, ModelKind::Ridge] {
            let base = cfg_for(&t).with_kind(kind);
            let m = discover(
                &t,
                &t.all_rows(),
                &base.clone().with_engine(FitEngine::Moments),
                &space,
            )
            .unwrap();
            let r = discover(
                &t,
                &t.all_rows(),
                &base.with_engine(FitEngine::Rescan),
                &space,
            )
            .unwrap();
            for d in [&m, &r] {
                assert!(d.rules.uncovered(&t, &t.all_rows()).is_empty(), "{kind:?}");
            }
            // Same search decisions on this well-conditioned data: the
            // engines solve the same normal equations.
            assert_eq!(m.rules.len(), r.rules.len(), "{kind:?}");
            assert_eq!(m.stats.models_shared, r.stats.models_shared, "{kind:?}");
            // OLS is exact on this data; ridge carries its λ-bias, but both
            // stay well inside ρ_M.
            let rep = m.rules.evaluate(&t, &t.all_rows(), LocateStrategy::First);
            assert!(rep.rmse < 1e-2, "{kind:?}: rmse {}", rep.rmse);
        }
    }

    #[test]
    fn parallel_pool_scan_is_byte_identical() {
        // Force the parallel gate open: tiny threshold is not configurable,
        // so use enough rows that |pool| × |fit| crosses it.
        let schema = Schema::new(vec![("x", AttrType::Float), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for i in 0..4096 {
            let x = i as f64;
            let seg = (i / 1024) as f64;
            t.push_row(vec![Value::Float(x), Value::Float(x - 40.0 * seg)])
                .unwrap();
        }
        let space = space_for(&t, 15);
        for order in [QueueOrder::Decrease, QueueOrder::Random(11)] {
            let seq_cfg = cfg_for(&t).with_order(order);
            let par_cfg = seq_cfg.clone().with_pool_scan_threads(4);
            let a = discover(&t, &t.all_rows(), &seq_cfg, &space).unwrap();
            let b = discover(&t, &t.all_rows(), &par_cfg, &space).unwrap();
            assert_eq!(a.rules.len(), b.rules.len(), "{order:?}");
            for (ra, rb) in a.rules.rules().iter().zip(b.rules.rules()) {
                assert_eq!(ra.condition(), rb.condition(), "{order:?}");
                assert_eq!(ra.rho().to_bits(), rb.rho().to_bits(), "{order:?}");
            }
            assert_eq!(a.stats.models_shared, b.stats.models_shared, "{order:?}");
            assert_eq!(a.stats.models_trained, b.stats.models_trained, "{order:?}");
        }
    }

    #[test]
    fn scan_kernels_are_byte_identical() {
        // Nulls in the condition attribute exercise the kernel's null lane:
        // such rows satisfy neither p nor ¬p, so `uncoverable_rows` must
        // agree too. Both kernels must make identical search decisions and
        // emit bitwise-identical rules.
        let schema = Schema::new(vec![("x", AttrType::Float), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for i in 0..300 {
            let x = i as f64;
            let y = if x < 150.0 { 2.0 * x } else { 2.0 * x - 70.0 };
            let xv = if i % 37 == 0 {
                Value::Null
            } else {
                Value::Float(x)
            };
            t.push_row(vec![xv, Value::Float(y)]).unwrap();
        }
        let space = space_for(&t, 9);
        for split in [
            SplitStrategy::BestResidual,
            SplitStrategy::BestVariance,
            SplitStrategy::FirstApplicable,
        ] {
            let mut c_cfg = cfg_for(&t);
            c_cfg.split = split;
            let i_cfg = c_cfg.clone().with_kernel(ScanKernel::Interpreted);
            let a = discover(&t, &t.all_rows(), &c_cfg, &space).unwrap();
            let b = discover(&t, &t.all_rows(), &i_cfg, &space).unwrap();
            assert_eq!(a.rules.len(), b.rules.len(), "{split:?}");
            for (ra, rb) in a.rules.rules().iter().zip(b.rules.rules()) {
                assert_eq!(ra.condition(), rb.condition(), "{split:?}");
                assert_eq!(ra.rho().to_bits(), rb.rho().to_bits(), "{split:?}");
            }
            assert_eq!(a.stats.models_trained, b.stats.models_trained, "{split:?}");
            assert_eq!(a.stats.models_shared, b.stats.models_shared, "{split:?}");
            assert_eq!(
                a.stats.uncoverable_rows, b.stats.uncoverable_rows,
                "{split:?}"
            );
        }
    }

    #[test]
    fn kernel_counters_attribute_scans_to_one_engine() {
        let t = two_segment_table();
        let space = space_for(&t, 7);
        for (kernel, live, dead) in [
            (ScanKernel::Compiled, "compiled_scans", "interpreted_scans"),
            (
                ScanKernel::Interpreted,
                "interpreted_scans",
                "compiled_scans",
            ),
        ] {
            let sink = MetricsSink::enabled();
            let cfg = cfg_for(&t).with_kernel(kernel).with_metrics(sink.clone());
            let d = discover(&t, &t.all_rows(), &cfg, &space).unwrap();
            let count = |s, n| d.metrics.count(s, n).unwrap();
            // Each split filters both sides through exactly one engine.
            assert_eq!(count("kernels", live), 2 * count("queue", "splits"));
            assert_eq!(count("kernels", dead), 0);
            if kernel == ScanKernel::Compiled {
                // Every moments build goes through the batched kernel:
                // the root plus one per child re-accumulation/rebuild.
                assert!(count("kernels", "batch_accumulates") >= 1);
            } else {
                assert_eq!(count("kernels", "batch_accumulates"), 0);
            }
        }
    }

    #[test]
    fn short_circuit_matches_full_probe() {
        // The ind-bound abort must never change (δ₀, max_dev) and must keep
        // the *maximum* within-count over the pool exact.
        let t = two_segment_table();
        let cfg = cfg_for(&t);
        let snap = NumericSnapshot::build(&t, &cfg.inputs, cfg.target, &t.all_rows()).unwrap();
        let fit = snap.ready_rows(&t.all_rows());
        let models = [
            Model::Linear(crr_models::LinearModel::new(vec![1.0], 0.0)),
            Model::Linear(crr_models::LinearModel::new(vec![2.0], -5.0)),
            Model::Constant(ConstantModel::new(60.0, 1)),
        ];
        let mut buf = Vec::new();
        let mut floor = 0usize;
        let mut full_best = 0usize;
        for m in &models {
            let full = share_probe(m, &snap, &fit, cfg.rho_max, &mut buf, ScanMode::Full);
            let cut = share_probe(
                m,
                &snap,
                &fit,
                cfg.rho_max,
                &mut buf,
                ScanMode::AbortBelowFloor(floor),
            );
            assert_eq!(full.delta0.to_bits(), cut.delta0.to_bits());
            assert_eq!(full.max_dev.to_bits(), cut.max_dev.to_bits());
            full_best = full_best.max(full.within);
            floor = floor.max(cut.within);
            // The running max over truncated counts equals the true max.
            assert_eq!(floor, full_best);
        }
    }

    #[test]
    fn noisy_data_within_rho_uses_one_rule() {
        // Bounded noise 0.2 < rho_max 0.5: a single model suffices.
        let schema = Schema::new(vec![("x", AttrType::Float), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for i in 0..100 {
            let x = i as f64;
            let n = if i % 2 == 0 { 0.2 } else { -0.2 };
            t.push_row(vec![Value::Float(x), Value::Float(2.0 * x + n)])
                .unwrap();
        }
        let cfg = cfg_for(&t);
        let d = discover(&t, &t.all_rows(), &cfg, &space_for(&t, 7)).unwrap();
        assert_eq!(d.rules.len(), 1);
        assert!(d.rules.rules()[0].rho() <= 0.5);
    }

    #[test]
    fn zero_deadline_degrades_but_still_covers() {
        let t = two_segment_table();
        let cfg = cfg_for(&t).with_budget(Budget::unlimited().with_deadline(Duration::ZERO));
        let d = discover(&t, &t.all_rows(), &cfg, &space_for(&t, 7)).unwrap();
        assert_eq!(d.outcome, DiscoveryOutcome::DeadlineExceeded);
        // Degraded, not empty: the drained fallback still covers every row.
        assert!(!d.rules.is_empty());
        assert!(d.rules.uncovered(&t, &t.all_rows()).is_empty());
        assert!(d.stats.drained_partitions >= 1);
        assert_eq!(d.stats.drained_rows, 200);
        // The fallback rho is honest on its own partition.
        for rule in d.rules.rules() {
            assert!(rule.find_violation(&t, &t.all_rows()).is_none());
        }
    }

    #[test]
    fn expansion_cap_trips_budget_exhausted() {
        let t = two_segment_table();
        let cfg = cfg_for(&t).with_budget(Budget::unlimited().with_max_expansions(1));
        let d = discover(&t, &t.all_rows(), &cfg, &space_for(&t, 7)).unwrap();
        assert_eq!(d.outcome, DiscoveryOutcome::BudgetExhausted);
        assert_eq!(d.stats.partitions_explored, 1);
        assert!(d.rules.uncovered(&t, &t.all_rows()).is_empty());
    }

    #[test]
    fn fit_cap_trips_budget_exhausted() {
        let t = two_segment_table();
        let cfg = cfg_for(&t).with_budget(Budget::unlimited().with_max_fits(1));
        let d = discover(&t, &t.all_rows(), &cfg, &space_for(&t, 7)).unwrap();
        assert_eq!(d.outcome, DiscoveryOutcome::BudgetExhausted);
        assert_eq!(d.stats.models_trained, 1);
        assert!(d.rules.uncovered(&t, &t.all_rows()).is_empty());
    }

    #[test]
    fn pre_cancelled_token_stops_first_pop() {
        let t = two_segment_table();
        let token = CancelToken::new();
        token.cancel();
        let cfg = cfg_for(&t).with_cancel(token);
        let d = discover(&t, &t.all_rows(), &cfg, &space_for(&t, 7)).unwrap();
        assert_eq!(d.outcome, DiscoveryOutcome::Cancelled);
        assert_eq!(d.stats.partitions_explored, 0);
        assert!(d.rules.uncovered(&t, &t.all_rows()).is_empty());
    }

    #[test]
    fn unlimited_run_reports_complete() {
        let t = two_segment_table();
        let cfg = cfg_for(&t);
        let d = discover(&t, &t.all_rows(), &cfg, &space_for(&t, 7)).unwrap();
        assert!(d.outcome.is_complete());
        assert_eq!(d.stats.drained_partitions, 0);
        assert_eq!(d.stats.drained_rows, 0);
    }

    #[test]
    fn injected_fit_failure_is_typed() {
        let t = two_segment_table();
        let cfg = cfg_for(&t).with_faults(Arc::new(FaultPlan::new().fail_fit_every(1)));
        assert!(matches!(
            discover(&t, &t.all_rows(), &cfg, &space_for(&t, 7)),
            Err(DiscoveryError::InjectedFault { fit: 1 })
        ));
    }

    #[test]
    fn non_finite_cell_is_typed_error() {
        let mut t = two_segment_table();
        let x = t.attr("x").unwrap();
        t.set_value(13, x, Value::Float(f64::NAN));
        let cfg = cfg_for(&t);
        match discover(&t, &t.all_rows(), &cfg, &space_for(&t, 7)) {
            Err(DiscoveryError::NonFiniteValue { row: 13, attr }) => assert_eq!(attr, "x"),
            other => panic!("expected NonFiniteValue, got {other:?}"),
        }
    }

    #[test]
    fn share_fit_computes_midrange() {
        let f = Model::Linear(crr_models::LinearModel::new(vec![1.0], 0.0));
        let xs: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64]).collect();
        // y = x + 3 exactly: residuals all 3.
        let y: Vec<f64> = xs.iter().map(|x| x[0] + 3.0).collect();
        let (d0, dev, frac) = share_fit_rows(&f, &xs, &y, 0.5);
        assert_eq!(d0, 3.0);
        assert_eq!(dev, 0.0);
        assert_eq!(frac, 1.0);
    }

    #[test]
    fn metrics_agree_with_discovery_stats() {
        let t = two_segment_table();
        let sink = MetricsSink::enabled();
        let cfg = cfg_for(&t).with_metrics(sink.clone());
        let d = discover(&t, &t.all_rows(), &cfg, &space_for(&t, 7)).unwrap();
        let m = &d.metrics;
        assert!(!m.is_empty());
        // Counters mirror the coarse stats the struct always carried.
        let count = |s, n| m.count(s, n).unwrap();
        assert_eq!(count("queue", "pops"), d.stats.partitions_explored as u64);
        assert_eq!(count("pool", "hits"), d.stats.models_shared as u64);
        assert_eq!(
            count("queue", "forced_accepts"),
            d.stats.forced_accepts as u64
        );
        assert_eq!(count("queue", "rules_emitted"), d.rules.len() as u64);
        // Every trained model is accounted to exactly one fit path.
        assert_eq!(
            count("fits", "moments_solves")
                + count("fits", "declined_singular")
                + count("fits", "rescans"),
            d.stats.models_trained as u64
        );
        // The default engine never rescans rows.
        assert_eq!(count("fits", "rescans"), 0);
        // Pops never outnumber pushes, and the pool gauge is the final size.
        assert!(count("queue", "pops") <= count("queue", "pushes"));
        assert_eq!(
            count("run", "pool_models"),
            d.rules.num_distinct_models() as u64
        );
        // Phase timers observed real time.
        assert!(m.secs("phases", "total_secs").unwrap() > 0.0);
        // The frozen snapshot equals the live sink's.
        assert_eq!(sink.snapshot().to_json(0), m.to_json(0));
    }

    #[test]
    fn rescan_engine_records_no_moments_solves() {
        let t = two_segment_table();
        let sink = MetricsSink::enabled();
        let cfg = cfg_for(&t)
            .with_engine(FitEngine::Rescan)
            .with_metrics(sink.clone());
        let d = discover(&t, &t.all_rows(), &cfg, &space_for(&t, 7)).unwrap();
        assert_eq!(d.metrics.count("fits", "moments_solves"), Some(0));
        assert_eq!(d.metrics.count("fits", "declined_singular"), Some(0));
        assert_eq!(
            d.metrics.count("fits", "rescans"),
            Some(d.stats.models_trained as u64)
        );
        // No moments flow at all on the rescan path.
        assert_eq!(d.metrics.count("moments", "add_row_ops"), Some(0));
        assert_eq!(d.metrics.count("moments", "sibling_subtractions"), Some(0));
    }

    #[test]
    fn moments_ledger_balances_across_splits() {
        let t = two_segment_table();
        let sink = MetricsSink::enabled();
        let cfg = cfg_for(&t).with_metrics(sink.clone());
        let d = discover(&t, &t.all_rows(), &cfg, &space_for(&t, 7)).unwrap();
        let count = |s, n| d.metrics.count(s, n).unwrap();
        // Each split derives children either by sibling subtraction or a
        // full rebuild — never both, never neither.
        assert_eq!(
            count("queue", "splits"),
            count("moments", "sibling_subtractions") + count("moments", "full_rebuilds")
        );
        assert_eq!(
            count("moments", "sibling_subtractions"),
            count("moments", "child_reaccumulations")
        );
        assert_eq!(
            count("moments", "subtract_ops"),
            count("moments", "sibling_subtractions")
        );
        // The root accumulation alone touches every fit row once.
        assert!(count("moments", "add_row_ops") >= count("run", "fit_rows"));
    }

    #[test]
    fn injected_failure_is_recorded_in_metrics() {
        let t = two_segment_table();
        let sink = MetricsSink::enabled();
        let plan = Arc::new(FaultPlan::new().fail_fit_every(1));
        let cfg = cfg_for(&t)
            .with_faults(Arc::clone(&plan))
            .with_metrics(sink.clone());
        assert!(discover(&t, &t.all_rows(), &cfg, &space_for(&t, 7)).is_err());
        // The sink outlives the failed run: one injected fault, recorded.
        let snap = sink.snapshot();
        assert_eq!(snap.count("faults", "injected_failures"), Some(1));
        assert_eq!(plan.fits_attempted(), 1);
    }

    #[test]
    fn disabled_sink_yields_empty_metrics() {
        let t = two_segment_table();
        let cfg = cfg_for(&t);
        let d = discover(&t, &t.all_rows(), &cfg, &space_for(&t, 7)).unwrap();
        assert!(d.metrics.is_empty());
        assert_eq!(d.metrics.to_json(0), "{}");
    }

    #[test]
    fn snapshot_share_fit_matches_row_share_fit() {
        let t = two_segment_table();
        let cfg = cfg_for(&t);
        let snap = NumericSnapshot::build(&t, &cfg.inputs, cfg.target, &t.all_rows()).unwrap();
        let fit = snap.ready_rows(&t.all_rows());
        let (xs, y) = materialize(&snap, &fit);
        let f = Model::Linear(crr_models::LinearModel::new(vec![1.0], 0.0));
        let (d0r, devr, fracr) = share_fit_rows(&f, &xs, &y, cfg.rho_max);
        let (d0s, devs, fracs) = share_fit_snapshot(&f, &snap, &fit, cfg.rho_max);
        assert_eq!(d0r.to_bits(), d0s.to_bits());
        assert_eq!(devr.to_bits(), devs.to_bits());
        assert_eq!(fracr.to_bits(), fracs.to_bits());
    }
}
