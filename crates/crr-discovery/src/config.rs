use crate::budget::{Budget, CancelToken};
use crate::faults::FaultPlan;
use crr_data::AttrId;
use crr_models::{FitConfig, ModelKind};
use crr_obs::MetricsSink;
use std::sync::Arc;

/// Order in which Algorithm 1's priority queue emits conjunctions
/// (Table IV's experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueOrder {
    /// Decreasing sharing index `ind(C)` — the paper's choice: conditions
    /// most likely to reuse an existing model are handled first
    /// (Proposition 8's guarantee).
    #[default]
    Decrease,
    /// Increasing `ind(C)` — the adversarial order.
    Increase,
    /// Seed-determined pseudo-random order.
    Random(u64),
}

/// Which fitting engine the search loop uses for the linear family
/// (F1/F2). The MLP always takes the direct path — it has no sufficient
/// statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FitEngine {
    /// Sufficient statistics: every queue entry carries the partition's
    /// [`crr_models::Moments`] `(XᵀX, Xᵀy, yᵀy, Σx, Σy, n)`, maintained
    /// incrementally across splits (the smaller child is re-accumulated,
    /// the larger is the parent minus the sibling) and solved via Cholesky —
    /// O(min(|child|)·d²) per split plus O(d³) per fit instead of an
    /// O(n·d²) normal-equation rebuild at every pop.
    #[default]
    Moments,
    /// Rebuild the normal equations from the partition's rows at every
    /// queue pop — the pre-moments behavior, kept as the benchmark baseline
    /// that `BENCH_discovery.json` tracks the moments speed-up against.
    Rescan,
}

/// Which predicate-evaluation path the discovery hot loops use.
///
/// Both paths are byte-identical by contract — the compiled kernels
/// reproduce [`crr_core::Predicate::eval`]'s semantics exactly (nulls,
/// NaN, cross-kind constants included), pinned by the proptest suite in
/// `crr-core` and the engine-identity invariant of the tracked benchmark.
/// The interpreted path is kept as the oracle and as the baseline the
/// per-kernel bench cells measure the compiled speed-up against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanKernel {
    /// Compile each conjunction/predicate once per (condition, table)
    /// pair and evaluate columnar in cache-blocked batches
    /// ([`crr_core::CompiledConjunction`]), with batched Gram
    /// accumulation (`Moments::add_rows`) during partition builds.
    #[default]
    Compiled,
    /// Row-at-a-time `Predicate::eval` / `Moments::add_row` — the
    /// pre-kernel behavior, kept as the oracle baseline.
    Interpreted,
}

/// How split predicates are chosen when a partition admits no model
/// (Algorithm 1 line 19).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitStrategy {
    /// Model-tree criterion: minimize the weighted variance of the *parent
    /// model's residuals* per side. The failed fit on `D_C` is reused as a
    /// probe — sides where residuals are near-constant are exactly the
    /// parts an output-shifted shared model will fit, so this criterion
    /// finds regime attributes (state, season) that raw target variance
    /// misses. Splits into `C ∧ p` and `C ∧ ¬p`; binary splits keep the
    /// coverage guarantee of Problem 1.
    #[default]
    BestResidual,
    /// CART-style: minimize the weighted *target* variance of the two
    /// sides \[9\].
    BestVariance,
    /// First applicable predicate in space order — cheapest, used to
    /// isolate the cost of split selection in ablations.
    FirstApplicable,
}

/// Configuration of one discovery run — the inputs of Algorithm 1
/// besides the database and predicate space.
#[derive(Debug, Clone)]
pub struct DiscoveryConfig {
    /// Feature attributes `X` (must not contain the target).
    pub inputs: Vec<AttrId>,
    /// Target attribute `Y`.
    pub target: AttrId,
    /// Maximum bias `ρ_M`: a model is accepted on a partition only when
    /// every residual is within this bound.
    pub rho_max: f64,
    /// Model family and hyper-parameters (F1/F2/F3).
    pub fit: FitConfig,
    /// Queue ordering (Table IV).
    pub order: QueueOrder,
    /// Split-predicate selection (line 19).
    pub split: SplitStrategy,
    /// Enable the model-sharing fast path (lines 7–10). Disabling it turns
    /// Algorithm 1 into a plain top-down learner — the ablation the paper's
    /// Figure 9 "CRR searching" vs. regression-tree comparison isolates.
    pub share_models: bool,
    /// Partitions smaller than this are accepted with a forced (fallback)
    /// model rather than split further — the VC-dimension stop of §V-A2.
    /// `None` derives it from the model family (`d + 1` for linear).
    pub min_partition: Option<usize>,
    /// Hard cap on split candidates evaluated per partition, bounding split
    /// cost on huge predicate spaces.
    pub max_split_candidates: usize,
    /// Resource limits for the run (deadline, expansions, fits). Checked at
    /// each priority-queue pop; tripping degrades gracefully to a
    /// best-so-far ruleset tagged with a [`crate::DiscoveryOutcome`].
    pub budget: Budget,
    /// Cooperative cancellation: callers holding a clone of the token can
    /// stop the run from another thread.
    pub cancel: Option<CancelToken>,
    /// Test-only fault injection consulted before every model fit. `None`
    /// in production configs.
    pub faults: Option<Arc<FaultPlan>>,
    /// Fitting engine for the linear family; see [`FitEngine`].
    pub engine: FitEngine,
    /// Predicate-evaluation path for the scan hot loops; see
    /// [`ScanKernel`]. Both settings produce byte-identical rule sets.
    pub kernel: ScanKernel,
    /// Worker threads for the shared-pool scan at each pop (lines 7–10).
    /// `1` scans sequentially; higher values fan the per-model share tests
    /// out over scoped threads once the pool and partition are large enough
    /// to amortize the spawns. Results are identical either way. Bounds
    /// only the *within-run* scan — shard-level parallelism is
    /// [`Self::shard_threads`]. Must be ≥ 1 ([`Self::validate`]).
    pub pool_scan_threads: usize,
    /// Worker threads for shard-level parallelism in sharded discovery:
    /// how many non-seed shards run Algorithm 1 concurrently. `1` runs
    /// shards sequentially; results are identical either way (the
    /// cross-shard pool is frozen before any non-seed shard starts).
    /// Ignored by unsharded runs. Must be ≥ 1 ([`Self::validate`]).
    pub shard_threads: usize,
    /// Structured metrics sink. The no-op default records nothing at
    /// near-zero cost; attach an enabled sink via [`Self::with_metrics`] to
    /// collect counters and phase timings, frozen into
    /// [`crate::Discovery::metrics`] when the run returns. Recording never
    /// feeds back into the search, so instrumented and plain runs produce
    /// byte-identical rule sets.
    pub metrics: MetricsSink,
}

impl DiscoveryConfig {
    /// A default configuration for `inputs → target` with maximum bias
    /// `rho_max`: F1 (linear), decreasing order, sharing enabled.
    pub fn new(inputs: Vec<AttrId>, target: AttrId, rho_max: f64) -> Self {
        DiscoveryConfig {
            inputs,
            target,
            rho_max,
            fit: FitConfig::new(ModelKind::Linear),
            order: QueueOrder::Decrease,
            split: SplitStrategy::BestResidual,
            share_models: true,
            min_partition: None,
            max_split_candidates: 64,
            budget: Budget::unlimited(),
            cancel: None,
            faults: None,
            engine: FitEngine::Moments,
            kernel: ScanKernel::Compiled,
            pool_scan_threads: 1,
            shard_threads: 1,
            metrics: MetricsSink::disabled(),
        }
    }

    /// Switches the fitting engine for the linear family.
    pub fn with_engine(mut self, engine: FitEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Switches the predicate-evaluation path for the scan hot loops.
    pub fn with_kernel(mut self, kernel: ScanKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the shared-pool scan parallelism (1 = sequential). Zero is
    /// rejected by [`Self::validate`] at run entry, not silently clamped.
    pub fn with_pool_scan_threads(mut self, threads: usize) -> Self {
        self.pool_scan_threads = threads;
        self
    }

    /// Sets the shard-level parallelism for sharded discovery (1 =
    /// shards run sequentially). Zero is rejected by [`Self::validate`].
    pub fn with_shard_threads(mut self, threads: usize) -> Self {
        self.shard_threads = threads;
        self
    }

    /// Switches the model family, keeping family defaults.
    pub fn with_kind(mut self, kind: ModelKind) -> Self {
        self.fit = FitConfig::new(kind);
        self
    }

    /// Switches the queue order.
    pub fn with_order(mut self, order: QueueOrder) -> Self {
        self.order = order;
        self
    }

    /// Enables/disables model sharing.
    pub fn with_sharing(mut self, share: bool) -> Self {
        self.share_models = share;
        self
    }

    /// Caps the run's resources; see [`Budget`].
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a cancellation token observed at each queue pop.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Attaches a fault-injection plan (tests only).
    pub fn with_faults(mut self, faults: Arc<FaultPlan>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Attaches a metrics sink (usually [`MetricsSink::enabled`]). Keep a
    /// clone of the sink to read cumulative values across runs, or read the
    /// per-run freeze from [`crate::Discovery::metrics`].
    pub fn with_metrics(mut self, sink: MetricsSink) -> Self {
        self.metrics = sink;
        self
    }

    /// Checks the config for self-contradictions every entry point rejects
    /// up front: zero scan threads or zero shard threads.
    pub fn validate(&self) -> Result<(), crate::DiscoveryError> {
        if self.pool_scan_threads == 0 {
            return Err(crate::DiscoveryError::InvalidConfig(
                "pool_scan_threads must be at least 1".to_string(),
            ));
        }
        if self.shard_threads == 0 {
            return Err(crate::DiscoveryError::InvalidConfig(
                "shard_threads must be at least 1".to_string(),
            ));
        }
        Ok(())
    }

    /// The effective minimum partition size (VC-dimension guard).
    pub fn effective_min_partition(&self) -> usize {
        self.min_partition
            .unwrap_or_else(|| self.fit.min_samples(self.inputs.len()))
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_defaults() {
        let cfg = DiscoveryConfig::new(vec![AttrId(0)], AttrId(1), 1.0);
        assert_eq!(cfg.order, QueueOrder::Decrease);
        assert!(cfg.share_models);
        assert_eq!(cfg.fit.kind, ModelKind::Linear);
        // Linear with one feature: 2 samples minimum.
        assert_eq!(cfg.effective_min_partition(), 2);
    }

    #[test]
    fn builders_compose() {
        let cfg = DiscoveryConfig::new(vec![AttrId(0)], AttrId(1), 0.5)
            .with_kind(ModelKind::Mlp)
            .with_order(QueueOrder::Increase)
            .with_sharing(false);
        assert_eq!(cfg.fit.kind, ModelKind::Mlp);
        assert_eq!(cfg.order, QueueOrder::Increase);
        assert!(!cfg.share_models);
        assert_eq!(cfg.effective_min_partition(), 4);
    }

    #[test]
    fn zero_thread_counts_are_rejected() {
        let cfg = DiscoveryConfig::new(vec![AttrId(0)], AttrId(1), 0.5);
        assert!(cfg.validate().is_ok());
        assert!(matches!(
            cfg.clone().with_pool_scan_threads(0).validate(),
            Err(crate::DiscoveryError::InvalidConfig(_))
        ));
        assert!(matches!(
            cfg.clone().with_shard_threads(0).validate(),
            Err(crate::DiscoveryError::InvalidConfig(_))
        ));
        assert!(cfg
            .with_pool_scan_threads(8)
            .with_shard_threads(4)
            .validate()
            .is_ok());
    }

    #[test]
    fn explicit_min_partition_wins() {
        let mut cfg = DiscoveryConfig::new(vec![AttrId(0)], AttrId(1), 0.5);
        cfg.min_partition = Some(10);
        assert_eq!(cfg.effective_min_partition(), 10);
    }
}
