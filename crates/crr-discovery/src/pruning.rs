//! Condition post-pruning — the paper's §VII future-work note.
//!
//! Top-down refinement can *over-refine*: a conjunction may carry
//! predicates that no longer matter for the model's validity (the paper
//! suggests χ²-independence testing, as in decision-tree post-pruning
//! \[40\]). [`prune`] greedily removes predicates from each conjunction when
//! (a) the χ² statistic between the predicate and the rule's residual-
//! within-ρ indicator shows independence, and (b) a hard validity check
//! confirms the *widened* condition still satisfies the rule's bias — so
//! pruning never invalidates a rule, it only simplifies conditions.

use crr_core::{Conjunction, Crr, RuleSet};
use crr_data::{RowSet, Table};
use std::time::{Duration, Instant};

/// χ²(1 dof) critical value at significance 0.05.
pub const CHI2_CRIT_05: f64 = 3.841;

/// Pearson χ² statistic of the 2×2 contingency table
/// `[[a, b], [c, d]]` (with 0 for degenerate margins).
pub fn chi2_stat(a: f64, b: f64, c: f64, d: f64) -> f64 {
    let n = a + b + c + d;
    let (r1, r2, c1, c2) = (a + b, c + d, a + c, b + d);
    if n == 0.0 || r1 == 0.0 || r2 == 0.0 || c1 == 0.0 || c2 == 0.0 {
        return 0.0;
    }
    let det = a * d - b * c;
    n * det * det / (r1 * r2 * c1 * c2)
}

/// Counters from one [`prune`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PruneStats {
    /// Predicates removed across all conjunctions.
    pub predicates_removed: usize,
    /// Predicates whose removal was attempted.
    pub attempts: usize,
    /// Wall-clock time.
    pub time: Duration,
}

/// Greedily prunes predicates from every conjunction of every rule.
///
/// A predicate is removed when the χ² test over `rows` cannot link it to
/// the rule's residual behaviour *and* the widened conjunction still keeps
/// every covered (complete) row within the rule's `ρ`. Rules keep their
/// models and biases; only conditions are simplified.
pub fn prune(rules: &RuleSet, table: &Table, rows: &RowSet) -> (RuleSet, PruneStats) {
    let start = Instant::now();
    let mut stats = PruneStats::default();
    let mut out = Vec::with_capacity(rules.len());
    for rule in rules.rules() {
        let mut pruned = rule.clone();
        let conjuncts = pruned.condition_mut().conjuncts_mut();
        for conj in conjuncts.iter_mut() {
            let mut i = 0;
            while i < conj.preds().len() {
                stats.attempts += 1;
                let candidate = without_pred(conj, i);
                if removal_is_safe(rule, conj, &candidate, table, rows) {
                    *conj = candidate;
                    stats.predicates_removed += 1;
                    // Do not advance: the predicate at `i` is now a new one.
                } else {
                    i += 1;
                }
            }
        }
        out.push(pruned);
    }
    stats.time = start.elapsed();
    (RuleSet::from_rules(out), stats)
}

/// The conjunction with predicate `idx` removed (built-ins kept).
fn without_pred(conj: &Conjunction, idx: usize) -> Conjunction {
    let preds: Vec<_> = conj
        .preds()
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != idx)
        .map(|(_, p)| p.clone())
        .collect();
    match conj.builtin() {
        Some(b) => Conjunction::with_builtin(preds, b.clone()),
        None => Conjunction::of(preds),
    }
}

/// Both gates: χ² independence of the removed predicate from the residual
/// indicator, then the hard validity check on the widened coverage.
fn removal_is_safe(
    rule: &Crr,
    original: &Conjunction,
    candidate: &Conjunction,
    table: &Table,
    rows: &RowSet,
) -> bool {
    // Rows the widened conjunction would newly cover.
    let widened = candidate.select(table, rows);
    // χ² over the widened coverage: predicate satisfied × residual-within-ρ.
    let (mut a, mut b, mut c, mut d) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut valid = true;
    for r in widened.iter() {
        let within = within_rho(rule, candidate, table, r);
        let in_original = original.eval(table, r);
        match (in_original, within) {
            (true, Some(true)) => a += 1.0,
            (true, Some(false)) => b += 1.0,
            (false, Some(true)) => c += 1.0,
            (false, Some(false)) => {
                d += 1.0;
                valid = false; // a newly covered row violates ρ
            }
            (_, None) => {} // incomplete row: cannot score
        }
    }
    if !valid {
        return false;
    }
    chi2_stat(a, b, c, d) < CHI2_CRIT_05
}

/// Whether row `r` is within the rule's ρ under this conjunction's
/// built-ins; `None` when values are missing.
fn within_rho(rule: &Crr, conj: &Conjunction, table: &Table, r: usize) -> Option<bool> {
    let x: Vec<f64> = rule
        .inputs()
        .iter()
        .map(|&a| table.value_f64(r, a))
        .collect::<Option<Vec<f64>>>()?;
    let actual = table.value_f64(r, rule.target())?;
    let pred = match conj.builtin() {
        Some(t) => rule.model().predict_translated(&x, t),
        None => crr_models::Regressor::predict(rule.model().as_ref(), &x),
    };
    Some((actual - pred).abs() <= rule.rho() + 1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crr_core::{Dnf, LocateStrategy, Predicate};
    use crr_data::{AttrId, AttrType, Schema, Value};
    use crr_models::{LinearModel, Model};
    use std::sync::Arc;

    fn x() -> AttrId {
        AttrId(0)
    }

    fn z() -> AttrId {
        AttrId(1)
    }

    fn y() -> AttrId {
        AttrId(2)
    }

    /// y = 2x everywhere; z is an irrelevant attribute.
    fn table() -> Table {
        let schema = Schema::new(vec![
            ("x", AttrType::Float),
            ("z", AttrType::Float),
            ("y", AttrType::Float),
        ]);
        let mut t = Table::new(schema);
        for i in 0..60 {
            t.push_row(vec![
                Value::Float(i as f64),
                Value::Float((i % 7) as f64),
                Value::Float(2.0 * i as f64),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn chi2_statistic_basics() {
        // Perfect association.
        assert!(chi2_stat(50.0, 0.0, 0.0, 50.0) > 90.0);
        // Perfect independence.
        assert_eq!(chi2_stat(25.0, 25.0, 25.0, 25.0), 0.0);
        // Degenerate margins.
        assert_eq!(chi2_stat(0.0, 0.0, 0.0, 0.0), 0.0);
        assert_eq!(chi2_stat(10.0, 10.0, 0.0, 0.0), 0.0);
    }

    #[test]
    fn irrelevant_predicate_is_pruned() {
        // Rule valid on all data but over-refined with a z-predicate.
        let m = Arc::new(Model::Linear(LinearModel::new(vec![2.0], 0.0)));
        let cond = Dnf::single(Conjunction::of(vec![
            Predicate::ge(x(), Value::Float(0.0)),
            Predicate::le(z(), Value::Float(3.0)), // spurious refinement
        ]));
        let rule = Crr::new(vec![x()], y(), m, 0.1, cond).unwrap();
        let rules = RuleSet::from_rules(vec![rule]);
        let t = table();
        let (pruned, stats) = prune(&rules, &t, &t.all_rows());
        assert!(stats.predicates_removed >= 1);
        let conj = &pruned.rules()[0].condition().conjuncts()[0];
        assert!(!conj.preds().iter().any(|p| p.attr == z()));
        // Wider coverage, still exact.
        let rep = pruned.evaluate(&t, &t.all_rows(), LocateStrategy::First);
        assert_eq!(rep.covered, 60);
        assert!(rep.rmse < 1e-12);
    }

    #[test]
    fn load_bearing_predicate_is_kept() {
        // y = 2x only for x < 30; beyond that the rule's model is wrong,
        // so the x < 30 predicate must survive pruning.
        let schema = Schema::new(vec![
            ("x", AttrType::Float),
            ("z", AttrType::Float),
            ("y", AttrType::Float),
        ]);
        let mut t = Table::new(schema);
        for i in 0..60 {
            let yv = if i < 30 { 2.0 * i as f64 } else { 500.0 };
            t.push_row(vec![
                Value::Float(i as f64),
                Value::Float(0.0),
                Value::Float(yv),
            ])
            .unwrap();
        }
        let m = Arc::new(Model::Linear(LinearModel::new(vec![2.0], 0.0)));
        let cond = Dnf::single(Conjunction::of(vec![Predicate::lt(
            x(),
            Value::Float(30.0),
        )]));
        let rule = Crr::new(vec![x()], y(), m, 0.1, cond).unwrap();
        let rules = RuleSet::from_rules(vec![rule]);
        let (pruned, stats) = prune(&rules, &t, &t.all_rows());
        assert_eq!(stats.predicates_removed, 0);
        assert_eq!(
            pruned.rules()[0].condition().conjuncts()[0].preds().len(),
            1
        );
    }

    #[test]
    fn pruning_preserves_rule_validity() {
        let t = table();
        let m = Arc::new(Model::Linear(LinearModel::new(vec![2.0], 0.0)));
        let cond = Dnf::single(Conjunction::of(vec![
            Predicate::ge(x(), Value::Float(10.0)),
            Predicate::lt(x(), Value::Float(20.0)),
            Predicate::le(z(), Value::Float(100.0)),
        ]));
        let rule = Crr::new(vec![x()], y(), m, 0.1, cond).unwrap();
        let rules = RuleSet::from_rules(vec![rule]);
        let (pruned, _) = prune(&rules, &t, &t.all_rows());
        for r in pruned.rules() {
            assert!(r.find_violation(&t, &t.all_rows()).is_none());
        }
    }
}
