use std::fmt;

/// Errors from CRR discovery.
#[derive(Debug, Clone, PartialEq)]
pub enum DiscoveryError {
    /// The target attribute appears among the inputs — Reflexivity
    /// (Proposition 1) makes every such rule trivial, so discovery refuses
    /// the task instead of producing noise.
    TrivialTarget,
    /// The target attribute is not numeric.
    NonNumericTarget(String),
    /// The predicate space constrains the target, which Definition 1
    /// forbids.
    PredicateOnTarget,
    /// No rows to discover over.
    EmptyInstance,
    /// Rule construction or inference failed (bug or inconsistent inputs).
    Core(crr_core::CoreError),
    /// Model fitting failed irrecoverably.
    Model(crr_models::ModelError),
    /// Table access failed.
    Data(crr_data::DataError),
    /// A row reported complete by the table was missing a value when read
    /// back — an invariant breach surfaced as an error instead of a panic.
    IncompleteRow {
        /// Row index within the table.
        row: usize,
        /// Name of the attribute whose value was absent.
        attr: String,
    },
    /// A cell held NaN or ±Inf where a finite number was required. Dirty
    /// inputs degrade to a typed error, never a poisoned fit.
    NonFiniteValue {
        /// Row index within the table.
        row: usize,
        /// Name of the offending attribute.
        attr: String,
    },
    /// A fault-injection plan ([`crate::faults::FaultPlan`]) failed this
    /// fit on purpose. Only ever produced under test harnesses.
    InjectedFault {
        /// 1-based index of the faulted fit attempt.
        fit: u64,
    },
    /// A discovery task panicked; [`crate::DiscoverySession::run_all`]
    /// isolated the panic so sibling targets still completed.
    TaskPanicked {
        /// Index of the task within the submitted batch.
        task: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A shard's Algorithm 1 run failed. Sharded discovery degrades the
    /// shard to constant fallbacks and keeps going; the underlying error
    /// is preserved here so per-shard failures stay attributable.
    Shard {
        /// Dense shard id within the applied [`crr_data::ShardPlan`].
        shard_id: usize,
        /// What went wrong inside the shard.
        source: Box<DiscoveryError>,
    },
    /// The [`crate::DiscoveryConfig`] (or session) is self-contradictory
    /// and cannot be run — e.g. zero worker threads.
    InvalidConfig(String),
}

impl fmt::Display for DiscoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiscoveryError::TrivialTarget => {
                write!(
                    f,
                    "target attribute is among the inputs (trivial by Reflexivity)"
                )
            }
            DiscoveryError::NonNumericTarget(name) => {
                write!(f, "target attribute {name} is not numeric")
            }
            DiscoveryError::PredicateOnTarget => {
                write!(
                    f,
                    "predicate space contains predicates on the target attribute"
                )
            }
            DiscoveryError::EmptyInstance => write!(f, "no rows to discover over"),
            DiscoveryError::Core(e) => write!(f, "rule error: {e}"),
            DiscoveryError::Model(e) => write!(f, "model error: {e}"),
            DiscoveryError::Data(e) => write!(f, "data error: {e}"),
            DiscoveryError::IncompleteRow { row, attr } => {
                write!(f, "row {row} is missing a value for attribute {attr}")
            }
            DiscoveryError::NonFiniteValue { row, attr } => {
                write!(f, "row {row} holds a non-finite value for attribute {attr}")
            }
            DiscoveryError::InjectedFault { fit } => {
                write!(f, "fit #{fit} failed by fault injection")
            }
            DiscoveryError::TaskPanicked { task, message } => {
                write!(f, "discovery task {task} panicked: {message}")
            }
            DiscoveryError::Shard { shard_id, source } => {
                write!(f, "shard {shard_id} failed: {source}")
            }
            DiscoveryError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for DiscoveryError {}

impl From<crr_core::CoreError> for DiscoveryError {
    fn from(e: crr_core::CoreError) -> Self {
        DiscoveryError::Core(e)
    }
}

impl From<crr_models::ModelError> for DiscoveryError {
    fn from(e: crr_models::ModelError) -> Self {
        DiscoveryError::Model(e)
    }
}

impl From<crr_data::DataError> for DiscoveryError {
    fn from(e: crr_data::DataError) -> Self {
        DiscoveryError::Data(e)
    }
}
