use std::fmt;

/// Errors from CRR discovery.
#[derive(Debug, Clone, PartialEq)]
pub enum DiscoveryError {
    /// The target attribute appears among the inputs — Reflexivity
    /// (Proposition 1) makes every such rule trivial, so discovery refuses
    /// the task instead of producing noise.
    TrivialTarget,
    /// The target attribute is not numeric.
    NonNumericTarget(String),
    /// The predicate space constrains the target, which Definition 1
    /// forbids.
    PredicateOnTarget,
    /// No rows to discover over.
    EmptyInstance,
    /// Rule construction or inference failed (bug or inconsistent inputs).
    Core(crr_core::CoreError),
    /// Model fitting failed irrecoverably.
    Model(crr_models::ModelError),
    /// Table access failed.
    Data(crr_data::DataError),
}

impl fmt::Display for DiscoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiscoveryError::TrivialTarget => {
                write!(f, "target attribute is among the inputs (trivial by Reflexivity)")
            }
            DiscoveryError::NonNumericTarget(name) => {
                write!(f, "target attribute {name} is not numeric")
            }
            DiscoveryError::PredicateOnTarget => {
                write!(f, "predicate space contains predicates on the target attribute")
            }
            DiscoveryError::EmptyInstance => write!(f, "no rows to discover over"),
            DiscoveryError::Core(e) => write!(f, "rule error: {e}"),
            DiscoveryError::Model(e) => write!(f, "model error: {e}"),
            DiscoveryError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for DiscoveryError {}

impl From<crr_core::CoreError> for DiscoveryError {
    fn from(e: crr_core::CoreError) -> Self {
        DiscoveryError::Core(e)
    }
}

impl From<crr_models::ModelError> for DiscoveryError {
    fn from(e: crr_models::ModelError) -> Self {
        DiscoveryError::Model(e)
    }
}

impl From<crr_data::DataError> for DiscoveryError {
    fn from(e: crr_data::DataError) -> Self {
        DiscoveryError::Data(e)
    }
}
