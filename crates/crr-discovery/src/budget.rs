//! Resource budgets and cooperative cancellation for the discovery runtime.
//!
//! Algorithm 1 is the system's hot loop; under production traffic it must
//! run with *bounded* latency and degrade gracefully instead of running
//! unbounded or aborting. A [`Budget`] caps a run along three axes —
//! wall-clock deadline, priority-queue expansions, and model fits — and a
//! [`CancelToken`] lets a caller (timeout supervisor, request handler,
//! shutdown path) stop a run from another thread. Both are checked at each
//! priority-queue pop inside a discovery run; when a limit trips, the
//! search stops refining, covers every still-queued partition with a cheap
//! constant fallback model (so Problem 1's coverage guarantee survives),
//! and tags the result with a [`DiscoveryOutcome`] describing why it
//! stopped — the anytime-with-guarantees contract.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Resource limits for one discovery run. The default is
/// unlimited on every axis, matching the paper's offline setting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock limit, measured from the start of the run.
    pub deadline: Option<Duration>,
    /// Maximum priority-queue pops (partitions explored).
    pub max_expansions: Option<usize>,
    /// Maximum new model fits (line 13 executions).
    pub max_fits: Option<usize>,
}

impl Budget {
    /// No limits — discovery runs to completion.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Caps wall-clock time.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps priority-queue expansions.
    pub fn with_max_expansions(mut self, n: usize) -> Self {
        self.max_expansions = Some(n);
        self
    }

    /// Caps new model fits.
    pub fn with_max_fits(mut self, n: usize) -> Self {
        self.max_fits = Some(n);
        self
    }

    /// True when no axis is limited (the fast path skips clock reads).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_expansions.is_none() && self.max_fits.is_none()
    }

    /// Checks every axis against the run's counters. Returns the first
    /// tripped limit, or `None` while the run may continue.
    pub fn check(
        &self,
        started: Instant,
        expansions: usize,
        fits: usize,
    ) -> Option<DiscoveryOutcome> {
        if let Some(d) = self.deadline {
            if started.elapsed() >= d {
                return Some(DiscoveryOutcome::DeadlineExceeded);
            }
        }
        if let Some(n) = self.max_expansions {
            if expansions >= n {
                return Some(DiscoveryOutcome::BudgetExhausted);
            }
        }
        if let Some(n) = self.max_fits {
            if fits >= n {
                return Some(DiscoveryOutcome::BudgetExhausted);
            }
        }
        None
    }
}

/// Shareable cooperative cancellation flag. Clones share the same flag;
/// any holder may cancel, and the discovery loop observes it at each
/// queue pop.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// True once any clone has cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Why a discovery run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiscoveryOutcome {
    /// The search ran to completion; the ruleset is the full Algorithm 1
    /// result.
    #[default]
    Complete,
    /// The wall-clock deadline tripped; still-queued partitions were
    /// covered with fallback constants.
    DeadlineExceeded,
    /// An expansion or fit cap tripped; still-queued partitions were
    /// covered with fallback constants.
    BudgetExhausted,
    /// The caller's [`CancelToken`] fired.
    Cancelled,
}

impl DiscoveryOutcome {
    /// True only for a full, un-degraded run.
    pub fn is_complete(self) -> bool {
        self == DiscoveryOutcome::Complete
    }
}

impl std::fmt::Display for DiscoveryOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiscoveryOutcome::Complete => write!(f, "complete"),
            DiscoveryOutcome::DeadlineExceeded => write!(f, "deadline-exceeded"),
            DiscoveryOutcome::BudgetExhausted => write!(f, "budget-exhausted"),
            DiscoveryOutcome::Cancelled => write!(f, "cancelled"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert_eq!(b.check(Instant::now(), usize::MAX, usize::MAX), None);
    }

    #[test]
    fn deadline_trips_after_elapse() {
        let b = Budget::unlimited().with_deadline(Duration::from_secs(3600));
        assert_eq!(b.check(Instant::now(), 0, 0), None);
        let b = Budget::unlimited().with_deadline(Duration::ZERO);
        assert_eq!(
            b.check(Instant::now(), 0, 0),
            Some(DiscoveryOutcome::DeadlineExceeded)
        );
    }

    #[test]
    fn expansion_and_fit_caps_trip() {
        let b = Budget::unlimited().with_max_expansions(10).with_max_fits(5);
        assert!(!b.is_unlimited());
        assert_eq!(b.check(Instant::now(), 9, 4), None);
        assert_eq!(
            b.check(Instant::now(), 10, 0),
            Some(DiscoveryOutcome::BudgetExhausted)
        );
        assert_eq!(
            b.check(Instant::now(), 0, 5),
            Some(DiscoveryOutcome::BudgetExhausted)
        );
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled());
        t.cancel(); // idempotent
        assert!(u.is_cancelled());
    }

    #[test]
    fn outcome_display_and_completeness() {
        assert!(DiscoveryOutcome::Complete.is_complete());
        assert!(!DiscoveryOutcome::Cancelled.is_complete());
        assert_eq!(
            DiscoveryOutcome::DeadlineExceeded.to_string(),
            "deadline-exceeded"
        );
    }
}
