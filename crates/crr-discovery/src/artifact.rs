//! The serving artifact: a self-describing bundle of schema, compacted
//! rule set, and shard-guard proof obligations, serialized as one text
//! document.
//!
//! The rule-set text format (`crr-ruleset v1`, [`crr_core::serialize`])
//! references attributes positionally, so it only makes sense against a
//! known schema — and the static verifier's guard-soundness check (A3)
//! only runs when the shard obligations travel with the rules. This module
//! bundles all three so a serving process can load one file, re-verify it
//! in-process with `crr-analyze`, and answer requests against it. The
//! format is line-oriented, one section per concern:
//!
//! ```text
//! crr-artifact v1
//! attr float minute
//! attr float global_active_power
//! obligations key=#0 boundary=quantile
//! guard shard=0 lo=- hi=5760 null=false pred #0 < f:5760
//! guard shard=1 lo=5760 hi=- null=false pred #0 >= f:5760
//! rules
//! crr-ruleset v1
//! ...
//! ```
//!
//! The `obligations`/`guard` lines are optional (single-shard runs apply
//! no guards); guard predicates reuse the rule format's predicate grammar
//! via [`crr_core::serialize::encode_predicate`]. The `boundary=` token
//! records how the plan's interval boundaries were derived
//! ([`crate::sharded::PlanBoundary`]); artifacts predating it parse as
//! `equal_width`, the only construction that existed then.
//!
//! A repaired artifact produced by `crr-stream` additionally carries
//! [`RepairObligations`] — the splice's machine-checkable claims — as a
//! `repair` line plus one `region` line per affected region, between the
//! shard guards and the rules:
//!
//! ```text
//! repair kept=12
//! region id=0 origin=drifted rule=4 conj=0 pred #0 >= f:10 ; pred #0 < f:20
//! region id=1 origin=uncovered pred #0 >= f:5760 ; pred #0 <= f:6048
//! ```
//!
//! `kept` counts the healthy rules carried over unchanged (they occupy
//! the set's leading indices); every later rule was rediscovered inside
//! one of the claimed regions, under the region's guard predicates. The
//! static verifier's A7 check audits these claims row-free, so a splice
//! that over- or under-claims is refused at `crr-serve`'s swap gate.

use crate::sharded::{PlanBoundary, ProofObligations, ShardGuard};
use crate::{DiscoveryError, Result};
use crr_core::serialize::{decode_predicate, encode_predicate, from_text as rules_from_text};
use crr_core::{CoreError, Predicate, RuleSet};
use crr_data::{AttrId, AttrType, Schema, ShardBounds};
use std::fmt::Write as _;

/// Where one repair region came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionOrigin {
    /// A drifted conjunct of the pre-repair rule set. `rule`/`conjunct`
    /// index the set the repair *replaced* — provenance for operators,
    /// not references into the spliced set.
    Drifted {
        /// Index of the drifted rule in the pre-repair set.
        rule: usize,
        /// Index of the drifted conjunct within that rule's condition.
        conjunct: usize,
    },
    /// The uncovered-append region: rows no pre-repair rule claimed,
    /// guarded by their bounding box when one was derivable.
    Uncovered,
}

/// One affected region a repair re-ran discovery inside.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairRegion {
    /// Dense region index, in emission order.
    pub region_id: usize,
    /// Provenance of the region.
    pub origin: RegionOrigin,
    /// The guard predicates re-ANDed onto every rule rediscovered in
    /// this region (a drifted conjunct's own predicates, or the bounding
    /// box of the uncovered appends). May be empty when no guard was
    /// derivable — the verifier then treats confinement as vacuous and
    /// flags the region as a hygiene finding.
    pub guards: Vec<Predicate>,
}

/// Proof obligations of a `crr-stream` repair splice: which rules were
/// kept verbatim and which regions the replacement rules are confined
/// to. Audited row-free by `crr-analyze`'s A7 check, exactly like the
/// shard [`ProofObligations`] are by A3.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairObligations {
    /// Healthy rules carried over unchanged; they occupy indices
    /// `0..kept` of the spliced set, and every rule at `kept..` was
    /// rediscovered inside some claimed region.
    pub kept: usize,
    /// The affected regions, dense by `region_id`.
    pub regions: Vec<RepairRegion>,
}

/// A schema + compacted rule set + obligations bundle — everything a
/// serving process needs to verify and answer from one rule set.
#[derive(Debug, Clone)]
pub struct RuleSetArtifact {
    /// The table schema the rule set's positional attribute references
    /// resolve against.
    pub schema: Schema,
    /// The (compacted) rule set.
    pub rules: RuleSet,
    /// Shard-guard obligations from the producing run, when it was
    /// sharded. Without them the verifier's guard-soundness check (A3)
    /// cannot run, so producers should always carry them through.
    pub obligations: Option<ProofObligations>,
    /// Repair-splice obligations, when the artifact came out of a
    /// `crr-stream` repair. Audited by the verifier's A7 check.
    pub repair: Option<RepairObligations>,
}

fn bad(what: impl Into<String>) -> DiscoveryError {
    DiscoveryError::Core(CoreError::SchemaMismatch(what.into()))
}

fn encode_bound(b: Option<f64>) -> String {
    match b {
        Some(v) => format!("{v:?}"),
        None => "-".to_string(),
    }
}

fn decode_bound(s: &str) -> Result<Option<f64>> {
    if s == "-" {
        return Ok(None);
    }
    s.parse()
        .map(Some)
        .map_err(|_| bad(format!("bad guard bound: {s}")))
}

fn decode_attr_type(s: &str) -> Result<AttrType> {
    match s {
        "int" => Ok(AttrType::Int),
        "float" => Ok(AttrType::Float),
        "str" => Ok(AttrType::Str),
        _ => Err(bad(format!("bad attribute type: {s}"))),
    }
}

impl RuleSetArtifact {
    /// Bundles the parts into an artifact, checking every positional
    /// attribute reference in `rules` and `obligations` resolves inside
    /// `schema`.
    pub fn new(
        schema: Schema,
        rules: RuleSet,
        obligations: Option<ProofObligations>,
    ) -> Result<Self> {
        let artifact = RuleSetArtifact {
            schema,
            rules,
            obligations,
            repair: None,
        };
        artifact.check_refs()?;
        Ok(artifact)
    }

    /// Attaches repair-splice obligations, re-checking every attribute
    /// reference (the region guards add new ones).
    pub fn with_repair(mut self, repair: RepairObligations) -> Result<Self> {
        self.repair = Some(repair);
        self.check_refs()?;
        Ok(self)
    }

    /// Verifies every attribute reference in the rules and obligations is
    /// within the schema. A serving process calls this at load time so a
    /// rule referencing `#7` of a 3-attribute schema is a typed error,
    /// never a later panic.
    pub fn check_refs(&self) -> Result<()> {
        let n = self.schema.len();
        let check = |a: AttrId, what: &str| -> Result<()> {
            if a.0 >= n {
                return Err(bad(format!(
                    "{what} references attribute #{} but the schema has {n} attributes",
                    a.0
                )));
            }
            Ok(())
        };
        for (i, rule) in self.rules.rules().iter().enumerate() {
            check(rule.target(), &format!("rule {i} target"))?;
            for &a in rule.inputs() {
                check(a, &format!("rule {i} inputs"))?;
            }
            for c in rule.condition().conjuncts() {
                for p in c.preds() {
                    check(p.attr, &format!("rule {i} condition"))?;
                }
            }
        }
        if let Some(ob) = &self.obligations {
            check(ob.shard_key, "obligations shard key")?;
            for g in &ob.guards {
                check(g.bounds.attr, "shard guard bounds")?;
                for p in &g.guards {
                    check(p.attr, "shard guard predicate")?;
                }
            }
        }
        if let Some(rep) = &self.repair {
            for r in &rep.regions {
                for p in &r.guards {
                    check(p.attr, &format!("repair region {} guard", r.region_id))?;
                }
            }
        }
        Ok(())
    }

    /// Serializes the artifact to the `crr-artifact v1` text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("crr-artifact v1\n");
        for (_, attr) in self.schema.iter() {
            let _ = writeln!(out, "attr {} {}", attr.ty(), attr.name());
        }
        if let Some(ob) = &self.obligations {
            let _ = writeln!(
                out,
                "obligations key=#{} boundary={}",
                ob.shard_key.0,
                ob.boundary.label()
            );
            for g in &ob.guards {
                let _ = write!(
                    out,
                    "guard shard={} lo={} hi={} null={}",
                    g.shard_id,
                    encode_bound(g.bounds.lo),
                    encode_bound(g.bounds.hi),
                    g.bounds.null_keys
                );
                for (i, p) in g.guards.iter().enumerate() {
                    out.push_str(if i == 0 { " " } else { " ; " });
                    let _ = write!(out, "pred {}", encode_predicate(p));
                }
                out.push('\n');
            }
        }
        if let Some(rep) = &self.repair {
            let _ = writeln!(out, "repair kept={}", rep.kept);
            for r in &rep.regions {
                let _ = write!(out, "region id={}", r.region_id);
                match r.origin {
                    RegionOrigin::Drifted { rule, conjunct } => {
                        let _ = write!(out, " origin=drifted rule={rule} conj={conjunct}");
                    }
                    RegionOrigin::Uncovered => out.push_str(" origin=uncovered"),
                }
                for (i, p) in r.guards.iter().enumerate() {
                    out.push_str(if i == 0 { " " } else { " ; " });
                    let _ = write!(out, "pred {}", encode_predicate(p));
                }
                out.push('\n');
            }
        }
        out.push_str("rules\n");
        out.push_str(&crr_core::serialize::to_text(&self.rules));
        out
    }

    /// Parses the text format back into an artifact, re-checking every
    /// attribute reference against the embedded schema.
    pub fn from_text(text: &str) -> Result<Self> {
        let mut lines = text.lines();
        match lines.next() {
            Some("crr-artifact v1") => {}
            _ => return Err(bad("missing artifact header")),
        }
        let mut attrs: Vec<(String, AttrType)> = Vec::new();
        let mut obligations: Option<ProofObligations> = None;
        let mut repair: Option<RepairObligations> = None;
        let mut saw_rules_marker = false;
        for line in lines.by_ref() {
            if line == "rules" {
                saw_rules_marker = true;
                break;
            }
            if line.trim().is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("attr ") {
                let (ty, name) = rest
                    .split_once(' ')
                    .ok_or_else(|| bad(format!("bad attr line: {line}")))?;
                attrs.push((name.to_string(), decode_attr_type(ty)?));
            } else if let Some(rest) = line.strip_prefix("obligations ") {
                let mut key = None;
                // Absent in v1 documents written before the planner could
                // choose: equal-width was the only construction.
                let mut boundary = PlanBoundary::EqualWidth;
                for tok in rest.split_whitespace() {
                    if let Some(n) = tok.strip_prefix("key=#") {
                        key = n.parse().ok().map(AttrId);
                    } else if let Some(b) = tok.strip_prefix("boundary=") {
                        boundary = PlanBoundary::from_label(b)
                            .ok_or_else(|| bad(format!("bad obligations boundary: {b}")))?;
                    } else {
                        return Err(bad(format!("bad obligations token: {tok}")));
                    }
                }
                let key = key.ok_or_else(|| bad(format!("bad obligations line: {line}")))?;
                obligations = Some(ProofObligations {
                    shard_key: key,
                    boundary,
                    guards: Vec::new(),
                });
            } else if let Some(rest) = line.strip_prefix("guard ") {
                let ob = obligations
                    .as_mut()
                    .ok_or_else(|| bad("guard line before obligations line"))?;
                ob.guards.push(parse_guard(rest, ob.shard_key)?);
            } else if let Some(rest) = line.strip_prefix("repair ") {
                let mut kept = None;
                for tok in rest.split_whitespace() {
                    if let Some(n) = tok.strip_prefix("kept=") {
                        kept = n.parse::<usize>().ok();
                    } else {
                        return Err(bad(format!("bad repair token: {tok}")));
                    }
                }
                let kept = kept.ok_or_else(|| bad(format!("bad repair line: {line}")))?;
                repair = Some(RepairObligations {
                    kept,
                    regions: Vec::new(),
                });
            } else if let Some(rest) = line.strip_prefix("region ") {
                let rep = repair
                    .as_mut()
                    .ok_or_else(|| bad("region line before repair line"))?;
                rep.regions.push(parse_region(rest)?);
            } else {
                return Err(bad(format!("unexpected artifact line: {line}")));
            }
        }
        if !saw_rules_marker {
            return Err(bad("artifact lacks a rules section"));
        }
        if attrs.is_empty() {
            return Err(bad("artifact lacks a schema"));
        }
        let schema = Schema::new(attrs);
        let rest_offset = match text.find("\nrules\n") {
            Some(i) => i + "\nrules\n".len(),
            None => return Err(bad("artifact lacks a rules section")),
        };
        let rules = rules_from_text(&text[rest_offset..]).map_err(DiscoveryError::Core)?;
        let artifact = RuleSetArtifact::new(schema, rules, obligations)?;
        match repair {
            Some(rep) => artifact.with_repair(rep),
            None => Ok(artifact),
        }
    }
}

/// Parses one `region` line body (after the `region ` prefix).
fn parse_region(rest: &str) -> Result<RepairRegion> {
    // Fixed head fields, then the predicate list in `;`-separated grammar.
    let (head, preds_part) = match rest.find(" pred ") {
        Some(i) => (&rest[..i], Some(&rest[i..])),
        None => (rest, None),
    };
    let mut region_id = None;
    let mut origin_tok = None;
    let mut rule = None;
    let mut conjunct = None;
    for tok in head.split_whitespace() {
        if let Some(v) = tok.strip_prefix("id=") {
            region_id = v.parse::<usize>().ok();
        } else if let Some(v) = tok.strip_prefix("origin=") {
            origin_tok = Some(v.to_string());
        } else if let Some(v) = tok.strip_prefix("rule=") {
            rule = v.parse::<usize>().ok();
        } else if let Some(v) = tok.strip_prefix("conj=") {
            conjunct = v.parse::<usize>().ok();
        } else {
            return Err(bad(format!("bad region token: {tok}")));
        }
    }
    let region_id = region_id.ok_or_else(|| bad(format!("region line lacks an id: {rest}")))?;
    let origin = match origin_tok.as_deref() {
        Some("drifted") => match (rule, conjunct) {
            (Some(rule), Some(conjunct)) => RegionOrigin::Drifted { rule, conjunct },
            _ => return Err(bad(format!("drifted region lacks rule/conj: {rest}"))),
        },
        Some("uncovered") => RegionOrigin::Uncovered,
        _ => return Err(bad(format!("bad region origin: {rest}"))),
    };
    let mut guards = Vec::new();
    if let Some(part) = preds_part {
        for item in part.split(';').map(str::trim).filter(|s| !s.is_empty()) {
            let p = item
                .strip_prefix("pred ")
                .ok_or_else(|| bad(format!("bad region predicate item: {item}")))?;
            guards.push(decode_predicate(p).map_err(DiscoveryError::Core)?);
        }
    }
    Ok(RepairRegion {
        region_id,
        origin,
        guards,
    })
}

fn parse_guard(rest: &str, shard_key: AttrId) -> Result<ShardGuard> {
    // Fixed head fields, then the predicate list in `;`-separated grammar.
    let (head, preds_part) = match rest.find(" pred ") {
        Some(i) => (&rest[..i], Some(&rest[i..])),
        None => (rest, None),
    };
    let mut shard_id = None;
    let mut lo = None;
    let mut hi = None;
    let mut null_keys = None;
    for tok in head.split_whitespace() {
        if let Some(v) = tok.strip_prefix("shard=") {
            shard_id = v.parse::<usize>().ok();
        } else if let Some(v) = tok.strip_prefix("lo=") {
            lo = Some(decode_bound(v)?);
        } else if let Some(v) = tok.strip_prefix("hi=") {
            hi = Some(decode_bound(v)?);
        } else if let Some(v) = tok.strip_prefix("null=") {
            null_keys = v.parse::<bool>().ok();
        } else {
            return Err(bad(format!("bad guard token: {tok}")));
        }
    }
    let (shard_id, lo, hi, null_keys) = match (shard_id, lo, hi, null_keys) {
        (Some(s), Some(lo), Some(hi), Some(n)) => (s, lo, hi, n),
        _ => return Err(bad(format!("incomplete guard line: {rest}"))),
    };
    let mut guards = Vec::new();
    if let Some(part) = preds_part {
        for item in part.split(';').map(str::trim).filter(|s| !s.is_empty()) {
            let p = item
                .strip_prefix("pred ")
                .ok_or_else(|| bad(format!("bad guard predicate item: {item}")))?;
            guards.push(decode_predicate(p).map_err(DiscoveryError::Core)?);
        }
    }
    Ok(ShardGuard {
        shard_id,
        bounds: ShardBounds {
            attr: shard_key,
            lo,
            hi,
            null_keys,
        },
        guards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::guard_predicates;
    use crr_core::{Conjunction, Crr, Dnf, Predicate};
    use crr_data::Value;
    use crr_models::{LinearModel, Model};
    use std::sync::Arc;

    fn sample() -> RuleSetArtifact {
        let schema = Schema::new(vec![
            ("minute", AttrType::Float),
            ("power", AttrType::Float),
        ]);
        let k = AttrId(0);
        let rule = Crr::new(
            vec![k],
            AttrId(1),
            Arc::new(Model::Linear(LinearModel::new(vec![0.5], 1.0))),
            0.25,
            Dnf::single(Conjunction::of(vec![Predicate::ge(k, Value::Float(0.0))])),
        )
        .unwrap();
        let bounds_a = ShardBounds {
            attr: k,
            lo: None,
            hi: Some(5760.0),
            null_keys: false,
        };
        let bounds_b = ShardBounds {
            attr: k,
            lo: Some(5760.0),
            hi: None,
            null_keys: false,
        };
        let bounds_null = ShardBounds {
            attr: k,
            lo: None,
            hi: None,
            null_keys: true,
        };
        let guards = vec![bounds_a, bounds_b, bounds_null]
            .into_iter()
            .enumerate()
            .map(|(i, b)| ShardGuard {
                shard_id: i,
                guards: guard_predicates(&b),
                bounds: b,
            })
            .collect();
        RuleSetArtifact::new(
            schema,
            RuleSet::from_rules(vec![rule]),
            Some(ProofObligations {
                shard_key: k,
                boundary: PlanBoundary::Quantile,
                guards,
            }),
        )
        .unwrap()
    }

    #[test]
    fn round_trips_schema_rules_and_obligations() {
        let a = sample();
        let text = a.to_text();
        let b = RuleSetArtifact::from_text(&text).unwrap();
        assert_eq!(a.schema, b.schema);
        assert_eq!(a.rules.len(), b.rules.len());
        assert_eq!(
            a.rules.rules()[0].condition(),
            b.rules.rules()[0].condition()
        );
        let oa = a.obligations.as_ref().unwrap();
        let ob = b.obligations.as_ref().unwrap();
        assert_eq!(oa.shard_key, ob.shard_key);
        assert_eq!(oa.boundary, ob.boundary);
        assert_eq!(oa.guards.len(), ob.guards.len());
        for (ga, gb) in oa.guards.iter().zip(&ob.guards) {
            assert_eq!(ga.shard_id, gb.shard_id);
            assert_eq!(ga.bounds, gb.bounds);
            assert_eq!(ga.guards, gb.guards);
        }
        // And the round-trip is a fixed point.
        assert_eq!(text, b.to_text());
    }

    #[test]
    fn obligations_line_without_boundary_parses_as_equal_width() {
        // A v1 document written before the boundary tag existed.
        let text = sample().to_text().replace(" boundary=quantile", "");
        let b = RuleSetArtifact::from_text(&text).unwrap();
        assert_eq!(
            b.obligations.as_ref().unwrap().boundary,
            PlanBoundary::EqualWidth
        );
        // Re-serializing writes the tag explicitly from here on.
        assert!(b.to_text().contains("boundary=equal_width"));
    }

    #[test]
    fn bad_boundary_token_rejected() {
        let text = sample()
            .to_text()
            .replace("boundary=quantile", "boundary=chaotic");
        assert!(RuleSetArtifact::from_text(&text).is_err());
    }

    #[test]
    fn artifact_without_obligations_round_trips() {
        let mut a = sample();
        a.obligations = None;
        let b = RuleSetArtifact::from_text(&a.to_text()).unwrap();
        assert!(b.obligations.is_none());
        assert_eq!(a.schema, b.schema);
    }

    #[test]
    fn out_of_schema_references_rejected() {
        let a = sample();
        let text = a.to_text();
        // Drop the second attr line: rule target #1 now dangles.
        let truncated: String = text
            .lines()
            .filter(|l| !l.contains("attr float power"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(RuleSetArtifact::from_text(&truncated).is_err());
    }

    #[test]
    fn repair_obligations_round_trip_as_a_fixed_point() {
        let k = AttrId(0);
        let a = sample()
            .with_repair(RepairObligations {
                kept: 1,
                regions: vec![
                    RepairRegion {
                        region_id: 0,
                        origin: RegionOrigin::Drifted {
                            rule: 4,
                            conjunct: 1,
                        },
                        guards: vec![
                            Predicate::ge(k, Value::Float(10.0)),
                            Predicate::lt(k, Value::Float(20.0)),
                        ],
                    },
                    RepairRegion {
                        region_id: 1,
                        origin: RegionOrigin::Uncovered,
                        guards: vec![Predicate::ge(k, Value::Float(5760.0))],
                    },
                    RepairRegion {
                        region_id: 2,
                        origin: RegionOrigin::Uncovered,
                        guards: Vec::new(),
                    },
                ],
            })
            .unwrap();
        let text = a.to_text();
        let b = RuleSetArtifact::from_text(&text).unwrap();
        assert_eq!(a.repair, b.repair);
        // And the round-trip is a fixed point.
        assert_eq!(text, b.to_text());
    }

    #[test]
    fn repair_region_guard_references_are_checked() {
        let err = sample().with_repair(RepairObligations {
            kept: 0,
            regions: vec![RepairRegion {
                region_id: 0,
                origin: RegionOrigin::Uncovered,
                guards: vec![Predicate::ge(AttrId(9), Value::Float(0.0))],
            }],
        });
        assert!(err.is_err());
    }

    #[test]
    fn malformed_repair_lines_rejected() {
        let good = sample()
            .with_repair(RepairObligations {
                kept: 1,
                regions: vec![RepairRegion {
                    region_id: 0,
                    origin: RegionOrigin::Drifted {
                        rule: 0,
                        conjunct: 0,
                    },
                    guards: Vec::new(),
                }],
            })
            .unwrap()
            .to_text();
        // A region line before any repair line.
        let reordered = good.replace("repair kept=1\n", "");
        assert!(RuleSetArtifact::from_text(&reordered).is_err());
        // Unknown origins and missing provenance are rejected.
        assert!(
            RuleSetArtifact::from_text(&good.replace("origin=drifted", "origin=mystery")).is_err()
        );
        assert!(RuleSetArtifact::from_text(&good.replace(" rule=0", "")).is_err());
        assert!(RuleSetArtifact::from_text(&good.replace("kept=1", "kept=x")).is_err());
    }

    #[test]
    fn malformed_documents_rejected() {
        assert!(RuleSetArtifact::from_text("").is_err());
        assert!(RuleSetArtifact::from_text("crr-artifact v1\n").is_err());
        assert!(RuleSetArtifact::from_text("crr-artifact v1\nattr float x\n").is_err());
        assert!(RuleSetArtifact::from_text(
            "crr-artifact v1\nattr blob x\nrules\ncrr-ruleset v1\n"
        )
        .is_err());
        assert!(RuleSetArtifact::from_text(
            "crr-artifact v1\nattr float x\nguard shard=0 lo=- hi=- null=false\nrules\ncrr-ruleset v1\n"
        )
        .is_err());
        let good = sample().to_text();
        assert!(RuleSetArtifact::from_text(&good.replace("rules\n", "rulez\n")).is_err());
    }
}
