//! Deterministic fault injection for the discovery runtime.
//!
//! Robustness claims are only as good as the failures they were tested
//! against. A [`FaultPlan`] injects the three failure families the
//! budgeted runtime must survive, deterministically so tests reproduce:
//!
//! * **dirty data** — [`inject_dirty_cells`] seeds NaN/±Inf/null cells
//!   into a table, which discovery must surface as typed errors
//!   ([`crate::DiscoveryError::NonFiniteValue`]), never panics;
//! * **failing fits** — every k-th model fit returns an error, which
//!   discovery propagates as [`crate::DiscoveryError::InjectedFault`];
//! * **poisoned fits** — every k-th model fit panics, which
//!   [`crate::DiscoverySession::run_all`] must isolate to the owning task;
//! * **slow fits** — every fit sleeps first, so deadline budgets can be
//!   exercised without real datasets or timing luck.
//!
//! A plan is attached to a [`crate::DiscoveryConfig`] via
//! [`crate::DiscoveryConfig::with_faults`] and consulted by the search
//! loop before each fit. Production configs carry no plan and pay one
//! `Option` check per fit.

use crate::{DiscoveryError, Result};
use crr_data::{AttrId, Table, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A deterministic schedule of injected fit faults. Counters live in the
/// plan, so one plan shared across a run (via `Arc` in the config) sees a
/// global fit sequence.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Every k-th fit (1-based) returns an error instead of a model.
    fail_every: Option<u64>,
    /// Every k-th fit (1-based) panics, simulating a poisoned solver.
    panic_every: Option<u64>,
    /// Injected latency before every fit.
    fit_delay: Option<Duration>,
    /// Fits attempted so far (including faulted ones).
    attempts: AtomicU64,
}

impl FaultPlan {
    /// An empty plan: injects nothing.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Makes every `k`-th fit (1-based) return an error. `k = 1` fails
    /// every fit.
    pub fn fail_fit_every(mut self, k: u64) -> Self {
        self.fail_every = Some(k.max(1));
        self
    }

    /// Makes every `k`-th fit (1-based) panic. `k = 1` panics on the
    /// first fit.
    pub fn panic_fit_every(mut self, k: u64) -> Self {
        self.panic_every = Some(k.max(1));
        self
    }

    /// Sleeps for `delay` before every fit — an artificially slow solver
    /// for deadline tests.
    pub fn delay_fits(mut self, delay: Duration) -> Self {
        self.fit_delay = Some(delay);
        self
    }

    /// Number of fits attempted through this plan so far.
    pub fn fits_attempted(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }

    /// Called by the search loop before each model fit. Applies the
    /// injected delay, then either panics, returns the injected error, or
    /// lets the fit proceed.
    pub fn before_fit(&self) -> Result<()> {
        let n = self.attempts.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(d) = self.fit_delay {
            std::thread::sleep(d);
        }
        if let Some(k) = self.panic_every {
            if n.is_multiple_of(k) {
                panic!("injected fit panic (fit #{n})");
            }
        }
        if let Some(k) = self.fail_every {
            if n.is_multiple_of(k) {
                return Err(DiscoveryError::InjectedFault { fit: n });
            }
        }
        Ok(())
    }
}

/// The dirty values [`inject_dirty_cells`] cycles through.
const DIRTY: [Value; 4] = [
    Value::Float(f64::NAN),
    Value::Float(f64::INFINITY),
    Value::Float(f64::NEG_INFINITY),
    Value::Null,
];

/// Deterministically replaces roughly `rate · |rows| · |attrs|` cells of
/// the given float columns with NaN, ±Inf or null, keyed by `seed`.
/// Returns the number of cells dirtied. Non-float columns only receive
/// nulls (the other faults are not representable there).
pub fn inject_dirty_cells(table: &mut Table, attrs: &[AttrId], rate: f64, seed: u64) -> usize {
    let mut dirtied = 0usize;
    for &attr in attrs {
        let is_float = table.schema().attribute(attr).ty() == crr_data::AttrType::Float;
        for row in 0..table.num_rows() {
            // splitmix64-style hash of (seed, attr, row) → [0, 1).
            let h = seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(attr.0 as u64 + 1))
                .wrapping_add(row as u64)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                .rotate_left(27)
                .wrapping_mul(0x94D0_49BB_1331_11EB);
            if (h >> 11) as f64 / (1u64 << 53) as f64 >= rate {
                continue;
            }
            let fault = if is_float {
                DIRTY[(h % DIRTY.len() as u64) as usize].clone()
            } else {
                Value::Null
            };
            if fault.is_null() {
                table.set_null(row, attr);
            } else {
                table.set_value(row, attr, fault);
            }
            dirtied += 1;
        }
    }
    dirtied
}

#[cfg(test)]
mod tests {
    use super::*;
    use crr_data::{AttrType, Schema};

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::new();
        for _ in 0..10 {
            plan.before_fit().unwrap();
        }
        assert_eq!(plan.fits_attempted(), 10);
    }

    #[test]
    fn fail_every_k_is_periodic() {
        let plan = FaultPlan::new().fail_fit_every(3);
        let outcomes: Vec<bool> = (0..6).map(|_| plan.before_fit().is_ok()).collect();
        assert_eq!(outcomes, [true, true, false, true, true, false]);
        assert!(matches!(
            FaultPlan::new().fail_fit_every(1).before_fit(),
            Err(DiscoveryError::InjectedFault { fit: 1 })
        ));
    }

    #[test]
    fn panic_every_k_panics() {
        let plan = FaultPlan::new().panic_fit_every(2);
        plan.before_fit().unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = plan.before_fit();
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn dirty_cells_are_deterministic_and_bounded() {
        let make = || {
            let schema = Schema::new(vec![("x", AttrType::Float), ("s", AttrType::Str)]);
            let mut t = Table::new(schema);
            for i in 0..500 {
                t.push_row(vec![Value::Float(i as f64), Value::str("a")])
                    .unwrap();
            }
            t
        };
        let (mut a, mut b) = (make(), make());
        let attrs: Vec<AttrId> = a.schema().iter().map(|(id, _)| id).collect();
        let na = inject_dirty_cells(&mut a, &attrs, 0.2, 7);
        let nb = inject_dirty_cells(&mut b, &attrs, 0.2, 7);
        assert_eq!(na, nb, "same seed, same plan");
        assert!(na > 0 && na < 1000, "rate respected: {na}");
        // Same cells dirtied in both tables.
        for r in 0..500 {
            for &attr in &attrs {
                assert_eq!(
                    format!("{:?}", a.value(r, attr)),
                    format!("{:?}", b.value(r, attr))
                );
            }
        }
        // String column only ever receives nulls.
        let s = a.attr("s").unwrap();
        for r in 0..500 {
            let v = a.value(r, s);
            assert!(v.is_null() || v == Value::str("a"));
        }
    }

    #[test]
    fn zero_rate_dirties_nothing() {
        let schema = Schema::new(vec![("x", AttrType::Float)]);
        let mut t = Table::new(schema);
        t.push_row(vec![Value::Float(1.0)]).unwrap();
        let x = t.attr("x").unwrap();
        assert_eq!(inject_dirty_cells(&mut t, &[x], 0.0, 1), 0);
        assert_eq!(t.value(0, x), Value::Float(1.0));
    }
}
