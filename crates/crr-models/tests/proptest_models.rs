//! Property-based tests for the regression models and translation
//! detection — the algebraic laws compaction relies on.

// Test harness: panicking on malformed fixtures is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use crr_models::{
    fit_model, ConstantModel, FitConfig, LinearModel, Model, ModelKind, Regressor, RidgeModel,
    Translation,
};
use proptest::prelude::*;

fn arb_affine() -> impl Strategy<Value = Model> {
    prop_oneof![
        (prop::collection::vec(-5.0f64..5.0, 1..3), -20.0f64..20.0)
            .prop_map(|(w, b)| Model::Linear(LinearModel::new(w, b))),
        (prop::collection::vec(-5.0f64..5.0, 1..3), -20.0f64..20.0)
            .prop_map(|(w, b)| Model::Ridge(RidgeModel::new(w, b, 0.5))),
        ((-20.0f64..20.0), 1usize..3).prop_map(|(v, d)| Model::Constant(ConstantModel::new(v, d))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every affine model is a translation of itself with Δ = δ = 0.
    #[test]
    fn translation_is_reflexive(m in arb_affine()) {
        let t = m.translation_to(&m, 1e-12).unwrap();
        prop_assert!(t.is_identity());
    }

    /// Translation witnesses are symmetric up to inversion:
    /// if f₂ = f₁ ∘ t then f₁ = f₂ ∘ t⁻¹.
    #[test]
    fn translation_inverts(m in arb_affine(), dy in -30.0f64..30.0) {
        // Build the shifted partner explicitly.
        let shifted = match &m {
            Model::Linear(l) => Model::Linear(LinearModel::new(l.weights().to_vec(), l.intercept() + dy)),
            Model::Ridge(r) => Model::Ridge(RidgeModel::new(r.weights().to_vec(), r.intercept() + dy, r.lambda())),
            Model::Constant(c) => Model::Constant(ConstantModel::new(c.value() + dy, c.num_inputs())),
            Model::Mlp(_) => unreachable!(),
        };
        let fwd = m.translation_to(&shifted, 1e-9).unwrap();
        let back = shifted.translation_to(&m, 1e-9).unwrap();
        prop_assert!((fwd.delta_y - dy).abs() < 1e-9);
        prop_assert!(fwd.compose(&back).is_identity() || (fwd.delta_y + back.delta_y).abs() < 1e-9);
    }

    /// The translated prediction identity holds pointwise:
    /// predict_translated(x, t) == predict(x + Δ) + δ.
    #[test]
    fn predict_translated_identity(
        m in arb_affine(),
        dx in -10.0f64..10.0,
        dy in -10.0f64..10.0,
        x0 in -50.0f64..50.0,
    ) {
        let d = m.num_inputs();
        let t = Translation { delta_x: vec![dx; d], delta_y: dy };
        let x = vec![x0; d];
        let shifted: Vec<f64> = x.iter().map(|v| v + dx).collect();
        let got = m.predict_translated(&x, &t);
        let want = m.predict(&shifted) + dy;
        prop_assert!((got - want).abs() < 1e-9);
    }

    /// Linear least squares on exactly-affine data recovers the
    /// generating parameters.
    #[test]
    fn linear_fit_recovers_exact_parameters(
        w in -5.0f64..5.0,
        b in -20.0f64..20.0,
        n in 3usize..40,
    ) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = xs.iter().map(|x| w * x[0] + b).collect();
        let m = LinearModel::fit(&xs, &y).unwrap();
        prop_assert!((m.weights()[0] - w).abs() < 1e-6);
        prop_assert!((m.intercept() - b).abs() < 1e-5);
    }

    /// Fitting y + δ gives the same weights and a δ-shifted intercept, for
    /// both linear families — the data-level fact behind Translation.
    #[test]
    fn shifting_targets_shifts_only_the_intercept(
        w in -5.0f64..5.0,
        b in -20.0f64..20.0,
        dy in -30.0f64..30.0,
        kind in prop_oneof![Just(ModelKind::Linear), Just(ModelKind::Ridge)],
    ) {
        let xs: Vec<Vec<f64>> = (0..25).map(|i| vec![i as f64]).collect();
        let y1: Vec<f64> = xs.iter().map(|x| w * x[0] + b).collect();
        let y2: Vec<f64> = y1.iter().map(|v| v + dy).collect();
        let cfg = FitConfig::new(kind);
        let m1 = fit_model(&xs, &y1, &cfg).unwrap();
        let m2 = fit_model(&xs, &y2, &cfg).unwrap();
        let t = m1.translation_to(&m2, 1e-6).unwrap();
        prop_assert!((t.delta_y - dy).abs() < 1e-6, "delta {} vs {}", t.delta_y, dy);
    }

    /// The constant model's midrange fit minimizes max |residual| against
    /// any alternative constant.
    #[test]
    fn midrange_is_minimax(values in prop::collection::vec(-100.0f64..100.0, 1..30), probe in -100.0f64..100.0) {
        let m = ConstantModel::fit(&values, 1).unwrap();
        let max_res = |c: f64| values.iter().map(|v| (v - c).abs()).fold(0.0, f64::max);
        prop_assert!(max_res(m.value()) <= max_res(probe) + 1e-12);
    }

    /// Non-translatable pairs are rejected: different slopes never admit a
    /// witness (beyond tolerance).
    #[test]
    fn different_slopes_never_translate(w1 in -5.0f64..5.0, w2 in -5.0f64..5.0, b in -5.0f64..5.0) {
        prop_assume!((w1 - w2).abs() > 1e-3);
        let m1 = Model::Linear(LinearModel::new(vec![w1], b));
        let m2 = Model::Linear(LinearModel::new(vec![w2], b));
        prop_assert!(m1.translation_to(&m2, 1e-6).is_none());
    }
}
