//! Property-based equivalence of the sufficient-statistics fit engine with
//! the direct row-wise solvers, on integer-valued designs.
//!
//! Integer cells keep every Gram-matrix sum exact in f64 (all magnitudes
//! stay far below 2⁵³), so:
//!
//! * the moments accumulated row-by-row equal the design matrix's own
//!   `AᵀA` bit for bit — OLS from moments and [`fit_model`] solve the
//!   *identical* normal equations;
//! * `add_row` followed by `sub_row` of the same row, and `merge` followed
//!   by `subtract`, are exact inverses (no rounding ever happened);
//!
//! which is precisely the invariant the discovery loop's sibling
//! subtraction relies on. Rank-deficient designs (duplicated columns,
//! constant columns) and single-row partitions are generated on purpose:
//! there the moments path must *decline* (`None`) rather than return a
//! different model than the row path would.

// Test harness: panicking on malformed fixtures is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use crr_models::{fit_model, try_fit_from_moments, FitConfig, Model, ModelKind, Moments};
use proptest::prelude::*;

/// Mixed absolute/relative closeness at 1e-9.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// An integer-valued regression instance: deterministic spread-out feature
/// columns (residue patterns, so small `n` often repeats values and yields
/// rank-deficient Grams), an exact integer linear law, ±1 integer noise,
/// and optionally an exactly collinear duplicate column.
#[allow(clippy::type_complexity)]
fn arb_instance() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    (
        1usize..30,                         // rows
        1usize..4,                          // features
        prop::collection::vec(-5i64..6, 4), // integer coefficients
        -5i64..6,                           // intercept
        0u64..1000,                         // column pattern seed
        0usize..3,                          // 0: independent cols, 1: dup col, 2: constant col
    )
        .prop_map(|(n, d, coef, b, seed, degenerate)| {
            let moduli = [7u64, 11, 13];
            let mut xs = Vec::with_capacity(n);
            let mut y = Vec::with_capacity(n);
            for i in 0..n {
                let mut row = Vec::with_capacity(d);
                for (j, m) in moduli.iter().take(d).enumerate() {
                    let v =
                        ((i as u64).wrapping_mul(2 * j as u64 + 3).wrapping_add(seed) % m) as f64;
                    row.push(v);
                }
                if d >= 2 {
                    match degenerate {
                        1 => row[d - 1] = 2.0 * row[0], // exactly collinear
                        2 => row[d - 1] = 3.0,          // constant column
                        _ => {}
                    }
                }
                let noise = [(i % 3) as f64 - 1.0, 0.0][i % 2];
                let t: f64 = row
                    .iter()
                    .zip(&coef)
                    .map(|(x, &c)| x * c as f64)
                    .sum::<f64>()
                    + b as f64
                    + noise;
                xs.push(row);
                y.push(t);
            }
            (xs, y)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// OLS from moments matches the direct fit whenever it engages. When it
    /// declines (`None`: too few rows or a singular Gram), the direct path
    /// must not have produced a linear model from the same Cholesky either.
    #[test]
    fn ols_from_moments_matches_fit_model((xs, y) in arb_instance()) {
        let cfg = FitConfig::new(ModelKind::Linear);
        let m = Moments::from_rows(&xs, &y);
        let direct = fit_model(&xs, &y, &cfg).unwrap();
        match try_fit_from_moments(&m, &cfg) {
            Some(Model::Linear(lm)) => {
                // Identical normal equations, identical solver: the direct
                // path must agree to working precision.
                let Model::Linear(dm) = &direct else {
                    return Err(TestCaseError::Fail(format!(
                        "moments fitted linear but direct gave {}", direct.family()
                    )));
                };
                prop_assert!(close(lm.intercept(), dm.intercept()),
                    "intercepts {} vs {}", lm.intercept(), dm.intercept());
                for (a, b) in lm.weights().iter().zip(dm.weights()) {
                    prop_assert!(close(*a, *b), "weights {a} vs {b}");
                }
            }
            Some(other) => prop_assert!(false, "unexpected family {}", other.family()),
            None => {
                // Declined: single row, VC guard, or singular Gram. The
                // caller's midrange fallback handles it — here we only
                // require the decline was legitimate.
                let d = xs[0].len();
                let singular_ok = xs.len() > d;
                if !singular_ok {
                    prop_assert!(xs.len() <= d);
                }
            }
        }
    }

    /// Ridge is always solvable (λ > 0 ⇒ positive definite), including on
    /// rank-deficient designs and single rows, and the centered moments
    /// solve agrees with the direct centered solve to 1e-9.
    #[test]
    fn ridge_from_moments_matches_fit_model((xs, y) in arb_instance()) {
        let cfg = FitConfig::new(ModelKind::Ridge);
        let m = Moments::from_rows(&xs, &y);
        let fitted = try_fit_from_moments(&m, &cfg);
        let direct = fit_model(&xs, &y, &cfg).unwrap();
        let Some(Model::Ridge(rm)) = fitted else {
            return Err(TestCaseError::Fail(format!("ridge declined: {fitted:?}")));
        };
        let Model::Ridge(dm) = &direct else {
            return Err(TestCaseError::Fail(format!(
                "direct ridge gave {}", direct.family()
            )));
        };
        prop_assert!(close(rm.intercept(), dm.intercept()),
            "intercepts {} vs {}", rm.intercept(), dm.intercept());
        for (a, b) in rm.weights().iter().zip(dm.weights()) {
            prop_assert!(close(*a, *b), "weights {a} vs {b}");
        }
    }

    /// `add_row` then `sub_row` of the same row is an exact inverse on
    /// integer data — every statistic returns bit for bit.
    #[test]
    fn add_sub_row_round_trips((xs, y) in arb_instance(), extra in -6i64..7) {
        let m0 = Moments::from_rows(&xs, &y);
        let mut m = m0.clone();
        let row: Vec<f64> = (0..xs[0].len()).map(|j| (extra + j as i64) as f64).collect();
        m.add_row(&row, extra as f64);
        m.sub_row(&row, extra as f64);
        prop_assert_eq!(m.count(), m0.count());
        prop_assert_eq!(m.yty().to_bits(), m0.yty().to_bits());
        for (a, b) in m.rhs().iter().zip(m0.rhs()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in m.gram().as_slice().iter().zip(m0.gram().as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// parent = child₁ + child₂ exactly: merging the halves reproduces the
    /// whole, and subtracting one half yields the other — the split
    /// invariant the discovery loop's sibling subtraction depends on.
    #[test]
    fn merge_subtract_round_trips((xs, y) in arb_instance(), cut_frac in 0.0f64..1.0) {
        let cut = ((xs.len() as f64 * cut_frac) as usize).min(xs.len());
        let d = xs[0].len();
        let whole = Moments::from_rows(&xs, &y);
        // Build the halves at the parent's dimension even when one side is
        // empty (`from_rows` on an empty slice would infer d = 0).
        let mut a = Moments::zeros(d);
        for (x, &t) in xs[..cut].iter().zip(&y[..cut]) {
            a.add_row(x, t);
        }
        let mut b = Moments::zeros(d);
        for (x, &t) in xs[cut..].iter().zip(&y[cut..]) {
            b.add_row(x, t);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        for (p, q) in merged.gram().as_slice().iter().zip(whole.gram().as_slice()) {
            prop_assert_eq!(p.to_bits(), q.to_bits());
        }
        let mut sib = whole.clone();
        sib.subtract(&a);
        prop_assert_eq!(sib.count(), b.count());
        prop_assert_eq!(sib.yty().to_bits(), b.yty().to_bits());
        for (p, q) in sib.rhs().iter().zip(b.rhs()) {
            prop_assert_eq!(p.to_bits(), q.to_bits());
        }
        for (p, q) in sib.gram().as_slice().iter().zip(b.gram().as_slice()) {
            prop_assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    /// k-way shard merge reproduces the whole-table moments exactly — the
    /// invariant sharded discovery relies on when it combines per-shard
    /// root statistics instead of refitting the merged instance.
    #[test]
    fn shard_merge_equals_whole_table((xs, y) in arb_instance(), shards in 1usize..6) {
        let d = xs[0].len();
        let whole = Moments::from_rows(&xs, &y);
        // Contiguous chunks, possibly empty at the tail — the same shape a
        // key-range shard plan yields on sorted keys.
        let per = xs.len().div_ceil(shards);
        let mut merged: Option<Moments> = None;
        for chunk in 0..shards {
            let lo = (chunk * per).min(xs.len());
            let hi = ((chunk + 1) * per).min(xs.len());
            let mut m = Moments::zeros(d);
            for (x, &t) in xs[lo..hi].iter().zip(&y[lo..hi]) {
                m.add_row(x, t);
            }
            match &mut merged {
                None => merged = Some(m),
                Some(acc) => acc.merge(&m),
            }
        }
        let merged = merged.unwrap();
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.yty().to_bits(), whole.yty().to_bits());
        for (p, q) in merged.rhs().iter().zip(whole.rhs()) {
            prop_assert_eq!(p.to_bits(), q.to_bits());
        }
        for (p, q) in merged.gram().as_slice().iter().zip(whole.gram().as_slice()) {
            prop_assert_eq!(p.to_bits(), q.to_bits());
        }
    }
}
