use crate::{ModelError, Regressor, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Training hyper-parameters for the MLP regressor (mirrors the defaults of
/// scikit-learn's `MLPRegressor`, which the paper uses as F3, scaled down to
/// the per-partition fits CRR discovery performs).
#[derive(Debug, Clone, PartialEq)]
pub struct MlpHyper {
    /// Hidden-layer width.
    pub hidden: usize,
    /// Full passes over the data.
    pub epochs: usize,
    /// Adam step size.
    pub learning_rate: f64,
    /// Mini-batch size (clamped to the sample count).
    pub batch: usize,
    /// RNG seed for weight init and shuffling — fits are deterministic.
    pub seed: u64,
}

impl Default for MlpHyper {
    fn default() -> Self {
        MlpHyper {
            hidden: 8,
            epochs: 200,
            learning_rate: 0.01,
            batch: 32,
            seed: 7,
        }
    }
}

/// F3: a one-hidden-layer perceptron regressor
/// `f(X) = w₂·tanh(W₁ X̃ + b₁) + b₂` over standardized inputs `X̃`.
///
/// Implemented from scratch (no ML crates): Adam on mean-squared error with
/// mini-batches, deterministic given the seed. Only output shifts `y = δ`
/// are detectable between two MLPs — the translation restriction the paper
/// states for F3 (§VI-A3).
#[derive(Debug, Clone, PartialEq)]
pub struct MlpModel {
    /// Hidden weights, row-major `hidden x d`.
    w1: Vec<f64>,
    b1: Vec<f64>,
    w2: Vec<f64>,
    b2: f64,
    /// Input standardization: `x̃ = (x − mean) / std`.
    x_mean: Vec<f64>,
    x_std: Vec<f64>,
    d: usize,
}

impl MlpModel {
    /// Fits the network on `(xs, y)` with the given hyper-parameters.
    pub fn fit(xs: &[Vec<f64>], y: &[f64], hyper: &MlpHyper) -> Result<Self> {
        if xs.len() != y.len() {
            return Err(ModelError::LengthMismatch {
                features: xs.len(),
                targets: y.len(),
            });
        }
        if xs.is_empty() {
            return Err(ModelError::TooFewSamples { needed: 1, got: 0 });
        }
        let d = xs[0].len();
        for row in xs {
            if row.len() != d {
                return Err(ModelError::InconsistentFeatures {
                    expected: d,
                    got: row.len(),
                });
            }
            if row.iter().any(|v| !v.is_finite()) {
                return Err(ModelError::NonFinite);
            }
        }
        if y.iter().any(|v| !v.is_finite()) {
            return Err(ModelError::NonFinite);
        }
        let n = xs.len();
        let h = hyper.hidden.max(1);

        // Standardize inputs; degenerate (constant) features get std 1 so
        // they standardize to 0 and the weight gradient for them vanishes.
        let mut x_mean = vec![0.0; d];
        let mut x_std = vec![0.0; d];
        for j in 0..d {
            let m = xs.iter().map(|r| r[j]).sum::<f64>() / n as f64;
            let v = xs.iter().map(|r| (r[j] - m).powi(2)).sum::<f64>() / n as f64;
            x_mean[j] = m;
            x_std[j] = if v.sqrt() > 1e-12 { v.sqrt() } else { 1.0 };
        }
        let std_rows: Vec<Vec<f64>> = xs
            .iter()
            .map(|r| {
                r.iter()
                    .zip(0..d)
                    .map(|(v, j)| (v - x_mean[j]) / x_std[j])
                    .collect()
            })
            .collect();

        let mut rng = StdRng::seed_from_u64(hyper.seed);
        let scale = (1.0 / d.max(1) as f64).sqrt();
        let mut w1: Vec<f64> = (0..h * d).map(|_| rng.gen_range(-scale..scale)).collect();
        let mut b1 = vec![0.0; h];
        let hs = (1.0 / h as f64).sqrt();
        let mut w2: Vec<f64> = (0..h).map(|_| rng.gen_range(-hs..hs)).collect();
        // Start the output bias at the target mean so early epochs learn the
        // shape, not the offset.
        let mut b2 = y.iter().sum::<f64>() / n as f64;

        // Adam state.
        let p = h * d + h + h + 1;
        let (mut m1, mut m2) = (vec![0.0; p], vec![0.0; p]);
        let (beta1, beta2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let mut step = 0usize;
        let batch = hyper.batch.clamp(1, n);

        let mut order: Vec<usize> = (0..n).collect();
        let mut grad = vec![0.0; p];
        let mut hidden_act = vec![0.0; h];
        for _epoch in 0..hyper.epochs {
            // Fisher–Yates shuffle with the fit RNG for determinism.
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(batch) {
                grad.iter_mut().for_each(|g| *g = 0.0);
                for &i in chunk {
                    let x = &std_rows[i];
                    // Forward pass.
                    for k in 0..h {
                        let z = b1[k] + crr_linalg::dot(&w1[k * d..(k + 1) * d], x);
                        hidden_act[k] = z.tanh();
                    }
                    let pred = b2 + crr_linalg::dot(&w2, &hidden_act);
                    let err = pred - y[i];
                    // Backward pass (MSE gradient, factor 2 folded into lr).
                    for k in 0..h {
                        let g_out = err * hidden_act[k];
                        grad[h * d + h + k] += g_out; // dL/dw2[k]
                        let g_hidden = err * w2[k] * (1.0 - hidden_act[k] * hidden_act[k]);
                        grad[h * d + k] += g_hidden; // dL/db1[k]
                        for (gj, xj) in grad[k * d..(k + 1) * d].iter_mut().zip(x) {
                            *gj += g_hidden * xj; // dL/dw1[k][j]
                        }
                    }
                    grad[p - 1] += err; // dL/db2
                }
                let inv = 1.0 / chunk.len() as f64;
                step += 1;
                let bc1 = 1.0 - beta1.powi(step as i32);
                let bc2 = 1.0 - beta2.powi(step as i32);
                let mut apply = |idx: usize, param: &mut f64| {
                    let g = grad[idx] * inv;
                    m1[idx] = beta1 * m1[idx] + (1.0 - beta1) * g;
                    m2[idx] = beta2 * m2[idx] + (1.0 - beta2) * g * g;
                    let mh = m1[idx] / bc1;
                    let vh = m2[idx] / bc2;
                    *param -= hyper.learning_rate * mh / (vh.sqrt() + eps);
                };
                for (idx, wp) in w1.iter_mut().enumerate() {
                    apply(idx, wp);
                }
                for (k, bp) in b1.iter_mut().enumerate() {
                    apply(h * d + k, bp);
                }
                for (k, wp) in w2.iter_mut().enumerate() {
                    apply(h * d + h + k, wp);
                }
                apply(p - 1, &mut b2);
            }
        }
        Ok(MlpModel {
            w1,
            b1,
            w2,
            b2,
            x_mean,
            x_std,
            d,
        })
    }

    /// Output shift `δ` with `other(X) = self(X) + δ`: every parameter except
    /// the output bias must agree within `tol` (including the input
    /// standardization, or the hidden activations would differ).
    pub fn output_shift_to(&self, other: &MlpModel, tol: f64) -> Option<f64> {
        if self.d != other.d || self.w1.len() != other.w1.len() {
            return None;
        }
        let close = |a: &[f64], b: &[f64]| a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol);
        if close(&self.w1, &other.w1)
            && close(&self.b1, &other.b1)
            && close(&self.w2, &other.w2)
            && close(&self.x_mean, &other.x_mean)
            && close(&self.x_std, &other.x_std)
        {
            Some(other.b2 - self.b2)
        } else {
            None
        }
    }

    /// Returns a copy with the output bias shifted by `delta_y` — the model
    /// `f(X) + δ` that data-based sharing attaches a `y = δ` predicate for.
    pub fn shifted(&self, delta_y: f64) -> MlpModel {
        let mut m = self.clone();
        m.b2 += delta_y;
        m
    }

    /// Flattens all parameters (for rule serialization): returns
    /// `(hidden_width, params)` where `params` is
    /// `w1 ‖ b1 ‖ w2 ‖ [b2] ‖ x_mean ‖ x_std`.
    pub fn flatten(&self) -> (usize, Vec<f64>) {
        let mut p = Vec::with_capacity(self.w1.len() + 2 * self.b1.len() + 1 + 2 * self.d);
        p.extend_from_slice(&self.w1);
        p.extend_from_slice(&self.b1);
        p.extend_from_slice(&self.w2);
        p.push(self.b2);
        p.extend_from_slice(&self.x_mean);
        p.extend_from_slice(&self.x_std);
        (self.b1.len(), p)
    }

    /// Rebuilds a model from [`MlpModel::flatten`] output.
    pub fn from_flat(d: usize, hidden: usize, params: &[f64]) -> Result<Self> {
        let expect = hidden * d + hidden + hidden + 1 + 2 * d;
        if params.len() != expect {
            return Err(ModelError::InconsistentFeatures {
                expected: expect,
                got: params.len(),
            });
        }
        let mut it = params.iter().copied();
        let mut take = |n: usize| -> Vec<f64> { it.by_ref().take(n).collect() };
        let w1 = take(hidden * d);
        let b1 = take(hidden);
        let w2 = take(hidden);
        let b2 = take(1)[0];
        let x_mean = take(d);
        let x_std = take(d);
        Ok(MlpModel {
            w1,
            b1,
            w2,
            b2,
            x_mean,
            x_std,
            d,
        })
    }
}

impl Regressor for MlpModel {
    fn predict(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.d);
        let h = self.b1.len();
        let mut out = self.b2;
        for k in 0..h {
            let mut z = self.b1[k];
            for (j, xj) in x.iter().enumerate().take(self.d) {
                z += self.w1[k * self.d + j] * (xj - self.x_mean[j]) / self.x_std[j];
            }
            out += self.w2[k] * z.tanh();
        }
        out
    }

    fn num_inputs(&self) -> usize {
        self.d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmse;

    fn hyper() -> MlpHyper {
        MlpHyper {
            hidden: 8,
            epochs: 300,
            learning_rate: 0.02,
            batch: 16,
            seed: 42,
        }
    }

    #[test]
    fn learns_a_line() {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 4.0]).collect();
        let y: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] - 1.0).collect();
        let m = MlpModel::fit(&xs, &y, &hyper()).unwrap();
        assert!(rmse(&m, &xs, &y) < 0.3, "rmse {}", rmse(&m, &xs, &y));
    }

    #[test]
    fn learns_a_nonlinearity() {
        let xs: Vec<Vec<f64>> = (0..60).map(|i| vec![(i as f64 - 30.0) / 10.0]).collect();
        let y: Vec<f64> = xs.iter().map(|x| x[0] * x[0]).collect();
        let m = MlpModel::fit(&xs, &y, &hyper()).unwrap();
        // A quadratic on [-3,3]; linear fit RMSE would be ~2.4.
        assert!(rmse(&m, &xs, &y) < 1.0, "rmse {}", rmse(&m, &xs, &y));
    }

    #[test]
    fn deterministic_given_seed() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = xs.iter().map(|x| x[0].sin()).collect();
        let a = MlpModel::fit(&xs, &y, &hyper()).unwrap();
        let b = MlpModel::fit(&xs, &y, &hyper()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn output_shift_detected_only_for_shifted_copy() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = xs.iter().map(|x| x[0] * 0.5).collect();
        let m = MlpModel::fit(&xs, &y, &hyper()).unwrap();
        let shifted = m.shifted(3.0);
        assert_eq!(m.output_shift_to(&shifted, 1e-12), Some(3.0));
        assert!((shifted.predict(&[4.0]) - m.predict(&[4.0]) - 3.0).abs() < 1e-12);
        // An independently trained net is not a recognized shift.
        let y2: Vec<f64> = xs.iter().map(|x| x[0] * 0.25).collect();
        let other = MlpModel::fit(&xs, &y2, &hyper()).unwrap();
        assert_eq!(m.output_shift_to(&other, 1e-9), None);
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![5.0, i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let m = MlpModel::fit(&xs, &y, &hyper()).unwrap();
        assert!(m.predict(&[5.0, 3.0]).is_finite());
    }

    #[test]
    fn shape_errors() {
        assert!(MlpModel::fit(&[], &[], &hyper()).is_err());
        assert!(MlpModel::fit(&[vec![1.0]], &[1.0, 2.0], &hyper()).is_err());
        assert!(MlpModel::fit(&[vec![1.0], vec![1.0, 2.0]], &[0.0, 0.0], &hyper()).is_err());
    }
}
