//! Regression models for conditional regression rules.
//!
//! The paper evaluates CRR discovery with three basic model families
//! (§VI-A3): **F1** ordinary linear regression, **F2** ridge regression and
//! **F3** a multi-layer-perceptron regressor. All three are implemented here
//! from scratch on top of [`crr_linalg`], together with a constant model
//! (rules like `Latitude = 60.10` in the paper's Example 2 are constant
//! predictions) and, crucially, *translation detection*: deciding whether
//! two fitted models satisfy `f₂(X) = f₁(X + Δ) + δ`, the premise of the
//! Translation inference rule (Proposition 5).
//!
//! The linear family (F1/F2/constant) supports full `(Δ, δ)` translations;
//! the MLP supports only output shifts `y = δ`, exactly the restriction
//! stated in the paper for F3.
//!
//! # Example
//!
//! ```
//! use crr_models::{fit_model, FitConfig, ModelKind, Regressor};
//!
//! // Two noiseless lines with the same slope, different intercepts.
//! let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
//! let y1: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] + 1.0).collect();
//! let y2: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] + 6.0).collect();
//! let cfg = FitConfig::new(ModelKind::Linear);
//! let f1 = fit_model(&xs, &y1, &cfg).unwrap();
//! let f2 = fit_model(&xs, &y2, &cfg).unwrap();
//! // f2(X) = f1(X) + 5: a pure y-translation.
//! let t = f1.translation_to(&f2, 1e-6).unwrap();
//! assert!(t.delta_x.iter().all(|&d| d == 0.0));
//! assert!((t.delta_y - 5.0).abs() < 1e-6);
//! assert!((f1.predict(&[3.0]) - 7.0).abs() < 1e-9);
//! ```

#![deny(unsafe_code)]

mod constant;
mod error;
mod fit;
mod linear;
mod mlp;
mod model;
mod ridge;

pub use constant::ConstantModel;
pub use error::ModelError;
pub use fit::{fit_model, try_fit_from_moments, FitConfig, MlpConfig, ModelKind};
pub use linear::LinearModel;
pub use mlp::MlpModel;
pub use model::{Model, Regressor, Translation};
pub use ridge::RidgeModel;

// Re-exported so moments-based fitting can be driven without a direct
// `crr-linalg` dependency (the discovery crate builds these per partition).
pub use crr_linalg::Moments;

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, ModelError>;

/// Root-mean-square error of `model` over `(xs, y)` pairs.
pub fn rmse(model: &dyn Regressor, xs: &[Vec<f64>], y: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let sse: f64 = xs
        .iter()
        .zip(y)
        .map(|(x, &t)| {
            let e = model.predict(x) - t;
            e * e
        })
        .sum();
    (sse / xs.len() as f64).sqrt()
}

/// Maximum absolute residual of `model` over `(xs, y)` pairs — the bias `ρ`
/// the paper attaches to every CRR (§III-A4).
pub fn max_abs_residual(model: &dyn Regressor, xs: &[Vec<f64>], y: &[f64]) -> f64 {
    xs.iter()
        .zip(y)
        .map(|(x, &t)| (model.predict(x) - t).abs())
        .fold(0.0, f64::max)
}
