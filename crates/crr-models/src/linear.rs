use crate::{ModelError, Regressor, Result};
use crr_linalg::{lstsq, Matrix, Moments};

/// F1: ordinary least-squares linear regression `f(X) = w·X + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    weights: Vec<f64>,
    intercept: f64,
}

/// Builds the design matrix `[1 | X]` from feature rows.
pub(crate) fn design_matrix(xs: &[Vec<f64>]) -> Result<Matrix> {
    let d = xs.first().map_or(0, Vec::len);
    let mut data = Vec::with_capacity(xs.len() * (d + 1));
    for row in xs {
        if row.len() != d {
            return Err(ModelError::InconsistentFeatures {
                expected: d,
                got: row.len(),
            });
        }
        if row.iter().any(|v| !v.is_finite()) {
            return Err(ModelError::NonFinite);
        }
        data.push(1.0);
        data.extend_from_slice(row);
    }
    Ok(Matrix::from_vec(xs.len(), d + 1, data))
}

impl LinearModel {
    /// Creates a model from explicit parameters.
    pub fn new(weights: Vec<f64>, intercept: f64) -> Self {
        LinearModel { weights, intercept }
    }

    /// Fits by least squares. Requires at least `d + 1` samples for `d`
    /// features (the linear family's VC dimension, §V-A2).
    pub fn fit(xs: &[Vec<f64>], y: &[f64]) -> Result<Self> {
        if xs.len() != y.len() {
            return Err(ModelError::LengthMismatch {
                features: xs.len(),
                targets: y.len(),
            });
        }
        let d = xs.first().map_or(0, Vec::len);
        if xs.len() < d + 1 {
            return Err(ModelError::TooFewSamples {
                needed: d + 1,
                got: xs.len(),
            });
        }
        if y.iter().any(|v| !v.is_finite()) {
            return Err(ModelError::NonFinite);
        }
        let a = design_matrix(xs)?;
        let beta = lstsq(&a, y)?;
        Ok(LinearModel {
            intercept: beta[0],
            weights: beta[1..].to_vec(),
        })
    }

    /// Fits from sufficient statistics: the same normal equations
    /// `([1|X]ᵀ[1|X]) β = [1|X]ᵀy` that [`LinearModel::fit`] assembles from
    /// the design matrix, solved without the rows. There is no QR fallback
    /// here (QR needs row data), so a singular Gram matrix surfaces as
    /// [`ModelError::Solver`] — the same signal the direct path emits for
    /// rank-deficient designs, and the one `fit_model` turns into a
    /// constant fallback.
    pub fn fit_from_moments(m: &Moments) -> Result<Self> {
        let d = m.num_features();
        if m.count() < d + 1 {
            return Err(ModelError::TooFewSamples {
                needed: d + 1,
                got: m.count(),
            });
        }
        let beta = m.solve_ols()?;
        Ok(LinearModel {
            intercept: beta[0],
            weights: beta[1..].to_vec(),
        })
    }

    /// Weight vector `w`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Intercept `b`.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

impl Regressor for LinearModel {
    fn predict(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.weights.len());
        self.intercept + crr_linalg::dot(&self.weights, x)
    }

    fn num_inputs(&self) -> usize {
        self.weights.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_exact_line() {
        let xs: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] - 2.0).collect();
        let m = LinearModel::fit(&xs, &y).unwrap();
        assert!((m.weights()[0] - 3.0).abs() < 1e-9);
        assert!((m.intercept() + 2.0).abs() < 1e-9);
        assert!((m.predict(&[10.0]) - 28.0).abs() < 1e-9);
    }

    #[test]
    fn fits_multivariate_plane() {
        let xs: Vec<Vec<f64>> = (0..9)
            .map(|i| vec![(i % 3) as f64, (i / 3) as f64])
            .collect();
        let y: Vec<f64> = xs.iter().map(|x| 1.0 + 2.0 * x[0] - 0.5 * x[1]).collect();
        let m = LinearModel::fit(&xs, &y).unwrap();
        assert!((m.weights()[0] - 2.0).abs() < 1e-9);
        assert!((m.weights()[1] + 0.5).abs() < 1e-9);
    }

    #[test]
    fn two_points_determine_a_line() {
        let m = LinearModel::fit(&[vec![0.0], vec![2.0]], &[1.0, 5.0]).unwrap();
        assert!((m.predict(&[1.0]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn too_few_samples_rejected() {
        assert!(matches!(
            LinearModel::fit(&[vec![1.0, 2.0]], &[1.0]),
            Err(ModelError::TooFewSamples { needed: 3, got: 1 })
        ));
    }

    #[test]
    fn ragged_features_rejected() {
        assert!(matches!(
            LinearModel::fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0]),
            Err(ModelError::InconsistentFeatures { .. })
        ));
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(matches!(
            LinearModel::fit(&[vec![1.0]], &[1.0, 2.0]),
            Err(ModelError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn non_finite_rejected() {
        assert!(matches!(
            LinearModel::fit(&[vec![f64::INFINITY], vec![0.0]], &[1.0, 2.0]),
            Err(ModelError::NonFinite)
        ));
    }
}
