use crate::{ConstantModel, LinearModel, MlpModel, RidgeModel};
use std::fmt;

/// A fitted regression function `f : X → Y`.
///
/// Implementors are pure: `predict` has no side effects and is deterministic,
/// which the rule semantics (`|t.Y − (f(t.X + x) + y)| ≤ ρ`) relies on.
pub trait Regressor {
    /// Predicts the target for one feature vector.
    ///
    /// `x.len()` must equal [`Regressor::num_inputs`].
    fn predict(&self, x: &[f64]) -> f64;

    /// Dimensionality of the feature vector this model expects.
    fn num_inputs(&self) -> usize;
}

/// A translation relating two models: `other(X) = self(X + Δ) + δ`
/// (the premise of the paper's Translation inference, Proposition 5).
#[derive(Debug, Clone, PartialEq)]
pub struct Translation {
    /// Input shift `Δ`, one entry per feature.
    pub delta_x: Vec<f64>,
    /// Output shift `δ`.
    pub delta_y: f64,
}

impl Translation {
    /// The identity translation (`Δ = 0, δ = 0`) for `d` features.
    pub fn identity(d: usize) -> Self {
        Translation {
            delta_x: vec![0.0; d],
            delta_y: 0.0,
        }
    }

    /// A pure output shift `y = δ`.
    pub fn output_shift(d: usize, delta_y: f64) -> Self {
        Translation {
            delta_x: vec![0.0; d],
            delta_y,
        }
    }

    /// True when both shifts are (exactly) zero.
    pub fn is_identity(&self) -> bool {
        self.delta_y == 0.0 && self.delta_x.iter().all(|&d| d == 0.0)
    }

    /// Composes translations per Proposition 9: applying `self` then `next`
    /// yields `x = Δ' + Δ, y = δ' + δ`.
    pub fn compose(&self, next: &Translation) -> Translation {
        Translation {
            delta_x: self
                .delta_x
                .iter()
                .zip(&next.delta_x)
                .map(|(a, b)| a + b)
                .collect(),
            delta_y: self.delta_y + next.delta_y,
        }
    }

    /// The inverse translation (negate both shifts).
    pub fn inverse(&self) -> Translation {
        Translation {
            delta_x: self.delta_x.iter().map(|d| -d).collect(),
            delta_y: -self.delta_y,
        }
    }
}

/// A fitted model of any supported family.
///
/// A closed enum rather than a trait object because translation detection
/// must inspect parameters structurally: two models can only be translations
/// of each other within the same family (or within the affine family, which
/// spans constant/linear/ridge).
#[derive(Debug, Clone, PartialEq)]
pub enum Model {
    /// Constant prediction (e.g. `Latitude = 60.10` in Example 2).
    Constant(ConstantModel),
    /// F1: ordinary least-squares linear model.
    Linear(LinearModel),
    /// F2: ridge (L2-regularized) linear model.
    Ridge(RidgeModel),
    /// F3: multi-layer perceptron regressor.
    Mlp(MlpModel),
}

impl Model {
    /// Affine view `(weights, intercept)` for the linear family; `None` for
    /// the MLP. Constants are affine with all-zero weights.
    pub fn as_affine(&self) -> Option<(&[f64], f64)> {
        match self {
            Model::Constant(m) => Some((m.zero_weights(), m.value())),
            Model::Linear(m) => Some((m.weights(), m.intercept())),
            Model::Ridge(m) => Some((m.weights(), m.intercept())),
            Model::Mlp(_) => None,
        }
    }

    /// Short family name, for rule display and experiment reports.
    pub fn family(&self) -> &'static str {
        match self {
            Model::Constant(_) => "const",
            Model::Linear(_) => "linear",
            Model::Ridge(_) => "ridge",
            Model::Mlp(_) => "mlp",
        }
    }

    /// Detects a translation `other(X) = self(X + Δ) + δ`.
    ///
    /// Within the affine family the check is: equal weight vectors (within
    /// `tol`), with the canonical witness `Δ = 0, δ = b_other − b_self`
    /// (any `(Δ, δ)` with `w·Δ + δ = b_other − b_self` would do; the
    /// canonical one keeps built-in predicates minimal). Two MLPs are
    /// translations only when all hidden parameters agree within `tol`,
    /// leaving an output shift — the `y = δ`-only sharing the paper allows
    /// for F3.
    pub fn translation_to(&self, other: &Model, tol: f64) -> Option<Translation> {
        match (self.as_affine(), other.as_affine()) {
            (Some((w1, b1)), Some((w2, b2))) => {
                if w1.len() != w2.len() {
                    return None;
                }
                if w1.iter().zip(w2).all(|(a, b)| (a - b).abs() <= tol) {
                    Some(Translation::output_shift(w1.len(), b2 - b1))
                } else {
                    None
                }
            }
            (None, None) => match (self, other) {
                (Model::Mlp(m1), Model::Mlp(m2)) => m1
                    .output_shift_to(m2, tol)
                    .map(|dy| Translation::output_shift(m1.num_inputs(), dy)),
                _ => None,
            },
            _ => None,
        }
    }

    /// Single-feature input-shift witness: for an affine model with slope
    /// `w ≠ 0`, expresses `other` as `self(X + Δ)` with `δ = 0`
    /// (`Δ = (b_other − b_self) / w`). This is the form of the paper's
    /// bird-migration example `f₁(Date − 744) = Latitude` (φ₃).
    pub fn input_translation_to(&self, other: &Model, tol: f64) -> Option<Translation> {
        let (w1, b1) = self.as_affine()?;
        let (w2, b2) = other.as_affine()?;
        if w1.len() != 1 || w2.len() != 1 {
            return None;
        }
        if (w1[0] - w2[0]).abs() > tol || w1[0].abs() <= tol {
            return None;
        }
        Some(Translation {
            delta_x: vec![(b2 - b1) / w1[0]],
            delta_y: 0.0,
        })
    }

    /// Applies this model under a translation: `f(X + Δ) + δ`.
    pub fn predict_translated(&self, x: &[f64], t: &Translation) -> f64 {
        debug_assert_eq!(x.len(), t.delta_x.len());
        if t.delta_x.iter().all(|&d| d == 0.0) {
            return self.predict(x) + t.delta_y;
        }
        let shifted: Vec<f64> = x.iter().zip(&t.delta_x).map(|(a, b)| a + b).collect();
        self.predict(&shifted) + t.delta_y
    }
}

impl Regressor for Model {
    fn predict(&self, x: &[f64]) -> f64 {
        match self {
            Model::Constant(m) => m.predict(x),
            Model::Linear(m) => m.predict(x),
            Model::Ridge(m) => m.predict(x),
            Model::Mlp(m) => m.predict(x),
        }
    }

    fn num_inputs(&self) -> usize {
        match self {
            Model::Constant(m) => m.num_inputs(),
            Model::Linear(m) => m.num_inputs(),
            Model::Ridge(m) => m.num_inputs(),
            Model::Mlp(m) => m.num_inputs(),
        }
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.as_affine() {
            Some((w, b)) => {
                write!(f, "f(X) = ")?;
                for (i, wi) in w.iter().enumerate() {
                    if wi.abs() > 1e-12 {
                        write!(f, "{wi:.4}*X{i} + ")?;
                    }
                }
                write!(f, "{b:.4}")
            }
            None => write!(f, "mlp({} inputs)", self.num_inputs()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(w: f64, b: f64) -> Model {
        Model::Linear(LinearModel::new(vec![w], b))
    }

    #[test]
    fn affine_translation_same_slope() {
        let f1 = line(2.0, 1.0);
        let f2 = line(2.0, 6.0);
        let t = f1.translation_to(&f2, 1e-9).unwrap();
        assert_eq!(t, Translation::output_shift(1, 5.0));
        // other(X) == self(X + Δ) + δ pointwise.
        for x in [-3.0, 0.0, 1.5] {
            assert!((f2.predict(&[x]) - f1.predict_translated(&[x], &t)).abs() < 1e-12);
        }
    }

    #[test]
    fn affine_translation_rejects_different_slope() {
        assert!(line(2.0, 0.0)
            .translation_to(&line(2.5, 0.0), 1e-9)
            .is_none());
    }

    #[test]
    fn input_shift_witness_matches_pointwise() {
        let f1 = line(2.0, 1.0);
        let f2 = line(2.0, 6.0);
        let t = f1.input_translation_to(&f2, 1e-9).unwrap();
        assert!((t.delta_x[0] - 2.5).abs() < 1e-12);
        assert_eq!(t.delta_y, 0.0);
        for x in [-3.0, 0.0, 1.5] {
            assert!((f2.predict(&[x]) - f1.predict_translated(&[x], &t)).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_translates_to_constant() {
        let c1 = Model::Constant(ConstantModel::new(60.1, 1));
        let c2 = Model::Constant(ConstantModel::new(58.6, 1));
        let t = c1.translation_to(&c2, 1e-9).unwrap();
        assert!((t.delta_y - -1.5).abs() < 1e-12);
    }

    #[test]
    fn constant_translates_to_flat_linear() {
        let c = Model::Constant(ConstantModel::new(3.0, 1));
        let flat = line(0.0, 5.0);
        let t = c.translation_to(&flat, 1e-9).unwrap();
        assert!((t.delta_y - 2.0).abs() < 1e-12);
    }

    #[test]
    fn compose_and_inverse() {
        let a = Translation {
            delta_x: vec![1.0],
            delta_y: 2.0,
        };
        let b = Translation {
            delta_x: vec![3.0],
            delta_y: -1.0,
        };
        assert_eq!(
            a.compose(&b),
            Translation {
                delta_x: vec![4.0],
                delta_y: 1.0
            }
        );
        assert!(a.compose(&a.inverse()).is_identity());
    }

    #[test]
    fn display_is_readable() {
        let s = line(0.04, -230.0).to_string();
        assert!(s.contains("0.0400"), "{s}");
        assert!(s.contains("-230"), "{s}");
    }
}
