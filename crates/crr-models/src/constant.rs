use crate::{ModelError, Regressor, Result};

/// A constant prediction `f(X) = c`.
///
/// Constant rules appear naturally in the paper's data — e.g. φ₂'s
/// `Latitude = 60.10` during the bird's summer residence — and are also the
/// guaranteed-coverage fallback for partitions too small to fit anything
/// richer (§V-A2's VC-dimension edge case: a single tuple always admits the
/// constant `f = t.Y` with ρ = 0).
#[derive(Debug, Clone, PartialEq)]
pub struct ConstantModel {
    value: f64,
    /// Expected input arity (the model ignores the inputs but keeps the
    /// arity so translation detection can align weight vectors).
    num_inputs: usize,
    zero_weights: Vec<f64>,
}

impl ConstantModel {
    /// Creates a constant model over `num_inputs` features.
    pub fn new(value: f64, num_inputs: usize) -> Self {
        ConstantModel {
            value,
            num_inputs,
            zero_weights: vec![0.0; num_inputs],
        }
    }

    /// Fits the midrange constant `(max y + min y) / 2`, which minimizes the
    /// maximum absolute residual — the metric CRR biases are measured in.
    pub fn fit(y: &[f64], num_inputs: usize) -> Result<Self> {
        if y.is_empty() {
            return Err(ModelError::TooFewSamples { needed: 1, got: 0 });
        }
        if y.iter().any(|v| !v.is_finite()) {
            return Err(ModelError::NonFinite);
        }
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in y {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Ok(ConstantModel::new((lo + hi) / 2.0, num_inputs))
    }

    /// The constant value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// All-zero weight vector for the affine view.
    pub(crate) fn zero_weights(&self) -> &[f64] {
        &self.zero_weights
    }
}

impl Regressor for ConstantModel {
    fn predict(&self, _x: &[f64]) -> f64 {
        self.value
    }

    fn num_inputs(&self) -> usize {
        self.num_inputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_is_midrange() {
        let m = ConstantModel::fit(&[1.0, 5.0, 2.0], 1).unwrap();
        assert_eq!(m.value(), 3.0);
        assert_eq!(m.predict(&[999.0]), 3.0);
    }

    #[test]
    fn midrange_minimizes_max_residual() {
        let y = [1.0, 5.0, 2.0];
        let m = ConstantModel::fit(&y, 1).unwrap();
        let max_res = y.iter().map(|v| (v - m.value()).abs()).fold(0.0, f64::max);
        // Midrange residual is (max-min)/2 = 2; the mean (8/3) would give 7/3.
        assert_eq!(max_res, 2.0);
    }

    #[test]
    fn empty_fit_fails() {
        assert!(matches!(
            ConstantModel::fit(&[], 1),
            Err(ModelError::TooFewSamples { .. })
        ));
    }

    #[test]
    fn non_finite_rejected() {
        assert_eq!(
            ConstantModel::fit(&[f64::NAN], 1),
            Err(ModelError::NonFinite)
        );
    }
}
