use crate::{ConstantModel, LinearModel, MlpModel, Model, ModelError, Result, RidgeModel};
use crr_linalg::Moments;

pub use crate::mlp::MlpHyper as MlpConfig;

/// Which basic model family to fit — the paper's F1/F2/F3 (§VI-A3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// F1: ordinary least squares.
    Linear,
    /// F2: ridge regression.
    Ridge,
    /// F3: MLP regressor.
    Mlp,
}

impl ModelKind {
    /// All three families, in paper order.
    pub const ALL: [ModelKind; 3] = [ModelKind::Linear, ModelKind::Ridge, ModelKind::Mlp];

    /// Paper label (F1/F2/F3).
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::Linear => "F1",
            ModelKind::Ridge => "F2",
            ModelKind::Mlp => "F3",
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelKind::Linear => write!(f, "linear"),
            ModelKind::Ridge => write!(f, "ridge"),
            ModelKind::Mlp => write!(f, "mlp"),
        }
    }
}

/// Configuration for [`fit_model`].
#[derive(Debug, Clone, PartialEq)]
pub struct FitConfig {
    /// Model family.
    pub kind: ModelKind,
    /// Ridge penalty (F2 only).
    pub ridge_lambda: f64,
    /// MLP hyper-parameters (F3 only).
    pub mlp: MlpConfig,
}

impl FitConfig {
    /// Defaults for a family: `λ = 1.0` for ridge, [`MlpConfig::default`]
    /// for the MLP.
    pub fn new(kind: ModelKind) -> Self {
        FitConfig {
            kind,
            ridge_lambda: 1.0,
            mlp: MlpConfig::default(),
        }
    }

    /// Minimum samples the family needs for `d` features before the
    /// discovery algorithm should even attempt a fit — the VC-dimension
    /// guard of §V-A2. Below this, discovery falls back to a constant.
    pub fn min_samples(&self, d: usize) -> usize {
        match self.kind {
            ModelKind::Linear => d + 1,
            ModelKind::Ridge => 1,
            ModelKind::Mlp => 4,
        }
    }
}

/// Fits one model of the configured family.
///
/// Partitions too small for the family fall back to the midrange constant —
/// the paper's guaranteed-coverage edge case ("any tuple could learn a
/// regression model", §V-A2) — rather than failing discovery.
pub fn fit_model(xs: &[Vec<f64>], y: &[f64], cfg: &FitConfig) -> Result<Model> {
    if xs.len() != y.len() {
        return Err(ModelError::LengthMismatch {
            features: xs.len(),
            targets: y.len(),
        });
    }
    if y.is_empty() {
        return Err(ModelError::TooFewSamples { needed: 1, got: 0 });
    }
    let d = xs[0].len();
    if xs.len() < cfg.min_samples(d) || d == 0 {
        return Ok(Model::Constant(ConstantModel::fit(y, d)?));
    }
    let fitted = match cfg.kind {
        ModelKind::Linear => LinearModel::fit(xs, y).map(Model::Linear),
        ModelKind::Ridge => RidgeModel::fit(xs, y, cfg.ridge_lambda).map(Model::Ridge),
        ModelKind::Mlp => MlpModel::fit(xs, y, &cfg.mlp).map(Model::Mlp),
    };
    match fitted {
        Ok(m) => Ok(m),
        // Singular designs (duplicated points, collinear features) still
        // must produce *a* model for coverage; fall back to the constant.
        Err(ModelError::Solver(_)) => Ok(Model::Constant(ConstantModel::fit(y, d)?)),
        Err(e) => Err(e),
    }
}

/// Moments-based counterpart of [`fit_model`] for the linear family.
///
/// Returns `None` whenever `fit_model` would *not* produce a model of the
/// configured family from this partition, so the caller must take the row
/// path instead: the MLP (needs raw rows), zero features, partitions below
/// the family's VC guard, and singular normal equations. All of those are
/// cases `fit_model` serves with the midrange constant — a statistic of the
/// target's min/max, which moments do not carry — so the caller resolves
/// `None` with one O(n) pass over the target buffer.
pub fn try_fit_from_moments(m: &Moments, cfg: &FitConfig) -> Option<Model> {
    let d = m.num_features();
    if d == 0 || m.count() < cfg.min_samples(d) {
        return None;
    }
    match cfg.kind {
        ModelKind::Linear => LinearModel::fit_from_moments(m).map(Model::Linear).ok(),
        ModelKind::Ridge => RidgeModel::fit_from_moments(m, cfg.ridge_lambda)
            .map(Model::Ridge)
            .ok(),
        ModelKind::Mlp => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Regressor;

    #[test]
    fn fits_each_family() {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = xs.iter().map(|x| 1.2 * x[0] + 3.0).collect();
        for kind in ModelKind::ALL {
            let m = fit_model(&xs, &y, &FitConfig::new(kind)).unwrap();
            assert_eq!(m.num_inputs(), 1);
            assert!(m.predict(&[2.0]).is_finite());
        }
    }

    #[test]
    fn single_tuple_falls_back_to_constant_with_zero_bias() {
        let m = fit_model(&[vec![10.0]], &[42.0], &FitConfig::new(ModelKind::Linear)).unwrap();
        assert!(matches!(m, Model::Constant(_)));
        assert_eq!(m.predict(&[10.0]), 42.0);
    }

    #[test]
    fn singular_design_falls_back_to_constant() {
        // All x identical: OLS design is singular.
        let xs = vec![vec![1.0]; 5];
        let y = [2.0, 4.0, 6.0, 2.0, 4.0];
        let m = fit_model(&xs, &y, &FitConfig::new(ModelKind::Linear)).unwrap();
        assert!(matches!(m, Model::Constant(_)));
        assert_eq!(m.predict(&[1.0]), 4.0); // midrange of [2,6]
    }

    #[test]
    fn zero_features_is_constant() {
        let m = fit_model(
            &[vec![], vec![]],
            &[1.0, 3.0],
            &FitConfig::new(ModelKind::Ridge),
        )
        .unwrap();
        assert_eq!(m.predict(&[]), 2.0);
    }

    #[test]
    fn labels() {
        assert_eq!(ModelKind::Linear.label(), "F1");
        assert_eq!(ModelKind::Mlp.to_string(), "mlp");
    }
}
