use std::fmt;

/// Errors from model fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Not enough samples for the requested model class.
    TooFewSamples { needed: usize, got: usize },
    /// Feature vectors had inconsistent lengths.
    InconsistentFeatures { expected: usize, got: usize },
    /// Feature and target counts differ.
    LengthMismatch { features: usize, targets: usize },
    /// The underlying solver failed (singular design, etc.).
    Solver(String),
    /// Inputs contained non-finite values.
    NonFinite,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::TooFewSamples { needed, got } => {
                write!(f, "too few samples: model needs {needed}, got {got}")
            }
            ModelError::InconsistentFeatures { expected, got } => {
                write!(
                    f,
                    "inconsistent feature vector length: expected {expected}, got {got}"
                )
            }
            ModelError::LengthMismatch { features, targets } => {
                write!(
                    f,
                    "feature rows ({features}) and targets ({targets}) differ in count"
                )
            }
            ModelError::Solver(msg) => write!(f, "solver failure: {msg}"),
            ModelError::NonFinite => write!(f, "inputs contain non-finite values"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<crr_linalg::LinalgError> for ModelError {
    fn from(e: crr_linalg::LinalgError) -> Self {
        ModelError::Solver(e.to_string())
    }
}
