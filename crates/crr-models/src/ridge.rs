use crate::linear::design_matrix;
use crate::{ModelError, Regressor, Result};
use crr_linalg::{ridge_normal_equations, Moments};

/// F2: ridge regression `f(X) = w·X + b` with L2 penalty `λ‖w‖²`.
///
/// The intercept is not penalized: features and target are centered before
/// solving, and the intercept is recovered as `ȳ − w·x̄`. This matches the
/// standard construction and keeps pure shifts of the data pure shifts of
/// the model — which is what makes ridge models translatable (Proposition 5)
/// the same way OLS models are.
#[derive(Debug, Clone, PartialEq)]
pub struct RidgeModel {
    weights: Vec<f64>,
    intercept: f64,
    lambda: f64,
}

impl RidgeModel {
    /// Creates a model from explicit parameters.
    pub fn new(weights: Vec<f64>, intercept: f64, lambda: f64) -> Self {
        RidgeModel {
            weights,
            intercept,
            lambda,
        }
    }

    /// Fits with penalty `lambda > 0`.
    pub fn fit(xs: &[Vec<f64>], y: &[f64], lambda: f64) -> Result<Self> {
        if xs.len() != y.len() {
            return Err(ModelError::LengthMismatch {
                features: xs.len(),
                targets: y.len(),
            });
        }
        if xs.is_empty() {
            return Err(ModelError::TooFewSamples { needed: 1, got: 0 });
        }
        if y.iter().any(|v| !v.is_finite()) {
            return Err(ModelError::NonFinite);
        }
        let d = xs[0].len();
        // Validate shapes/finiteness via the shared design-matrix builder,
        // then discard the intercept column: centering replaces it.
        let _ = design_matrix(xs)?;
        let n = xs.len() as f64;
        let x_mean: Vec<f64> = (0..d)
            .map(|j| xs.iter().map(|row| row[j]).sum::<f64>() / n)
            .collect();
        let y_mean = y.iter().sum::<f64>() / n;
        let mut data = Vec::with_capacity(xs.len() * d);
        for row in xs {
            for (v, m) in row.iter().zip(&x_mean) {
                data.push(v - m);
            }
        }
        let xc = crr_linalg::Matrix::from_vec(xs.len(), d, data);
        let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();
        let weights = if d == 0 {
            Vec::new()
        } else {
            ridge_normal_equations(&xc, &yc, lambda.max(1e-12))?
        };
        let intercept = y_mean - crr_linalg::dot(&weights, &x_mean);
        Ok(RidgeModel {
            weights,
            intercept,
            lambda,
        })
    }

    /// Fits from sufficient statistics, reproducing [`RidgeModel::fit`]'s
    /// centered construction without the rows: the centered Gram
    /// `XᶜᵀXᶜ = XᵀX − n·x̄x̄ᵀ` and right-hand side `Xᶜᵀyᶜ = Xᵀy − n·x̄·ȳ`
    /// are derived from the moments, `λ` is floored at `1e-12` exactly like
    /// the direct path, and the unpenalized intercept is `ȳ − w·x̄`.
    pub fn fit_from_moments(m: &Moments, lambda: f64) -> Result<Self> {
        if m.count() == 0 {
            return Err(ModelError::TooFewSamples { needed: 1, got: 0 });
        }
        let (weights, intercept) = m.solve_ridge(lambda)?;
        Ok(RidgeModel {
            weights,
            intercept,
            lambda,
        })
    }

    /// Weight vector `w`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Intercept `b`.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The penalty used at fit time.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Regressor for RidgeModel {
    fn predict(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.weights.len());
        self.intercept + crr_linalg::dot(&self.weights, x)
    }

    fn num_inputs(&self) -> usize {
        self.weights.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_lambda_approaches_ols() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] + 1.0).collect();
        let m = RidgeModel::fit(&xs, &y, 1e-9).unwrap();
        assert!((m.weights()[0] - 2.0).abs() < 1e-4);
        assert!((m.intercept() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn large_lambda_shrinks_weights_not_mean() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = xs.iter().map(|x| 2.0 * x[0]).collect();
        let m = RidgeModel::fit(&xs, &y, 1e6).unwrap();
        assert!(m.weights()[0].abs() < 0.01);
        // Prediction at the feature mean equals the target mean regardless
        // of shrinkage (unpenalized intercept).
        let y_mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((m.predict(&[4.5]) - y_mean).abs() < 0.1);
    }

    #[test]
    fn handles_collinear_features() {
        // OLS would be singular here; ridge is not.
        let xs: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let y: Vec<f64> = xs.iter().map(|x| x[0] + x[1]).collect();
        let m = RidgeModel::fit(&xs, &y, 0.01).unwrap();
        assert!(m.weights().iter().all(|w| w.is_finite()));
        assert!((m.predict(&[3.0, 6.0]) - 9.0).abs() < 0.2);
    }

    #[test]
    fn shifted_data_gives_translated_model() {
        // Fit on y and on y + 7: same weights, intercept differs by 7 —
        // the property Translation inference relies on.
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y1: Vec<f64> = xs.iter().map(|x| 1.5 * x[0] + 0.3).collect();
        let y2: Vec<f64> = y1.iter().map(|v| v + 7.0).collect();
        let m1 = RidgeModel::fit(&xs, &y1, 0.1).unwrap();
        let m2 = RidgeModel::fit(&xs, &y2, 0.1).unwrap();
        assert!((m1.weights()[0] - m2.weights()[0]).abs() < 1e-9);
        assert!((m2.intercept() - m1.intercept() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(
            RidgeModel::fit(&[], &[], 0.1),
            Err(ModelError::TooFewSamples { .. })
        ));
    }
}
