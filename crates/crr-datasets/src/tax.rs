//! Tax: relational tax-payment records (stand-in for the Tax benchmark
//! used in CFD/DC discovery studies \[33\]).
//!
//! 17 columns. The law CRR discovery should find: within each state,
//! `tax = rate(state) · salary − deduction(state)` with bounded rounding
//! noise — the paper's running example φ₅
//! (`f(Salary) = 0.04·Salary − 230` when `S = IA`). States are grouped
//! into a few *rate groups* sharing the same rate but differing in
//! deduction, so rules across states in a group are pure `y = δ`
//! translations of each other.

use crate::{noise, Dataset, GenConfig};
use crr_data::{AttrType, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// States, grouped by tax rate: 4 rate groups × 5 states.
pub const STATES: [&str; 20] = [
    "IA", "OH", "MI", "WI", "MN", // group 0: 4%
    "NY", "NJ", "CT", "MA", "PA", // group 1: 6.5%
    "TX", "FL", "WA", "NV", "TN", // group 2: 2%
    "CA", "OR", "CO", "AZ", "UT", // group 3: 8%
];

/// Tax rate of a state's rate group.
pub fn rate_of(state_idx: usize) -> f64 {
    [0.04, 0.065, 0.02, 0.08][state_idx / 5]
}

/// Per-state deduction (differs inside a rate group, so same-group rules
/// differ only by intercept — translatable).
pub fn deduction_of(state_idx: usize) -> f64 {
    230.0 + 40.0 * (state_idx % 5) as f64
}

/// Rounding noise amplitude (currency units).
pub const NOISE: f64 = 1.0;

/// Generates the Tax stand-in.
#[allow(clippy::expect_used)] // generator pushes rows matching the schema it just built
pub fn tax(cfg: &GenConfig) -> Dataset {
    let schema = Schema::new(vec![
        ("state", AttrType::Str),
        ("zip", AttrType::Int),
        ("city", AttrType::Str),
        ("salary", AttrType::Float),
        ("tax", AttrType::Float),
        ("rate_pct", AttrType::Float),
        ("age", AttrType::Int),
        ("dependents", AttrType::Int),
        ("marital", AttrType::Str),
        ("gender", AttrType::Str),
        ("years_employed", AttrType::Int),
        ("bonus", AttrType::Float),
        ("retirement_contrib", AttrType::Float),
        ("health_contrib", AttrType::Float),
        ("property_value", AttrType::Float),
        ("property_tax", AttrType::Float),
        ("net_income", AttrType::Float),
    ]);
    let mut table = Table::new(schema);
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(3));
    for _ in 0..cfg.rows {
        let state_idx = rng.gen_range(0..STATES.len());
        // Right-skewed salary (cubed uniform draw over the same support):
        // most earners sit near the bottom of the range with a long high
        // tail, as real salary data does. An equal-width shard plan on
        // this key crowds ~60% of rows into its first interval; quantile
        // boundaries rebalance it.
        let u = rng.gen_range(0.0f64..1.0);
        let salary = 18_000.0 + 162_000.0 * u * u * u;
        let tax_amount =
            rate_of(state_idx) * salary - deduction_of(state_idx) + noise(&mut rng, NOISE);
        let age: i64 = rng.gen_range(18..75);
        let dependents = rng.gen_range(0..5);
        let years = rng.gen_range(0..(age - 17).min(40));
        let bonus = salary * rng.gen_range(0.0..0.15);
        let retirement = salary * 0.06 + noise(&mut rng, 5.0);
        let health = 2_400.0 + 600.0 * dependents as f64 + noise(&mut rng, 10.0);
        let property = salary * rng.gen_range(1.5..4.0);
        let property_tax = property * 0.011 + noise(&mut rng, 20.0);
        let net = salary + bonus - tax_amount - retirement - health;
        table
            .push_row(vec![
                Value::str(STATES[state_idx]),
                Value::Int(10_000 + state_idx as i64 * 400 + rng.gen_range(0..400i64)),
                Value::str(format!(
                    "{}-city-{}",
                    STATES[state_idx],
                    rng.gen_range(0..8)
                )),
                Value::Float(salary),
                Value::Float(tax_amount),
                Value::Float(rate_of(state_idx) * 100.0),
                Value::Int(age),
                Value::Int(dependents),
                Value::str(if rng.gen_bool(0.5) { "S" } else { "M" }),
                Value::str(if rng.gen_bool(0.5) { "F" } else { "M" }),
                Value::Int(years),
                Value::Float(bonus),
                Value::Float(retirement),
                Value::Float(health),
                Value::Float(property),
                Value::Float(property_tax),
                Value::Float(net),
            ])
            .expect("schema match");
    }
    // Relational "expert knowledge": the state equality partition — encoded
    // as salary range boundaries per rate bracket for the numeric side.
    let mut expert = BTreeMap::new();
    expert.insert("salary", vec![40_000.0, 80_000.0, 120_000.0, 160_000.0]);
    Dataset {
        table,
        name: "Tax",
        category: "Relational",
        default_target: "tax",
        default_inputs: vec!["salary"],
        expert_boundaries: expert,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tax_law_holds_per_state() {
        let ds = tax(&GenConfig {
            rows: 2_000,
            seed: 7,
        });
        let t = &ds.table;
        let state = t.attr("state").unwrap();
        let salary = t.attr("salary").unwrap();
        let tax_a = t.attr("tax").unwrap();
        for r in 0..t.num_rows() {
            let s = t.value(r, state);
            let idx = STATES.iter().position(|n| Some(*n) == s.as_str()).unwrap();
            let expect = rate_of(idx) * t.value_f64(r, salary).unwrap() - deduction_of(idx);
            let got = t.value_f64(r, tax_a).unwrap();
            assert!((got - expect).abs() <= NOISE + 1e-9, "row {r}");
        }
    }

    #[test]
    fn rate_groups_share_rates() {
        assert_eq!(rate_of(0), rate_of(4)); // IA and MN
        assert_ne!(rate_of(0), rate_of(5)); // IA and NY
        assert_ne!(deduction_of(0), deduction_of(1)); // same group, diff deduction
    }

    #[test]
    fn ia_matches_paper_example() {
        // The paper's φ₅: f(Salary) = 0.04·Salary − 230 under S = IA.
        assert_eq!(rate_of(0), 0.04);
        assert_eq!(deduction_of(0), 230.0);
    }

    #[test]
    fn shape_matches_table2() {
        let ds = tax(&GenConfig { rows: 10, seed: 0 });
        assert_eq!(ds.num_cols(), 17);
        assert_eq!(ds.category, "Relational");
    }
}
