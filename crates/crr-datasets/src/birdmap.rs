//! BirdMap: GPS tracks of migratory birds (stand-in for \[3\]).
//!
//! Each bird repeats the same annual cycle (365-day years, day 0 =
//! 2006-01-01):
//!
//! * days 0..90    — winter residence in Africa: constant low latitude;
//! * days 90..121  — spring migration: latitude climbs linearly north;
//! * days 121..221 — summer residence: constant latitude ≈ 60.1
//!   (the paper's φ₂ `Latitude = 60.10` plateau);
//! * days 221..252 — autumn migration: latitude falls linearly south;
//! * days 252..365 — winter residence again.
//!
//! Slopes are identical across years and birds; residences differ per bird
//! by a constant offset. Both properties are what CRR model sharing and the
//! Translation inference (`x = 744` in the paper's φ₃) are designed to
//! capture.

use crate::{noise, Dataset, GenConfig};
use crr_data::{AttrType, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Days per generated year.
pub const YEAR: i64 = 365;
/// Season boundaries within a year (day-of-year).
pub const SEASONS: [i64; 4] = [90, 121, 221, 252];
/// The shared summer-residence latitude (the paper's 60.10).
pub const SUMMER_LAT: f64 = 60.10;
/// GPS noise amplitude (degrees).
pub const NOISE: f64 = 0.15;

const BIRD_NAMES: [&str; 6] = [
    "1.Kalakotkas",
    "2.Maria",
    "3.Raivo",
    "4.Mart",
    "33.Erika",
    "7.Piret",
];

/// Latitude of `bird` on absolute `day`, before noise.
pub fn true_latitude(bird: usize, day: i64) -> f64 {
    let doy = day.rem_euclid(YEAR);
    // Per-bird winter residence offset; summer is shared.
    let winter = 8.0 + bird as f64 * 1.5;
    let [spring_start, spring_end, autumn_start, autumn_end] = SEASONS;
    if doy < spring_start {
        winter
    } else if doy < spring_end {
        let frac = (doy - spring_start) as f64 / (spring_end - spring_start) as f64;
        winter + frac * (SUMMER_LAT - winter)
    } else if doy < autumn_start {
        SUMMER_LAT
    } else if doy < autumn_end {
        let frac = (doy - autumn_start) as f64 / (autumn_end - autumn_start) as f64;
        SUMMER_LAT + frac * (winter - SUMMER_LAT)
    } else {
        winter
    }
}

/// Longitude of `bird` on absolute `day`, before noise.
pub fn true_longitude(bird: usize, day: i64) -> f64 {
    let doy = day.rem_euclid(YEAR);
    let winter = 18.0 + bird as f64 * 0.8;
    let summer = 26.5;
    let [spring_start, spring_end, autumn_start, autumn_end] = SEASONS;
    if doy < spring_start {
        winter
    } else if doy < spring_end {
        let frac = (doy - spring_start) as f64 / (spring_end - spring_start) as f64;
        winter + frac * (summer - winter)
    } else if doy < autumn_start {
        summer
    } else if doy < autumn_end {
        let frac = (doy - autumn_start) as f64 / (autumn_end - autumn_start) as f64;
        summer + frac * (winter - summer)
    } else {
        winter
    }
}

/// Generates the BirdMap stand-in: one row per (bird, day) observation.
#[allow(clippy::expect_used)] // generator pushes rows matching the schema it just built
pub fn birdmap(cfg: &GenConfig) -> Dataset {
    let schema = Schema::new(vec![
        ("latitude", AttrType::Float),
        ("longitude", AttrType::Float),
        ("bird", AttrType::Str),
        ("date", AttrType::Int),
    ]);
    let mut table = Table::new(schema);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let num_birds = BIRD_NAMES.len();
    // Observations interleave birds day by day, like merged GPS feeds.
    for i in 0..cfg.rows {
        let bird = i % num_birds;
        let day = (i / num_birds) as i64;
        let lat = true_latitude(bird, day) + noise(&mut rng, NOISE);
        let lon = true_longitude(bird, day) + noise(&mut rng, NOISE);
        table
            .push_row(vec![
                Value::Float(lat),
                Value::Float(lon),
                Value::str(BIRD_NAMES[bird]),
                Value::Int(day),
            ])
            .expect("schema match");
    }
    let max_day = ((cfg.rows / num_birds) as i64).max(1);
    let mut date_bounds: Vec<f64> = Vec::new();
    let mut year_start = 0i64;
    while year_start < max_day + YEAR {
        for s in SEASONS {
            date_bounds.push((year_start + s) as f64);
        }
        date_bounds.push((year_start + YEAR) as f64);
        year_start += YEAR;
    }
    let mut expert = BTreeMap::new();
    expert.insert("date", date_bounds);
    Dataset {
        table,
        name: "BirdMap",
        category: "Time series",
        default_target: "latitude",
        default_inputs: vec!["date"],
        expert_boundaries: expert,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seasons_produce_the_plateau() {
        // Mid-summer of year 2 is on the shared plateau for every bird.
        for bird in 0..4 {
            let lat = true_latitude(bird, YEAR + 170);
            assert_eq!(lat, SUMMER_LAT);
        }
    }

    #[test]
    fn cycle_repeats_across_years() {
        for day in [10, 100, 150, 230, 300] {
            assert_eq!(true_latitude(1, day), true_latitude(1, day + YEAR));
            assert_eq!(true_longitude(2, day), true_longitude(2, day + 3 * YEAR));
        }
    }

    #[test]
    fn migration_slope_is_shared_between_years() {
        // Spring slope computed in two different years is identical —
        // the premise of the paper's φ₃ translation.
        let s1 = true_latitude(0, 100) - true_latitude(0, 99);
        let s2 = true_latitude(0, YEAR + 100) - true_latitude(0, YEAR + 99);
        assert!((s1 - s2).abs() < 1e-12);
        assert!(s1 > 0.0);
    }

    #[test]
    fn winter_differs_per_bird_summer_does_not() {
        assert_ne!(true_latitude(0, 10), true_latitude(1, 10));
        assert_eq!(true_latitude(0, 170), true_latitude(1, 170));
    }

    #[test]
    fn noise_is_bounded() {
        let ds = birdmap(&GenConfig {
            rows: 3_000,
            seed: 11,
        });
        let lat = ds.table.attr("latitude").unwrap();
        let date = ds.table.attr("date").unwrap();
        let bird = ds.table.attr("bird").unwrap();
        for r in 0..ds.table.num_rows() {
            let day = ds.table.value_f64(r, date).unwrap() as i64;
            let b = ds.table.value(r, bird);
            let idx = BIRD_NAMES
                .iter()
                .position(|n| Some(*n) == b.as_str())
                .unwrap();
            let observed = ds.table.value_f64(r, lat).unwrap();
            assert!(
                (observed - true_latitude(idx, day)).abs() <= NOISE + 1e-12,
                "row {r}"
            );
        }
    }

    #[test]
    fn expert_boundaries_cover_generated_range() {
        let ds = birdmap(&GenConfig {
            rows: 6 * 400,
            seed: 1,
        });
        let bounds = &ds.expert_boundaries["date"];
        assert!(bounds.len() >= 5);
        assert!(bounds.iter().any(|&b| b >= 400.0));
    }
}
