//! AirQuality: hourly multi-sensor air-quality measurements (stand-in for
//! the UCI Air Quality dataset \[28\]).
//!
//! 18 columns: an hour index plus 17 sensor channels. The base pollutant
//! follows a piecewise-linear *daily* profile (night low, morning rush
//! ramp, midday decay, evening rush ramp) that repeats every 24 hours —
//! so the same four linear models recur day after day, shifted in time:
//! exactly the sharing structure CRR discovery merges via built-in
//! predicates. The other sensor channels are affine responses to the base
//! pollutant (cross-correlated columns), each with bounded sensor noise.

use crate::{noise, Dataset, GenConfig};
use crr_data::{AttrType, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Hours per day (regime period).
pub const DAY: i64 = 24;
/// Daily regime boundaries (hour-of-day).
pub const REGIMES: [i64; 4] = [6, 10, 17, 21];
/// Sensor noise amplitude.
pub const NOISE: f64 = 0.2;

/// Base pollutant level at hour-of-day, before noise: a piecewise-linear
/// daily profile shared by all days.
pub fn base_level(hour: i64) -> f64 {
    let h = hour.rem_euclid(DAY);
    let [rush_start, rush_peak, decay_end, evening_peak] = REGIMES;
    if h < rush_start {
        2.0
    } else if h < rush_peak {
        2.0 + (h - rush_start) as f64 * 2.0 // ramp to 10
    } else if h < decay_end {
        10.0 - (h - rush_peak) as f64 * 0.5 // decay to 6.5
    } else if h < evening_peak {
        6.5 + (h - decay_end) as f64 * 1.5 // evening ramp to 12.5
    } else {
        12.5 - (h - evening_peak) as f64 * 3.5 // fall back to night level
    }
}

const SENSORS: [&str; 17] = [
    "co",
    "pt08_co",
    "nmhc",
    "c6h6",
    "pt08_nmhc",
    "nox",
    "pt08_nox",
    "no2",
    "pt08_no2",
    "pt08_o3",
    "temp",
    "rh",
    "ah",
    "pm25",
    "pm10",
    "so2",
    "o3",
];

/// Per-sensor affine response `(gain, offset)` to the base pollutant.
fn sensor_response(idx: usize) -> (f64, f64) {
    // Deterministic, spread out, never zero gain.
    let gain = 0.5 + 0.25 * idx as f64;
    let offset = 10.0 - 1.5 * idx as f64;
    (gain, offset)
}

/// Generates the AirQuality stand-in.
#[allow(clippy::expect_used)] // generator pushes rows matching the schema it just built
pub fn airquality(cfg: &GenConfig) -> Dataset {
    let mut cols: Vec<(&str, AttrType)> = vec![("hour", AttrType::Int)];
    cols.extend(SENSORS.iter().map(|&s| (s, AttrType::Float)));
    let schema = Schema::new(cols);
    let mut table = Table::new(schema);
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(1));
    for i in 0..cfg.rows {
        let hour = i as i64;
        let base = base_level(hour);
        let mut row = Vec::with_capacity(18);
        row.push(Value::Int(hour));
        for idx in 0..SENSORS.len() {
            let (gain, offset) = sensor_response(idx);
            row.push(Value::Float(gain * base + offset + noise(&mut rng, NOISE)));
        }
        table.push_row(row).expect("schema match");
    }
    let days = (cfg.rows as i64 / DAY) + 2;
    let mut hour_bounds = Vec::new();
    for d in 0..days {
        for r in REGIMES {
            hour_bounds.push((d * DAY + r) as f64);
        }
        hour_bounds.push(((d + 1) * DAY) as f64);
    }
    let mut expert = BTreeMap::new();
    expert.insert("hour", hour_bounds);
    Dataset {
        table,
        name: "AirQuality",
        category: "Time series",
        default_target: "no2",
        default_inputs: vec!["hour"],
        expert_boundaries: expert,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_continuous_at_boundaries() {
        // Piecewise segments meet (no jumps except the midnight wrap).
        for h in 1..DAY {
            let jump = (base_level(h) - base_level(h - 1)).abs();
            assert!(jump <= 3.5 + 1e-12, "hour {h}: jump {jump}");
        }
    }

    #[test]
    fn profile_repeats_daily() {
        for h in 0..DAY {
            assert_eq!(base_level(h), base_level(h + 7 * DAY));
        }
    }

    #[test]
    fn sensors_are_affine_in_base() {
        let ds = airquality(&GenConfig { rows: 200, seed: 3 });
        let hour = ds.table.attr("hour").unwrap();
        let no2 = ds.table.attr("no2").unwrap();
        let idx = SENSORS.iter().position(|&s| s == "no2").unwrap();
        let (gain, offset) = sensor_response(idx);
        for r in 0..ds.table.num_rows() {
            let h = ds.table.value_f64(r, hour).unwrap() as i64;
            let v = ds.table.value_f64(r, no2).unwrap();
            assert!((v - (gain * base_level(h) + offset)).abs() <= NOISE + 1e-12);
        }
    }

    #[test]
    fn column_count_matches_table2() {
        let ds = airquality(&GenConfig { rows: 10, seed: 0 });
        assert_eq!(ds.num_cols(), 18);
    }
}
