//! Electricity: minute-level household power consumption (stand-in for the
//! UCI "Individual household electric power consumption" dataset \[29\]).
//!
//! 12 columns: a minute index, aggregate power/voltage channels and three
//! sub-metering channels. The household alternates between a small set of
//! appliance *regimes* over the day (night / morning / day / evening), each
//! regime a linear function of minute-of-day; the same regime schedule
//! repeats every day. Sub-meterings are affine shares of the aggregate.

use crate::{noise, Dataset, GenConfig};
use crr_data::{AttrType, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Minutes per day (regime period).
pub const DAY: i64 = 1_440;
/// Regime boundaries (minute-of-day): 06:00, 09:00, 18:00, 22:00.
pub const REGIMES: [i64; 4] = [360, 540, 1_080, 1_320];
/// Meter noise amplitude (kW).
pub const NOISE: f64 = 0.05;

/// Aggregate active power (kW) at a minute index, before noise.
pub fn active_power(minute: i64) -> f64 {
    let m = minute.rem_euclid(DAY);
    let [wake, morning_end, evening_start, night_start] = REGIMES;
    if m < wake {
        0.4 // overnight baseline
    } else if m < morning_end {
        0.4 + (m - wake) as f64 * (2.6 / (morning_end - wake) as f64) // morning ramp to 3 kW
    } else if m < evening_start {
        3.0 - (m - morning_end) as f64 * (1.8 / (evening_start - morning_end) as f64)
    // daytime decay
    } else if m < night_start {
        1.2 + (m - evening_start) as f64 * (3.3 / (night_start - evening_start) as f64)
    // evening ramp to 4.5 kW
    } else {
        4.5 - (m - night_start) as f64 * (4.1 / (DAY - night_start) as f64) // wind-down
    }
}

const CHANNELS: [&str; 11] = [
    "global_active_power",
    "global_reactive_power",
    "voltage",
    "global_intensity",
    "sub_metering_1",
    "sub_metering_2",
    "sub_metering_3",
    "kitchen_power",
    "laundry_power",
    "hvac_power",
    "other_power",
];

fn channel_response(idx: usize) -> (f64, f64) {
    match idx {
        0 => (1.0, 0.0),                                    // the aggregate itself
        1 => (0.12, 0.05),                                  // reactive power tracks active
        2 => (-0.8, 241.0),                                 // voltage sags under load
        3 => (4.2, 0.3),                                    // intensity ∝ power
        _ => (0.08 * idx as f64, 0.1 * (idx as f64 - 4.0)), // sub-meterings
    }
}

/// Generates the Electricity stand-in.
#[allow(clippy::expect_used)] // generator pushes rows matching the schema it just built
pub fn electricity(cfg: &GenConfig) -> Dataset {
    let mut cols: Vec<(&str, AttrType)> = vec![("minute", AttrType::Int)];
    cols.extend(CHANNELS.iter().map(|&c| (c, AttrType::Float)));
    let schema = Schema::new(cols);
    let mut table = Table::new(schema);
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(2));
    for i in 0..cfg.rows {
        let minute = i as i64;
        let p = active_power(minute);
        let mut row = Vec::with_capacity(12);
        row.push(Value::Int(minute));
        for idx in 0..CHANNELS.len() {
            let (gain, offset) = channel_response(idx);
            row.push(Value::Float(gain * p + offset + noise(&mut rng, NOISE)));
        }
        table.push_row(row).expect("schema match");
    }
    let days = (cfg.rows as i64 / DAY) + 2;
    let mut minute_bounds = Vec::new();
    for d in 0..days {
        for r in REGIMES {
            minute_bounds.push((d * DAY + r) as f64);
        }
        minute_bounds.push(((d + 1) * DAY) as f64);
    }
    let mut expert = BTreeMap::new();
    expert.insert("minute", minute_bounds);
    Dataset {
        table,
        name: "Electricity",
        category: "Time series",
        default_target: "global_active_power",
        default_inputs: vec!["minute"],
        expert_boundaries: expert,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daily_schedule_repeats() {
        for m in (0..DAY).step_by(97) {
            assert_eq!(active_power(m), active_power(m + 3 * DAY));
        }
    }

    #[test]
    fn power_stays_in_plausible_range() {
        for m in 0..DAY {
            let p = active_power(m);
            assert!((0.3..=4.6).contains(&p), "minute {m}: {p}");
        }
    }

    #[test]
    fn regimes_are_linear_within_segments() {
        // Second differences vanish inside each regime.
        for window in [
            (0, REGIMES[0]),
            (REGIMES[0], REGIMES[1]),
            (REGIMES[2], REGIMES[3]),
        ] {
            for m in (window.0 + 2)..window.1 {
                let dd = active_power(m) - 2.0 * active_power(m - 1) + active_power(m - 2);
                assert!(dd.abs() < 1e-9, "minute {m}");
            }
        }
    }

    #[test]
    fn voltage_sags_under_load() {
        let ds = electricity(&GenConfig {
            rows: DAY as usize,
            seed: 5,
        });
        let volt = ds.table.attr("voltage").unwrap();
        // Evening peak (minute 1319) vs overnight (minute 100).
        let peak = ds.table.value_f64(1_319, volt).unwrap();
        let night = ds.table.value_f64(100, volt).unwrap();
        assert!(peak < night);
    }

    #[test]
    fn shape_matches_table2() {
        let ds = electricity(&GenConfig { rows: 10, seed: 0 });
        assert_eq!(ds.num_cols(), 12);
        assert_eq!(ds.category, "Time series");
    }
}
