//! Abalone: physical measurements of abalone (stand-in for the UCI Abalone
//! dataset \[30\]).
//!
//! 9 columns: sex plus 7 size/weight measurements and the ring count
//! (age proxy). Within each sex group the measurements follow near-linear
//! relations with group-specific slopes — infants grow differently from
//! adults — and the two adult sexes (M, F) share the *same* growth slope
//! with a constant offset, so their rules are `y = δ` translations.

use crate::{noise, Dataset, GenConfig};
use crr_data::{AttrType, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Sex categories: male, female, infant.
pub const SEXES: [&str; 3] = ["M", "F", "I"];

/// Ring-count law per sex: `rings = slope · length + offset`.
/// M and F share the slope (translation pair); infants differ.
pub fn ring_law(sex: usize) -> (f64, f64) {
    match sex {
        0 => (18.0, 1.0), // M
        1 => (18.0, 2.2), // F: same slope, shifted
        _ => (10.0, 2.0), // I: different growth regime
    }
}

/// Measurement noise amplitude.
pub const NOISE: f64 = 0.25;

/// Generates the Abalone stand-in.
#[allow(clippy::expect_used)] // generator pushes rows matching the schema it just built
pub fn abalone(cfg: &GenConfig) -> Dataset {
    let schema = Schema::new(vec![
        ("sex", AttrType::Str),
        ("length", AttrType::Float),
        ("diameter", AttrType::Float),
        ("height", AttrType::Float),
        ("whole_weight", AttrType::Float),
        ("shucked_weight", AttrType::Float),
        ("viscera_weight", AttrType::Float),
        ("shell_weight", AttrType::Float),
        ("rings", AttrType::Float),
    ]);
    let mut table = Table::new(schema);
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(4));
    for _ in 0..cfg.rows {
        let sex = rng.gen_range(0..3);
        // Infants are smaller.
        let length: f64 = if sex == 2 {
            rng.gen_range(0.1..0.45)
        } else {
            rng.gen_range(0.3..0.8)
        };
        let diameter = 0.8 * length + noise(&mut rng, 0.01);
        let height = 0.35 * length + noise(&mut rng, 0.008);
        let whole = 1.9 * length - 0.3 + noise(&mut rng, 0.05);
        let shucked = 0.43 * whole + noise(&mut rng, 0.02);
        let viscera = 0.22 * whole + noise(&mut rng, 0.015);
        let shell = 0.28 * whole + noise(&mut rng, 0.015);
        let (slope, offset) = ring_law(sex);
        let rings = slope * length + offset + noise(&mut rng, NOISE);
        table
            .push_row(vec![
                Value::str(SEXES[sex]),
                Value::Float(length),
                Value::Float(diameter),
                Value::Float(height),
                Value::Float(whole.max(0.01)),
                Value::Float(shucked.max(0.005)),
                Value::Float(viscera.max(0.005)),
                Value::Float(shell.max(0.005)),
                Value::Float(rings.max(1.0)),
            ])
            .expect("schema match");
    }
    let mut expert = BTreeMap::new();
    // Ground truth: the infant/adult size boundary region.
    expert.insert("length", vec![0.3, 0.45, 0.6]);
    Dataset {
        table,
        name: "Abalone",
        category: "Relational",
        default_target: "rings",
        default_inputs: vec!["length"],
        expert_boundaries: expert,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_law_holds_per_sex() {
        let ds = abalone(&GenConfig {
            rows: 1_000,
            seed: 13,
        });
        let t = &ds.table;
        let sex = t.attr("sex").unwrap();
        let length = t.attr("length").unwrap();
        let rings = t.attr("rings").unwrap();
        for r in 0..t.num_rows() {
            let s = t.value(r, sex);
            let idx = SEXES.iter().position(|n| Some(*n) == s.as_str()).unwrap();
            let (slope, offset) = ring_law(idx);
            let expect = (slope * t.value_f64(r, length).unwrap() + offset).max(1.0);
            let got = t.value_f64(r, rings).unwrap();
            assert!(
                (got - expect).abs() <= NOISE + 1e-9,
                "row {r}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn adult_sexes_share_slope() {
        assert_eq!(ring_law(0).0, ring_law(1).0);
        assert_ne!(ring_law(0).1, ring_law(1).1);
        assert_ne!(ring_law(0).0, ring_law(2).0);
    }

    #[test]
    fn infants_are_smaller() {
        let ds = abalone(&GenConfig {
            rows: 2_000,
            seed: 17,
        });
        let t = &ds.table;
        let sex = t.attr("sex").unwrap();
        let length = t.attr("length").unwrap();
        let mut max_infant: f64 = 0.0;
        let mut max_adult: f64 = 0.0;
        for r in 0..t.num_rows() {
            let l = t.value_f64(r, length).unwrap();
            if t.value(r, sex) == Value::str("I") {
                max_infant = max_infant.max(l);
            } else {
                max_adult = max_adult.max(l);
            }
        }
        assert!(max_infant < 0.46);
        assert!(max_adult > 0.6);
    }

    #[test]
    fn shape_matches_table2() {
        let ds = abalone(&GenConfig { rows: 10, seed: 0 });
        assert_eq!(ds.num_cols(), 9);
        assert_eq!(ds.category, "Relational");
    }
}
