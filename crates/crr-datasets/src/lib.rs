//! Seeded synthetic generators for the paper's five evaluation datasets
//! (Table II).
//!
//! The real datasets (BirdMap GPS traces, UCI AirQuality/Electricity/
//! Abalone, the Tax benchmark) are not redistributable inside this
//! repository, so each generator reproduces the *structure* that CRR
//! discovery exploits, as documented in DESIGN.md §3:
//!
//! * piecewise regimes — a different regression law on different parts of
//!   the data (mixed data distribution);
//! * **repetition** — the same law recurring in different parts (seasons
//!   across years, tax rates across states), which is what model sharing
//!   and the Translation inference capture;
//! * bounded sensor noise, so a maximum-bias `ρ_M` can hold on a partition.
//!
//! Each generator is deterministic given its seed and returns a
//! [`Dataset`]: the table plus the metadata experiments need (default
//! `X → Y`, and the ground-truth segment boundaries that the *expert*
//! predicate generator of Table III uses).
//!
//! # Example
//!
//! ```
//! use crr_datasets::{birdmap, GenConfig};
//!
//! let ds = birdmap(&GenConfig { rows: 2_000, seed: 1 });
//! assert_eq!(ds.table.num_rows(), 2_000);
//! assert_eq!(ds.default_target, "latitude");
//! ```

#![deny(unsafe_code)]

pub mod abalone;
pub mod airquality;
pub mod birdmap;
pub mod electricity;
pub mod tax;

pub use crate::abalone::abalone;
pub use crate::airquality::airquality;
pub use crate::birdmap::birdmap;
pub use crate::electricity::electricity;
pub use crate::tax::tax;

use crr_data::Table;
use std::collections::BTreeMap;

/// Generator configuration: number of rows and RNG seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenConfig {
    /// Rows to generate.
    pub rows: usize,
    /// RNG seed; equal seeds give identical tables.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            rows: 10_000,
            seed: 42,
        }
    }
}

/// A generated dataset plus the metadata experiments need.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The generated table.
    pub table: Table,
    /// Dataset name as used in the paper's tables/figures.
    pub name: &'static str,
    /// Paper category (Table II): "Time series" or "Relational".
    pub category: &'static str,
    /// Default regression target attribute for experiments.
    pub default_target: &'static str,
    /// Default feature attributes `X`.
    pub default_inputs: Vec<&'static str>,
    /// Ground-truth numeric segment boundaries per attribute — the
    /// "expert knowledge" predicate source of Table III.
    pub expert_boundaries: BTreeMap<&'static str, Vec<f64>>,
}

impl Dataset {
    /// Row count of the underlying table.
    pub fn num_rows(&self) -> usize {
        self.table.num_rows()
    }

    /// Column count of the underlying table.
    pub fn num_cols(&self) -> usize {
        self.table.num_cols()
    }

    /// Table II row: `(name, rows, cols, category)`.
    pub fn stats(&self) -> (&'static str, usize, usize, &'static str) {
        (self.name, self.num_rows(), self.num_cols(), self.category)
    }
}

/// The paper-scale default sizes of Table II. Experiments generally use
/// smaller instances (set via [`GenConfig::rows`]); these constants are the
/// full-scale reference.
pub mod paper_sizes {
    /// AirQuality: 9.4k rows.
    pub const AIRQUALITY: usize = 9_400;
    /// Electricity: 2 075k rows.
    pub const ELECTRICITY: usize = 2_075_000;
    /// BirdMap: 407k rows.
    pub const BIRDMAP: usize = 407_000;
    /// Tax: 100k rows.
    pub const TAX: usize = 100_000;
    /// Abalone: 4.2k rows.
    pub const ABALONE: usize = 4_200;
}

/// Uniform bounded noise in `[-amp, amp]` — bounded so that a maximum-bias
/// `ρ_M` can actually hold on a partition (Gaussian tails would violate any
/// finite ρ eventually).
pub(crate) fn noise(rng: &mut impl rand::Rng, amp: f64) -> f64 {
    rng.gen_range(-amp..=amp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let cfg = GenConfig { rows: 500, seed: 9 };
        for make in [birdmap, airquality, electricity, tax, abalone] {
            let a = make(&cfg);
            let b = make(&cfg);
            assert_eq!(a.table.num_rows(), b.table.num_rows());
            for (id, _) in a.table.schema().iter() {
                for r in 0..a.table.num_rows() {
                    assert_eq!(
                        a.table.value(r, id),
                        b.table.value(r, id),
                        "{} row {r}",
                        a.name
                    );
                }
            }
        }
    }

    #[test]
    fn seeds_change_content() {
        let a = birdmap(&GenConfig { rows: 100, seed: 1 });
        let b = birdmap(&GenConfig { rows: 100, seed: 2 });
        let lat = a.table.attr("latitude").unwrap();
        let diff = (0..100).any(|r| a.table.value(r, lat) != b.table.value(r, lat));
        assert!(diff);
    }

    #[test]
    fn table2_shapes_match_paper() {
        // Column counts are fixed by the schema; row counts are requested.
        let cfg = GenConfig { rows: 100, seed: 0 };
        assert_eq!(airquality(&cfg).num_cols(), 18);
        assert_eq!(electricity(&cfg).num_cols(), 12);
        assert_eq!(birdmap(&cfg).num_cols(), 4);
        assert_eq!(tax(&cfg).num_cols(), 17);
        assert_eq!(abalone(&cfg).num_cols(), 9);
        for make in [birdmap, airquality, electricity, tax, abalone] {
            assert_eq!(make(&cfg).num_rows(), 100);
        }
    }

    #[test]
    fn defaults_resolve_in_schema() {
        let cfg = GenConfig { rows: 50, seed: 3 };
        for make in [birdmap, airquality, electricity, tax, abalone] {
            let ds = make(&cfg);
            assert!(ds.table.attr(ds.default_target).is_ok(), "{}", ds.name);
            for input in &ds.default_inputs {
                assert!(ds.table.attr(input).is_ok(), "{}: {input}", ds.name);
            }
            for attr in ds.expert_boundaries.keys() {
                assert!(ds.table.attr(attr).is_ok(), "{}: {attr}", ds.name);
            }
        }
    }

    #[test]
    fn no_nulls_generated() {
        let cfg = GenConfig { rows: 200, seed: 5 };
        for make in [birdmap, airquality, electricity, tax, abalone] {
            assert_eq!(make(&cfg).table.null_count(), 0);
        }
    }
}
