//! DHR: dynamic harmonic regression (\[22\]).
//!
//! Young et al. fit time series with a harmonic (Fourier) basis:
//! `y_t = a₀ + a₁·t + Σ_{k=1..K} [c_k cos(2πkt/T) + s_k sin(2πkt/T)]`.
//! Short- and long-term periodicity is captured by the number of
//! harmonics `K`; unlike CRR there is no notion of conditions, so the one
//! global harmonic model must average over regime changes — and fitting
//! the `2K + 2`-column basis over the whole series is expensive, which is
//! why DHR's training time blows up first in Figures 2–3.

use crate::{BaselineError, BaselinePredictor, Result};
use crr_data::{AttrId, RowSet, Table};
use crr_linalg::{lstsq, Matrix};

/// DHR hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DhrConfig {
    /// Fundamental period `T` in time-attribute units (e.g. 24 for hourly
    /// data with daily seasonality).
    pub period: f64,
    /// Number of harmonics `K`.
    pub harmonics: usize,
}

impl Default for DhrConfig {
    fn default() -> Self {
        DhrConfig {
            period: 24.0,
            harmonics: 4,
        }
    }
}

/// The DHR baseline (fit entry point).
#[derive(Debug, Clone, Default)]
pub struct Dhr;

/// A fitted harmonic regression.
#[derive(Debug, Clone)]
pub struct FittedDhr {
    /// `[a₀, a₁, c₁, s₁, …, c_K, s_K]`.
    coef: Vec<f64>,
    period: f64,
    harmonics: usize,
    time_attr: AttrId,
}

fn basis_row(t: f64, period: f64, harmonics: usize, out: &mut Vec<f64>) {
    out.push(1.0);
    out.push(t);
    for k in 1..=harmonics {
        let w = 2.0 * std::f64::consts::PI * k as f64 * t / period;
        out.push(w.cos());
        out.push(w.sin());
    }
}

impl Dhr {
    /// Fits the harmonic basis to the target series over `rows`.
    pub fn fit(
        table: &Table,
        rows: &RowSet,
        time_attr: AttrId,
        target: AttrId,
        cfg: &DhrConfig,
    ) -> Result<FittedDhr> {
        let k = cfg.harmonics.max(1);
        let cols = 2 + 2 * k;
        let pairs: Vec<(f64, f64)> = rows
            .iter()
            .filter_map(|r| Some((table.value_f64(r, time_attr)?, table.value_f64(r, target)?)))
            .collect();
        if pairs.len() < cols {
            return Err(BaselineError::TooFewRows {
                needed: cols,
                got: pairs.len(),
            });
        }
        let mut data = Vec::with_capacity(pairs.len() * cols);
        let mut rhs = Vec::with_capacity(pairs.len());
        for (t, y) in &pairs {
            basis_row(*t, cfg.period, k, &mut data);
            rhs.push(*y);
        }
        let a = Matrix::from_vec(pairs.len(), cols, data);
        let coef = lstsq(&a, &rhs)
            .map_err(|e| BaselineError::Model(crr_models::ModelError::Solver(e.to_string())))?;
        Ok(FittedDhr {
            coef,
            period: cfg.period,
            harmonics: k,
            time_attr,
        })
    }
}

impl FittedDhr {
    /// Predicts at an arbitrary time value.
    pub fn predict_at(&self, t: f64) -> f64 {
        let mut row = Vec::with_capacity(self.coef.len());
        basis_row(t, self.period, self.harmonics, &mut row);
        crr_linalg::dot(&row, &self.coef)
    }
}

impl BaselinePredictor for FittedDhr {
    fn name(&self) -> &'static str {
        "DHR"
    }

    fn predict_row(&self, table: &Table, row: usize) -> Option<f64> {
        Some(self.predict_at(table.value_f64(row, self.time_attr)?))
    }

    fn num_rules(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate_predictor;
    use crr_data::{AttrType, Schema, Value};

    fn sine_table(period: f64, n: usize) -> Table {
        let schema = Schema::new(vec![("t", AttrType::Int), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for i in 0..n {
            let y = 3.0
                + 0.01 * i as f64
                + 2.0 * (2.0 * std::f64::consts::PI * i as f64 / period).cos();
            t.push_row(vec![Value::Int(i as i64), Value::Float(y)])
                .unwrap();
        }
        t
    }

    #[test]
    fn recovers_pure_harmonic_signal() {
        let t = sine_table(24.0, 240);
        let time = t.attr("t").unwrap();
        let y = t.attr("y").unwrap();
        let m = Dhr::fit(
            &t,
            &t.all_rows(),
            time,
            y,
            &DhrConfig {
                period: 24.0,
                harmonics: 2,
            },
        )
        .unwrap();
        let s = evaluate_predictor(&m, &t, &t.all_rows(), y);
        assert!(s.rmse < 1e-8, "rmse {}", s.rmse);
        assert_eq!(m.num_rules(), 1);
    }

    #[test]
    fn wrong_period_fits_poorly() {
        let t = sine_table(24.0, 240);
        let time = t.attr("t").unwrap();
        let y = t.attr("y").unwrap();
        let m = Dhr::fit(
            &t,
            &t.all_rows(),
            time,
            y,
            &DhrConfig {
                period: 7.0,
                harmonics: 2,
            },
        )
        .unwrap();
        let s = evaluate_predictor(&m, &t, &t.all_rows(), y);
        assert!(s.rmse > 0.5, "rmse {}", s.rmse);
    }

    #[test]
    fn more_harmonics_fit_sharper_shapes() {
        // A square-ish wave needs higher harmonics.
        let schema = Schema::new(vec![("t", AttrType::Int), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for i in 0..240 {
            let y = if (i / 12) % 2 == 0 { 1.0 } else { -1.0 };
            t.push_row(vec![Value::Int(i as i64), Value::Float(y)])
                .unwrap();
        }
        let time = t.attr("t").unwrap();
        let y = t.attr("y").unwrap();
        let low = Dhr::fit(
            &t,
            &t.all_rows(),
            time,
            y,
            &DhrConfig {
                period: 24.0,
                harmonics: 1,
            },
        )
        .unwrap();
        let high = Dhr::fit(
            &t,
            &t.all_rows(),
            time,
            y,
            &DhrConfig {
                period: 24.0,
                harmonics: 7,
            },
        )
        .unwrap();
        let sl = evaluate_predictor(&low, &t, &t.all_rows(), y);
        let sh = evaluate_predictor(&high, &t, &t.all_rows(), y);
        assert!(sh.rmse < sl.rmse);
    }

    #[test]
    fn too_short_series_rejected() {
        let t = sine_table(24.0, 5);
        let time = t.attr("t").unwrap();
        let y = t.attr("y").unwrap();
        assert!(matches!(
            Dhr::fit(
                &t,
                &t.all_rows(),
                time,
                y,
                &DhrConfig {
                    period: 24.0,
                    harmonics: 4
                }
            ),
            Err(BaselineError::TooFewRows { .. })
        ));
    }
}
