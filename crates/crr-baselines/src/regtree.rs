//! RegTree: a CART-style model tree (\[5\], \[9\], \[12\]) — the paper's primary
//! baseline.
//!
//! Internal nodes split on `A ≤ c` / categorical `A = v` predicates chosen
//! by weighted target variance; leaves hold a regression model of the
//! configured family (F1/F2/F3), like the per-segment models of \[5\]. Each
//! leaf is exactly one conjunction-conditioned CRR, so a fitted tree
//! exports to a [`RuleSet`] — the input of the Figure 9/10 rule-compaction
//! experiment.

use crate::common::{fit_pairs, row_features};
use crate::{BaselineError, BaselinePredictor, Result};
use crr_core::{Conjunction, Crr, Dnf, Predicate, RuleSet};
use crr_data::{AttrId, AttrType, ColumnStats, RowSet, Table, Value};
use crr_models::{fit_model, max_abs_residual, FitConfig, Model, ModelKind, Regressor};
use std::sync::Arc;

/// Model-tree hyper-parameters.
#[derive(Debug, Clone)]
pub struct RegTreeConfig {
    /// Maximum tree depth (paper: regression trees with bounded depth).
    pub max_depth: usize,
    /// Minimum rows per leaf.
    pub min_leaf: usize,
    /// Leaf model family.
    pub fit: FitConfig,
    /// Candidate split thresholds per numeric attribute (quantiles).
    pub candidates_per_attr: usize,
    /// Stop early when a leaf's variance drops below this.
    pub min_variance: f64,
}

impl Default for RegTreeConfig {
    fn default() -> Self {
        RegTreeConfig {
            max_depth: 8,
            min_leaf: 8,
            fit: FitConfig::new(ModelKind::Linear),
            candidates_per_attr: 16,
            min_variance: 1e-12,
        }
    }
}

impl RegTreeConfig {
    /// Config with the given leaf-model family.
    pub fn with_kind(kind: ModelKind) -> Self {
        RegTreeConfig {
            fit: FitConfig::new(kind),
            ..Default::default()
        }
    }
}

/// The RegTree baseline (fit entry point).
#[derive(Debug, Clone, Default)]
pub struct RegTree;

/// One tree node.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        model: Arc<Model>,
        /// Max training residual — the leaf rule's ρ.
        rho: f64,
    },
    Split {
        pred: Predicate,
        yes: Box<Node>,
        no: Box<Node>,
    },
}

/// A fitted model tree.
#[derive(Debug, Clone)]
pub struct FittedRegTree {
    root: Node,
    inputs: Vec<AttrId>,
    target: AttrId,
    leaves: usize,
}

impl RegTree {
    /// Fits a model tree predicting `target` from `inputs`, splitting on
    /// `condition_attrs` (often a superset of `inputs`, e.g. including
    /// categorical attributes).
    pub fn fit(
        table: &Table,
        rows: &RowSet,
        inputs: &[AttrId],
        condition_attrs: &[AttrId],
        target: AttrId,
        cfg: &RegTreeConfig,
    ) -> Result<FittedRegTree> {
        if rows.is_empty() {
            return Err(BaselineError::TooFewRows { needed: 1, got: 0 });
        }
        if condition_attrs.contains(&target) {
            return Err(BaselineError::BadAttribute(
                "cannot split on the target attribute".into(),
            ));
        }
        let mut leaves = 0usize;
        let root = build(
            table,
            rows,
            inputs,
            condition_attrs,
            target,
            cfg,
            0,
            &mut leaves,
        )?;
        Ok(FittedRegTree {
            root,
            inputs: inputs.to_vec(),
            target,
            leaves,
        })
    }
}

#[allow(clippy::too_many_arguments)]
fn build(
    table: &Table,
    rows: &RowSet,
    inputs: &[AttrId],
    condition_attrs: &[AttrId],
    target: AttrId,
    cfg: &RegTreeConfig,
    depth: usize,
    leaves: &mut usize,
) -> Result<Node> {
    let stats = ColumnStats::compute(table, target, rows);
    let can_split = depth < cfg.max_depth
        && rows.len() >= 2 * cfg.min_leaf
        && stats.variance > cfg.min_variance;
    if can_split {
        if let Some((pred, yes_rows, no_rows)) =
            best_split(table, rows, condition_attrs, target, cfg)
        {
            let yes = build(
                table,
                &yes_rows,
                inputs,
                condition_attrs,
                target,
                cfg,
                depth + 1,
                leaves,
            )?;
            let no = build(
                table,
                &no_rows,
                inputs,
                condition_attrs,
                target,
                cfg,
                depth + 1,
                leaves,
            )?;
            return Ok(Node::Split {
                pred,
                yes: Box::new(yes),
                no: Box::new(no),
            });
        }
    }
    // Leaf: fit the configured model family.
    let (xs, y) = fit_pairs(table, rows, inputs, target);
    let model = if y.is_empty() {
        Model::Constant(crr_models::ConstantModel::new(stats.mean, inputs.len()))
    } else {
        fit_model(&xs, &y, &cfg.fit)?
    };
    let rho = max_abs_residual(&model, &xs, &y);
    *leaves += 1;
    Ok(Node::Leaf {
        model: Arc::new(model),
        rho,
    })
}

/// Best variance-reducing split over quantile thresholds / categories.
fn best_split(
    table: &Table,
    rows: &RowSet,
    condition_attrs: &[AttrId],
    target: AttrId,
    cfg: &RegTreeConfig,
) -> Option<(Predicate, RowSet, RowSet)> {
    let mut best: Option<(f64, Predicate)> = None;
    for &attr in condition_attrs {
        let candidates: Vec<Predicate> = match table.schema().attribute(attr).ty() {
            AttrType::Str => table
                .column(attr)
                .dict()
                .map(|dict| {
                    dict.iter()
                        .map(|v| Predicate::eq(attr, Value::Str(v.clone())))
                        .collect()
                })
                .unwrap_or_default(),
            _ => {
                let s = ColumnStats::compute(table, attr, rows);
                let (Some(lo), Some(hi)) = (s.min, s.max) else {
                    continue;
                };
                if hi <= lo {
                    continue;
                }
                (1..=cfg.candidates_per_attr)
                    .map(|k| {
                        let c = lo + (hi - lo) * k as f64 / (cfg.candidates_per_attr + 1) as f64;
                        let v = match table.schema().attribute(attr).ty() {
                            AttrType::Int => Value::Int(c.round() as i64),
                            _ => Value::Float(c),
                        };
                        Predicate::le(attr, v)
                    })
                    .collect()
            }
        };
        for pred in candidates {
            let (mut n1, mut s1, mut q1) = (0usize, 0.0f64, 0.0f64);
            let (mut n2, mut s2, mut q2) = (0usize, 0.0f64, 0.0f64);
            for r in rows.iter() {
                let Some(v) = table.value_f64(r, target) else {
                    continue;
                };
                if pred.eval(table, r) {
                    n1 += 1;
                    s1 += v;
                    q1 += v * v;
                } else {
                    n2 += 1;
                    s2 += v;
                    q2 += v * v;
                }
            }
            if n1 < cfg.min_leaf || n2 < cfg.min_leaf {
                continue;
            }
            let var = |n: usize, s: f64, q: f64| {
                let m = s / n as f64;
                (q / n as f64 - m * m).max(0.0)
            };
            let score =
                (n1 as f64 * var(n1, s1, q1) + n2 as f64 * var(n2, s2, q2)) / (n1 + n2) as f64;
            if best.as_ref().is_none_or(|(b, _)| score < *b) {
                best = Some((score, pred));
            }
        }
    }
    let (_, pred) = best?;
    let (yes, no) = rows.partition(|r| pred.eval(table, r));
    Some((pred, yes, no))
}

impl FittedRegTree {
    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.leaves
    }

    /// Exports every leaf as a conjunction-conditioned CRR — the tree as a
    /// rule set, ready for Algorithm 2 compaction (Figure 9).
    pub fn to_ruleset(&self) -> Result<RuleSet> {
        let mut rules = Vec::with_capacity(self.leaves);
        let mut path: Vec<Predicate> = Vec::new();
        collect_rules(&self.root, &mut path, &self.inputs, self.target, &mut rules)?;
        Ok(RuleSet::from_rules(rules))
    }
}

fn collect_rules(
    node: &Node,
    path: &mut Vec<Predicate>,
    inputs: &[AttrId],
    target: AttrId,
    out: &mut Vec<Crr>,
) -> Result<()> {
    match node {
        Node::Leaf { model, rho } => {
            let cond = Dnf::single(Conjunction::of(path.clone()));
            out.push(Crr::new(
                inputs.to_vec(),
                target,
                Arc::clone(model),
                *rho,
                cond,
            )?);
            Ok(())
        }
        Node::Split { pred, yes, no } => {
            path.push(pred.clone());
            collect_rules(yes, path, inputs, target, out)?;
            path.pop();
            path.push(pred.negate());
            collect_rules(no, path, inputs, target, out)?;
            path.pop();
            Ok(())
        }
    }
}

impl BaselinePredictor for FittedRegTree {
    fn name(&self) -> &'static str {
        "RegTree"
    }

    fn predict_row(&self, table: &Table, row: usize) -> Option<f64> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { model, .. } => {
                    let x = row_features(table, row, &self.inputs)?;
                    return Some(model.predict(&x));
                }
                Node::Split { pred, yes, no } => {
                    // Nulls fail every predicate and fall to the `no` side.
                    node = if pred.eval(table, row) { yes } else { no };
                }
            }
        }
    }

    fn num_rules(&self) -> usize {
        self.leaves
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate_predictor;
    use crr_core::LocateStrategy;
    use crr_data::Schema;

    /// Two linear regimes split at x = 100.
    fn table() -> Table {
        let schema = Schema::new(vec![("x", AttrType::Float), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for i in 0..200 {
            let x = i as f64;
            let y = if x < 100.0 { 2.0 * x } else { -x + 500.0 };
            t.push_row(vec![Value::Float(x), Value::Float(y)]).unwrap();
        }
        t
    }

    #[test]
    fn fits_piecewise_linear_data() {
        let t = table();
        let x = t.attr("x").unwrap();
        let y = t.attr("y").unwrap();
        let tree =
            RegTree::fit(&t, &t.all_rows(), &[x], &[x], y, &RegTreeConfig::default()).unwrap();
        let s = evaluate_predictor(&tree, &t, &t.all_rows(), y);
        assert_eq!(s.answered, 200);
        // Quantile thresholds never hit the kink exactly, so one straddling
        // leaf keeps some residual — but the tree must beat a single model
        // by a wide margin (the single linear fit has RMSE ≈ 70 here).
        assert!(s.rmse < 15.0, "rmse {}", s.rmse);
        assert!(tree.num_rules() >= 2);
    }

    #[test]
    fn export_matches_tree_predictions() {
        let t = table();
        let x = t.attr("x").unwrap();
        let y = t.attr("y").unwrap();
        let tree =
            RegTree::fit(&t, &t.all_rows(), &[x], &[x], y, &RegTreeConfig::default()).unwrap();
        let rules = tree.to_ruleset().unwrap();
        assert_eq!(rules.len(), tree.num_rules());
        // Leaf conjunctions partition the space: every row covered exactly.
        assert!(rules.uncovered(&t, &t.all_rows()).is_empty());
        for row in (0..200).step_by(7) {
            let tree_pred = tree.predict_row(&t, row).unwrap();
            let rule_pred = rules.predict(&t, row, LocateStrategy::First).unwrap();
            assert!((tree_pred - rule_pred).abs() < 1e-12, "row {row}");
        }
    }

    #[test]
    fn depth_zero_is_single_leaf() {
        let t = table();
        let x = t.attr("x").unwrap();
        let y = t.attr("y").unwrap();
        let cfg = RegTreeConfig {
            max_depth: 0,
            ..Default::default()
        };
        let tree = RegTree::fit(&t, &t.all_rows(), &[x], &[x], y, &cfg).unwrap();
        assert_eq!(tree.num_rules(), 1);
    }

    #[test]
    fn categorical_splits_work() {
        let schema = Schema::new(vec![
            ("g", AttrType::Str),
            ("x", AttrType::Float),
            ("y", AttrType::Float),
        ]);
        let mut t = Table::new(schema);
        for i in 0..100 {
            let g = if i % 2 == 0 { "a" } else { "b" };
            let x = i as f64;
            // Group laws differ by level, so the categorical split is the
            // variance-optimal first cut.
            let y = if g == "a" { x } else { x + 100.0 };
            t.push_row(vec![Value::str(g), Value::Float(x), Value::Float(y)])
                .unwrap();
        }
        let g = t.attr("g").unwrap();
        let x = t.attr("x").unwrap();
        let y = t.attr("y").unwrap();
        let tree = RegTree::fit(
            &t,
            &t.all_rows(),
            &[x],
            &[g, x],
            y,
            &RegTreeConfig::default(),
        )
        .unwrap();
        let s = evaluate_predictor(&tree, &t, &t.all_rows(), y);
        assert!(s.rmse < 1.0, "rmse {}", s.rmse);
    }

    #[test]
    fn split_on_target_rejected() {
        let t = table();
        let y = t.attr("y").unwrap();
        let x = t.attr("x").unwrap();
        assert!(matches!(
            RegTree::fit(&t, &t.all_rows(), &[x], &[y], y, &RegTreeConfig::default()),
            Err(BaselineError::BadAttribute(_))
        ));
    }

    #[test]
    fn min_leaf_respected() {
        let t = table();
        let x = t.attr("x").unwrap();
        let y = t.attr("y").unwrap();
        let cfg = RegTreeConfig {
            min_leaf: 100,
            ..Default::default()
        };
        let tree = RegTree::fit(&t, &t.all_rows(), &[x], &[x], y, &cfg).unwrap();
        // 200 rows, min_leaf 100: at most one split.
        assert!(tree.num_rules() <= 2);
    }
}
