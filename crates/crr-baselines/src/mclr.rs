//! MCLR: Monte-Carlo conditional regression (\[20\]).
//!
//! Mehta et al. evaluate conditional likelihoods by Monte-Carlo sampling
//! over matched sets; adapted to the regression setting, MCLR fits each
//! stratum by scoring many Monte-Carlo candidate models (each fitted on a
//! random subset) against the *whole* stratum and keeping the best — an
//! even heavier sampling loop than SampLR, matching its position as the
//! slowest baseline in Figures 2–4.

use crate::common::row_features;
use crate::samplr::stratify_rows;
use crate::{BaselineError, BaselinePredictor, Result};
use crr_data::{AttrId, RowSet, Table};
use crr_models::{fit_model, FitConfig, Model, ModelKind, Regressor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// MCLR hyper-parameters.
#[derive(Debug, Clone)]
pub struct MclrConfig {
    /// Monte-Carlo candidates per stratum.
    pub mc_iters: usize,
    /// Subset size per candidate, as a fraction of the stratum.
    pub sample_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MclrConfig {
    fn default() -> Self {
        MclrConfig {
            mc_iters: 120,
            sample_frac: 0.5,
            seed: 23,
        }
    }
}

/// The MCLR baseline (fit entry point).
#[derive(Debug, Clone, Default)]
pub struct Mclr;

/// A fitted MCLR: the best Monte-Carlo model per stratum.
#[derive(Debug, Clone)]
pub struct FittedMclr {
    models: HashMap<u32, Model>,
    stratify: Option<AttrId>,
    inputs: Vec<AttrId>,
}

impl Mclr {
    #[allow(clippy::unwrap_used, clippy::expect_used)] // rows pre-filtered by complete_rows; mc_iters >= 1 guarantees a best
    /// Fits per-stratum best-of-Monte-Carlo linear models.
    pub fn fit(
        table: &Table,
        rows: &RowSet,
        inputs: &[AttrId],
        stratify: Option<AttrId>,
        target: AttrId,
        cfg: &MclrConfig,
    ) -> Result<FittedMclr> {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let strata = stratify_rows(table, rows, stratify);
        if strata.is_empty() {
            return Err(BaselineError::TooFewRows { needed: 1, got: 0 });
        }
        let fit_cfg = FitConfig::new(ModelKind::Linear);
        let mut models = HashMap::with_capacity(strata.len());
        for (code, stratum_rows) in strata {
            let complete = table.complete_rows(inputs, target, &stratum_rows);
            if complete.is_empty() {
                continue;
            }
            let xs: Vec<Vec<f64>> = complete
                .iter()
                .map(|r| {
                    inputs
                        .iter()
                        .map(|&a| table.value_f64(r, a).unwrap())
                        .collect()
                })
                .collect();
            let y: Vec<f64> = complete
                .iter()
                .map(|r| table.value_f64(r, target).unwrap())
                .collect();
            let n = xs.len();
            let d = inputs.len();
            let take = ((n as f64 * cfg.sample_frac) as usize).clamp((d + 1).min(n), n);
            let mut best: Option<(f64, Model)> = None;
            for _ in 0..cfg.mc_iters.max(1) {
                let mut sx = Vec::with_capacity(take);
                let mut sy = Vec::with_capacity(take);
                for _ in 0..take {
                    let i = rng.gen_range(0..n);
                    sx.push(xs[i].clone());
                    sy.push(y[i]);
                }
                let candidate = fit_model(&sx, &sy, &fit_cfg)?;
                // Score against the whole stratum (the expensive part).
                let sse: f64 = xs
                    .iter()
                    .zip(&y)
                    .map(|(x, &t)| {
                        let e = candidate.predict(x) - t;
                        e * e
                    })
                    .sum();
                if best.as_ref().is_none_or(|(b, _)| sse < *b) {
                    best = Some((sse, candidate));
                }
            }
            models.insert(code, best.expect("mc_iters >= 1").1);
        }
        Ok(FittedMclr {
            models,
            stratify,
            inputs: inputs.to_vec(),
        })
    }
}

impl BaselinePredictor for FittedMclr {
    fn name(&self) -> &'static str {
        "MCLR"
    }

    fn predict_row(&self, table: &Table, row: usize) -> Option<f64> {
        let code = match self.stratify {
            None => 0,
            Some(attr) => table.column(attr).get_code(row)?,
        };
        let model = self.models.get(&code)?;
        let x = row_features(table, row, &self.inputs)?;
        Some(model.predict(&x))
    }

    fn num_rules(&self) -> usize {
        self.models.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate_predictor;
    use crr_data::{AttrType, Schema, Value};

    fn grouped_table() -> Table {
        let schema = Schema::new(vec![
            ("g", AttrType::Str),
            ("x", AttrType::Float),
            ("y", AttrType::Float),
        ]);
        let mut t = Table::new(schema);
        for i in 0..160 {
            let g = if i % 2 == 0 { "a" } else { "b" };
            let x = (i / 2) as f64;
            let y = if g == "a" { x + 3.0 } else { 4.0 * x };
            t.push_row(vec![Value::str(g), Value::Float(x), Value::Float(y)])
                .unwrap();
        }
        t
    }

    #[test]
    fn best_of_mc_recovers_group_laws() {
        let t = grouped_table();
        let g = t.attr("g").unwrap();
        let x = t.attr("x").unwrap();
        let y = t.attr("y").unwrap();
        let m = Mclr::fit(&t, &t.all_rows(), &[x], Some(g), y, &MclrConfig::default()).unwrap();
        assert_eq!(m.num_rules(), 2);
        let s = evaluate_predictor(&m, &t, &t.all_rows(), y);
        assert!(s.rmse < 1e-6, "rmse {}", s.rmse);
    }

    #[test]
    fn more_iters_never_hurts_score() {
        let t = grouped_table();
        let g = t.attr("g").unwrap();
        let x = t.attr("x").unwrap();
        let y = t.attr("y").unwrap();
        let few = Mclr::fit(
            &t,
            &t.all_rows(),
            &[x],
            Some(g),
            y,
            &MclrConfig {
                mc_iters: 1,
                seed: 5,
                ..Default::default()
            },
        )
        .unwrap();
        let many = Mclr::fit(
            &t,
            &t.all_rows(),
            &[x],
            Some(g),
            y,
            &MclrConfig {
                mc_iters: 50,
                seed: 5,
                ..Default::default()
            },
        )
        .unwrap();
        let sf = evaluate_predictor(&few, &t, &t.all_rows(), y);
        let sm = evaluate_predictor(&many, &t, &t.all_rows(), y);
        assert!(sm.rmse <= sf.rmse + 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let t = grouped_table();
        let x = t.attr("x").unwrap();
        let y = t.attr("y").unwrap();
        let cfg = MclrConfig::default();
        let a = Mclr::fit(&t, &t.all_rows(), &[x], None, y, &cfg).unwrap();
        let b = Mclr::fit(&t, &t.all_rows(), &[x], None, y, &cfg).unwrap();
        assert_eq!(
            evaluate_predictor(&a, &t, &t.all_rows(), y).rmse,
            evaluate_predictor(&b, &t, &t.all_rows(), y).rmse
        );
    }
}
