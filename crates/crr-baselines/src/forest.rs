//! Forest: a (conditional) regression forest (\[21\]).
//!
//! Dantone et al. average the predictions of many regression trees, each
//! trained on a bootstrap sample. The forest reaches good accuracy but
//! holds `n_trees × leaves` rules — the "100× more rules than CRR"
//! observation of Figure 3(d).

use crate::regtree::{FittedRegTree, RegTree, RegTreeConfig};
use crate::{BaselineError, BaselinePredictor, Result};
use crr_data::{AttrId, RowSet, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Forest hyper-parameters.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    /// Number of bagged trees.
    pub n_trees: usize,
    /// Per-tree configuration.
    pub tree: RegTreeConfig,
    /// Bootstrap-sample fraction.
    pub sample_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 20,
            tree: RegTreeConfig::default(),
            sample_frac: 0.7,
            seed: 29,
        }
    }
}

/// The Forest baseline (fit entry point).
#[derive(Debug, Clone, Default)]
pub struct Forest;

/// A fitted bagged forest.
#[derive(Debug, Clone)]
pub struct FittedForest {
    trees: Vec<FittedRegTree>,
}

impl Forest {
    /// Fits `n_trees` model trees on bootstrap samples of `rows`.
    pub fn fit(
        table: &Table,
        rows: &RowSet,
        inputs: &[AttrId],
        condition_attrs: &[AttrId],
        target: AttrId,
        cfg: &ForestConfig,
    ) -> Result<FittedForest> {
        if rows.is_empty() {
            return Err(BaselineError::TooFewRows { needed: 1, got: 0 });
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let all: Vec<u32> = rows.as_slice().to_vec();
        let take = ((all.len() as f64 * cfg.sample_frac) as usize).max(1);
        let mut trees = Vec::with_capacity(cfg.n_trees);
        for _ in 0..cfg.n_trees.max(1) {
            let sample: Vec<u32> = (0..take)
                .map(|_| all[rng.gen_range(0..all.len())])
                .collect();
            let sample_rows = RowSet::from_indices(sample);
            trees.push(RegTree::fit(
                table,
                &sample_rows,
                inputs,
                condition_attrs,
                target,
                &cfg.tree,
            )?);
        }
        Ok(FittedForest { trees })
    }
}

impl FittedForest {
    /// The individual trees.
    pub fn trees(&self) -> &[FittedRegTree] {
        &self.trees
    }
}

impl BaselinePredictor for FittedForest {
    fn name(&self) -> &'static str {
        "Forest"
    }

    fn predict_row(&self, table: &Table, row: usize) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for tree in &self.trees {
            if let Some(p) = tree.predict_row(table, row) {
                sum += p;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    fn num_rules(&self) -> usize {
        self.trees.iter().map(FittedRegTree::num_rules).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate_predictor;
    use crr_data::{AttrType, Schema, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![("x", AttrType::Float), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for i in 0..300 {
            let x = i as f64;
            let y = if x < 150.0 { x } else { 2.0 * x - 150.0 };
            t.push_row(vec![Value::Float(x), Value::Float(y)]).unwrap();
        }
        t
    }

    #[test]
    fn forest_fits_and_aggregates() {
        let t = table();
        let x = t.attr("x").unwrap();
        let y = t.attr("y").unwrap();
        let f = Forest::fit(&t, &t.all_rows(), &[x], &[x], y, &ForestConfig::default()).unwrap();
        let s = evaluate_predictor(&f, &t, &t.all_rows(), y);
        assert!(s.rmse < 5.0, "rmse {}", s.rmse);
        // Rule blow-up: many more rules than the two regimes need.
        assert!(f.num_rules() >= 2 * f.trees().len());
    }

    #[test]
    fn rule_count_scales_with_trees() {
        let t = table();
        let x = t.attr("x").unwrap();
        let y = t.attr("y").unwrap();
        let small = Forest::fit(
            &t,
            &t.all_rows(),
            &[x],
            &[x],
            y,
            &ForestConfig {
                n_trees: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let large = Forest::fit(
            &t,
            &t.all_rows(),
            &[x],
            &[x],
            y,
            &ForestConfig {
                n_trees: 10,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(large.num_rules() > small.num_rules());
    }

    #[test]
    fn deterministic_per_seed() {
        let t = table();
        let x = t.attr("x").unwrap();
        let y = t.attr("y").unwrap();
        let cfg = ForestConfig {
            n_trees: 4,
            ..Default::default()
        };
        let a = Forest::fit(&t, &t.all_rows(), &[x], &[x], y, &cfg).unwrap();
        let b = Forest::fit(&t, &t.all_rows(), &[x], &[x], y, &cfg).unwrap();
        assert_eq!(
            evaluate_predictor(&a, &t, &t.all_rows(), y).rmse,
            evaluate_predictor(&b, &t, &t.all_rows(), y).rmse
        );
    }
}
