//! AR: autoregression for time series (\[37\]).
//!
//! `y_t = c + Σ_{i=1..p} a_i · y_{t−i}`, fitted by least squares over the
//! series ordered by a time attribute. Prediction for a row uses the `p`
//! preceding observed target values in time order (one-step-ahead).

use crate::{BaselineError, BaselinePredictor, Result};
use crr_data::{AttrId, RowSet, Table};
use crr_linalg::{lstsq, Matrix};
use std::collections::HashMap;

/// AR hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArConfig {
    /// Autoregression order `p`.
    pub order: usize,
}

impl Default for ArConfig {
    fn default() -> Self {
        ArConfig { order: 3 }
    }
}

/// The AR baseline (fit entry point).
#[derive(Debug, Clone, Default)]
pub struct Ar;

/// A fitted AR(p) model plus the time-ordered history it predicts from.
#[derive(Debug, Clone)]
pub struct FittedAr {
    /// Coefficients `[c, a_1, …, a_p]`.
    coef: Vec<f64>,
    order: usize,
    /// Row → position in the time-ordered series.
    position: HashMap<usize, usize>,
    /// Target values in time order.
    series: Vec<f64>,
}

impl Ar {
    /// Fits AR(p) on the target series of `rows` ordered by `time_attr`.
    pub fn fit(
        table: &Table,
        rows: &RowSet,
        time_attr: AttrId,
        target: AttrId,
        cfg: &ArConfig,
    ) -> Result<FittedAr> {
        let p = cfg.order.max(1);
        // Order rows by the time attribute.
        let mut ordered: Vec<(f64, usize, f64)> = rows
            .iter()
            .filter_map(|r| {
                let t = table.value_f64(r, time_attr)?;
                let y = table.value_f64(r, target)?;
                Some((t, r, y))
            })
            .collect();
        if ordered.len() < p + 2 {
            return Err(BaselineError::TooFewRows {
                needed: p + 2,
                got: ordered.len(),
            });
        }
        ordered.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let series: Vec<f64> = ordered.iter().map(|(_, _, y)| *y).collect();
        let position: HashMap<usize, usize> = ordered
            .iter()
            .enumerate()
            .map(|(pos, (_, r, _))| (*r, pos))
            .collect();
        // Design: rows t = p..n, features [1, y_{t-1}, ..., y_{t-p}].
        let n = series.len();
        let mut data = Vec::with_capacity((n - p) * (p + 1));
        let mut rhs = Vec::with_capacity(n - p);
        for t in p..n {
            data.push(1.0);
            for i in 1..=p {
                data.push(series[t - i]);
            }
            rhs.push(series[t]);
        }
        let a = Matrix::from_vec(n - p, p + 1, data);
        let coef = lstsq(&a, &rhs)
            .map_err(|e| BaselineError::Model(crr_models::ModelError::Solver(e.to_string())))?;
        Ok(FittedAr {
            coef,
            order: p,
            position,
            series,
        })
    }
}

impl FittedAr {
    /// The fitted coefficients `[c, a_1, …, a_p]`.
    pub fn coefficients(&self) -> &[f64] {
        &self.coef
    }
}

impl BaselinePredictor for FittedAr {
    fn name(&self) -> &'static str {
        "AR"
    }

    fn predict_row(&self, _table: &Table, row: usize) -> Option<f64> {
        let pos = *self.position.get(&row)?;
        if pos < self.order {
            return None; // no history yet
        }
        let mut pred = self.coef[0];
        for i in 1..=self.order {
            pred += self.coef[i] * self.series[pos - i];
        }
        Some(pred)
    }

    fn num_rules(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate_predictor;
    use crr_data::{AttrType, Schema, Value};

    fn series_table(f: impl Fn(i64) -> f64, n: i64) -> Table {
        let schema = Schema::new(vec![("t", AttrType::Int), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for i in 0..n {
            t.push_row(vec![Value::Int(i), Value::Float(f(i))]).unwrap();
        }
        t
    }

    #[test]
    fn fits_linear_trend_exactly() {
        // y_t = y_{t-1} + 2 is AR(1) with c = 2, a1 = 1.
        let t = series_table(|i| 2.0 * i as f64, 50);
        let time = t.attr("t").unwrap();
        let y = t.attr("y").unwrap();
        let ar = Ar::fit(&t, &t.all_rows(), time, y, &ArConfig { order: 1 }).unwrap();
        assert!((ar.coefficients()[1] - 1.0).abs() < 1e-6);
        assert!((ar.coefficients()[0] - 2.0).abs() < 1e-4);
        let s = evaluate_predictor(&ar, &t, &t.all_rows(), y);
        assert!(s.rmse < 1e-6);
        // First `order` rows have no history.
        assert_eq!(s.answered, 49);
    }

    #[test]
    fn handles_unordered_rows() {
        // Same series, rows inserted in reverse: ordering by time fixes it.
        let schema = Schema::new(vec![("t", AttrType::Int), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for i in (0..30).rev() {
            t.push_row(vec![Value::Int(i), Value::Float(i as f64)])
                .unwrap();
        }
        let time = t.attr("t").unwrap();
        let y = t.attr("y").unwrap();
        let ar = Ar::fit(&t, &t.all_rows(), time, y, &ArConfig { order: 1 }).unwrap();
        let s = evaluate_predictor(&ar, &t, &t.all_rows(), y);
        assert!(s.rmse < 1e-6, "rmse {}", s.rmse);
    }

    #[test]
    fn too_short_series_rejected() {
        let t = series_table(|i| i as f64, 3);
        let time = t.attr("t").unwrap();
        let y = t.attr("y").unwrap();
        assert!(matches!(
            Ar::fit(&t, &t.all_rows(), time, y, &ArConfig { order: 3 }),
            Err(BaselineError::TooFewRows { .. })
        ));
    }

    #[test]
    fn recovers_true_ar2_process() {
        // y_t = 1 + 0.5 y_{t-1} + 0.3 y_{t-2}, generated recursively.
        let mut vals = vec![0.0f64, 1.0];
        for i in 2..80 {
            let v = 1.0 + 0.5 * vals[i - 1] + 0.3 * vals[i - 2];
            vals.push(v);
        }
        let schema = Schema::new(vec![("t", AttrType::Int), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for (i, v) in vals.iter().enumerate() {
            t.push_row(vec![Value::Int(i as i64), Value::Float(*v)])
                .unwrap();
        }
        let time = t.attr("t").unwrap();
        let y = t.attr("y").unwrap();
        let ar2 = Ar::fit(&t, &t.all_rows(), time, y, &ArConfig { order: 2 }).unwrap();
        let s2 = evaluate_predictor(&ar2, &t, &t.all_rows(), y);
        assert!(s2.rmse < 1e-6, "rmse {}", s2.rmse);
    }
}
