//! Recur: recurrence-time modeling (\[23\]).
//!
//! Chang & Wang model the recurrence time `T_j` of events and fit a
//! regression per recurrence period. Adapted to the paper's evaluation
//! setting: the series is segmented into *periods* at recurrence *resets*
//! — downward jumps larger than two standard deviations of the step sizes
//! (a sawtooth restart, a bird returning south) — and an independent
//! linear model of time is fitted per period. There is no sharing between
//! periods — every period pays for its own model, which is exactly the
//! redundancy CRR's Translation removes.

use crate::{BaselineError, BaselinePredictor, Result};
use crr_data::{AttrId, RowSet, Table};
use crr_models::{fit_model, FitConfig, Model, ModelKind, Regressor};

/// Recur hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecurConfig {
    /// Minimum rows per period (shorter periods merge into the previous).
    pub min_period: usize,
}

impl Default for RecurConfig {
    fn default() -> Self {
        RecurConfig { min_period: 6 }
    }
}

/// The Recur baseline (fit entry point).
#[derive(Debug, Clone, Default)]
pub struct Recur;

/// One fitted period: `[t_start, t_end)` in time units, with its model.
#[derive(Debug, Clone)]
struct Period {
    t_start: f64,
    t_end: f64,
    model: Model,
}

/// A fitted recurrence model: one regression per detected period.
#[derive(Debug, Clone)]
pub struct FittedRecur {
    periods: Vec<Period>,
    time_attr: AttrId,
}

impl Recur {
    /// Segments the target series at upward crossings of its mean and fits
    /// one time-linear model per period.
    #[allow(clippy::expect_used)] // boundaries starts non-empty
    pub fn fit(
        table: &Table,
        rows: &RowSet,
        time_attr: AttrId,
        target: AttrId,
        cfg: &RecurConfig,
    ) -> Result<FittedRecur> {
        let mut pairs: Vec<(f64, f64)> = rows
            .iter()
            .filter_map(|r| Some((table.value_f64(r, time_attr)?, table.value_f64(r, target)?)))
            .collect();
        if pairs.len() < 4 {
            return Err(BaselineError::TooFewRows {
                needed: 4,
                got: pairs.len(),
            });
        }
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Step-size statistics: a "reset" is a downward jump well outside
        // the typical step (two standard deviations below the mean step).
        let steps: Vec<f64> = pairs.windows(2).map(|w| w[1].1 - w[0].1).collect();
        let step_mean = steps.iter().sum::<f64>() / steps.len() as f64;
        let step_var = steps
            .iter()
            .map(|s| (s - step_mean) * (s - step_mean))
            .sum::<f64>()
            / steps.len() as f64;
        let threshold = step_mean - 2.0 * step_var.sqrt();
        let mut boundaries = vec![0usize];
        for (i, step) in steps.iter().enumerate() {
            if *step < threshold && *step < 0.0 {
                let last = *boundaries.last().expect("non-empty");
                if (i + 1) - last >= cfg.min_period.max(2) {
                    boundaries.push(i + 1);
                }
            }
        }
        boundaries.push(pairs.len());
        let mut periods = Vec::with_capacity(boundaries.len() - 1);
        let fit_cfg = FitConfig::new(ModelKind::Linear);
        for w in boundaries.windows(2) {
            let segment = &pairs[w[0]..w[1]];
            if segment.is_empty() {
                continue;
            }
            let xs: Vec<Vec<f64>> = segment.iter().map(|(t, _)| vec![*t]).collect();
            let y: Vec<f64> = segment.iter().map(|(_, v)| *v).collect();
            let model = fit_model(&xs, &y, &fit_cfg)?;
            periods.push(Period {
                t_start: segment[0].0,
                t_end: segment[segment.len() - 1].0,
                model,
            });
        }
        Ok(FittedRecur { periods, time_attr })
    }
}

impl FittedRecur {
    /// Number of detected periods.
    pub fn num_periods(&self) -> usize {
        self.periods.len()
    }
}

impl BaselinePredictor for FittedRecur {
    fn name(&self) -> &'static str {
        "Recur"
    }

    fn predict_row(&self, table: &Table, row: usize) -> Option<f64> {
        let t = table.value_f64(row, self.time_attr)?;
        // Locate the period containing t (first/last extend to ±∞).
        let period = self
            .periods
            .iter()
            .find(|p| t >= p.t_start && t <= p.t_end)
            .or_else(|| {
                if t < self.periods.first()?.t_start {
                    self.periods.first()
                } else {
                    self.periods.last()
                }
            })?;
        Some(period.model.predict(&[t]))
    }

    fn num_rules(&self) -> usize {
        self.periods.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate_predictor;
    use crr_data::{AttrType, Schema, Value};

    /// A sawtooth: repeating linear ramps — one period per ramp.
    fn sawtooth(n: usize, period: usize) -> Table {
        let schema = Schema::new(vec![("t", AttrType::Int), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for i in 0..n {
            let phase = i % period;
            t.push_row(vec![Value::Int(i as i64), Value::Float(phase as f64)])
                .unwrap();
        }
        t
    }

    #[test]
    fn detects_periods_and_fits_each() {
        let t = sawtooth(120, 20);
        let time = t.attr("t").unwrap();
        let y = t.attr("y").unwrap();
        let m = Recur::fit(&t, &t.all_rows(), time, y, &RecurConfig::default()).unwrap();
        // ~6 ramps: one model per ramp (no sharing — the paper's point).
        assert!(m.num_periods() >= 4, "periods {}", m.num_periods());
        let s = evaluate_predictor(&m, &t, &t.all_rows(), y);
        assert!(s.rmse < 2.0, "rmse {}", s.rmse);
    }

    #[test]
    fn flat_series_is_one_period() {
        let schema = Schema::new(vec![("t", AttrType::Int), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for i in 0..50 {
            t.push_row(vec![Value::Int(i), Value::Float(5.0)]).unwrap();
        }
        let time = t.attr("t").unwrap();
        let y = t.attr("y").unwrap();
        let m = Recur::fit(&t, &t.all_rows(), time, y, &RecurConfig::default()).unwrap();
        assert_eq!(m.num_periods(), 1);
    }

    #[test]
    fn predictions_cover_out_of_range_times() {
        let t = sawtooth(60, 20);
        let time = t.attr("t").unwrap();
        let y = t.attr("y").unwrap();
        let m = Recur::fit(&t, &t.all_rows(), time, y, &RecurConfig::default()).unwrap();
        let s = evaluate_predictor(&m, &t, &t.all_rows(), y);
        assert_eq!(s.answered, 60); // every row answered
    }

    #[test]
    fn too_short_rejected() {
        let t = sawtooth(3, 2);
        let time = t.attr("t").unwrap();
        let y = t.attr("y").unwrap();
        assert!(matches!(
            Recur::fit(&t, &t.all_rows(), time, y, &RecurConfig::default()),
            Err(BaselineError::TooFewRows { .. })
        ));
    }
}
