//! Baseline comparators from the paper's evaluation (§VI-A4).
//!
//! Every baseline the paper compares against is implemented from scratch,
//! following the cited construction:
//!
//! | Paper label | Type | Here |
//! |---|---|---|
//! | RegTree \[5\], \[12\] | regression/model tree | [`RegTree`] |
//! | AR \[37\] | autoregression | [`Ar`] |
//! | SampLR \[19\] | sampling-based conditional regression | [`SampLr`] |
//! | MCLR \[20\] | Monte-Carlo conditional regression | [`Mclr`] |
//! | Forest \[21\] | (conditional) regression forest | [`Forest`] |
//! | DHR \[22\] | dynamic harmonic regression | [`Dhr`] |
//! | Recur \[23\] | recurrence-time period models | [`Recur`] |
//! | RR | one unconditional model (Figures 5–8's reference) | [`Rr`] |
//!
//! All fitted baselines implement [`BaselinePredictor`], so the experiment
//! harness measures learning time, evaluation time, #rules and RMSE
//! uniformly — the four panels of Figures 2–4.

#![deny(unsafe_code)]

mod ar;
mod common;
mod dhr;
mod forest;
mod mclr;
mod recur;
mod regtree;
mod rr;
mod samplr;

pub use ar::{Ar, ArConfig, FittedAr};
pub use common::{evaluate_predictor, BaselineError, BaselinePredictor, EvalSummary};
pub use dhr::{Dhr, DhrConfig, FittedDhr};
pub use forest::{FittedForest, Forest, ForestConfig};
pub use mclr::{FittedMclr, Mclr, MclrConfig};
pub use recur::{FittedRecur, Recur, RecurConfig};
pub use regtree::{FittedRegTree, RegTree, RegTreeConfig};
pub use rr::{FittedRr, Rr};
pub use samplr::{FittedSampLr, SampLr, SampLrConfig};

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, BaselineError>;
