//! SampLR: sampling-based conditional regression (\[19\]).
//!
//! Conditional logistic regression fits per-stratum models from sampled
//! matched sets; adapted to the regression setting of the paper's
//! evaluation, SampLR stratifies the data by a categorical attribute (or
//! treats everything as one stratum), then fits each stratum's linear
//! model by *averaging bootstrap refits* — the repeated-sampling cost
//! profile that makes SampLR one of the slow baselines in Figures 2–4.

use crate::common::row_features;
use crate::{BaselineError, BaselinePredictor, Result};
use crr_data::{AttrId, RowSet, Table};
use crr_models::{fit_model, FitConfig, Model, ModelKind, Regressor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// SampLR hyper-parameters.
#[derive(Debug, Clone)]
pub struct SampLrConfig {
    /// Bootstrap refits per stratum (the sampling cost).
    pub resamples: usize,
    /// Sample size per refit, as a fraction of the stratum.
    pub sample_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SampLrConfig {
    fn default() -> Self {
        SampLrConfig {
            resamples: 40,
            sample_frac: 0.6,
            seed: 17,
        }
    }
}

/// The SampLR baseline (fit entry point).
#[derive(Debug, Clone, Default)]
pub struct SampLr;

/// A fitted SampLR: one averaged linear model per stratum.
#[derive(Debug, Clone)]
pub struct FittedSampLr {
    /// Stratum code (dictionary code of the stratify attribute, or 0) →
    /// averaged model.
    models: HashMap<u32, Model>,
    stratify: Option<AttrId>,
    inputs: Vec<AttrId>,
}

impl SampLr {
    /// Fits per-stratum averaged linear models. `stratify` is the
    /// categorical attribute defining strata (`None` = single stratum).
    #[allow(clippy::unwrap_used)] // rows pre-filtered by complete_rows
    pub fn fit(
        table: &Table,
        rows: &RowSet,
        inputs: &[AttrId],
        stratify: Option<AttrId>,
        target: AttrId,
        cfg: &SampLrConfig,
    ) -> Result<FittedSampLr> {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let strata = stratify_rows(table, rows, stratify);
        if strata.is_empty() {
            return Err(BaselineError::TooFewRows { needed: 1, got: 0 });
        }
        let mut models = HashMap::with_capacity(strata.len());
        for (code, stratum_rows) in strata {
            let complete = table.complete_rows(inputs, target, &stratum_rows);
            if complete.is_empty() {
                continue;
            }
            let xs: Vec<Vec<f64>> = complete
                .iter()
                .map(|r| {
                    inputs
                        .iter()
                        .map(|&a| table.value_f64(r, a).unwrap())
                        .collect()
                })
                .collect();
            let y: Vec<f64> = complete
                .iter()
                .map(|r| table.value_f64(r, target).unwrap())
                .collect();
            models.insert(code, averaged_fit(&xs, &y, cfg, &mut rng)?);
        }
        Ok(FittedSampLr {
            models,
            stratify,
            inputs: inputs.to_vec(),
        })
    }
}

/// Groups rows by the stratify attribute's dictionary code (0 if none).
pub(crate) fn stratify_rows(
    table: &Table,
    rows: &RowSet,
    stratify: Option<AttrId>,
) -> Vec<(u32, RowSet)> {
    match stratify {
        None => vec![(0, rows.clone())],
        Some(attr) => {
            let mut groups: HashMap<u32, Vec<u32>> = HashMap::new();
            for r in rows.iter() {
                if let Some(code) = table.column(attr).get_code(r) {
                    groups.entry(code).or_default().push(r as u32);
                }
            }
            let mut out: Vec<(u32, RowSet)> = groups
                .into_iter()
                .map(|(code, idx)| (code, RowSet::from_indices(idx)))
                .collect();
            out.sort_by_key(|(code, _)| *code);
            out
        }
    }
}

/// Bootstrap-averaged linear fit: the sampling loop that gives SampLR (and
/// MCLR, with more iterations) its characteristic cost.
fn averaged_fit(xs: &[Vec<f64>], y: &[f64], cfg: &SampLrConfig, rng: &mut StdRng) -> Result<Model> {
    let n = xs.len();
    let d = xs.first().map_or(0, Vec::len);
    let take = ((n as f64 * cfg.sample_frac) as usize).clamp(d + 1, n);
    let fit_cfg = FitConfig::new(ModelKind::Linear);
    let mut w_sum = vec![0.0; d];
    let mut b_sum = 0.0;
    let mut fits = 0usize;
    for _ in 0..cfg.resamples.max(1) {
        let mut sx = Vec::with_capacity(take);
        let mut sy = Vec::with_capacity(take);
        for _ in 0..take {
            let i = rng.gen_range(0..n);
            sx.push(xs[i].clone());
            sy.push(y[i]);
        }
        let m = fit_model(&sx, &sy, &fit_cfg)?;
        if let Some((w, b)) = m.as_affine() {
            if w.len() == d {
                for (acc, wi) in w_sum.iter_mut().zip(w) {
                    *acc += wi;
                }
                b_sum += b;
                fits += 1;
            }
        }
    }
    if fits == 0 {
        // All bootstrap fits degenerated to constants of the wrong arity;
        // fall back to a direct fit.
        return Ok(fit_model(xs, y, &fit_cfg)?);
    }
    let inv = 1.0 / fits as f64;
    Ok(Model::Linear(crr_models::LinearModel::new(
        w_sum.into_iter().map(|w| w * inv).collect(),
        b_sum * inv,
    )))
}

impl BaselinePredictor for FittedSampLr {
    fn name(&self) -> &'static str {
        "SampLR"
    }

    fn predict_row(&self, table: &Table, row: usize) -> Option<f64> {
        let code = match self.stratify {
            None => 0,
            Some(attr) => table.column(attr).get_code(row)?,
        };
        let model = self.models.get(&code)?;
        let x = row_features(table, row, &self.inputs)?;
        Some(model.predict(&x))
    }

    fn num_rules(&self) -> usize {
        self.models.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate_predictor;
    use crr_data::{AttrType, Schema, Value};

    fn grouped_table() -> Table {
        let schema = Schema::new(vec![
            ("g", AttrType::Str),
            ("x", AttrType::Float),
            ("y", AttrType::Float),
        ]);
        let mut t = Table::new(schema);
        for i in 0..200 {
            let g = if i % 2 == 0 { "a" } else { "b" };
            let x = (i / 2) as f64;
            let y = if g == "a" { 2.0 * x + 1.0 } else { -x + 10.0 };
            t.push_row(vec![Value::str(g), Value::Float(x), Value::Float(y)])
                .unwrap();
        }
        t
    }

    #[test]
    fn per_stratum_models_recover_group_laws() {
        let t = grouped_table();
        let g = t.attr("g").unwrap();
        let x = t.attr("x").unwrap();
        let y = t.attr("y").unwrap();
        let m = SampLr::fit(
            &t,
            &t.all_rows(),
            &[x],
            Some(g),
            y,
            &SampLrConfig::default(),
        )
        .unwrap();
        assert_eq!(m.num_rules(), 2);
        let s = evaluate_predictor(&m, &t, &t.all_rows(), y);
        // Bootstrap averaging on noiseless data converges to the true line.
        assert!(s.rmse < 0.5, "rmse {}", s.rmse);
    }

    #[test]
    fn unstratified_is_single_model() {
        let t = grouped_table();
        let x = t.attr("x").unwrap();
        let y = t.attr("y").unwrap();
        let m = SampLr::fit(&t, &t.all_rows(), &[x], None, y, &SampLrConfig::default()).unwrap();
        assert_eq!(m.num_rules(), 1);
        // Mixed regimes with one model: visibly worse.
        let s = evaluate_predictor(&m, &t, &t.all_rows(), y);
        assert!(s.rmse > 1.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let t = grouped_table();
        let g = t.attr("g").unwrap();
        let x = t.attr("x").unwrap();
        let y = t.attr("y").unwrap();
        let cfg = SampLrConfig::default();
        let a = SampLr::fit(&t, &t.all_rows(), &[x], Some(g), y, &cfg).unwrap();
        let b = SampLr::fit(&t, &t.all_rows(), &[x], Some(g), y, &cfg).unwrap();
        let sa = evaluate_predictor(&a, &t, &t.all_rows(), y);
        let sb = evaluate_predictor(&b, &t, &t.all_rows(), y);
        assert_eq!(sa.rmse, sb.rmse);
    }

    #[test]
    fn empty_input_rejected() {
        let schema = Schema::new(vec![("x", AttrType::Float), ("y", AttrType::Float)]);
        let t = Table::new(schema);
        let x = t.attr("x").unwrap();
        let y = t.attr("y").unwrap();
        assert!(
            SampLr::fit(&t, &t.all_rows(), &[x], None, y, &SampLrConfig::default())
                .map(|m| evaluate_predictor(&m, &t, &t.all_rows(), y).answered == 0)
                .unwrap_or(true)
        );
    }
}
