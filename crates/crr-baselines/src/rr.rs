//! RR: one unconditional regression model over all data — the reference
//! the paper compares CRRs against in Figures 5–8 ("regression models
//! without conditions").

use crate::common::{fit_pairs, row_features};
use crate::{BaselineError, BaselinePredictor, Result};
use crr_data::{AttrId, RowSet, Table};
use crr_models::{fit_model, FitConfig, Model, Regressor};

/// The RR baseline (fit entry point).
#[derive(Debug, Clone, Default)]
pub struct Rr;

/// A fitted unconditional model.
#[derive(Debug, Clone)]
pub struct FittedRr {
    model: Model,
    inputs: Vec<AttrId>,
}

impl Rr {
    /// Fits one model of the configured family on all complete rows.
    pub fn fit(
        table: &Table,
        rows: &RowSet,
        inputs: &[AttrId],
        target: AttrId,
        cfg: &FitConfig,
    ) -> Result<FittedRr> {
        let (xs, y) = fit_pairs(table, rows, inputs, target);
        if y.is_empty() {
            return Err(BaselineError::TooFewRows { needed: 1, got: 0 });
        }
        Ok(FittedRr {
            model: fit_model(&xs, &y, cfg)?,
            inputs: inputs.to_vec(),
        })
    }

    /// Convenience: fit and return the inner model.
    pub fn fit_model_only(
        table: &Table,
        rows: &RowSet,
        inputs: &[AttrId],
        target: AttrId,
        cfg: &FitConfig,
    ) -> Result<Model> {
        Ok(Rr::fit(table, rows, inputs, target, cfg)?.model)
    }
}

impl FittedRr {
    /// The fitted model.
    pub fn model(&self) -> &Model {
        &self.model
    }
}

impl BaselinePredictor for FittedRr {
    fn name(&self) -> &'static str {
        "RR"
    }

    fn predict_row(&self, table: &Table, row: usize) -> Option<f64> {
        let x = row_features(table, row, &self.inputs)?;
        Some(self.model.predict(&x))
    }

    fn num_rules(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate_predictor;
    use crr_data::{AttrType, Schema, Value};
    use crr_models::ModelKind;

    #[test]
    fn single_model_fits_single_regime() {
        let schema = Schema::new(vec![("x", AttrType::Float), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for i in 0..50 {
            t.push_row(vec![
                Value::Float(i as f64),
                Value::Float(3.0 * i as f64 + 1.0),
            ])
            .unwrap();
        }
        let x = t.attr("x").unwrap();
        let y = t.attr("y").unwrap();
        let rr = Rr::fit(
            &t,
            &t.all_rows(),
            &[x],
            y,
            &FitConfig::new(ModelKind::Linear),
        )
        .unwrap();
        let s = evaluate_predictor(&rr, &t, &t.all_rows(), y);
        assert!(s.rmse < 1e-9);
        assert_eq!(rr.num_rules(), 1);
    }

    #[test]
    fn single_model_underfits_mixed_regimes() {
        // The motivating failure: one model over two regimes.
        let schema = Schema::new(vec![("x", AttrType::Float), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for i in 0..100 {
            let x = i as f64;
            let y = if x < 50.0 { x } else { -x + 200.0 };
            t.push_row(vec![Value::Float(x), Value::Float(y)]).unwrap();
        }
        let x = t.attr("x").unwrap();
        let y = t.attr("y").unwrap();
        let rr = Rr::fit(
            &t,
            &t.all_rows(),
            &[x],
            y,
            &FitConfig::new(ModelKind::Linear),
        )
        .unwrap();
        let s = evaluate_predictor(&rr, &t, &t.all_rows(), y);
        assert!(s.rmse > 10.0, "rmse {}", s.rmse);
    }

    #[test]
    fn empty_rows_rejected() {
        let schema = Schema::new(vec![("x", AttrType::Float), ("y", AttrType::Float)]);
        let t = Table::new(schema);
        let x = t.attr("x").unwrap();
        let y = t.attr("y").unwrap();
        assert!(matches!(
            Rr::fit(
                &t,
                &t.all_rows(),
                &[x],
                y,
                &FitConfig::new(ModelKind::Linear)
            ),
            Err(BaselineError::TooFewRows { .. })
        ));
    }
}
