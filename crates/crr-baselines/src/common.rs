use crr_data::{AttrId, RowSet, Table};
use std::fmt;
use std::time::{Duration, Instant};

/// Errors from baseline fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// Not enough rows for the method's minimum.
    TooFewRows { needed: usize, got: usize },
    /// Required attribute missing or of the wrong type.
    BadAttribute(String),
    /// Underlying model fit failed.
    Model(crr_models::ModelError),
    /// Underlying rule construction failed (tree export).
    Core(crr_core::CoreError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::TooFewRows { needed, got } => {
                write!(f, "too few rows: needed {needed}, got {got}")
            }
            BaselineError::BadAttribute(msg) => write!(f, "bad attribute: {msg}"),
            BaselineError::Model(e) => write!(f, "model error: {e}"),
            BaselineError::Core(e) => write!(f, "rule error: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<crr_models::ModelError> for BaselineError {
    fn from(e: crr_models::ModelError) -> Self {
        BaselineError::Model(e)
    }
}

impl From<crr_core::CoreError> for BaselineError {
    fn from(e: crr_core::CoreError) -> Self {
        BaselineError::Core(e)
    }
}

/// A fitted baseline: predicts per row and reports its rule count — the
/// uniform surface the Figures 2–4 panels are measured through.
pub trait BaselinePredictor {
    /// Method label as used in the paper's legends.
    fn name(&self) -> &'static str;

    /// Predicts the target for one row; `None` when inputs are missing or
    /// the method cannot answer for this row.
    fn predict_row(&self, table: &Table, row: usize) -> Option<f64>;

    /// Number of "rules" (models/leaves/segments) the fitted method holds —
    /// the #Rules axis of Figures 2–4(c) and 9.
    fn num_rules(&self) -> usize;
}

/// RMSE / MAE / coverage / timing of one fitted baseline over `rows`.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalSummary {
    /// Root-mean-square error over answered rows.
    pub rmse: f64,
    /// Mean absolute error over answered rows.
    pub mae: f64,
    /// Rows the method answered.
    pub answered: usize,
    /// Rows offered.
    pub total: usize,
    /// Wall-clock evaluation time.
    pub eval_time: Duration,
}

/// Evaluates a fitted baseline against the true target values.
pub fn evaluate_predictor(
    p: &dyn BaselinePredictor,
    table: &Table,
    rows: &RowSet,
    target: AttrId,
) -> EvalSummary {
    let start = Instant::now();
    let mut sse = 0.0;
    let mut sae = 0.0;
    let mut answered = 0usize;
    for row in rows.iter() {
        let (Some(pred), Some(actual)) = (p.predict_row(table, row), table.value_f64(row, target))
        else {
            continue;
        };
        answered += 1;
        let e = pred - actual;
        sse += e * e;
        sae += e.abs();
    }
    EvalSummary {
        rmse: if answered > 0 {
            (sse / answered as f64).sqrt()
        } else {
            0.0
        },
        mae: if answered > 0 {
            sae / answered as f64
        } else {
            0.0
        },
        answered,
        total: rows.len(),
        eval_time: start.elapsed(),
    }
}

/// Gathers `(xs, y)` fit pairs for `rows` with complete inputs + target.
#[allow(clippy::expect_used)] // rows are pre-filtered by complete_rows
pub(crate) fn fit_pairs(
    table: &Table,
    rows: &RowSet,
    inputs: &[AttrId],
    target: AttrId,
) -> (Vec<Vec<f64>>, Vec<f64>) {
    let complete = table.complete_rows(inputs, target, rows);
    let xs = complete
        .iter()
        .map(|r| {
            inputs
                .iter()
                .map(|&a| table.value_f64(r, a).expect("complete"))
                .collect()
        })
        .collect();
    let y = complete
        .iter()
        .map(|r| table.value_f64(r, target).expect("complete"))
        .collect();
    (xs, y)
}

/// Reads one row's feature vector, if complete.
pub(crate) fn row_features(table: &Table, row: usize, inputs: &[AttrId]) -> Option<Vec<f64>> {
    inputs.iter().map(|&a| table.value_f64(row, a)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crr_data::{AttrType, Schema, Value};

    struct Always(f64);
    impl BaselinePredictor for Always {
        fn name(&self) -> &'static str {
            "const"
        }
        fn predict_row(&self, _: &Table, _: usize) -> Option<f64> {
            Some(self.0)
        }
        fn num_rules(&self) -> usize {
            1
        }
    }

    #[test]
    fn evaluate_computes_rmse_mae() {
        let schema = Schema::new(vec![("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for v in [1.0, 3.0] {
            t.push_row(vec![Value::Float(v)]).unwrap();
        }
        let s = evaluate_predictor(&Always(2.0), &t, &t.all_rows(), t.attr("y").unwrap());
        assert_eq!(s.answered, 2);
        assert_eq!(s.rmse, 1.0);
        assert_eq!(s.mae, 1.0);
    }

    #[test]
    fn missing_targets_are_skipped() {
        let schema = Schema::new(vec![("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        t.push_row(vec![Value::Float(1.0)]).unwrap();
        t.push_row(vec![Value::Null]).unwrap();
        let s = evaluate_predictor(&Always(1.0), &t, &t.all_rows(), t.attr("y").unwrap());
        assert_eq!(s.answered, 1);
        assert_eq!(s.total, 2);
    }
}
