//! Mutation-tests the guard-soundness check against the *real* sharded
//! discovery pipeline: a clean run verifies, and two seeded regressions —
//! re-creating the pre-fix null-shard bug where null-key rules escaped
//! their shard unguarded — are each caught as `unsound`.

// Test harness: panicking on malformed fixtures is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use crr_analyze::{analyze, analyze_discovery, Check, Severity};
use crr_core::Op;
use crr_data::{AttrType, Schema, Table, Value};
use crr_discovery::{
    DiscoveryConfig, DiscoverySession, PredicateGen, PredicateSpace, ShardSpec, ShardedDiscovery,
};

/// A table whose shard key `k` is null on every 6th row, with the
/// null-key rows following a different-slope regime — the fixture the
/// sharded soundness tests use, rebuilt here for the analyzer.
fn null_key_table(rows: usize) -> (Table, DiscoveryConfig, PredicateSpace) {
    let schema = Schema::new(vec![
        ("k", AttrType::Float),
        ("x", AttrType::Float),
        ("y", AttrType::Float),
    ]);
    let mut t = Table::new(schema);
    for i in 0..rows {
        let x = i as f64;
        let (k, y) = if i % 6 == 5 {
            (Value::Null, 2.0 * x)
        } else {
            (Value::Float(x), x)
        };
        t.push_row(vec![k, Value::Float(x), Value::Float(y)])
            .unwrap();
    }
    let x = t.attr("x").unwrap();
    let y = t.attr("y").unwrap();
    let space = PredicateGen::binary(7).generate(&t, &[x], y, 1);
    let cfg = DiscoveryConfig::new(vec![x], y, 0.5);
    (t, cfg, space)
}

fn sharded_run() -> ShardedDiscovery {
    let (t, cfg, space) = null_key_table(240);
    let k = t.attr("k").unwrap();
    DiscoverySession::on(&t)
        .predicates(space)
        .config(cfg)
        .sharded(ShardSpec::by_key(k).equal_width().shards(2))
        .run()
        .unwrap()
}

#[test]
fn clean_sharded_run_with_null_keys_verifies() {
    let out = sharded_run();
    let ob = out.obligations.as_ref().expect("multi-shard obligations");
    assert_eq!(ob.guards.len(), 3, "two intervals plus the null shard");
    let report = analyze_discovery(&out);
    assert!(
        report.is_sound(),
        "clean pipeline output must verify: {:?}",
        report.findings
    );
    assert_eq!(report.shards, 3);
    assert!(report.counters.implication_checks > 0);
}

#[test]
fn stripping_null_guards_recreates_the_prefix_bug_and_is_flagged() {
    let out = sharded_run();
    // Mutation: delete every IS NULL predicate from the merged rules —
    // exactly what the pre-fix merge produced, leaving null-shard rules
    // free to answer for non-null rows.
    let mut rules = out.rules.clone();
    let mut stripped = 0usize;
    for rule in rules.rules_mut() {
        for conj in rule.condition_mut().conjuncts_mut() {
            let before = conj.preds().len();
            let kept: Vec<_> = conj
                .preds()
                .iter()
                .filter(|p| p.op != Op::IsNull)
                .cloned()
                .collect();
            stripped += before - kept.len();
            *conj = crr_core::Conjunction::of(kept);
        }
    }
    assert!(stripped > 0, "fixture must actually carry IS NULL guards");
    let report = analyze(&rules, out.obligations.as_ref());
    assert!(!report.is_sound(), "the mutation must be caught");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.check == Check::GuardSoundness
                && f.severity == Severity::Unsound
                && f.message.contains("confined")),
        "expected a confinement finding: {:?}",
        report.findings
    );
}

#[test]
fn emptying_the_null_shards_guard_list_is_flagged() {
    let out = sharded_run();
    let mut ob = out.obligations.clone().expect("multi-shard obligations");
    let null_guard = ob
        .guards
        .iter_mut()
        .find(|g| g.bounds.null_keys)
        .expect("null shard present");
    null_guard.guards.clear();
    let report = analyze(&out.rules, Some(&ob));
    assert!(!report.is_sound());
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.check == Check::GuardSoundness
                && f.severity == Severity::Unsound
                && f.message.contains("canonical")),
        "expected a guard-exactness finding: {:?}",
        report.findings
    );
}

#[test]
fn single_shard_runs_carry_no_obligations_and_verify() {
    let (t, cfg, space) = null_key_table(120);
    let out = DiscoverySession::on(&t)
        .predicates(space)
        .config(cfg)
        .run()
        .unwrap();
    assert!(out.obligations.is_none(), "fast path applies no guards");
    let report = analyze_discovery(&out);
    assert!(report.is_sound(), "{:?}", report.findings);
    assert_eq!(report.shards, 0);
}
