//! Finding and report types: what the verifier says, ranked by how much
//! it matters.

use crr_obs::AnalysisCounters;
use std::fmt;

/// How much a finding matters, worst first.
///
/// * [`Severity::Unsound`] — the artifact can give a wrong answer: a
///   shard guard that fails to partition the key domain, a rule that
///   leaks outside its shard, a non-composable translation, a
///   non-finite ρ. CI refuses artifacts with unsound findings.
/// * [`Severity::Redundant`] — the artifact is correct but carries dead
///   weight: a rule whose condition can never fire, or one subsumed by
///   another rule with a no-worse bias.
/// * [`Severity::Hygiene`] — cosmetic debt: dead disjuncts, duplicate
///   conjuncts, ρ claims looser than a sibling rule already implies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Unsound,
    Redundant,
    Hygiene,
}

impl Severity {
    /// Stable lowercase label used in `analysis.json`.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Unsound => "unsound",
            Severity::Redundant => "redundant",
            Severity::Hygiene => "hygiene",
        }
    }
}

/// Which of the seven static checks produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Check {
    /// A1 — per-rule condition satisfiability.
    Satisfiability,
    /// A2 — cross-rule subsumption.
    Subsumption,
    /// A3 — shard-guard partition soundness.
    GuardSoundness,
    /// A4 — inference-rule audit (translations composable, ρ finite).
    InferenceAudit,
    /// A5 — ρ-monotonicity across rules sharing a model.
    RhoMonotonicity,
    /// A6 — compile equivalence: each conjunction's compiled scan kernels
    /// must reach the same abstract state as its source predicates.
    CompileEquivalence,
    /// A7 — repair-obligation audit on proof-carrying stream repairs.
    RepairObligations,
}

impl Check {
    /// Stable kebab-case label used in `analysis.json`.
    pub fn label(self) -> &'static str {
        match self {
            Check::Satisfiability => "satisfiability",
            Check::Subsumption => "subsumption",
            Check::GuardSoundness => "guard-soundness",
            Check::InferenceAudit => "inference-audit",
            Check::RhoMonotonicity => "rho-monotonicity",
            Check::CompileEquivalence => "compile-equivalence",
            Check::RepairObligations => "repair-obligations",
        }
    }
}

/// One verdict of the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The check that fired.
    pub check: Check,
    /// How much it matters.
    pub severity: Severity,
    /// Index of the offending rule in the analyzed set, when the finding
    /// is about a rule.
    pub rule: Option<usize>,
    /// Shard id, when the finding is about a shard guard.
    pub shard: Option<usize>,
    /// Human-readable explanation naming the violated property.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.severity.label(), self.check.label())?;
        if let Some(r) = self.rule {
            write!(f, " rule {r}")?;
        }
        if let Some(s) = self.shard {
            write!(f, " shard {s}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Findings tallied by severity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Summary {
    /// Count of [`Severity::Unsound`] findings.
    pub unsound: usize,
    /// Count of [`Severity::Redundant`] findings.
    pub redundant: usize,
    /// Count of [`Severity::Hygiene`] findings.
    pub hygiene: usize,
}

/// The result of one static analysis pass over a rule set (and, when
/// supplied, its shard-guard proof obligations).
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Rules examined.
    pub rules: usize,
    /// DNF conjuncts examined across all rules.
    pub conjuncts: usize,
    /// Shard-guard obligations examined (0 for unsharded artifacts).
    pub shards: usize,
    /// All findings, ranked worst-first (severity, then check, then rule).
    pub findings: Vec<Finding>,
    /// Work tallies of the pass.
    pub counters: AnalysisCounters,
}

impl AnalysisReport {
    /// Findings tallied by severity.
    pub fn summary(&self) -> Summary {
        let mut s = Summary::default();
        for f in &self.findings {
            match f.severity {
                Severity::Unsound => s.unsound += 1,
                Severity::Redundant => s.redundant += 1,
                Severity::Hygiene => s.hygiene += 1,
            }
        }
        s
    }

    /// No finding questions correctness (redundancy and hygiene debt may
    /// remain). This is the property CI gates on.
    pub fn is_sound(&self) -> bool {
        self.findings
            .iter()
            .all(|f| f.severity != Severity::Unsound)
    }

    /// Ranks findings worst-first and syncs the finding tallies into the
    /// counters. Called once by the analyzer before returning.
    pub(crate) fn finalize(&mut self) {
        self.findings
            .sort_by_key(|f| (f.severity, f.check, f.rule, f.shard));
        let s = self.summary();
        self.counters.findings_unsound = s.unsound as u64;
        self.counters.findings_redundant = s.redundant as u64;
        self.counters.findings_hygiene = s.hygiene as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(severity: Severity, check: Check, rule: Option<usize>) -> Finding {
        Finding {
            check,
            severity,
            rule,
            shard: None,
            message: "m".into(),
        }
    }

    #[test]
    fn finalize_ranks_worst_first_and_tallies() {
        let mut r = AnalysisReport {
            rules: 2,
            conjuncts: 2,
            shards: 0,
            findings: vec![
                finding(Severity::Hygiene, Check::InferenceAudit, Some(1)),
                finding(Severity::Unsound, Check::GuardSoundness, Some(0)),
                finding(Severity::Redundant, Check::Subsumption, Some(1)),
            ],
            counters: Default::default(),
        };
        r.finalize();
        let sevs: Vec<Severity> = r.findings.iter().map(|f| f.severity).collect();
        assert_eq!(
            sevs,
            [Severity::Unsound, Severity::Redundant, Severity::Hygiene]
        );
        assert!(!r.is_sound());
        assert_eq!(r.summary().unsound, 1);
        assert_eq!(r.counters.findings_redundant, 1);
        assert_eq!(r.counters.findings_hygiene, 1);
    }

    #[test]
    fn display_names_the_rule_and_shard() {
        let f = Finding {
            check: Check::GuardSoundness,
            severity: Severity::Unsound,
            rule: Some(3),
            shard: Some(1),
            message: "leak".into(),
        };
        let s = f.to_string();
        assert!(s.contains("unsound"), "{s}");
        assert!(s.contains("guard-soundness"), "{s}");
        assert!(s.contains("rule 3"), "{s}");
        assert!(s.contains("shard 1"), "{s}");
    }
}
