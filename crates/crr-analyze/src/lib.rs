//! `crr-analyze` — a static verifier for CRR artifacts.
//!
//! Discovery emits rule sets; sharded discovery additionally emits
//! [`ProofObligations`] recording the guard predicates it wrapped each
//! shard's rules in. This crate checks those artifacts **without scanning
//! a single row**, using only `crr-core`'s implication engine
//! ([`crr_core::Conjunction::implies`], Definition 2's
//! [`crr_core::Dnf::implies`], [`crr_core::Conjunction::is_provably_unsat`]
//! and the per-attribute [`crr_core::AttrSummary`] they are built on),
//! plus `crr-core`'s abstract domain ([`crr_core::absdom`]) for symbolic
//! compile-time semantics. Seven checks:
//!
//! * **A1 satisfiability** — a condition that is provably unsatisfiable
//!   (empty implied interval, `IS NULL` conjoined with a comparison, …)
//!   marks the whole rule redundant, or a single dead disjunct as hygiene;
//! * **A2 subsumption** — rule `i` is redundant when another rule on the
//!   same target provably covers it with a no-worse bias;
//! * **A3 shard-guard soundness** — recorded guards must equal the
//!   canonical membership predicates, be pairwise provably disjoint,
//!   jointly cover the key domain (including the null regime), and every
//!   merged conjunct must be confined to some shard's guard — the check
//!   that catches a dropped `IS NULL` guard on null-key rules;
//! * **A4 inference audit** — ρ finite and non-negative, built-in
//!   translations composable per Proposition 9 (matching arity, finite
//!   shifts), no duplicate conjuncts or predicates, and no same-side
//!   interval bounds the scan compiler would fold to the strictest;
//! * **A5 ρ-monotonicity** — `C_i ⊢ C_j` with a shared model requires
//!   `ρ_i ≤ ρ_j`, the invariant Fusion's `max(ρ_1, ρ_2)` output preserves;
//! * **A6 compile equivalence** ([`analyze_artifact`] and friends) —
//!   each conjunction's compiled scan kernels must reach exactly the
//!   source predicates' canonical abstract state; a bad interval fold, a
//!   coerced constant, a NaN-lane mismatch or a string-LUT gap is
//!   unsound, proven without evaluating a single row;
//! * **A7 repair obligations** ([`analyze_artifact`] on artifacts whose
//!   [`crr_discovery::RepairObligations`] are present) — a
//!   proof-carrying stream repair's splice must keep a valid prefix,
//!   carry dense region ids, claim no provably-empty region, and confine
//!   every repaired rule to some region's guard.
//!
//! The engine is conservative — it proves, never refutes — so every
//! finding is a positive proof and a clean report means "nothing
//! provable", not "nothing wrong". Findings rank
//! [`Severity::Unsound`] > [`Severity::Redundant`] >
//! [`Severity::Hygiene`]; `scripts/ci.sh` refuses artifacts with unsound
//! findings via `experiments -- --check-analysis`.
//!
//! # Example
//!
//! ```
//! use crr_analyze::{analyze, Severity};
//! use crr_core::{Conjunction, Crr, Dnf, Predicate, RuleSet};
//! use crr_data::{AttrId, Value};
//! use crr_models::{ConstantModel, Model};
//! use std::sync::Arc;
//!
//! let x = AttrId(0);
//! let y = AttrId(1);
//! let model = Arc::new(Model::Constant(ConstantModel::new(1.0, 1)));
//! // x > 5 AND x < 3 can never hold.
//! let dead = Conjunction::of(vec![
//!     Predicate::gt(x, Value::Float(5.0)),
//!     Predicate::lt(x, Value::Float(3.0)),
//! ]);
//! let mut rules = RuleSet::new();
//! rules.push(Crr::new(vec![x], y, model, 0.5, Dnf::single(dead)).unwrap());
//!
//! let report = analyze(&rules, None);
//! assert!(report.is_sound()); // unsatisfiable is dead weight, not wrong
//! assert_eq!(report.summary().redundant, 1);
//! ```

#![deny(unsafe_code)]

mod checks;
mod report;

pub use report::{AnalysisReport, Check, Finding, Severity, Summary};

use checks::Pass;
use crr_core::RuleSet;
use crr_data::Table;
use crr_discovery::{ProofObligations, RuleSetArtifact, ShardedDiscovery};
pub use crr_obs::AnalysisCounters;

/// Tunables of an analysis pass.
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    /// Tolerance for ρ comparisons (subsumption's `ρ_j ≤ ρ_i`,
    /// monotonicity's `ρ_i ≤ ρ_j`), absorbing serialization round-trips.
    pub eps: f64,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig { eps: 1e-9 }
    }
}

/// Runs the rule-level checks (A1–A5) over `rules` (and, when given, the
/// sharded run's guard obligations) with default tolerances. See
/// [`analyze_with`]. The schema-aware checks A6 and A7 need an artifact;
/// use [`analyze_artifact`] for the full battery.
pub fn analyze(rules: &RuleSet, obligations: Option<&ProofObligations>) -> AnalysisReport {
    analyze_with(rules, obligations, &AnalyzeConfig::default())
}

/// Runs the rule-level checks (A1–A5) with explicit tolerances. Pure and
/// read-only: the rule set is never modified and no table is consulted.
pub fn analyze_with(
    rules: &RuleSet,
    obligations: Option<&ProofObligations>,
    cfg: &AnalyzeConfig,
) -> AnalysisReport {
    let mut pass = Pass::new(rules, cfg.eps);
    pass.check_satisfiability();
    pass.check_subsumption();
    if let Some(ob) = obligations {
        pass.check_guards(ob);
    }
    pass.check_inference();
    pass.check_rho_monotonicity();
    pass.into_report(obligations.map_or(0, |ob| ob.guards.len()))
}

/// Analyzes a discovery result directly: the merged rules against the
/// obligations the run emitted (none on the single-shard fast path).
pub fn analyze_discovery(d: &ShardedDiscovery) -> AnalysisReport {
    analyze(&d.rules, d.obligations.as_ref())
}

/// Runs **all seven checks** (A1–A7) over an artifact, with no table at
/// hand: A6 compiles against an empty table of the artifact's own schema,
/// which fixes every column's kind, nullability and string dictionary —
/// exactly the context `crr-serve`'s swap gate has. A7 runs when the
/// artifact carries [`crr_discovery::RepairObligations`]. Row-free like
/// every other check.
pub fn analyze_artifact(artifact: &RuleSetArtifact) -> AnalysisReport {
    let empty = Table::new(artifact.schema.clone());
    analyze_artifact_with(artifact, &empty, &AnalyzeConfig::default())
}

/// Runs all seven checks with `table` as A6's compile context (its
/// column facts — kinds, nullability, string dictionaries — seed the
/// abstract ⊤ state; its rows are never read). Falls back to an empty
/// table of the artifact's schema when `table`'s schema differs.
pub fn analyze_artifact_on(artifact: &RuleSetArtifact, table: &Table) -> AnalysisReport {
    analyze_artifact_with(artifact, table, &AnalyzeConfig::default())
}

/// Runs all seven checks with explicit tolerances. See
/// [`analyze_artifact_on`].
pub fn analyze_artifact_with(
    artifact: &RuleSetArtifact,
    table: &Table,
    cfg: &AnalyzeConfig,
) -> AnalysisReport {
    let fallback;
    let ctx = if table.schema() == &artifact.schema {
        table
    } else {
        fallback = Table::new(artifact.schema.clone());
        &fallback
    };
    let mut pass = Pass::new(&artifact.rules, cfg.eps);
    pass.check_satisfiability();
    pass.check_subsumption();
    if let Some(ob) = artifact.obligations.as_ref() {
        pass.check_guards(ob);
    }
    pass.check_inference();
    pass.check_rho_monotonicity();
    pass.check_compile_equivalence(ctx);
    if let Some(rep) = artifact.repair.as_ref() {
        pass.check_repair(rep);
    }
    pass.into_report(
        artifact
            .obligations
            .as_ref()
            .map_or(0, |ob| ob.guards.len()),
    )
}

#[cfg(test)]
mod tests {
    // Test fixtures: panicking on malformed fixtures is the failure mode
    // we want.
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crr_core::compiled::{set_miscompile, Miscompile};
    use crr_core::{Conjunction, Crr, Dnf, Predicate, RuleSet};
    use crr_data::{AttrId, AttrType, Schema, ShardBounds, Value};
    use crr_discovery::{
        guard_predicates, PlanBoundary, ProofObligations, RegionOrigin, RepairObligations,
        RepairRegion, ShardGuard,
    };
    use crr_models::{ConstantModel, LinearModel, Model, Translation};
    use std::sync::Arc;

    fn x() -> AttrId {
        AttrId(0)
    }
    fn y() -> AttrId {
        AttrId(1)
    }

    fn model(c: f64) -> Arc<Model> {
        Arc::new(Model::Constant(ConstantModel::new(c, 1)))
    }

    fn interval(lo: f64, hi: f64) -> Conjunction {
        Conjunction::of(vec![
            Predicate::ge(x(), Value::Float(lo)),
            Predicate::lt(x(), Value::Float(hi)),
        ])
    }

    fn rule(cond: Dnf, rho: f64, m: Arc<Model>) -> Crr {
        Crr::new(vec![x()], y(), m, rho, cond).unwrap()
    }

    fn bounds(lo: Option<f64>, hi: Option<f64>, null_keys: bool) -> ShardBounds {
        ShardBounds {
            attr: x(),
            lo,
            hi,
            null_keys,
        }
    }

    fn guard(shard_id: usize, b: ShardBounds) -> ShardGuard {
        ShardGuard {
            shard_id,
            guards: guard_predicates(&b),
            bounds: b,
        }
    }

    /// A canonical two-interval + null-shard obligation set. Tagged
    /// quantile: data-derived boundaries discharge the same checks.
    fn obligations() -> ProofObligations {
        ProofObligations {
            shard_key: x(),
            boundary: PlanBoundary::Quantile,
            guards: vec![
                guard(0, bounds(None, Some(10.0), false)),
                guard(1, bounds(Some(10.0), None, false)),
                guard(2, bounds(None, None, true)),
            ],
        }
    }

    #[test]
    fn clean_set_has_no_findings() {
        let mut rules = RuleSet::new();
        rules.push(rule(Dnf::single(interval(0.0, 10.0)), 0.5, model(1.0)));
        rules.push(rule(Dnf::single(interval(10.0, 20.0)), 0.5, model(2.0)));
        let report = analyze(&rules, None);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.is_sound());
        assert_eq!(report.rules, 2);
        assert_eq!(report.conjuncts, 2);
        assert_eq!(report.counters.rules, 2);
        assert!(report.counters.unsat_checks >= 2);
    }

    #[test]
    fn unsat_rule_is_redundant_and_dead_disjunct_is_hygiene() {
        let dead = interval(10.0, 5.0); // empty interval
        let mut rules = RuleSet::new();
        rules.push(rule(Dnf::single(dead.clone()), 0.5, model(1.0)));
        rules.push(rule(
            Dnf::of(vec![interval(0.0, 5.0), dead]),
            0.5,
            model(2.0),
        ));
        let report = analyze(&rules, None);
        let sat: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.check == Check::Satisfiability)
            .collect();
        assert_eq!(sat.len(), 2, "{:?}", report.findings);
        assert_eq!(sat[0].severity, Severity::Redundant);
        assert_eq!(sat[0].rule, Some(0));
        assert_eq!(sat[1].severity, Severity::Hygiene);
        assert_eq!(sat[1].rule, Some(1));
        assert!(report.is_sound());
    }

    #[test]
    fn null_test_conflicts_are_provably_unsat() {
        let c = Conjunction::of(vec![
            Predicate::is_null(x()),
            Predicate::ge(x(), Value::Float(0.0)),
        ]);
        let mut rules = RuleSet::new();
        rules.push(rule(Dnf::single(c), 0.5, model(1.0)));
        let report = analyze(&rules, None);
        assert_eq!(report.summary().redundant, 1);
    }

    #[test]
    fn narrower_rule_with_no_better_rho_is_subsumed() {
        let mut rules = RuleSet::new();
        rules.push(rule(Dnf::single(interval(2.0, 4.0)), 0.5, model(1.0)));
        rules.push(rule(Dnf::single(interval(0.0, 10.0)), 0.5, model(2.0)));
        let report = analyze(&rules, None);
        let sub: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.check == Check::Subsumption)
            .collect();
        assert_eq!(sub.len(), 1, "{:?}", report.findings);
        assert_eq!(sub[0].rule, Some(0));
        assert_eq!(sub[0].severity, Severity::Redundant);
    }

    #[test]
    fn narrower_rule_with_tighter_rho_survives() {
        let mut rules = RuleSet::new();
        rules.push(rule(Dnf::single(interval(2.0, 4.0)), 0.1, model(1.0)));
        rules.push(rule(Dnf::single(interval(0.0, 10.0)), 0.5, model(2.0)));
        let report = analyze(&rules, None);
        assert!(
            report
                .findings
                .iter()
                .all(|f| f.check != Check::Subsumption),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn duplicate_rules_flag_only_the_later_one() {
        let mut rules = RuleSet::new();
        rules.push(rule(Dnf::single(interval(0.0, 10.0)), 0.5, model(1.0)));
        rules.push(rule(Dnf::single(interval(0.0, 10.0)), 0.5, model(2.0)));
        let report = analyze(&rules, None);
        let sub: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.check == Check::Subsumption)
            .collect();
        assert_eq!(sub.len(), 1, "{:?}", report.findings);
        assert_eq!(sub[0].rule, Some(1), "higher index is the duplicate");
    }

    #[test]
    fn clean_obligations_verify() {
        let mut rules = RuleSet::new();
        let low = interval(0.0, 5.0).and(Predicate::lt(x(), Value::Float(10.0)));
        rules.push(rule(Dnf::single(low), 0.5, model(1.0)));
        let nul = Conjunction::of(vec![Predicate::is_null(x())]);
        rules.push(rule(Dnf::single(nul), 0.5, model(2.0)));
        let report = analyze(&rules, Some(&obligations()));
        assert!(report.is_sound(), "{:?}", report.findings);
        assert_eq!(report.shards, 3);
        assert_eq!(report.counters.shards, 3);
    }

    #[test]
    fn tampered_guard_list_breaks_exactness() {
        let mut ob = obligations();
        ob.guards[2].guards.clear(); // null shard loses its IS NULL guard
        let rules = RuleSet::new();
        let report = analyze(&rules, Some(&ob));
        assert!(!report.is_sound());
        assert!(report
            .findings
            .iter()
            .any(|f| f.check == Check::GuardSoundness
                && f.shard == Some(2)
                && f.message.contains("canonical")));
    }

    #[test]
    fn overlapping_shards_break_disjointness() {
        let ob = ProofObligations {
            shard_key: x(),
            boundary: PlanBoundary::EqualWidth,
            guards: vec![
                guard(0, bounds(None, Some(10.0), false)),
                guard(1, bounds(Some(5.0), None, false)), // overlaps [5, 10)
            ],
        };
        let rules = RuleSet::new();
        let report = analyze(&rules, Some(&ob));
        assert!(report
            .findings
            .iter()
            .any(|f| f.severity == Severity::Unsound && f.message.contains("disjoint")));
    }

    #[test]
    fn missing_open_ends_are_uncovered() {
        let ob = ProofObligations {
            shard_key: x(),
            boundary: PlanBoundary::EqualWidth,
            guards: vec![
                guard(0, bounds(Some(0.0), Some(10.0), false)),
                guard(1, bounds(Some(10.0), Some(20.0), false)),
            ],
        };
        let rules = RuleSet::new();
        let report = analyze(&rules, Some(&ob));
        let msgs: Vec<_> = report.findings.iter().map(|f| &f.message).collect();
        assert!(
            msgs.iter().any(|m| m.contains("unbounded below")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("unbounded above")),
            "{msgs:?}"
        );
    }

    #[test]
    fn interval_gap_breaks_the_chain() {
        // Both open ends exist and every pair is disjoint, yet keys in
        // [10, 20) are covered by no shard: only the chain check sees it.
        let ob = ProofObligations {
            shard_key: x(),
            boundary: PlanBoundary::Quantile,
            guards: vec![
                guard(0, bounds(None, Some(10.0), false)),
                guard(1, bounds(Some(20.0), None, false)),
            ],
        };
        let rules = RuleSet::new();
        let report = analyze(&rules, Some(&ob));
        assert!(!report.is_sound());
        assert!(report
            .findings
            .iter()
            .any(|f| f.check == Check::GuardSoundness
                && f.severity == Severity::Unsound
                && f.message.contains("chain breaks")));
        // The canonical contiguous set stays clean.
        let clean = analyze(&rules, Some(&obligations()));
        assert!(clean.is_sound(), "{:?}", clean.findings);
    }

    #[test]
    fn not_null_guard_without_null_shard_is_unsound() {
        let ob = ProofObligations {
            shard_key: x(),
            boundary: PlanBoundary::EqualWidth,
            guards: vec![
                guard(0, bounds(None, None, false)), // NOT NULL guard
                guard(1, bounds(None, Some(0.0), false)),
            ],
        };
        let rules = RuleSet::new();
        let report = analyze(&rules, Some(&ob));
        assert!(report
            .findings
            .iter()
            .any(|f| f.severity == Severity::Unsound && f.message.contains("null regime")));
    }

    #[test]
    fn unguarded_conjunct_is_not_confined() {
        // A rule whose conjunct carries no shard guard at all: the exact
        // shape of the pre-fix null-shard bug after the merge.
        let mut rules = RuleSet::new();
        rules.push(rule(Dnf::single(Conjunction::top()), 0.5, model(1.0)));
        let report = analyze(&rules, Some(&obligations()));
        assert!(!report.is_sound());
        assert!(report
            .findings
            .iter()
            .any(|f| f.check == Check::GuardSoundness
                && f.rule == Some(0)
                && f.message.contains("confined")));
    }

    #[test]
    fn translation_arity_mismatch_is_unsound() {
        // `Crr::new` rejects a mismatched builtin up front, so tamper
        // after construction — the drift A4 exists to catch.
        let mut r = rule(Dnf::single(interval(0.0, 10.0)), 0.5, model(1.0));
        r.condition_mut().conjuncts_mut()[0].set_builtin(Translation {
            delta_x: vec![1.0, 2.0], // rule has 1 input
            delta_y: 0.0,
        });
        let mut rules = RuleSet::new();
        rules.push(r);
        let report = analyze(&rules, None);
        assert!(!report.is_sound());
        assert!(report
            .findings
            .iter()
            .any(|f| f.check == Check::InferenceAudit && f.message.contains("arity")));
    }

    #[test]
    fn non_finite_shift_and_rho_are_unsound() {
        let mut c = interval(0.0, 10.0);
        c.set_builtin(Translation {
            delta_x: vec![f64::NAN],
            delta_y: 0.0,
        });
        let mut rules = RuleSet::new();
        rules.push(rule(Dnf::single(c), f64::INFINITY, model(1.0)));
        let report = analyze(&rules, None);
        let audit: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.check == Check::InferenceAudit && f.severity == Severity::Unsound)
            .collect();
        assert_eq!(audit.len(), 2, "{:?}", report.findings);
    }

    #[test]
    fn duplicate_conjuncts_and_predicates_are_hygiene() {
        let c = interval(0.0, 10.0);
        let repeated = Conjunction::of(vec![Predicate::ge(x(), Value::Float(0.0)); 2]);
        let mut rules = RuleSet::new();
        rules.push(rule(Dnf::of(vec![c.clone(), c, repeated]), 0.5, model(1.0)));
        let report = analyze(&rules, None);
        let hygiene: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.check == Check::InferenceAudit && f.severity == Severity::Hygiene)
            .collect();
        assert_eq!(hygiene.len(), 2, "{:?}", report.findings);
        assert!(report.is_sound());
    }

    #[test]
    fn foldable_same_side_bounds_are_hygiene() {
        // Two distinct upper bounds on x: the scan compiler keeps only
        // lt 5 at compile time, so the displayed rule diverges from what
        // the kernels evaluate — refinement debt worth one finding.
        let c = Conjunction::of(vec![
            Predicate::ge(x(), Value::Float(0.0)),
            Predicate::lt(x(), Value::Float(10.0)),
            Predicate::lt(x(), Value::Float(5.0)),
        ]);
        let mut rules = RuleSet::new();
        rules.push(rule(Dnf::single(c), 0.5, model(1.0)));
        let report = analyze(&rules, None);
        let folds: Vec<_> = report
            .findings
            .iter()
            .filter(|f| {
                f.check == Check::InferenceAudit
                    && f.severity == Severity::Hygiene
                    && f.message.contains("folds")
            })
            .collect();
        assert_eq!(folds.len(), 1, "{:?}", report.findings);
        assert_eq!(folds[0].rule, Some(0));
        assert!(report.is_sound());
        // A lower and an upper bound never fold — the clean interval
        // stays clean.
        let mut clean = RuleSet::new();
        clean.push(rule(Dnf::single(interval(0.0, 10.0)), 0.5, model(1.0)));
        assert!(analyze(&clean, None).findings.is_empty());
    }

    #[test]
    fn shared_model_rho_regression_is_flagged() {
        let m = Arc::new(Model::Linear(LinearModel::new(vec![2.0], 0.0)));
        let mut rules = RuleSet::new();
        rules.push(rule(Dnf::single(interval(2.0, 4.0)), 1.0, Arc::clone(&m)));
        rules.push(rule(Dnf::single(interval(0.0, 10.0)), 0.5, m));
        let report = analyze(&rules, None);
        assert!(report
            .findings
            .iter()
            .any(|f| f.check == Check::RhoMonotonicity
                && f.rule == Some(0)
                && f.severity == Severity::Hygiene));
    }

    fn schema() -> Schema {
        Schema::new(vec![("x", AttrType::Float), ("y", AttrType::Float)])
    }

    fn artifact(rules: RuleSet) -> crr_discovery::RuleSetArtifact {
        crr_discovery::RuleSetArtifact::new(schema(), rules, None).unwrap()
    }

    fn one_rule_artifact(c: Conjunction) -> crr_discovery::RuleSetArtifact {
        let mut rules = RuleSet::new();
        rules.push(rule(Dnf::single(c), 0.5, model(1.0)));
        artifact(rules)
    }

    /// Runs A6 with `mode` armed and returns the report; always disarms.
    fn analyze_miscompiled(a: &crr_discovery::RuleSetArtifact, mode: Miscompile) -> AnalysisReport {
        set_miscompile(Some(mode));
        let report = analyze_artifact(a);
        set_miscompile(None);
        report
    }

    fn a6_unsound(report: &AnalysisReport) -> bool {
        report
            .findings
            .iter()
            .any(|f| f.check == Check::CompileEquivalence && f.severity == Severity::Unsound)
    }

    #[test]
    fn faithful_compilation_passes_compile_equivalence() {
        let a = one_rule_artifact(interval(0.0, 10.0));
        let report = analyze_artifact(&a);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.counters.compile_equiv_checks, 1);
        assert!(report.counters.absdom_transfers >= 4);
        assert_eq!(report.counters.repair_regions, 0);
    }

    #[test]
    fn bad_interval_fold_is_unsound() {
        // Two upper bounds: the faithful compiler keeps `< 5`, the mutant
        // keeps the slack `< 10` — symbolically distinguishable states.
        let c = Conjunction::of(vec![
            Predicate::ge(x(), Value::Float(0.0)),
            Predicate::lt(x(), Value::Float(10.0)),
            Predicate::lt(x(), Value::Float(5.0)),
        ]);
        let a = one_rule_artifact(c);
        assert!(!a6_unsound(&analyze_artifact(&a)), "clean compile accused");
        let report = analyze_miscompiled(&a, Miscompile::KeepSlackBound);
        assert!(a6_unsound(&report), "{:?}", report.findings);
        assert!(!report.is_sound());
    }

    #[test]
    fn nan_lane_mismatch_is_unsound() {
        // The mutant compiles `≠ 3` to `v != c`, which accepts NaN cells
        // the source predicate rejects — only the NaN lane differs.
        let a = one_rule_artifact(Conjunction::of(vec![Predicate::ne(x(), Value::Float(3.0))]));
        let clean = analyze_artifact(&a);
        assert!(!a6_unsound(&clean), "{:?}", clean.findings);
        let report = analyze_miscompiled(&a, Miscompile::NeMatchesNan);
        assert!(a6_unsound(&report), "{:?}", report.findings);
        assert!(report
            .findings
            .iter()
            .any(|f| f.check == Check::CompileEquivalence && f.message.contains("may_nan")));
    }

    #[test]
    fn constant_coercion_drift_is_unsound() {
        let a = one_rule_artifact(Conjunction::of(vec![Predicate::ge(x(), Value::Float(2.5))]));
        assert!(!a6_unsound(&analyze_artifact(&a)));
        let report = analyze_miscompiled(&a, Miscompile::TruncateConst);
        assert!(a6_unsound(&report), "{:?}", report.findings);
    }

    #[test]
    fn string_lut_gap_is_unsound() {
        // A populated table gives the dictionary the LUT indexes; the
        // rows themselves are never evaluated.
        let s = Schema::new(vec![
            ("x", AttrType::Float),
            ("y", AttrType::Float),
            ("color", AttrType::Str),
        ]);
        let mut t = crr_data::Table::new(s.clone());
        for (i, w) in ["red", "green", "blue"].iter().enumerate() {
            t.push_row(vec![
                Value::Float(i as f64),
                Value::Float(0.0),
                Value::str(*w),
            ])
            .unwrap();
        }
        let mut rules = RuleSet::new();
        let c = Conjunction::of(vec![Predicate::eq(AttrId(2), Value::str("red"))]);
        rules.push(rule(Dnf::single(c), 0.5, model(1.0)));
        let a = crr_discovery::RuleSetArtifact::new(s, rules, None).unwrap();
        assert!(!a6_unsound(&analyze_artifact_on(&a, &t)));
        set_miscompile(Some(Miscompile::LutGap));
        let report = analyze_artifact_on(&a, &t);
        set_miscompile(None);
        assert!(a6_unsound(&report), "{:?}", report.findings);
    }

    #[test]
    fn mismatched_context_schema_falls_back_to_the_artifact_schema() {
        let a = one_rule_artifact(interval(0.0, 10.0));
        let other = crr_data::Table::new(Schema::new(vec![("z", AttrType::Int)]));
        let report = analyze_artifact_on(&a, &other);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.counters.compile_equiv_checks, 1);
    }

    fn repaired_artifact(
        kept: usize,
        regions: Vec<RepairRegion>,
        rules: RuleSet,
    ) -> crr_discovery::RuleSetArtifact {
        artifact(rules)
            .with_repair(RepairObligations { kept, regions })
            .unwrap()
    }

    fn region(id: usize, guards: Vec<Predicate>) -> RepairRegion {
        RepairRegion {
            region_id: id,
            origin: RegionOrigin::Uncovered,
            guards,
        }
    }

    #[test]
    fn confined_repair_is_sound() {
        let mut rules = RuleSet::new();
        rules.push(rule(Dnf::single(interval(0.0, 10.0)), 0.5, model(1.0)));
        rules.push(rule(Dnf::single(interval(10.0, 20.0)), 0.4, model(2.0)));
        let guards = vec![
            Predicate::ge(x(), Value::Float(10.0)),
            Predicate::lt(x(), Value::Float(20.0)),
        ];
        let a = repaired_artifact(1, vec![region(0, guards)], rules);
        let report = analyze_artifact(&a);
        assert!(report.is_sound(), "{:?}", report.findings);
        assert_eq!(report.counters.repair_regions, 1);
    }

    #[test]
    fn overclaiming_repair_is_unsound() {
        // The repaired rule covers [0, 10) but the only region claims
        // [10, 20): the splice touched rows outside its license.
        let mut rules = RuleSet::new();
        rules.push(rule(Dnf::single(interval(10.0, 20.0)), 0.5, model(1.0)));
        rules.push(rule(Dnf::single(interval(0.0, 10.0)), 0.4, model(2.0)));
        let guards = vec![
            Predicate::ge(x(), Value::Float(10.0)),
            Predicate::lt(x(), Value::Float(20.0)),
        ];
        let a = repaired_artifact(1, vec![region(0, guards)], rules);
        let report = analyze_artifact(&a);
        assert!(!report.is_sound());
        assert!(report
            .findings
            .iter()
            .any(|f| f.check == Check::RepairObligations
                && f.rule == Some(1)
                && f.message.contains("over-claims")));
    }

    #[test]
    fn unsatisfiable_region_guard_underclaims() {
        let mut rules = RuleSet::new();
        rules.push(rule(Dnf::single(interval(0.0, 10.0)), 0.5, model(1.0)));
        let guards = vec![
            Predicate::ge(x(), Value::Float(10.0)),
            Predicate::lt(x(), Value::Float(5.0)),
        ];
        let a = repaired_artifact(1, vec![region(0, guards)], rules);
        let report = analyze_artifact(&a);
        assert!(!report.is_sound());
        assert!(report
            .findings
            .iter()
            .any(|f| f.check == Check::RepairObligations && f.message.contains("under-claims")));
    }

    #[test]
    fn kept_count_beyond_the_rule_set_is_unsound() {
        let mut rules = RuleSet::new();
        rules.push(rule(Dnf::single(interval(0.0, 10.0)), 0.5, model(1.0)));
        let a = repaired_artifact(5, Vec::new(), rules);
        let report = analyze_artifact(&a);
        assert!(!report.is_sound());
        assert!(report
            .findings
            .iter()
            .any(|f| f.check == Check::RepairObligations && f.message.contains("kept")));
    }

    #[test]
    fn non_dense_region_ids_are_unsound() {
        let mut rules = RuleSet::new();
        rules.push(rule(Dnf::single(interval(0.0, 10.0)), 0.5, model(1.0)));
        let guards = vec![Predicate::ge(x(), Value::Float(0.0))];
        let a = repaired_artifact(1, vec![region(3, guards)], rules);
        let report = analyze_artifact(&a);
        assert!(!report.is_sound());
        assert!(report
            .findings
            .iter()
            .any(|f| f.check == Check::RepairObligations && f.message.contains("dense")));
    }

    #[test]
    fn guard_free_region_is_hygiene_not_unsound() {
        // An uncovered-append region may carry no bounding box; every
        // repaired rule is then vacuously confined.
        let mut rules = RuleSet::new();
        rules.push(rule(Dnf::single(interval(0.0, 10.0)), 0.5, model(1.0)));
        rules.push(rule(Dnf::single(interval(50.0, 60.0)), 0.4, model(2.0)));
        let a = repaired_artifact(1, vec![region(0, Vec::new())], rules);
        let report = analyze_artifact(&a);
        assert!(report.is_sound(), "{:?}", report.findings);
        assert!(report
            .findings
            .iter()
            .any(|f| f.check == Check::RepairObligations
                && f.severity == Severity::Hygiene
                && f.message.contains("vacuous")));
    }

    #[test]
    fn equal_rho_tie_break_is_stable_across_serialization() {
        // Two mutually-implying equal-ρ rules: the survivor must be the
        // lower index before and after an artifact text round-trip.
        let mut rules = RuleSet::new();
        rules.push(rule(Dnf::single(interval(0.0, 10.0)), 0.5, model(1.0)));
        rules.push(rule(Dnf::single(interval(0.0, 10.0)), 0.5, model(2.0)));
        let a = artifact(rules);
        let before = analyze_artifact(&a);
        let b = crr_discovery::RuleSetArtifact::from_text(&a.to_text()).unwrap();
        let after = analyze_artifact(&b);
        assert_eq!(before.findings, after.findings);
        let sub: Vec<_> = after
            .findings
            .iter()
            .filter(|f| f.check == Check::Subsumption)
            .collect();
        assert_eq!(sub.len(), 1, "{:?}", after.findings);
        assert_eq!(sub[0].rule, Some(1), "survivor is the lowest index");
    }

    #[test]
    fn distinct_models_do_not_trigger_monotonicity() {
        let mut rules = RuleSet::new();
        rules.push(rule(Dnf::single(interval(2.0, 4.0)), 1.0, model(1.0)));
        rules.push(rule(Dnf::single(interval(0.0, 10.0)), 0.5, model(2.0)));
        let report = analyze(&rules, None);
        assert!(report
            .findings
            .iter()
            .all(|f| f.check != Check::RhoMonotonicity));
    }
}
