//! The seven static checks (A1–A7), all powered by `crr-core`'s
//! implication engine and abstract domain — no row is ever scanned.
//!
//! Every check is *conservative*: the engine proves implication and
//! unsatisfiability but never refutes them, so a finding is only emitted
//! on a positive proof. Absence of findings means "nothing provable",
//! not "nothing wrong". The one exception to "prove, never refute" is
//! A6, which compares two *exact* canonical abstract states — there a
//! mismatch is itself the proof of divergence.

use crate::report::{AnalysisReport, Check, Finding, Severity};
use crr_core::{AbsState, CompiledConjunction, Conjunction, Dnf, Op, RuleSet, TableFacts};
use crr_data::Table;
use crr_discovery::{guard_predicates, ProofObligations, RepairObligations};
use crr_obs::AnalysisCounters;
use std::sync::Arc;

/// One analysis pass: borrowed rule set, accumulated findings and work
/// counters, plus the per-rule "provably dead" mask A1 fills so later
/// checks skip rules that can never fire.
pub(crate) struct Pass<'a> {
    rules: &'a RuleSet,
    eps: f64,
    counters: AnalysisCounters,
    findings: Vec<Finding>,
    /// `dead[i]`: rule `i`'s whole condition is provably unsatisfiable.
    dead: Vec<bool>,
}

impl<'a> Pass<'a> {
    pub(crate) fn new(rules: &'a RuleSet, eps: f64) -> Self {
        Pass {
            rules,
            eps,
            counters: AnalysisCounters {
                rules: rules.len() as u64,
                conjuncts: rules.total_conjuncts() as u64,
                ..AnalysisCounters::default()
            },
            findings: Vec::new(),
            dead: vec![false; rules.len()],
        }
    }

    /// Counted front door to [`Conjunction::is_provably_unsat`].
    fn unsat(&mut self, c: &Conjunction) -> bool {
        self.counters.unsat_checks += 1;
        c.is_provably_unsat()
    }

    /// Counted front door to [`Dnf::implies`].
    fn dnf_implies(&mut self, a: &Dnf, b: &Dnf) -> bool {
        self.counters.implication_checks += 1;
        a.implies(b)
    }

    /// Counted front door to [`Conjunction::implies`].
    fn conj_implies(&mut self, a: &Conjunction, b: &Conjunction) -> bool {
        self.counters.implication_checks += 1;
        a.implies(b)
    }

    fn push(
        &mut self,
        check: Check,
        severity: Severity,
        rule: Option<usize>,
        shard: Option<usize>,
        message: String,
    ) {
        self.findings.push(Finding {
            check,
            severity,
            rule,
            shard,
            message,
        });
    }

    /// A1 — satisfiability: a rule whose whole DNF is provably
    /// unsatisfiable can never fire (redundant); a live rule with some
    /// provably-unsatisfiable conjunct carries a dead disjunct (hygiene).
    pub(crate) fn check_satisfiability(&mut self) {
        for i in 0..self.rules.len() {
            let conjs = self.rules.rules()[i].condition().conjuncts().to_vec();
            let dead_ix: Vec<usize> = conjs
                .iter()
                .enumerate()
                .filter(|(_, c)| self.unsat(c))
                .map(|(k, _)| k)
                .collect();
            if !conjs.is_empty() && dead_ix.len() == conjs.len() {
                self.dead[i] = true;
                self.push(
                    Check::Satisfiability,
                    Severity::Redundant,
                    Some(i),
                    None,
                    "condition is provably unsatisfiable; the rule can never fire".to_string(),
                );
            } else {
                for k in dead_ix {
                    self.push(
                        Check::Satisfiability,
                        Severity::Hygiene,
                        Some(i),
                        None,
                        format!("conjunct #{k} is provably unsatisfiable (dead disjunct)"),
                    );
                }
            }
        }
    }

    /// A2 — subsumption: rule `i` is redundant when another rule `j` on
    /// the same target provably covers everything `i` covers
    /// (`C_i ⊢ C_j`, Definition 2) with a no-worse bias (`ρ_j ≤ ρ_i`).
    ///
    /// **Tie-break determinism.** For mutually-implying rules with equal
    /// ρ only the higher *rule index* is flagged, so exactly one
    /// survivor — the lowest-indexed duplicate — always remains. The
    /// index is the rule's position in the analyzed set, which is its
    /// serialization order in a `crr-artifact` text; the tie-break never
    /// consults pointer identity, hash order or model addresses, so
    /// re-serializing an artifact and re-analyzing it yields
    /// byte-identical findings.
    pub(crate) fn check_subsumption(&mut self) {
        let n = self.rules.len();
        for i in 0..n {
            if self.dead[i] {
                continue;
            }
            for j in 0..n {
                if j == i || self.dead[j] {
                    continue;
                }
                let (ri, rj) = {
                    let rs = self.rules.rules();
                    if rs[i].target() != rs[j].target() {
                        continue;
                    }
                    (rs[i].rho(), rs[j].rho())
                };
                if rj > ri + self.eps {
                    continue;
                }
                let (ci, cj) = {
                    let rs = self.rules.rules();
                    (rs[i].condition().clone(), rs[j].condition().clone())
                };
                if !self.dnf_implies(&ci, &cj) {
                    continue;
                }
                // Equal-ρ mutual implication: keep the earlier rule. The
                // `j > i` comparison is on rule indices (serialization
                // order), so the survivor is stable across artifact
                // round-trips — see the tie-break note in the rustdoc.
                if (ri - rj).abs() <= self.eps && j > i && self.dnf_implies(&cj, &ci) {
                    continue;
                }
                self.push(
                    Check::Subsumption,
                    Severity::Redundant,
                    Some(i),
                    None,
                    format!(
                        "subsumed by rule {j}: condition implies rule {j}'s \
                         condition and ρ_{j} = {rj} ≤ ρ_{i} = {ri}"
                    ),
                );
                break; // one subsumption finding per rule
            }
        }
    }

    /// A3 — shard-guard partition soundness, against the run's
    /// [`ProofObligations`]:
    ///
    /// * *exactness* — each shard's recorded guard list equals the
    ///   canonical membership predicates for its bounds
    ///   ([`guard_predicates`]);
    /// * *disjointness* — conjoining two shards' guards is provably
    ///   unsatisfiable, pairwise;
    /// * *coverage* — some shard is unbounded below and some unbounded
    ///   above, the interval bounds form one contiguous half-open chain
    ///   (each shard's upper bound meets the next shard's lower bound —
    ///   both the equal-width and the quantile planner emit exactly this
    ///   shape, so a gap like `[.., 10) / [20, ..)` is a planner or
    ///   tamper bug the open-ends test alone cannot see), and a
    ///   `NOT NULL` guard only appears when a null-regime shard exists
    ///   (a plan legitimately omits the null shard when the instance has
    ///   no null keys, so a merely-absent null shard is not a finding);
    /// * *confinement* — with ≥ 2 shards, every conjunct of every rule
    ///   provably implies some shard's guard conjunction. A merged rule
    ///   whose conjunct is confined to no shard would answer for rows of
    ///   other shards — exactly the pre-fix null-shard bug where
    ///   null-key rules lost their `IS NULL` guard.
    ///
    /// The checks are construction-agnostic: quantile-derived boundaries
    /// and plans executed with work stealing discharge the identical
    /// obligations (the recorded [`ProofObligations::boundary`] is
    /// provenance, not a relaxation).
    pub(crate) fn check_guards(&mut self, ob: &ProofObligations) {
        self.counters.shards = ob.guards.len() as u64;
        // Exactness.
        for g in &ob.guards {
            let canonical = guard_predicates(&g.bounds);
            if g.guards != canonical {
                self.push(
                    Check::GuardSoundness,
                    Severity::Unsound,
                    None,
                    Some(g.shard_id),
                    format!(
                        "recorded guard list ({} predicate(s)) differs from the \
                         canonical membership predicates for its bounds \
                         ({} predicate(s))",
                        g.guards.len(),
                        canonical.len()
                    ),
                );
            }
        }
        // Pairwise disjointness.
        for a in 0..ob.guards.len() {
            for b in (a + 1)..ob.guards.len() {
                let mut preds = ob.guards[a].guards.clone();
                preds.extend(ob.guards[b].guards.iter().cloned());
                let merged = Conjunction::of(preds);
                if !self.unsat(&merged) {
                    let (sa, sb) = (ob.guards[a].shard_id, ob.guards[b].shard_id);
                    self.push(
                        Check::GuardSoundness,
                        Severity::Unsound,
                        None,
                        Some(sa),
                        format!("guards of shard {sa} and shard {sb} are not provably disjoint"),
                    );
                }
            }
        }
        // Coverage of the key domain.
        let interval: Vec<_> = ob.guards.iter().filter(|g| !g.bounds.null_keys).collect();
        if !interval.is_empty() {
            if !interval.iter().any(|g| g.bounds.lo.is_none()) {
                self.push(
                    Check::GuardSoundness,
                    Severity::Unsound,
                    None,
                    None,
                    "no shard is unbounded below: keys under the smallest bound are uncovered"
                        .to_string(),
                );
            }
            if !interval.iter().any(|g| g.bounds.hi.is_none()) {
                self.push(
                    Check::GuardSoundness,
                    Severity::Unsound,
                    None,
                    None,
                    "no shard is unbounded above: keys over the largest bound are uncovered"
                        .to_string(),
                );
            }
        }
        // Chain contiguity: sorted by lower bound, each interval's upper
        // bound must equal the next interval's lower bound. A gap leaves
        // keys between the bounds uncovered even when both open ends
        // exist and every pair is disjoint.
        if interval.len() >= 2 {
            let mut chain = interval.clone();
            chain.sort_by(|a, b| match (a.bounds.lo, b.bounds.lo) {
                (None, None) => std::cmp::Ordering::Equal,
                (None, Some(_)) => std::cmp::Ordering::Less,
                (Some(_), None) => std::cmp::Ordering::Greater,
                (Some(p), Some(q)) => p.total_cmp(&q),
            });
            for w in chain.windows(2) {
                let (a, b) = (w[0], w[1]);
                let meets = match (a.bounds.hi, b.bounds.lo) {
                    (Some(hi), Some(lo)) => hi == lo,
                    _ => false,
                };
                if !meets {
                    self.push(
                        Check::GuardSoundness,
                        Severity::Unsound,
                        None,
                        Some(b.shard_id),
                        format!(
                            "interval chain breaks between shard {} and shard {}: upper \
                             bound {:?} does not meet the next lower bound {:?}",
                            a.shard_id, b.shard_id, a.bounds.hi, b.bounds.lo
                        ),
                    );
                }
            }
        }
        let has_null_shard = ob.guards.iter().any(|g| g.bounds.null_keys);
        let excludes_null = ob
            .guards
            .iter()
            .any(|g| g.guards.iter().any(|p| p.op == Op::NotNull));
        if excludes_null && !has_null_shard {
            self.push(
                Check::GuardSoundness,
                Severity::Unsound,
                None,
                None,
                "a NOT NULL guard excludes null keys but no shard covers the null regime"
                    .to_string(),
            );
        }
        // Confinement of merged rules.
        if ob.guards.len() >= 2 {
            let guard_conjs: Vec<Conjunction> = ob
                .guards
                .iter()
                .map(|g| Conjunction::of(g.guards.clone()))
                .collect();
            for i in 0..self.rules.len() {
                if self.dead[i] {
                    continue;
                }
                let conjs = self.rules.rules()[i].condition().conjuncts().to_vec();
                for (k, conj) in conjs.iter().enumerate() {
                    // Confinement is a pure coverage question — which rows
                    // the conjunct matches — and `eval` ignores built-ins,
                    // so strip them before the implication test (which
                    // otherwise requires built-ins to agree, as rule-level
                    // Induction does). Compaction attaches translations to
                    // merged conjuncts; they shift the model application,
                    // not the shard membership.
                    let coverage = Conjunction::of(conj.preds().to_vec());
                    let confined = guard_conjs.iter().any(|g| self.conj_implies(&coverage, g));
                    if !confined {
                        self.push(
                            Check::GuardSoundness,
                            Severity::Unsound,
                            Some(i),
                            None,
                            format!(
                                "conjunct #{k} is not confined to any shard's guard; \
                                 its rows could leak across shard boundaries"
                            ),
                        );
                    }
                }
            }
        }
    }

    /// A4 — inference-rule audit: the artifacts the compaction inference
    /// rules produce must stay well-formed. A rule's ρ must be a finite
    /// non-negative bias; a built-in translation must have one input
    /// shift per rule input with finite components, or composing it per
    /// Proposition 9 is undefined; duplicate conjuncts or predicates are
    /// Fusion/refinement debris the dedup should have caught.
    pub(crate) fn check_inference(&mut self) {
        for i in 0..self.rules.len() {
            let (rho, arity, conjs) = {
                let r = &self.rules.rules()[i];
                (
                    r.rho(),
                    r.inputs().len(),
                    r.condition().conjuncts().to_vec(),
                )
            };
            if !rho.is_finite() || rho < 0.0 {
                self.push(
                    Check::InferenceAudit,
                    Severity::Unsound,
                    Some(i),
                    None,
                    format!("ρ = {rho} is not a finite non-negative bias bound"),
                );
            }
            for (k, conj) in conjs.iter().enumerate() {
                if let Some(t) = conj.builtin() {
                    if t.delta_x.len() != arity {
                        self.push(
                            Check::InferenceAudit,
                            Severity::Unsound,
                            Some(i),
                            None,
                            format!(
                                "conjunct #{k}: translation input shift has arity {} but \
                                 the rule has {arity} input(s) — Proposition 9 composition \
                                 is undefined",
                                t.delta_x.len()
                            ),
                        );
                    } else if !t.delta_y.is_finite() || t.delta_x.iter().any(|d| !d.is_finite()) {
                        self.push(
                            Check::InferenceAudit,
                            Severity::Unsound,
                            Some(i),
                            None,
                            format!("conjunct #{k}: translation shift has non-finite components"),
                        );
                    }
                }
                let preds = conj.preds();
                let mut dup = false;
                for a in 0..preds.len() {
                    for b in (a + 1)..preds.len() {
                        if preds[a] == preds[b] {
                            dup = true;
                        }
                    }
                }
                if dup {
                    self.push(
                        Check::InferenceAudit,
                        Severity::Hygiene,
                        Some(i),
                        None,
                        format!("conjunct #{k} repeats a predicate"),
                    );
                }
                // Distinct same-side interval bounds on one attribute:
                // the scan compiler folds them to the strictest bound at
                // compile time, so carrying both is refinement debt the
                // producer should have collapsed.
                let mut foldable = false;
                for a in 0..preds.len() {
                    for b in (a + 1)..preds.len() {
                        if preds[a] != preds[b]
                            && crr_core::compiled::folds_together(&preds[a], &preds[b])
                        {
                            foldable = true;
                        }
                    }
                }
                if foldable {
                    self.push(
                        Check::InferenceAudit,
                        Severity::Hygiene,
                        Some(i),
                        None,
                        format!(
                            "conjunct #{k} carries redundant same-side bounds on one \
                             attribute; the scan compiler folds them to the strictest"
                        ),
                    );
                }
            }
            for a in 0..conjs.len() {
                for b in (a + 1)..conjs.len() {
                    if conjs[a] == conjs[b] {
                        self.push(
                            Check::InferenceAudit,
                            Severity::Hygiene,
                            Some(i),
                            None,
                            format!("conjunct #{b} duplicates conjunct #{a} (Fusion dedup debt)"),
                        );
                    }
                }
            }
        }
    }

    /// A5 — ρ-monotonicity: when rule `i` shares rule `j`'s model and
    /// `C_i ⊢ C_j`, rule `j` already guarantees the shared model errs at
    /// most `ρ_j` everywhere rule `i` applies, so claiming `ρ_i > ρ_j`
    /// is internally inconsistent with what Fusion (which outputs
    /// `max(ρ_1, ρ_2)`) and Generalization preserve. Never unsound — a
    /// loose bound is still a bound — but worth flagging.
    pub(crate) fn check_rho_monotonicity(&mut self) {
        let n = self.rules.len();
        for i in 0..n {
            if self.dead[i] {
                continue;
            }
            for j in 0..n {
                if j == i || self.dead[j] {
                    continue;
                }
                let (shared, same_target, ri, rj) = {
                    let rs = self.rules.rules();
                    (
                        Arc::ptr_eq(rs[i].model(), rs[j].model()),
                        rs[i].target() == rs[j].target(),
                        rs[i].rho(),
                        rs[j].rho(),
                    )
                };
                if !shared || !same_target || ri <= rj + self.eps {
                    continue;
                }
                let (ci, cj) = {
                    let rs = self.rules.rules();
                    (rs[i].condition().clone(), rs[j].condition().clone())
                };
                if self.dnf_implies(&ci, &cj) {
                    self.push(
                        Check::RhoMonotonicity,
                        Severity::Hygiene,
                        Some(i),
                        None,
                        format!(
                            "shares rule {j}'s model and its condition implies rule {j}'s, \
                             yet claims ρ_{i} = {ri} > ρ_{j} = {rj}; the shared model is \
                             already bounded by {rj} here"
                        ),
                    );
                    break; // one monotonicity finding per rule
                }
            }
        }
    }

    /// A6 — compile equivalence: for every conjunct, the compiled scan
    /// kernels ([`CompiledConjunction`]) must be *symbolically* equal to
    /// the source predicates over the abstract domain
    /// ([`crr_core::absdom`]). Both sides start from the same ⊤ state
    /// derived from `table`'s column facts (kinds, nullability, string
    /// dictionaries); the source side applies each predicate's transfer
    /// function, the compiled side applies each kernel shape's, and the
    /// two canonical states must be equal. Divergence — a bad interval
    /// fold, a constant coerced during compilation, a NaN-lane mismatch,
    /// a string-LUT gap — is unsound: the served kernels answer for a
    /// different predicate than the artifact displays.
    ///
    /// Row-free: only `table`'s *facts* are consulted (an empty table of
    /// the artifact schema works — that is exactly what the swap gate
    /// passes). Conjuncts referencing attributes outside the schema are
    /// skipped; `check_refs` rejects those artifacts before analysis.
    pub(crate) fn check_compile_equivalence(&mut self, table: &Table) {
        let facts = TableFacts::of(table);
        for i in 0..self.rules.len() {
            let conjs = self.rules.rules()[i].condition().conjuncts().to_vec();
            for (k, conj) in conjs.iter().enumerate() {
                if conj.preds().iter().any(|p| p.attr.0 >= facts.len()) {
                    continue; // uncompilable against this schema
                }
                let mut src = AbsState::top(&facts);
                for p in conj.preds() {
                    src.assume(p, &facts);
                    self.counters.absdom_transfers += 1;
                }
                let compiled = CompiledConjunction::compile(conj, table);
                let mut cmp = AbsState::top(&facts);
                for shape in compiled.kernel_shapes() {
                    cmp.assume_shape(&shape);
                    self.counters.absdom_transfers += 1;
                }
                self.counters.compile_equiv_checks += 1;
                if src != cmp {
                    self.push(
                        Check::CompileEquivalence,
                        Severity::Unsound,
                        Some(i),
                        None,
                        format!(
                            "conjunct #{k}: compiled kernels diverge from the source \
                             predicates over the abstract domain ({})",
                            src.divergence(&cmp)
                        ),
                    );
                }
            }
        }
    }

    /// A7 — repair-obligation audit, against the [`RepairObligations`] a
    /// proof-carrying stream repair bundles:
    ///
    /// * *kept prefix* — the kept-rule count must not exceed the rule
    ///   count (the splice layout is `kept` untouched rules followed by
    ///   the repaired ones);
    /// * *region identity* — region ids must be dense and in order, so
    ///   the artifact's region list is the repair's, not a truncation;
    /// * *under-claim* — a region whose guard conjunction is provably
    ///   unsatisfiable claims an empty region: rows that drifted are
    ///   then attributed to no region at all;
    /// * *over-claim* — every conjunct of every repaired rule (index ≥
    ///   `kept`) must provably imply some region's guard conjunction;
    ///   a repaired rule reaching outside every affected region would
    ///   overwrite healthy coverage the repair had no license to touch.
    ///
    /// A guard-free region (an uncovered-append region with no bounding
    /// box) makes confinement vacuous for the rules it absorbs; that is
    /// flagged as hygiene, not unsoundness — the repair still tells the
    /// auditor it claimed everything.
    pub(crate) fn check_repair(&mut self, ob: &RepairObligations) {
        self.counters.repair_regions = ob.regions.len() as u64;
        let n = self.rules.len();
        if ob.kept > n {
            self.push(
                Check::RepairObligations,
                Severity::Unsound,
                None,
                None,
                format!(
                    "repair claims {} kept rule(s) but the artifact has only {n}; \
                     the splice layout cannot be audited",
                    ob.kept
                ),
            );
            return;
        }
        let mut guard_conjs: Vec<Conjunction> = Vec::with_capacity(ob.regions.len());
        for (k, region) in ob.regions.iter().enumerate() {
            if region.region_id != k {
                self.push(
                    Check::RepairObligations,
                    Severity::Unsound,
                    None,
                    None,
                    format!(
                        "region ids are not dense: position {k} carries id {}",
                        region.region_id
                    ),
                );
            }
            if region.guards.is_empty() {
                self.push(
                    Check::RepairObligations,
                    Severity::Hygiene,
                    None,
                    None,
                    format!("region {k} carries no guard predicates; confinement is vacuous"),
                );
                guard_conjs.push(Conjunction::top());
            } else {
                let g = Conjunction::of(region.guards.clone());
                if self.unsat(&g) {
                    self.push(
                        Check::RepairObligations,
                        Severity::Unsound,
                        None,
                        None,
                        format!(
                            "region {k}'s guard is provably unsatisfiable; the repair \
                             under-claims its affected rows"
                        ),
                    );
                }
                guard_conjs.push(g);
            }
        }
        for i in ob.kept..n {
            if self.dead[i] {
                continue;
            }
            let conjs = self.rules.rules()[i].condition().conjuncts().to_vec();
            for (k, conj) in conjs.iter().enumerate() {
                // Coverage question, built-ins stripped — same rationale
                // as A3 confinement.
                let coverage = Conjunction::of(conj.preds().to_vec());
                let confined = guard_conjs.iter().any(|g| self.conj_implies(&coverage, g));
                if !confined {
                    self.push(
                        Check::RepairObligations,
                        Severity::Unsound,
                        Some(i),
                        None,
                        format!(
                            "repaired conjunct #{k} is not confined to any repair \
                             region's guard; the splice over-claims rows outside \
                             the affected regions"
                        ),
                    );
                }
            }
        }
    }

    /// Freezes the pass into a ranked [`AnalysisReport`].
    pub(crate) fn into_report(self, shards: usize) -> AnalysisReport {
        let mut report = AnalysisReport {
            rules: self.rules.len(),
            conjuncts: self.rules.total_conjuncts(),
            shards,
            findings: self.findings,
            counters: self.counters,
        };
        report.finalize();
        report
    }
}
