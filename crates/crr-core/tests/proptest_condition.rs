//! Property-based soundness tests for the implication engine on *nullable*
//! data — the regime `crr-analyze` leans on when it verifies shard guards.
//!
//! The engine's contract is one-sided (conservative): `implies` and
//! `is_provably_unsat` may return `false` when the property holds, but
//! `true` must never be wrong. These tests pit both against brute-force
//! row evaluation on random tables with null cells and conditions mixing
//! `IS NULL` / `IS NOT NULL` with interval and (dis)equality predicates —
//! exactly the shapes the null-shard guards produce.

// Test harness: panicking on malformed fixtures is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use crr_core::{Conjunction, Dnf, Op, Predicate};
use crr_data::{AttrId, AttrType, Schema, Table, Value};
use proptest::prelude::*;

const X: AttrId = AttrId(0);
const Y: AttrId = AttrId(1);

/// A table of random (x, y) tuples where either cell may be null.
fn arb_table() -> impl Strategy<Value = Table> {
    fn cell() -> impl Strategy<Value = Value> {
        prop_oneof![
            3 => (-30.0f64..30.0).prop_map(Value::Float),
            1 => Just(Value::Null),
        ]
    }
    prop::collection::vec((cell(), cell()), 1..40).prop_map(|rows| {
        let schema = Schema::new(vec![("x", AttrType::Float), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for (x, y) in rows {
            t.push_row(vec![x, y]).unwrap();
        }
        t
    })
}

/// A random predicate over `attr`: a comparison against a constant on a
/// coarse grid (so intervals collide often enough to exercise the summary
/// logic), or a nullness test.
fn arb_pred(attr: AttrId) -> impl Strategy<Value = Predicate> {
    let cmp = prop_oneof![
        Just(Op::Eq),
        Just(Op::Ne),
        Just(Op::Gt),
        Just(Op::Ge),
        Just(Op::Lt),
        Just(Op::Le),
    ];
    prop_oneof![
        4 => (cmp, -4i64..4).prop_map(move |(op, k)| {
            Predicate::new(attr, op, Value::Float(k as f64 * 7.5))
        }),
        1 => Just(Predicate::is_null(attr)),
        1 => Just(Predicate::not_null(attr)),
    ]
}

/// A random conjunction of 0..4 predicates over x and y.
fn arb_conjunction() -> impl Strategy<Value = Conjunction> {
    let coin = (0u8..2).prop_map(|b| b == 1);
    prop::collection::vec((coin, arb_pred(X), arb_pred(Y)), 0..3).prop_map(|ps| {
        Conjunction::of(
            ps.into_iter()
                .flat_map(|(both, px, py)| if both { vec![px, py] } else { vec![px] })
                .collect(),
        )
    })
}

/// A random DNF of 1..3 such conjunctions.
fn arb_dnf() -> impl Strategy<Value = Dnf> {
    prop::collection::vec(arb_conjunction(), 1..3).prop_map(Dnf::of)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `C1 ⊢ C2` is sound under nulls: every tuple (including tuples with
    /// null cells) satisfying C1 satisfies C2.
    #[test]
    fn conjunction_implication_sound_under_nulls(
        c1 in arb_conjunction(),
        c2 in arb_conjunction(),
        table in arb_table(),
    ) {
        if c1.implies(&c2) {
            for row in 0..table.num_rows() {
                if c1.eval(&table, row) {
                    prop_assert!(
                        c2.eval(&table, row),
                        "row {row} satisfies {c1:?} but not the implied {c2:?}"
                    );
                }
            }
        }
    }

    /// Definition 2 at the DNF level, same nullable regime.
    #[test]
    fn dnf_implication_sound_under_nulls(
        d1 in arb_dnf(),
        d2 in arb_dnf(),
        table in arb_table(),
    ) {
        if d1.implies(&d2) {
            for row in 0..table.num_rows() {
                if d1.eval(&table, row) {
                    prop_assert!(d2.eval(&table, row));
                }
            }
        }
    }

    /// A provably-unsat conjunction matches no row — in particular the
    /// `IS NULL ∧ comparison` and `IS NULL ∧ IS NOT NULL` conflicts must
    /// never be claimed for a condition some row satisfies.
    #[test]
    fn provably_unsat_matches_no_row(c in arb_conjunction(), table in arb_table()) {
        if c.is_provably_unsat() {
            for row in 0..table.num_rows() {
                prop_assert!(
                    !c.eval(&table, row),
                    "row {row} satisfies {c:?} though it was proved unsat"
                );
            }
        }
    }

    /// The canonical shard-guard shapes stay mutually exclusive with the
    /// null guard: a conjunction refining `IS NOT NULL` (or any comparison)
    /// never co-matches a row with the `IS NULL` guard.
    #[test]
    fn null_guard_disjoint_from_range_guards(
        c in arb_conjunction(),
        table in arb_table(),
    ) {
        let null_guard = Conjunction::of(vec![Predicate::is_null(X)]);
        let guarded = c.and(Predicate::not_null(X));
        prop_assert!(guarded.and(Predicate::is_null(X)).is_provably_unsat());
        for row in 0..table.num_rows() {
            prop_assert!(!(guarded.eval(&table, row) && null_guard.eval(&table, row)));
        }
    }

    /// Implication stays reflexive and refinement-monotone with nullness
    /// predicates in the mix.
    #[test]
    fn reflexivity_and_refinement_with_nulls(c in arb_conjunction(), p in arb_pred(X)) {
        prop_assert!(c.implies(&c));
        prop_assert!(c.and(p).implies(&c));
    }
}
