//! Property test: text serialization round-trips arbitrary rule sets
//! exactly — structure, parameters and predictions.

// Test harness: panicking on malformed fixtures is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use crr_core::{serialize, Conjunction, Crr, Dnf, Op, Predicate, RuleSet};
use crr_data::{AttrId, Value};
use crr_models::{ConstantModel, LinearModel, Model, RidgeModel, Translation};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1000i64..1000).prop_map(Value::Int),
        (-1000i64..1000).prop_map(|v| Value::Float(v as f64 / 7.0)),
        "[a-z]{1,6}".prop_map(Value::str),
        Just(Value::Null),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Eq),
        Just(Op::Ne),
        Just(Op::Gt),
        Just(Op::Ge),
        Just(Op::Lt),
        Just(Op::Le),
        Just(Op::IsNull),
        Just(Op::NotNull),
    ]
}

fn arb_conjunction(arity: usize) -> impl Strategy<Value = Conjunction> {
    let preds = prop::collection::vec(
        (0usize..4, arb_op(), arb_value())
            .prop_map(|(a, op, v)| Predicate::new(AttrId(a + 2), op, v)),
        0..4,
    );
    let builtin = prop::option::of(
        (
            prop::collection::vec(-100.0f64..100.0, arity..=arity),
            -100.0f64..100.0,
        )
            .prop_map(|(delta_x, delta_y)| Translation { delta_x, delta_y }),
    );
    (preds, builtin).prop_map(|(p, b)| match b {
        Some(b) => Conjunction::with_builtin(p, b),
        None => Conjunction::of(p),
    })
}

fn arb_model(arity: usize) -> impl Strategy<Value = Model> {
    prop_oneof![
        (
            prop::collection::vec(-9.0f64..9.0, arity..=arity),
            -50.0f64..50.0
        )
            .prop_map(|(w, b)| Model::Linear(LinearModel::new(w, b))),
        (
            prop::collection::vec(-9.0f64..9.0, arity..=arity),
            -50.0f64..50.0,
            0.001f64..10.0
        )
            .prop_map(|(w, b, l)| Model::Ridge(RidgeModel::new(w, b, l))),
        (-50.0f64..50.0).prop_map(move |v| Model::Constant(ConstantModel::new(v, arity))),
    ]
}

fn arb_ruleset() -> impl Strategy<Value = RuleSet> {
    (1usize..3).prop_flat_map(|arity| {
        prop::collection::vec(
            (
                arb_model(arity),
                0.0f64..10.0,
                prop::collection::vec(arb_conjunction(arity), 1..3),
            ),
            1..5,
        )
        .prop_map(move |specs| {
            RuleSet::from_rules(
                specs
                    .into_iter()
                    .map(|(model, rho, conjuncts)| {
                        // Inputs are attrs 0..arity; target is attr 10
                        // (condition attrs start at 2, so Definition 1's
                        // "no predicate on Y" holds by construction).
                        Crr::new(
                            (0..arity).map(AttrId).collect(),
                            AttrId(10),
                            Arc::new(model),
                            rho,
                            Dnf::of(conjuncts),
                        )
                        .unwrap()
                    })
                    .collect(),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// from_text(to_text(Σ)) reproduces every rule field exactly.
    #[test]
    fn roundtrip_is_exact(rules in arb_ruleset()) {
        let text = serialize::to_text(&rules);
        let back = serialize::from_text(&text).unwrap();
        prop_assert_eq!(back.len(), rules.len());
        for (a, b) in rules.rules().iter().zip(back.rules()) {
            prop_assert_eq!(a.inputs(), b.inputs());
            prop_assert_eq!(a.target(), b.target());
            prop_assert_eq!(a.rho().to_bits(), b.rho().to_bits());
            prop_assert_eq!(a.condition(), b.condition());
            prop_assert_eq!(a.model().as_ref(), b.model().as_ref());
        }
    }

    /// Serialization is stable: a second round trip yields identical text.
    #[test]
    fn second_roundtrip_is_fixed_point(rules in arb_ruleset()) {
        let once = serialize::to_text(&rules);
        let twice = serialize::to_text(&serialize::from_text(&once).unwrap());
        prop_assert_eq!(once, twice);
    }
}
