//! Property test: the compiled columnar scan kernels are semantically
//! transparent — for arbitrary mixed-type tables (nulls, NaN-adjacent
//! floats, constant columns, dictionary strings) and arbitrary
//! conjunctions, `CompiledConjunction::select` returns exactly what the
//! interpreted row-at-a-time `Predicate::eval` filter returns, and the
//! bitmask kernel agrees with both.

// Test harness: panicking on malformed fixtures is the failure mode we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use crr_core::{CompiledConjunction, Op, Predicate};
use crr_data::{AttrId, AttrType, Schema, Table, Value};
use proptest::prelude::*;

const F: AttrId = AttrId(0); // float with nulls and near-boundary values
const I: AttrId = AttrId(1); // int with nulls
const S: AttrId = AttrId(2); // dictionary string with nulls
const C: AttrId = AttrId(3); // constant float column

const WORDS: [&str; 4] = ["red", "green", "blue", "red "];

fn arb_table() -> impl Strategy<Value = Table> {
    // Float cells cluster around the same constants the predicate
    // generator draws from, so Eq/Ne boundaries are actually exercised;
    // tiny offsets stress strict-vs-inclusive comparisons.
    let float_cell = prop_oneof![
        4 => (-4i64..4).prop_map(|k| Some(k as f64)),
        3 => ((-4i64..4), prop_oneof![Just(-1e-12), Just(1e-12)])
            .prop_map(|(k, eps)| Some(k as f64 + eps)),
        2 => (-100.0f64..100.0).prop_map(Some),
        1 => Just(None),
    ];
    let int_cell = prop_oneof![
        8 => (-5i64..5).prop_map(Some),
        1 => Just(None),
    ];
    let str_cell = prop_oneof![
        8 => (0usize..WORDS.len()).prop_map(Some),
        1 => Just(None),
    ];
    prop::collection::vec((float_cell, int_cell, str_cell), 1..80).prop_map(|cells| {
        let schema = Schema::new(vec![
            ("f", AttrType::Float),
            ("i", AttrType::Int),
            ("s", AttrType::Str),
            ("c", AttrType::Float),
        ]);
        let mut t = Table::new(schema);
        for (f, i, s) in cells {
            t.push_row(vec![
                f.map_or(Value::Null, Value::Float),
                i.map_or(Value::Null, Value::Int),
                s.map_or(Value::Null, |k| Value::str(WORDS[k])),
                Value::Float(7.0),
            ])
            .unwrap();
        }
        t
    })
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Eq),
        Just(Op::Ne),
        Just(Op::Gt),
        Just(Op::Ge),
        Just(Op::Lt),
        Just(Op::Le),
        Just(Op::IsNull),
        Just(Op::NotNull),
    ]
}

/// A predicate over any of the four columns, including type-mismatched
/// constants (int constant on a float column, string constant absent
/// from the dictionary, null constants) that the compiler must fold to
/// the same verdicts the interpreter reaches.
fn arb_pred() -> impl Strategy<Value = Predicate> {
    let attr = prop_oneof![Just(F), Just(I), Just(S), Just(C)];
    let constant = prop_oneof![
        3 => (-4i64..4).prop_map(|k| Value::Float(k as f64)),
        2 => (-5i64..5).prop_map(Value::Int),
        2 => (0usize..WORDS.len()).prop_map(|k| Value::str(WORDS[k])),
        1 => Just(Value::str("unseen")),
        1 => Just(Value::Float(7.0)),
        1 => Just(Value::Null),
    ];
    (attr, arb_op(), constant).prop_map(|(a, op, c)| Predicate::new(a, op, c))
}

/// Conjunctions up to length 4: long enough to hit interval folding on a
/// repeated attribute, empty ones compile to always-true.
fn arb_conj() -> impl Strategy<Value = Vec<Predicate>> {
    prop::collection::vec(arb_pred(), 0..4)
}

fn interpreted(table: &Table, preds: &[Predicate]) -> Vec<u32> {
    (0..table.num_rows() as u32)
        .filter(|&r| preds.iter().all(|p| p.eval(table, r as usize)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn compiled_select_matches_interpreter(table in arb_table(), preds in arb_conj()) {
        let cc = CompiledConjunction::from_preds(&preds, &table);
        let rows = table.all_rows();
        let got = cc.select(&rows);
        let want = interpreted(&table, &preds);
        prop_assert_eq!(got.as_slice(), want.as_slice());
        prop_assert_eq!(cc.count(rows.as_slice()), want.len());
    }

    #[test]
    fn compiled_eval_row_matches_interpreter(table in arb_table(), preds in arb_conj()) {
        let cc = CompiledConjunction::from_preds(&preds, &table);
        for r in 0..table.num_rows() {
            prop_assert_eq!(
                cc.eval_row(r),
                preds.iter().all(|p| p.eval(&table, r)),
                "row {}", r
            );
        }
    }

    #[test]
    fn bitmask_popcount_matches_select(table in arb_table(), preds in arb_conj()) {
        let cc = CompiledConjunction::from_preds(&preds, &table);
        let rows = table.all_rows();
        let mut bits = Vec::new();
        cc.bitmask_into(rows.as_slice(), &mut bits);
        let pop: u32 = bits.iter().map(|w| w.count_ones()).sum();
        let want = interpreted(&table, &preds);
        prop_assert_eq!(pop as usize, want.len());
        // Set lanes are exactly the selected positions of `rows`.
        for (k, &r) in rows.as_slice().iter().enumerate() {
            let lane = bits[k / 64] >> (k % 64) & 1 == 1;
            prop_assert_eq!(lane, want.contains(&r), "lane {}", k);
        }
    }

    #[test]
    fn selection_respects_arbitrary_subsets(table in arb_table(), preds in arb_conj(), stride in 1usize..5) {
        // The kernels must honor the candidate list, not rescan the table.
        let subset: Vec<u32> = (0..table.num_rows() as u32).step_by(stride).collect();
        let cc = CompiledConjunction::from_preds(&preds, &table);
        let mut got = Vec::new();
        cc.select_into(&subset, &mut got);
        let want: Vec<u32> = subset
            .iter()
            .copied()
            .filter(|&r| preds.iter().all(|p| p.eval(&table, r as usize)))
            .collect();
        prop_assert_eq!(got, want);
    }
}
